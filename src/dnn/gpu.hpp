// GPU compute-capacity model.
//
// Per-tensor layer times combine a FLOP-bound term, a memory-bound term (BN,
// activations, elementwise traffic) and a fixed per-kernel overhead. The
// Tesla M60 preset is calibrated so that compute-bound training rates land in
// the range the paper measures on g3.8xlarge workers (2 x M60): ResNet50
// batch 64 ~ 70 samples/s, ResNet18 batch 64 ~ 190 samples/s. Reproduction
// targets shapes, not EC2 milliseconds; the calibration only anchors scale.
#pragma once

#include <string>

#include "common/time.hpp"
#include "dnn/tensor.hpp"

namespace prophet::dnn {

struct GpuSpec {
  std::string name;
  // Sustained fp32 throughput on convnet kernels (GFLOP/s), not peak.
  double sustained_gflops = 2800.0;
  // Effective memory bandwidth for activation traffic (bytes/s).
  double memory_bandwidth = 600e9;
  // Average number of times an activation crosses the memory bus per pass.
  double traffic_factor = 4.0;
  // Kernel launch + framework dispatch per tensor per pass.
  Duration per_tensor_overhead = Duration::micros(1000);
  // Backward work relative to forward (dX and dW kernels).
  double bwd_fwd_ratio = 2.0;

  // Time to run the forward (resp. backward) computation that tensor `t`
  // participates in, for one mini-batch of `batch` samples.
  [[nodiscard]] Duration fwd_time(const TensorSpec& t, int batch) const;
  [[nodiscard]] Duration bwd_time(const TensorSpec& t, int batch) const;
};

// g3.8xlarge worker: 2 x NVIDIA Tesla M60 treated as one calibrated device.
GpuSpec tesla_m60_pair();

}  // namespace prophet::dnn
