#include "dnn/gpu.hpp"

#include "common/check.hpp"

namespace prophet::dnn {

namespace {
Duration layer_time(const GpuSpec& gpu, double gflops, Bytes activation, int batch,
                    double scale) {
  PROPHET_CHECK(batch > 0);
  const double flop_s = gflops * 1e9 * batch * scale / gpu.sustained_gflops / 1e9;
  const double mem_s = static_cast<double>(activation.count()) * batch *
                       gpu.traffic_factor * scale / gpu.memory_bandwidth;
  return Duration::from_seconds(flop_s + mem_s) + gpu.per_tensor_overhead;
}
}  // namespace

Duration GpuSpec::fwd_time(const TensorSpec& t, int batch) const {
  return layer_time(*this, t.fwd_gflops, t.activation_bytes, batch, 1.0);
}

Duration GpuSpec::bwd_time(const TensorSpec& t, int batch) const {
  // bwd_gflops already encodes the dX+dW factor when the model builder set
  // it; fall back to the ratio when it did not (e.g. BN tensors).
  if (t.bwd_gflops > 0.0) {
    return layer_time(*this, t.bwd_gflops, t.activation_bytes, batch, 1.0);
  }
  return layer_time(*this, t.fwd_gflops, t.activation_bytes, batch, bwd_fwd_ratio);
}

GpuSpec tesla_m60_pair() {
  GpuSpec gpu;
  gpu.name = "2x Tesla M60 (g3.8xlarge)";
  gpu.sustained_gflops = 2800.0;
  gpu.memory_bandwidth = 600e9;
  gpu.traffic_factor = 4.0;
  gpu.per_tensor_overhead = Duration::micros(400);
  gpu.bwd_fwd_ratio = 2.0;
  return gpu;
}

}  // namespace prophet::dnn
