// Incremental builder that tracks spatial dimensions and channel counts while
// layers are appended, deriving each tensor's parameter bytes, FLOPs and
// activation footprint from the architecture itself (no hard-coded tables).
#pragma once

#include <string>
#include <vector>

#include "dnn/tensor.hpp"

namespace prophet::dnn {

class ModelBuilder {
 public:
  // `input_hw` is the (square) input resolution, `input_channels` usually 3.
  ModelBuilder(std::string model_name, int input_hw, int input_channels);

  // 2-D convolution, `kh` x `kw` kernel; adds a weight tensor (+ optional
  // bias) and, if `batch_norm`, gamma/beta tensors. Padding defaults to
  // "same-ish" ((k-1)/2); `stride` divides the spatial size (ceil);
  // `groups` splits input/output channels (groups == in_channels gives a
  // depthwise convolution).
  ModelBuilder& conv2d(const std::string& name, int out_channels, int kh, int kw,
                       int stride = 1, bool batch_norm = true, bool bias = false,
                       int pad_h = -1, int pad_w = -1, int groups = 1);
  // Depthwise convolution: one k x k filter per input channel.
  ModelBuilder& depthwise(const std::string& name, int k, int stride = 1);
  // Square-kernel convenience.
  ModelBuilder& conv(const std::string& name, int out_channels, int k,
                     int stride = 1, bool batch_norm = true, bool bias = false) {
    return conv2d(name, out_channels, k, k, stride, batch_norm, bias);
  }
  // Pooling: spatial reduction only, no parameters; its (cheap) compute is
  // attributed to the previous tensor.
  ModelBuilder& pool(int k, int stride, int pad = 0);
  ModelBuilder& global_pool();
  ModelBuilder& fc(const std::string& name, int out_features, bool bias = true);

  // Marks the start of a new architectural stage (residual block, inception
  // module, VGG conv stage). Tensors appended afterwards carry the new stage.
  ModelBuilder& begin_stage();

  // Branch support for inception-style modules: snapshot the spatial state,
  // build each branch from the snapshot, then merge with the concatenated
  // channel count.
  struct SpatialState {
    int hw;
    int channels;
  };
  [[nodiscard]] SpatialState state() const { return {hw_, channels_}; }
  void restore(SpatialState s) { hw_ = s.hw; channels_ = s.channels; }
  void merge_channels(int concatenated_channels) { channels_ = concatenated_channels; }

  [[nodiscard]] ModelSpec build() &&;

 private:
  void add_tensor(TensorSpec t);

  std::string model_name_;
  int hw_;
  int channels_;
  int stage_{0};
  std::vector<TensorSpec> tensors_;
};

}  // namespace prophet::dnn
