#include "dnn/model_zoo.hpp"

#include <array>
#include <functional>

#include "common/check.hpp"
#include "dnn/model_builder.hpp"

namespace prophet::dnn {

namespace {

// --- ResNet (He et al.) ----------------------------------------------------

// BasicBlock: two 3x3 convs; used by ResNet18.
void basic_block(ModelBuilder& b, const std::string& name, int width, int stride,
                 bool downsample) {
  b.begin_stage();
  const auto entry = b.state();
  b.conv(name + ".conv1", width, 3, stride);
  b.conv(name + ".conv2", width, 3, 1);
  if (downsample) {
    const auto exit = b.state();
    b.restore(entry);
    b.conv(name + ".downsample", width, 1, stride);
    b.restore(exit);
  }
}

// Bottleneck: 1x1 reduce, 3x3, 1x1 expand (x4); used by ResNet50/152.
void bottleneck_block(ModelBuilder& b, const std::string& name, int width, int stride,
                      bool downsample) {
  b.begin_stage();
  const auto entry = b.state();
  b.conv(name + ".conv1", width, 1, 1);
  b.conv(name + ".conv2", width, 3, stride);
  b.conv(name + ".conv3", width * 4, 1, 1);
  if (downsample) {
    const auto exit = b.state();
    b.restore(entry);
    b.conv(name + ".downsample", width * 4, 1, stride);
    b.restore(exit);
  }
}

using BlockFn = std::function<void(ModelBuilder&, const std::string&, int, int, bool)>;

ModelSpec resnet(const std::string& name, const BlockFn& block, int expansion,
                 const std::array<int, 4>& depths) {
  ModelBuilder b{name, 224, 3};
  b.conv("conv1", 64, 7, 2);
  b.pool(3, 2, 1);
  const std::array<int, 4> widths{64, 128, 256, 512};
  int in_channels = 64;
  for (int layer = 0; layer < 4; ++layer) {
    const int width = widths[static_cast<std::size_t>(layer)];
    const int out_channels = width * expansion;
    for (int i = 0; i < depths[static_cast<std::size_t>(layer)]; ++i) {
      const int stride = (i == 0 && layer > 0) ? 2 : 1;
      const bool downsample = i == 0 && (stride != 1 || in_channels != out_channels);
      block(b, "layer" + std::to_string(layer + 1) + "." + std::to_string(i), width,
            stride, downsample);
      in_channels = out_channels;
    }
  }
  b.begin_stage();
  b.global_pool();
  b.fc("fc", 1000);
  return std::move(b).build();
}

// --- Inception-v3 (Szegedy et al.) ------------------------------------------

// Each branch rebuilds from the module entry state; channels concatenate.
struct Branch {
  std::function<void(ModelBuilder&)> body;
};

void inception_module(ModelBuilder& b, const std::vector<Branch>& branches,
                      int pooled_hw_after = 0) {
  b.begin_stage();
  const auto entry = b.state();
  int total_channels = 0;
  for (const auto& branch : branches) {
    b.restore(entry);
    branch.body(b);
    total_channels += b.state().channels;
  }
  b.merge_channels(total_channels);
  if (pooled_hw_after > 0) {
    // Reduction modules shrink spatially via their strided convs; the branch
    // bodies already did so — just assert the tracked size.
    PROPHET_CHECK(b.state().hw == pooled_hw_after);
  }
}

ModelSpec build_inception_v3() {
  ModelBuilder b{"inception_v3", 299, 3};
  // Stem (paddings follow torchvision).
  b.conv2d("stem.conv1", 32, 3, 3, 2, true, false, 0, 0);   // 299 -> 149
  b.conv2d("stem.conv2", 32, 3, 3, 1, true, false, 0, 0);              // -> 147
  b.conv("stem.conv3", 64, 3, 1);                                    // pad 1
  b.pool(3, 2);                                                      // -> 73
  b.conv("stem.conv4", 80, 1, 1);
  b.conv2d("stem.conv5", 192, 3, 3, 1, true, false, 0, 0);             // -> 71
  b.pool(3, 2);                                                      // -> 35

  auto c = [](ModelBuilder& mb, const std::string& n, int out, int kh, int kw,
              int stride = 1, int ph = -1, int pw = -1) {
    mb.conv2d(n, out, kh, kw, stride, true, false, ph, pw);
  };

  // Mixed 5b/5c/5d (35x35); pool-proj channels 32, 64, 64.
  for (int m = 0; m < 3; ++m) {
    const std::string n = "mixed5" + std::string(1, static_cast<char>('b' + m));
    const int pool_proj = m == 0 ? 32 : 64;
    inception_module(
        b, {Branch{[&](ModelBuilder& mb) { c(mb, n + ".b1x1", 64, 1, 1); }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b5x5_1", 48, 1, 1);
              c(mb, n + ".b5x5_2", 64, 5, 5);
            }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b3x3dbl_1", 64, 1, 1);
              c(mb, n + ".b3x3dbl_2", 96, 3, 3);
              c(mb, n + ".b3x3dbl_3", 96, 3, 3);
            }},
            Branch{[&](ModelBuilder& mb) { c(mb, n + ".pool_proj", pool_proj, 1, 1); }}});
  }

  // Mixed 6a: 35 -> 17 reduction.
  inception_module(
      b, {Branch{[&](ModelBuilder& mb) { c(mb, "mixed6a.b3x3", 384, 3, 3, 2, 0, 0); }},
          Branch{[&](ModelBuilder& mb) {
            c(mb, "mixed6a.dbl_1", 64, 1, 1);
            c(mb, "mixed6a.dbl_2", 96, 3, 3);
            c(mb, "mixed6a.dbl_3", 96, 3, 3, 2, 0, 0);
          }},
          // Max-pool branch: passes input channels through (192+... = 288).
          Branch{[&](ModelBuilder& mb) { mb.pool(3, 2); }}},
      17);

  // Mixed 6b-6e (17x17) with factorized 7x7; c7 = 128, 160, 160, 192.
  const std::array<int, 4> c7s{128, 160, 160, 192};
  for (int m = 0; m < 4; ++m) {
    const std::string n = "mixed6" + std::string(1, static_cast<char>('b' + m));
    const int c7 = c7s[static_cast<std::size_t>(m)];
    inception_module(
        b, {Branch{[&](ModelBuilder& mb) { c(mb, n + ".b1x1", 192, 1, 1); }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b7x7_1", c7, 1, 1);
              c(mb, n + ".b7x7_2", c7, 1, 7, 1, 0, 3);
              c(mb, n + ".b7x7_3", 192, 7, 1, 1, 3, 0);
            }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b7x7dbl_1", c7, 1, 1);
              c(mb, n + ".b7x7dbl_2", c7, 7, 1, 1, 3, 0);
              c(mb, n + ".b7x7dbl_3", c7, 1, 7, 1, 0, 3);
              c(mb, n + ".b7x7dbl_4", c7, 7, 1, 1, 3, 0);
              c(mb, n + ".b7x7dbl_5", 192, 1, 7, 1, 0, 3);
            }},
            Branch{[&](ModelBuilder& mb) { c(mb, n + ".pool_proj", 192, 1, 1); }}});
  }

  // Mixed 7a: 17 -> 8 reduction.
  inception_module(
      b, {Branch{[&](ModelBuilder& mb) {
            c(mb, "mixed7a.b3x3_1", 192, 1, 1);
            c(mb, "mixed7a.b3x3_2", 320, 3, 3, 2, 0, 0);
          }},
          Branch{[&](ModelBuilder& mb) {
            c(mb, "mixed7a.b7x7x3_1", 192, 1, 1);
            c(mb, "mixed7a.b7x7x3_2", 192, 1, 7, 1, 0, 3);
            c(mb, "mixed7a.b7x7x3_3", 192, 7, 1, 1, 3, 0);
            c(mb, "mixed7a.b7x7x3_4", 192, 3, 3, 2, 0, 0);
          }},
          Branch{[&](ModelBuilder& mb) { mb.pool(3, 2); }}},
      8);

  // Mixed 7b/7c (8x8) with expanded 3x3 splits.
  for (int m = 0; m < 2; ++m) {
    const std::string n = "mixed7" + std::string(1, static_cast<char>('b' + m));
    inception_module(
        b, {Branch{[&](ModelBuilder& mb) { c(mb, n + ".b1x1", 320, 1, 1); }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b3x3_1", 384, 1, 1);
              const auto split = mb.state();
              c(mb, n + ".b3x3_2a", 384, 1, 3, 1, 0, 1);
              mb.restore(split);
              c(mb, n + ".b3x3_2b", 384, 3, 1, 1, 1, 0);
              mb.merge_channels(768);
            }},
            Branch{[&](ModelBuilder& mb) {
              c(mb, n + ".b3x3dbl_1", 448, 1, 1);
              c(mb, n + ".b3x3dbl_2", 384, 3, 3);
              const auto split = mb.state();
              c(mb, n + ".b3x3dbl_3a", 384, 1, 3, 1, 0, 1);
              mb.restore(split);
              c(mb, n + ".b3x3dbl_3b", 384, 3, 1, 1, 1, 0);
              mb.merge_channels(768);
            }},
            Branch{[&](ModelBuilder& mb) { c(mb, n + ".pool_proj", 192, 1, 1); }}});
  }

  b.begin_stage();
  b.global_pool();
  b.fc("fc", 1000);
  return std::move(b).build();
}

ModelSpec build_vgg19() {
  ModelBuilder b{"vgg19", 224, 3};
  const std::vector<std::vector<int>> stages{
      {64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512},
      {512, 512, 512, 512}};
  int idx = 0;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    b.begin_stage();
    for (int width : stages[s]) {
      // VGG uses biased convolutions and no batch norm.
      b.conv("conv" + std::to_string(idx++), width, 3, 1, /*batch_norm=*/false,
             /*bias=*/true);
    }
    b.pool(2, 2);
  }
  b.begin_stage();
  b.fc("fc1", 4096);
  b.fc("fc2", 4096);
  b.fc("fc3", 1000);
  return std::move(b).build();
}

ModelSpec build_alexnet() {
  ModelBuilder b{"alexnet", 224, 3};
  b.conv2d("conv1", 64, 11, 11, 4, /*batch_norm=*/false, /*bias=*/true, 2, 2);
  b.pool(3, 2);
  b.begin_stage();
  b.conv("conv2", 192, 5, 1, false, true);
  b.pool(3, 2);
  b.begin_stage();
  b.conv("conv3", 384, 3, 1, false, true);
  b.conv("conv4", 256, 3, 1, false, true);
  b.conv("conv5", 256, 3, 1, false, true);
  b.pool(3, 2);
  b.begin_stage();
  b.fc("fc1", 4096);
  b.fc("fc2", 4096);
  b.fc("fc3", 1000);
  return std::move(b).build();
}

// Transformer tensors are built directly (no spatial tracking): one stage
// per encoder layer, matching how framework engines group their gradients.
ModelSpec build_bert_base(int seq_len) {
  PROPHET_CHECK(seq_len > 0);
  constexpr int kLayers = 12;
  constexpr int kDim = 768;
  constexpr int kFfn = 3072;
  constexpr int kVocab = 30522;
  constexpr std::int64_t kFloat = 4;
  const double seq = seq_len;

  std::vector<TensorSpec> tensors;
  int stage = 0;
  auto add = [&](const std::string& name, std::int64_t params, double gflops_fwd) {
    TensorSpec t;
    t.name = name;
    t.bytes = Bytes::of(params * kFloat);
    t.fwd_gflops = gflops_fwd;
    t.bwd_gflops = 2.0 * gflops_fwd;
    // Activation footprint: one seq x dim fp32 tensor per parameterized op.
    t.activation_bytes = Bytes::of(static_cast<std::int64_t>(seq) * kDim * kFloat);
    t.stage = stage;
    tensors.push_back(std::move(t));
  };

  // Embeddings (token + position) and their layer norm.
  add("embeddings.word", static_cast<std::int64_t>(kVocab) * kDim, 0.0);
  add("embeddings.position", static_cast<std::int64_t>(512) * kDim, 0.0);
  add("embeddings.ln.gamma", kDim, 0.0);
  add("embeddings.ln.beta", kDim, 0.0);

  for (int layer = 0; layer < kLayers; ++layer) {
    ++stage;
    const std::string n = "encoder." + std::to_string(layer);
    // Per-sample FLOPs (2 * MACs): projections are seq x dim x dim matmuls;
    // attention scores/values add 2 * seq^2 * dim.
    const double proj_gflops = 2.0 * seq * kDim * kDim / 1e9;
    const double attn_gflops = 2.0 * 2.0 * seq * seq * kDim / 1e9;
    for (const char* proj : {"q", "k", "v"}) {
      add(n + ".attn." + proj + ".weight",
          static_cast<std::int64_t>(kDim) * kDim, proj_gflops);
      add(n + ".attn." + std::string{proj} + ".bias", kDim, 0.0);
    }
    add(n + ".attn.out.weight", static_cast<std::int64_t>(kDim) * kDim,
        proj_gflops + attn_gflops);  // attention compute attributed here
    add(n + ".attn.out.bias", kDim, 0.0);
    add(n + ".ln1.gamma", kDim, 0.0);
    add(n + ".ln1.beta", kDim, 0.0);
    const double ffn_gflops = 2.0 * seq * kDim * kFfn / 1e9;
    add(n + ".ffn.in.weight", static_cast<std::int64_t>(kDim) * kFfn, ffn_gflops);
    add(n + ".ffn.in.bias", kFfn, 0.0);
    add(n + ".ffn.out.weight", static_cast<std::int64_t>(kFfn) * kDim, ffn_gflops);
    add(n + ".ffn.out.bias", kDim, 0.0);
    add(n + ".ln2.gamma", kDim, 0.0);
    add(n + ".ln2.beta", kDim, 0.0);
  }
  ++stage;
  add("pooler.weight", static_cast<std::int64_t>(kDim) * kDim,
      2.0 * kDim * kDim / 1e9);
  add("pooler.bias", kDim, 0.0);

  return ModelSpec{"bert_base", std::move(tensors)};
}

ModelSpec build_mobilenet_v1() {
  ModelBuilder b{"mobilenet_v1", 224, 3};
  b.conv("conv0", 32, 3, 2);
  // (pointwise output channels, depthwise stride) per separable block.
  const std::vector<std::pair<int, int>> blocks{
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}};
  int idx = 0;
  for (const auto& [out, stride] : blocks) {
    b.begin_stage();
    const std::string n = "block" + std::to_string(idx++);
    b.depthwise(n + ".dw", 3, stride);
    b.conv(n + ".pw", out, 1, 1);
  }
  b.begin_stage();
  b.global_pool();
  b.fc("fc", 1000);
  return std::move(b).build();
}

ModelSpec build_toy_cnn() {
  ModelBuilder b{"toy_cnn", 32, 3};
  b.conv("conv1", 16, 3, 1);
  b.begin_stage();
  b.conv("conv2", 32, 3, 2);
  b.conv("conv3", 32, 3, 1);
  b.begin_stage();
  b.conv("conv4", 64, 3, 2);
  b.begin_stage();
  b.global_pool();
  b.fc("fc", 10);
  return std::move(b).build();
}

}  // namespace

ModelSpec resnet18() { return resnet("resnet18", basic_block, 1, {2, 2, 2, 2}); }
ModelSpec resnet50() { return resnet("resnet50", bottleneck_block, 4, {3, 4, 6, 3}); }
ModelSpec resnet152() { return resnet("resnet152", bottleneck_block, 4, {3, 8, 36, 3}); }
ModelSpec inception_v3() { return build_inception_v3(); }
ModelSpec vgg19() { return build_vgg19(); }
ModelSpec alexnet() { return build_alexnet(); }
ModelSpec mobilenet_v1() { return build_mobilenet_v1(); }
ModelSpec bert_base(int seq_len) { return build_bert_base(seq_len); }
ModelSpec toy_cnn() { return build_toy_cnn(); }

ModelSpec model_by_name(const std::string& name) {
  if (name == "resnet18") return resnet18();
  if (name == "resnet50") return resnet50();
  if (name == "resnet152") return resnet152();
  if (name == "inception_v3") return inception_v3();
  if (name == "vgg19") return vgg19();
  if (name == "alexnet") return alexnet();
  if (name == "mobilenet_v1") return mobilenet_v1();
  if (name == "bert_base") return bert_base();
  if (name == "toy_cnn") return toy_cnn();
  PROPHET_CHECK_MSG(false, "unknown model name");
  __builtin_unreachable();
}

std::vector<std::string> model_names() {
  return {"resnet18", "resnet50",     "resnet152", "inception_v3", "vgg19",
          "alexnet",  "mobilenet_v1", "bert_base", "toy_cnn"};
}

}  // namespace prophet::dnn
