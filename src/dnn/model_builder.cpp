#include "dnn/model_builder.hpp"

#include <utility>

namespace prophet::dnn {

namespace {
constexpr std::int64_t kFloatBytes = 4;

int conv_out_dim(int in, int k, int stride, int pad) {
  return (in + 2 * pad - k) / stride + 1;
}
}  // namespace

ModelBuilder::ModelBuilder(std::string model_name, int input_hw, int input_channels)
    : model_name_{std::move(model_name)}, hw_{input_hw}, channels_{input_channels} {
  PROPHET_CHECK(input_hw > 0 && input_channels > 0);
}

void ModelBuilder::add_tensor(TensorSpec t) {
  t.stage = stage_;
  tensors_.push_back(std::move(t));
}

ModelBuilder& ModelBuilder::conv2d(const std::string& name, int out_channels, int kh,
                                   int kw, int stride, bool batch_norm, bool bias,
                                   int pad_h, int pad_w, int groups) {
  PROPHET_CHECK(out_channels > 0 && kh > 0 && kw > 0 && stride > 0);
  PROPHET_CHECK(groups > 0 && channels_ % groups == 0 && out_channels % groups == 0);
  if (pad_h < 0) pad_h = (kh - 1) / 2;
  if (pad_w < 0) pad_w = (kw - 1) / 2;
  const int in_c = channels_;
  const int out_h = conv_out_dim(hw_, kh, stride, pad_h);
  const int out_w = conv_out_dim(hw_, kw, stride, pad_w);
  PROPHET_CHECK_MSG(out_h > 0 && out_w > 0, "convolution shrank feature map away");

  const std::int64_t weight_params =
      static_cast<std::int64_t>(kh) * kw * (in_c / groups) * out_channels;
  // MACs * 2: the standard FLOP convention for convolutions.
  const double gflops = 2.0 * static_cast<double>(weight_params) *
                        static_cast<double>(out_h) * static_cast<double>(out_w) / 1e9;
  const auto act = Bytes::of(static_cast<std::int64_t>(out_h) * out_w * out_channels *
                             kFloatBytes);

  TensorSpec weight;
  weight.name = name + ".weight";
  weight.bytes = Bytes::of(weight_params * kFloatBytes);
  weight.fwd_gflops = gflops;
  weight.bwd_gflops = 2.0 * gflops;  // dX + dW passes
  weight.activation_bytes = act;
  add_tensor(std::move(weight));

  if (bias) {
    // Distinct parameter array == distinct gradient key, as in MXNet.
    TensorSpec b;
    b.name = name + ".bias";
    b.bytes = Bytes::of(static_cast<std::int64_t>(out_channels) * kFloatBytes);
    b.activation_bytes = act;
    add_tensor(std::move(b));
  }

  if (batch_norm) {
    // Gamma and beta are distinct parameter arrays (distinct KV keys), as in
    // MXNet/Gluon; BN's own compute is memory-bound and counted via the
    // activation footprint.
    const auto bn_bytes = Bytes::of(static_cast<std::int64_t>(out_channels) * kFloatBytes);
    for (const char* suffix : {".bn.gamma", ".bn.beta"}) {
      TensorSpec bn;
      bn.name = name + suffix;
      bn.bytes = bn_bytes;
      bn.activation_bytes = act;
      add_tensor(std::move(bn));
    }
  }

  hw_ = out_h;  // square tracking: asymmetric kernels keep pads symmetric enough
  channels_ = out_channels;
  return *this;
}

ModelBuilder& ModelBuilder::depthwise(const std::string& name, int k, int stride) {
  return conv2d(name, channels_, k, k, stride, /*batch_norm=*/true,
                /*bias=*/false, -1, -1, channels_);
}

ModelBuilder& ModelBuilder::pool(int k, int stride, int pad) {
  PROPHET_CHECK(k > 0 && stride > 0);
  hw_ = conv_out_dim(hw_, k, stride, pad);
  PROPHET_CHECK(hw_ > 0);
  return *this;
}

ModelBuilder& ModelBuilder::global_pool() {
  hw_ = 1;
  return *this;
}

ModelBuilder& ModelBuilder::fc(const std::string& name, int out_features, bool bias) {
  PROPHET_CHECK(out_features > 0);
  const std::int64_t in_features = static_cast<std::int64_t>(hw_) * hw_ * channels_;
  TensorSpec weight;
  weight.name = name + ".weight";
  weight.bytes = Bytes::of(in_features * out_features * kFloatBytes);
  weight.fwd_gflops = 2.0 * static_cast<double>(in_features) * out_features / 1e9;
  weight.bwd_gflops = 2.0 * weight.fwd_gflops;
  weight.activation_bytes = Bytes::of(static_cast<std::int64_t>(out_features) * kFloatBytes);
  add_tensor(std::move(weight));
  if (bias) {
    TensorSpec b;
    b.name = name + ".bias";
    b.bytes = Bytes::of(static_cast<std::int64_t>(out_features) * kFloatBytes);
    b.activation_bytes = Bytes::of(static_cast<std::int64_t>(out_features) * kFloatBytes);
    add_tensor(std::move(b));
  }
  hw_ = 1;
  channels_ = out_features;
  return *this;
}

ModelBuilder& ModelBuilder::begin_stage() {
  if (!tensors_.empty()) ++stage_;
  return *this;
}

ModelSpec ModelBuilder::build() && {
  return ModelSpec{std::move(model_name_), std::move(tensors_)};
}

}  // namespace prophet::dnn
