#include "dnn/stepwise.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::dnn {

std::vector<GradientBlock> detect_blocks(const std::vector<Duration>& ready,
                                         Duration tie_epsilon) {
  PROPHET_CHECK(!ready.empty());
  std::vector<GradientBlock> blocks;
  // Walk in generation order: from the last index (first generated) down.
  std::size_t last = ready.size() - 1;
  for (std::size_t step = 1; step <= ready.size(); ++step) {
    const std::size_t i = ready.size() - step;
    const bool boundary =
        i == 0 || (ready[i - 1] - ready[i] > tie_epsilon) ||
        (ready[i] - ready[i - 1] > tie_epsilon);
    if (boundary) {
      blocks.push_back(GradientBlock{i, last, ready[last]});
      if (i > 0) last = i - 1;
    }
  }
  return blocks;
}

std::vector<Duration> transfer_intervals(const std::vector<Duration>& ready,
                                         Duration tie_epsilon) {
  PROPHET_CHECK(!ready.empty());
  const std::size_t n = ready.size();
  std::vector<Duration> intervals(n, Duration::max());
  for (std::size_t i = 0; i < n; ++i) {
    // Higher priority == smaller index; generated at or after ready[i].
    Duration best = Duration::max();
    for (std::size_t j = 0; j < i; ++j) {
      const Duration gap = ready[j] - ready[i];
      if (gap > tie_epsilon) best = std::min(best, gap);
    }
    intervals[i] = best;
  }
  return intervals;
}

}  // namespace prophet::dnn
