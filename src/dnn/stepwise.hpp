// Analysis of the stepwise pattern: block segmentation of a gradient
// generation-time series and the expected-transfer-interval A^(i) used by
// Algorithm 1.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace prophet::dnn {

// One step of the stepwise pattern: gradients [first, last] (inclusive, in
// priority-index space) generated (nearly) simultaneously at `ready`.
struct GradientBlock {
  std::size_t first;
  std::size_t last;
  Duration ready;

  [[nodiscard]] std::size_t size() const { return last - first + 1; }
};

// Segments ready times (indexed by gradient priority; non-increasing in the
// index) into blocks: adjacent gradients whose ready times differ by at most
// `tie_epsilon` share a block. Returned in generation order (latest-priority
// block first, the block containing gradient 0 last).
std::vector<GradientBlock> detect_blocks(const std::vector<Duration>& ready,
                                         Duration tie_epsilon = Duration::micros(500));

// A^(i) from Algorithm 1 line 1: the time from gradient i's generation until
// the next *higher-priority* gradient is generated — the transmission budget
// gradient i has before it would block someone more urgent. Gradients that
// are members of the final generation step (including gradient 0) get
// Duration::max(): nothing higher-priority is still pending.
std::vector<Duration> transfer_intervals(const std::vector<Duration>& ready,
                                         Duration tie_epsilon = Duration::micros(500));

}  // namespace prophet::dnn
