// Model description consumed by the training simulator.
//
// A `TensorSpec` is one parameter tensor == one gradient key in the PS
// key-value store == one unit of the paper's gradient index i. Index order is
// *forward* order: tensor 0 belongs to the layer closest to the input, so
// gradient 0 is produced last in backward propagation and needed first in the
// next forward pass — i.e. index == transfer priority, exactly the paper's
// convention.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace prophet::dnn {

struct TensorSpec {
  std::string name;
  // Parameter (= gradient) payload in bytes, fp32.
  Bytes bytes;
  // Compute attributed to this tensor's layer, per training sample.
  double fwd_gflops = 0.0;
  double bwd_gflops = 0.0;
  // Output activation footprint per sample (drives memory-bound time).
  Bytes activation_bytes;
  // Architectural stage (residual block / inception module / conv stage
  // index). The KVStore flushes its aggregation buffer at stage boundaries,
  // which is one of the root causes of the stepwise pattern (Sec. 2.2).
  int stage = 0;
};

class ModelSpec {
 public:
  ModelSpec(std::string name, std::vector<TensorSpec> tensors)
      : name_{std::move(name)}, tensors_{std::move(tensors)} {
    PROPHET_CHECK(!tensors_.empty());
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t tensor_count() const { return tensors_.size(); }
  [[nodiscard]] const TensorSpec& tensor(std::size_t i) const {
    PROPHET_CHECK(i < tensors_.size());
    return tensors_[i];
  }
  [[nodiscard]] const std::vector<TensorSpec>& tensors() const { return tensors_; }

  [[nodiscard]] Bytes total_bytes() const {
    Bytes total{};
    for (const auto& t : tensors_) total += t.bytes;
    return total;
  }
  [[nodiscard]] std::int64_t parameter_count() const {
    return total_bytes().count() / 4;  // fp32
  }
  [[nodiscard]] double total_fwd_gflops() const {
    double total = 0.0;
    for (const auto& t : tensors_) total += t.fwd_gflops;
    return total;
  }
  [[nodiscard]] int stage_count() const {
    int max_stage = 0;
    for (const auto& t : tensors_) max_stage = std::max(max_stage, t.stage);
    return max_stage + 1;
  }

 private:
  std::string name_;
  std::vector<TensorSpec> tensors_;
};

}  // namespace prophet::dnn
