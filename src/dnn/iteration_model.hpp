// Per-iteration timing model: how long each layer computes, and — through the
// KVStore aggregation model — *when each gradient becomes available for
// network transfer*. This is where the paper's stepwise pattern (Sec. 2.2,
// Fig. 4) is produced, by the same mechanism the paper identifies:
// GroupKVPairsPush-style aggregation plus copyD2H / send-buffer batching
// release gradients in groups, not one by one.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "dnn/gpu.hpp"
#include "dnn/tensor.hpp"

namespace prophet::dnn {

struct KvStoreConfig {
  // Flush the aggregation buffer when backward crosses an architectural
  // stage boundary (residual block / inception module).
  bool flush_on_stage_boundary = true;
  // ... or when the buffer holds at least this many bytes (send-buffer
  // batching). Stage flushing off + a large threshold yields the coarser
  // "4 blocks for VGG19" grouping the paper sees under TensorFlow.
  Bytes flush_threshold = Bytes::mib(16);
  // Fixed cost per flush (GroupKVPairsPush bookkeeping).
  Duration flush_fixed = Duration::micros(150);
  // Device-to-host copy bandwidth applied to flushed bytes.
  double copy_bandwidth = 6e9;
};

// One sampled training iteration.
struct IterationTiming {
  // T_fp^(i): forward compute time attributed to tensor i's layer.
  std::vector<Duration> fwd;
  // T_bp^(i): backward compute time attributed to tensor i's layer.
  std::vector<Duration> bwd;
  // c^(i): offset from backward-propagation start at which gradient i is
  // ready for transfer (post-aggregation). Monotone non-increasing in i and
  // stepwise: all members of one flush group share a ready time.
  std::vector<Duration> ready_offset;

  [[nodiscard]] Duration forward_total() const;
  // Backward ends when the final flush (containing gradient 0) lands.
  [[nodiscard]] Duration backward_total() const;
};

class IterationModel {
 public:
  IterationModel(const ModelSpec& model, GpuSpec gpu, int batch,
                 KvStoreConfig kv = {}, double jitter_sigma = 0.02);

  [[nodiscard]] const ModelSpec& model() const { return model_; }
  [[nodiscard]] int batch() const { return batch_; }
  [[nodiscard]] const GpuSpec& gpu() const { return gpu_; }

  // Noise-free timing (profiler ground truth, offline planners).
  [[nodiscard]] IterationTiming nominal() const;
  // One jittered iteration; consumes draws from `rng`.
  [[nodiscard]] IterationTiming sample(Rng& rng) const;

 private:
  IterationTiming generate(Rng* rng) const;

  ModelSpec model_;
  GpuSpec gpu_;
  int batch_;
  KvStoreConfig kv_;
  double jitter_sigma_;
};

}  // namespace prophet::dnn
