// The DNN models the paper trains (Sec. 5.1): ResNet18/50/152, Inception-v3,
// plus VGG19 (used for the stepwise-pattern observation of Sec. 2.2 / Fig. 4)
// and a small synthetic model for tests and the Fig. 5 illustrative example.
//
// Parameter tensor sizes, FLOPs and activation footprints are derived from
// the real architectures via ModelBuilder; unit tests pin the parameter
// totals against the published counts (ResNet50 = 25.56 M params, ...).
#pragma once

#include <string>
#include <vector>

#include "dnn/tensor.hpp"

namespace prophet::dnn {

ModelSpec resnet18();
ModelSpec resnet50();
ModelSpec resnet152();
ModelSpec inception_v3();
ModelSpec vgg19();
// AlexNet (Krizhevsky et al.): few huge FC tensors dominating the payload —
// the classic hard case for FIFO scheduling.
ModelSpec alexnet();
// MobileNetV1 (Howard et al.): depthwise-separable convolutions — many tiny
// tensors, a communication-latency-bound (rather than bandwidth-bound)
// workload.
ModelSpec mobilenet_v1();
// BERT-base-like transformer encoder (12 layers, d=768, seq 128): large
// uniform tensors and per-layer stages; a very different stepwise pattern
// from convnets, exercising Prophet outside the paper's workload set.
ModelSpec bert_base(int seq_len = 128);
// Tiny 3-stage convnet: fast to simulate, used by unit tests.
ModelSpec toy_cnn();

// Lookup by name ("resnet50", ...). Aborts on unknown names; see
// model_names() for the accepted set.
ModelSpec model_by_name(const std::string& name);
std::vector<std::string> model_names();

}  // namespace prophet::dnn
