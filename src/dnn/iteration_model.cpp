#include "dnn/iteration_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::dnn {

Duration IterationTiming::forward_total() const {
  Duration total{};
  for (Duration d : fwd) total += d;
  return total;
}

Duration IterationTiming::backward_total() const {
  Duration last{};
  for (Duration d : ready_offset) last = std::max(last, d);
  return last;
}

IterationModel::IterationModel(const ModelSpec& model, GpuSpec gpu, int batch,
                               KvStoreConfig kv, double jitter_sigma)
    : model_{model}, gpu_{std::move(gpu)}, batch_{batch}, kv_{kv},
      jitter_sigma_{jitter_sigma} {
  PROPHET_CHECK(batch_ > 0);
  PROPHET_CHECK(jitter_sigma_ >= 0.0);
  PROPHET_CHECK(kv_.copy_bandwidth > 0.0);
}

IterationTiming IterationModel::nominal() const { return generate(nullptr); }

IterationTiming IterationModel::sample(Rng& rng) const { return generate(&rng); }

IterationTiming IterationModel::generate(Rng* rng) const {
  const auto& tensors = model_.tensors();
  const std::size_t n = tensors.size();
  IterationTiming out;
  out.fwd.resize(n);
  out.bwd.resize(n);
  out.ready_offset.assign(n, Duration::zero());

  auto jitter = [&]() -> double {
    return rng != nullptr ? rng->lognormal_median(1.0, jitter_sigma_) : 1.0;
  };

  for (std::size_t i = 0; i < n; ++i) {
    out.fwd[i] = gpu_.fwd_time(tensors[i], batch_) * jitter();
    out.bwd[i] = gpu_.bwd_time(tensors[i], batch_) * jitter();
  }

  // Backward walk: highest index first. Gradients enter the KVStore buffer
  // as their layer's backward kernel finishes; the buffer flushes at stage
  // boundaries / byte thresholds, releasing every buffered gradient at the
  // flush completion instant (the stepwise pattern).
  Duration clock{};
  std::vector<std::size_t> buffered;
  Bytes buffered_bytes{};
  auto flush = [&]() {
    if (buffered.empty()) return;
    const Duration copy = Duration::from_seconds(
        static_cast<double>(buffered_bytes.count()) / kv_.copy_bandwidth);
    const Duration ready = clock + kv_.flush_fixed + copy;
    for (std::size_t idx : buffered) out.ready_offset[idx] = ready;
    buffered.clear();
    buffered_bytes = Bytes::zero();
  };

  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = n - 1 - step;
    clock += out.bwd[i];
    buffered.push_back(i);
    buffered_bytes += tensors[i].bytes;
    const bool stage_edge =
        kv_.flush_on_stage_boundary &&
        (i == 0 || tensors[i - 1].stage != tensors[i].stage);
    if (stage_edge || buffered_bytes >= kv_.flush_threshold) flush();
  }
  flush();
  return out;
}

}  // namespace prophet::dnn
