// Deterministic parallel sweep executor: the one threading primitive in the
// tree. Every simulation in this repo is single-threaded and bit-deterministic;
// sweeps over independent (seed × cell) configurations are embarrassingly
// parallel. The executor fans cells across hardware threads with dynamic
// work stealing (idle workers claim the next unclaimed cell), and makes the
// parallelism invisible in the results: each cell writes into its own
// pre-assigned slot and produces its human-readable output into a private
// buffer, which the driver emits in canonical cell order after the barrier.
// Output, fingerprints and JSON artifacts are therefore byte-identical at
// 1, 2 or N threads — the chaos harness and the bench drivers rely on this.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace prophet::exec {

// Applies `fn(index)` for every index in [0, count) using up to
// `max_threads` worker threads (0 = hardware concurrency). Work is stolen
// off a shared atomic cursor, so long cells don't serialize behind short
// ones. Results are written by `fn` into caller-owned, pre-sized storage;
// indices never overlap, so no synchronization is required inside `fn`.
// With one thread (or count == 1) cells run inline, in index order.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads = 0);

// Convenience: maps configs -> results in parallel, preserving order.
template <typename Config, typename Result>
std::vector<Result> parallel_map(const std::vector<Config>& configs,
                                 const std::function<Result(const Config&)>& fn,
                                 unsigned max_threads = 0) {
  std::vector<Result> results(configs.size());
  parallel_for_index(
      configs.size(),
      [&](std::size_t i) { results[i] = fn(configs[i]); }, max_threads);
  return results;
}

// One sweep cell's artifacts. `output` is everything the cell would have
// printed had it run serially — the executor emits it verbatim, in cell
// order, after all cells finish. A cell that detects a failure reports it
// here instead of exiting, so the sweep always runs to completion and the
// summary counts every failure.
struct CellResult {
  std::string output;
  bool ok = true;
};

// Runs `fn(i)` for every cell index in [0, count) across `max_threads`
// threads, then streams each cell's output to `out` in canonical index
// order. Returns the number of failed cells. The byte stream written to
// `out` is identical for every thread count.
std::size_t run_sweep(std::size_t count,
                      const std::function<CellResult(std::size_t)>& fn,
                      std::ostream& out, unsigned max_threads = 0);

}  // namespace prophet::exec
