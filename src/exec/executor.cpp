#include "exec/executor.hpp"

#include <atomic>
#include <ostream>
#include <thread>

#include "common/check.hpp"

namespace prophet::exec {

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        unsigned max_threads) {
  PROPHET_CHECK(fn != nullptr);
  if (count == 0) return;
  unsigned n_threads =
      max_threads != 0 ? max_threads : std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 4;
  n_threads = static_cast<unsigned>(std::min<std::size_t>(n_threads, count));

  if (n_threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic work distribution: each idle worker claims the next unclaimed
  // index. Claim order is nondeterministic; nothing downstream may depend on
  // it — cells write only to their own slot.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& thread : pool) thread.join();
}

std::size_t run_sweep(std::size_t count,
                      const std::function<CellResult(std::size_t)>& fn,
                      std::ostream& out, unsigned max_threads) {
  std::vector<CellResult> cells(count);
  parallel_for_index(
      count, [&](std::size_t i) { cells[i] = fn(i); }, max_threads);
  std::size_t failures = 0;
  for (const CellResult& cell : cells) {
    out << cell.output;
    if (!cell.ok) ++failures;
  }
  return failures;
}

}  // namespace prophet::exec
