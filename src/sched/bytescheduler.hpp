// ByteScheduler (Peng et al., SOSP'19): credit-based priority scheduling.
// Tensors are partitioned; each network operation carries up to `credit`
// bytes of the most urgent partitions. The credit arbitrates between
// preemption latency (small credit) and per-transfer overhead (large
// credit). Optionally a Bayesian-optimization auto-tuner adjusts the credit
// at runtime from the observed iteration rate — the process responsible for
// the training-rate fluctuation in the paper's Fig. 3(b).
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "sched/bayesopt.hpp"
#include "sched/partition_queue.hpp"
#include "sched/scheduler.hpp"

namespace prophet::sched {

struct ByteSchedulerConfig {
  // Partition granularity (BytePS default).
  Bytes partition_bytes = Bytes::mib(1);
  // Initial / fixed credit. The paper's comparison runs ByteScheduler "with
  // a default credit size" (Sec. 5.1); Fig. 5 illustrates credit = 3
  // partitions.
  Bytes credit_bytes = Bytes::mib(4);
  // Runtime credit auto-tuning via Bayesian optimization.
  bool autotune = false;
  // Iterations per tuning episode (rate is averaged over an episode).
  std::size_t tune_interval_iters = 5;
  // Credit search range explored by the tuner (Fig. 3(b): ~3 MB to 13 MB).
  Bytes credit_min = Bytes::mib(1);
  Bytes credit_max = Bytes::mib(16);
  std::uint64_t tuner_seed = 0x5eed;
  // Application-level acknowledgment that replenishes the credit window
  // after each group — one round trip of credit-based flow control.
  Duration credit_ack_delay = Duration::micros(1000);
};

class ByteSchedulerScheduler final : public CommScheduler {
 public:
  ByteSchedulerScheduler(TaskKind kind, ByteSchedulerConfig config = {});

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<TransferTask> next_task(TimePoint now) override;
  void on_task_done(const TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_iteration_end(std::size_t iteration, TimePoint now) override;
  // Lost queued partitions are dropped and the tuning episode restarts: the
  // iterations spanning a crash would feed the tuner a rate the credit did
  // not cause.
  void on_recovery(TimePoint) override {
    queue_.clear();
    episode_iters_ = 0;
    episode_start_.reset();
  }
  [[nodiscard]] bool has_pending() const override { return !queue_.empty(); }
  [[nodiscard]] std::string name() const override { return "bytescheduler"; }

  [[nodiscard]] Bytes credit_bytes() const { return credit_; }

 private:
  void finish_tuning_episode(TimePoint now);

  ByteSchedulerConfig config_;
  PartitionQueue queue_;
  Bytes credit_;
  // Auto-tuning state.
  std::unique_ptr<BayesOpt1D> tuner_;
  Rng tuner_rng_;
  std::size_t episode_iters_{0};
  std::optional<TimePoint> episode_start_;
};

}  // namespace prophet::sched
