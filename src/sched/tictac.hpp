// TicTac (Hashemi et al., MLSys'19): schedules network operations in the
// order the downstream computation needs them — here, whole tensors in
// strict priority order, without slicing. Compared to P3 it avoids the
// small-partition overhead; compared to FIFO it fixes the ordering; but a
// large low-priority tensor already in flight still blocks an urgent one
// for its full transfer time, and each operation is a blocking call
// (Sec. 6.1 of the paper groups TicTac with P3 on that point).
#pragma once

#include <map>

#include "sched/scheduler.hpp"

namespace prophet::sched {

class TicTacScheduler final : public CommScheduler {
 public:
  explicit TicTacScheduler(TaskKind kind,
                           Duration blocking_ack = Duration::micros(1500));

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<TransferTask> next_task(TimePoint now) override;
  void on_task_done(const TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_recovery(TimePoint) override { queue_.clear(); }
  [[nodiscard]] bool has_pending() const override { return !queue_.empty(); }
  [[nodiscard]] std::string name() const override { return "tictac"; }

 private:
  Duration blocking_ack_;
  // Whole tensors keyed by priority.
  std::map<std::size_t, Bytes> queue_;
};

}  // namespace prophet::sched
