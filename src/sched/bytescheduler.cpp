#include "sched/bytescheduler.hpp"

#include "common/check.hpp"

namespace prophet::sched {

ByteSchedulerScheduler::ByteSchedulerScheduler(TaskKind kind, ByteSchedulerConfig config)
    : CommScheduler{kind},
      config_{config},
      queue_{config.partition_bytes},
      credit_{config.credit_bytes},
      tuner_rng_{config.tuner_seed} {
  PROPHET_CHECK(config_.credit_bytes >= config_.partition_bytes);
  if (config_.autotune) {
    PROPHET_CHECK(config_.credit_max > config_.credit_min);
    tuner_ = std::make_unique<BayesOpt1D>(
        static_cast<double>(config_.credit_min.count()),
        static_cast<double>(config_.credit_max.count()));
  }
}

void ByteSchedulerScheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint) {
  queue_.add(grad, bytes);
}

std::optional<TransferTask> ByteSchedulerScheduler::next_task(TimePoint) {
  if (queue_.empty()) return std::nullopt;
  TransferTask task;
  task.kind = kind();
  task.items = queue_.pop(credit_);
  task.post_delay = config_.credit_ack_delay;
  return task;
}

void ByteSchedulerScheduler::on_task_done(const TransferTask&, TimePoint, TimePoint) {}

void ByteSchedulerScheduler::on_iteration_end(std::size_t, TimePoint now) {
  if (!config_.autotune) return;
  if (!episode_start_.has_value()) {
    episode_start_ = now;
    return;
  }
  ++episode_iters_;
  if (episode_iters_ >= config_.tune_interval_iters) finish_tuning_episode(now);
}

void ByteSchedulerScheduler::finish_tuning_episode(TimePoint now) {
  const Duration elapsed = now - *episode_start_;
  if (elapsed > Duration::zero()) {
    // Iterations per second is a monotone proxy for samples/s.
    const double rate =
        // prophet-lint: allow(R1): autotuner reward is a float throughput rate by design; never fed back into time arithmetic
        static_cast<double>(episode_iters_) / elapsed.to_seconds();
    tuner_->observe(static_cast<double>(credit_.count()), rate);
    const double next = tuner_->suggest(tuner_rng_);
    credit_ = std::max(config_.partition_bytes,
                       Bytes::of(static_cast<std::int64_t>(next)));
  }
  episode_iters_ = 0;
  episode_start_ = now;
}

}  // namespace prophet::sched
