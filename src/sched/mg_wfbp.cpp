#include "sched/mg_wfbp.hpp"

#include "common/check.hpp"

namespace prophet::sched {

MgWfbpScheduler::MgWfbpScheduler(TaskKind kind, MgWfbpConfig config)
    : CommScheduler{kind}, config_{config} {
  PROPHET_CHECK(config_.merge_bytes.count() > 0);
  PROPHET_CHECK(config_.max_delay >= Duration::zero());
}

void MgWfbpScheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint now) {
  PROPHET_CHECK(bytes.count() > 0);
  const bool inserted = buffer_.emplace(grad, Entry{bytes, now}).second;
  PROPHET_CHECK_MSG(inserted, "tensor enqueued twice");
  buffered_ += bytes;
}

std::optional<TransferTask> MgWfbpScheduler::next_task(TimePoint now) {
  if (buffer_.empty()) return std::nullopt;
  // Merge condition: enough bytes buffered, or the most urgent buffered
  // tensor has waited long enough that holding it back costs more than the
  // startup saving.
  const bool size_ready = buffered_ >= config_.merge_bytes;
  const bool age_ready = now - buffer_.begin()->second.enqueued >= config_.max_delay;
  if (!size_ready && !age_ready) return std::nullopt;

  TransferTask task;
  task.kind = kind();
  Bytes taken{};
  auto it = buffer_.begin();
  while (it != buffer_.end() && taken < config_.merge_bytes) {
    task.items.push_back(
        TransferItem{it->first, Bytes::zero(), it->second.bytes, true});
    taken += it->second.bytes;
    it = buffer_.erase(it);
  }
  buffered_ -= taken;
  return task;
}

void MgWfbpScheduler::on_task_done(const TransferTask&, TimePoint, TimePoint) {}

}  // namespace prophet::sched
