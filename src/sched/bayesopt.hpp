// One-dimensional Bayesian optimization with a Gaussian-process surrogate
// (RBF kernel, Cholesky solve) and a UCB acquisition rule.
//
// This is the credit-size auto-tuner that ByteScheduler (SOSP'19) runs at
// runtime; the paper's Fig. 3(b) attributes the 44-56 samples/s training-rate
// fluctuation of the baseline to exactly this exploration process, so the
// reproduction needs the real thing rather than a stub.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace prophet::sched {

struct BayesOptParams {
  // RBF kernel length scale, in normalized [0, 1] input space.
  double length_scale = 0.2;
  // Observation noise standard deviation, relative to observed value spread.
  double noise = 0.05;
  // UCB exploration weight: acquisition = mu + kappa * sigma.
  double kappa = 2.0;
  // Acquisition is maximized over this many grid points.
  std::size_t grid_points = 64;
  // Number of initial space-filling probes before the GP takes over.
  std::size_t initial_probes = 3;
};

class BayesOpt1D {
 public:
  BayesOpt1D(double lo, double hi, BayesOptParams params = {});

  // Next point to evaluate. Deterministic given the observation history and
  // `rng` stream (rng breaks acquisition ties and jitters initial probes).
  [[nodiscard]] double suggest(Rng& rng) const;

  // Records an evaluation: f(x) ~= y (larger is better).
  void observe(double x, double y);

  [[nodiscard]] std::size_t observation_count() const { return xs_.size(); }
  // Best observed point so far.
  [[nodiscard]] double best_x() const;
  [[nodiscard]] double best_y() const;

  // GP posterior at normalized t in [0,1]; exposed for tests.
  struct Posterior {
    double mean;
    double stddev;
  };
  [[nodiscard]] Posterior posterior(double t) const;

 private:
  [[nodiscard]] double normalize(double x) const { return (x - lo_) / (hi_ - lo_); }
  [[nodiscard]] double denormalize(double t) const { return lo_ + t * (hi_ - lo_); }

  double lo_;
  double hi_;
  BayesOptParams params_;
  std::vector<double> xs_;  // normalized inputs
  std::vector<double> ys_;  // raw observations
};

}  // namespace prophet::sched
