#include "sched/p3.hpp"

namespace prophet::sched {

P3Scheduler::P3Scheduler(TaskKind kind, Bytes partition_bytes, Duration blocking_ack)
    : CommScheduler{kind}, queue_{partition_bytes}, blocking_ack_{blocking_ack} {}

void P3Scheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint) {
  queue_.add(grad, bytes);
}

std::optional<TransferTask> P3Scheduler::next_task(TimePoint) {
  if (queue_.empty()) return std::nullopt;
  TransferTask task;
  task.kind = kind();
  // Budget of one byte still pops exactly one partition: P3's granularity.
  task.items = queue_.pop(Bytes::of(1));
  task.post_delay = blocking_ack_;
  return task;
}

void P3Scheduler::on_task_done(const TransferTask&, TimePoint, TimePoint) {}

}  // namespace prophet::sched
