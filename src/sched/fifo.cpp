#include "sched/fifo.hpp"

namespace prophet::sched {

void FifoScheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint) {
  queue_.push_back(Entry{grad, bytes});
}

std::optional<TransferTask> FifoScheduler::next_task(TimePoint) {
  if (queue_.empty()) return std::nullopt;
  const Entry entry = queue_.front();
  queue_.pop_front();
  TransferTask task;
  task.kind = kind();
  task.items.push_back(
      TransferItem{entry.grad, Bytes::zero(), entry.bytes, /*last_slice=*/true});
  task.post_delay = blocking_ack_;
  return task;
}

void FifoScheduler::on_task_done(const TransferTask&, TimePoint, TimePoint) {}

}  // namespace prophet::sched
