#include "sched/partition_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::sched {

PartitionQueue::PartitionQueue(Bytes partition_bytes)
    : partition_bytes_{partition_bytes} {
  PROPHET_CHECK(partition_bytes.count() > 0);
}

void PartitionQueue::add(std::size_t grad, Bytes bytes) {
  PROPHET_CHECK(bytes.count() > 0);
  std::int64_t offset = 0;
  while (offset < bytes.count()) {
    const std::int64_t len =
        std::min(partition_bytes_.count(), bytes.count() - offset);
    const bool last = offset + len == bytes.count();
    const bool inserted =
        partitions_.emplace(std::make_pair(grad, offset), Slice{Bytes::of(len), last})
            .second;
    PROPHET_CHECK_MSG(inserted, "tensor enqueued twice");
    queued_ += Bytes::of(len);
    offset += len;
  }
}

std::optional<Bytes> PartitionQueue::peek_bytes() const {
  if (partitions_.empty()) return std::nullopt;
  return partitions_.begin()->second.bytes;
}

std::vector<TransferItem> PartitionQueue::pop(Bytes budget) {
  std::vector<TransferItem> items;
  Bytes used{};
  while (!partitions_.empty()) {
    const auto it = partitions_.begin();
    const auto [grad, offset] = it->first;
    const Slice slice = it->second;
    if (!items.empty() && used + slice.bytes > budget) break;
    items.push_back(TransferItem{grad, Bytes::of(offset), slice.bytes, slice.last});
    used += slice.bytes;
    queued_ -= slice.bytes;
    partitions_.erase(it);
  }
  return items;
}

}  // namespace prophet::sched
