// MG-WFBP (Shi et al., INFOCOM'19): merged-gradient wait-free backward
// propagation. Consecutive gradients are merged into a single communication
// when the merge is predicted to cost less than transferring them
// separately — a *static* consolidation rule based only on sizes and a
// fixed per-message startup cost, with no knowledge of the stepwise
// generation timeline or the live bandwidth.
//
// In this engine: gradients accumulate in a priority buffer; a merge is
// emitted when the buffered bytes reach `merge_bytes` or when the most
// urgent buffered tensor has waited `max_delay`. It is the natural static
// ancestor of Prophet's predictive blocks, which is why it appears in the
// extended comparison bench.
#pragma once

#include <map>

#include "sched/scheduler.hpp"

namespace prophet::sched {

struct MgWfbpConfig {
  // Target merged-message size: startup_cost amortization point.
  Bytes merge_bytes = Bytes::mib(8);
  // Emit a partial merge once its head tensor has waited this long.
  Duration max_delay = Duration::millis(10);
};

class MgWfbpScheduler final : public CommScheduler {
 public:
  MgWfbpScheduler(TaskKind kind, MgWfbpConfig config = {});

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<TransferTask> next_task(TimePoint now) override;
  void on_task_done(const TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_recovery(TimePoint) override {
    buffer_.clear();
    buffered_ = Bytes::zero();
  }
  [[nodiscard]] bool has_pending() const override { return !buffer_.empty(); }
  [[nodiscard]] std::string name() const override { return "mg-wfbp"; }

 private:
  MgWfbpConfig config_;
  struct Entry {
    Bytes bytes;
    TimePoint enqueued;
  };
  std::map<std::size_t, Entry> buffer_;  // priority-ordered
  Bytes buffered_{};
};

}  // namespace prophet::sched
