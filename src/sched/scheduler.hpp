// The communication-scheduler interface: the seam where the paper's four
// strategies plug into the training loop.
//
// Protocol, per worker and per direction (push / pull are independent
// instances because a full-duplex NIC carries them concurrently):
//
//   1. The training engine calls enqueue() when a tensor becomes
//      transferable (gradient aggregated by the KVStore, or parameter
//      updated at the PS).
//   2. Whenever its NIC is idle the engine calls next_task(); the scheduler
//      returns the next network operation or nullopt to stay idle.
//   3. on_task_done() reports completion (BytePS's reportFinish), feeding
//      strategies that learn from observed transfer times.
//
// Constraint (8) of the paper — no concurrent gradient transfers — is the
// engine's side of the contract: it never has more than one task in flight
// per direction. Preemption granularity therefore equals task granularity,
// exactly the knob the four strategies differ on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "sched/task.hpp"

namespace prophet::sched {

class CommScheduler {
 public:
  explicit CommScheduler(TaskKind kind) : kind_{kind} {}
  virtual ~CommScheduler() = default;

  // Direction this instance serves; tasks it emits carry this kind.
  [[nodiscard]] TaskKind kind() const { return kind_; }

  // Tensor `grad` (full size `bytes`) became available for transfer.
  virtual void enqueue(std::size_t grad, Bytes bytes, TimePoint now) = 0;
  // NIC is idle; return the next operation, or nullopt if nothing to send.
  virtual std::optional<TransferTask> next_task(TimePoint now) = 0;
  // A previously returned task finished its network transfer.
  virtual void on_task_done(const TransferTask& task, TimePoint started,
                            TimePoint finished) = 0;

  // Iteration lifecycle hints (re-planning, auto-tuning epochs).
  virtual void on_iteration_start(std::size_t iteration, TimePoint now);
  virtual void on_iteration_end(std::size_t iteration, TimePoint now);

  // Crash recovery: queued work was lost with the worker's in-flight state;
  // drop it and expect the engine to re-enqueue while replaying the
  // iteration. Strategies that planned from profiled state re-plan from
  // whatever survives (Prophet); fixed-order strategies just clear.
  virtual void on_recovery(TimePoint now);
  // Per-shard PS failover: only the keys with `affected_keys[key] != 0`
  // rolled back; the rest of the fabric (and the flows it carried) never
  // stopped serving. The engine still clears and re-enqueues the replayed
  // work, so schedulers must drop queued tasks like on_recovery — but a
  // strategy that plans from a bandwidth estimate may repair its plan
  // shard-aware instead of discarding it (Prophet re-plans immediately from
  // the still-warm monitored estimate). Default: indistinguishable from a
  // full recovery.
  virtual void on_partial_recovery(const std::vector<std::uint8_t>& affected_keys,
                                   TimePoint now);
  // During a replayed iteration the engine skips tensors the PS already
  // aggregated for this round; strategies tracking per-iteration arrival
  // state (Prophet's readiness map) record the skip so planning stays
  // consistent. Most strategies ignore it.
  virtual void on_gradient_skipped(std::size_t grad, TimePoint now);

  // True if the scheduler still holds queued work.
  [[nodiscard]] virtual bool has_pending() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 private:
  TaskKind kind_;
};

inline void CommScheduler::on_iteration_start(std::size_t, TimePoint) {}
inline void CommScheduler::on_iteration_end(std::size_t, TimePoint) {}
inline void CommScheduler::on_recovery(TimePoint) {}
inline void CommScheduler::on_partial_recovery(
    const std::vector<std::uint8_t>& /*affected_keys*/, TimePoint now) {
  on_recovery(now);
}
inline void CommScheduler::on_gradient_skipped(std::size_t, TimePoint) {}

}  // namespace prophet::sched
