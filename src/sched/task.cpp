#include "sched/task.hpp"

#include <cstdio>

namespace prophet::sched {

std::string TransferTask::describe() const {
  std::string out = to_string(kind);
  out += " [";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    char buf[96];
    std::snprintf(buf, sizeof buf, "g%zu@%lld+%lld", items[i].grad,
                  static_cast<long long>(items[i].offset.count()),
                  static_cast<long long>(items[i].bytes.count()));
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace prophet::sched
