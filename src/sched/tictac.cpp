#include "sched/tictac.hpp"

#include "common/check.hpp"

namespace prophet::sched {

TicTacScheduler::TicTacScheduler(TaskKind kind, Duration blocking_ack)
    : CommScheduler{kind}, blocking_ack_{blocking_ack} {}

void TicTacScheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint) {
  PROPHET_CHECK(bytes.count() > 0);
  const bool inserted = queue_.emplace(grad, bytes).second;
  PROPHET_CHECK_MSG(inserted, "tensor enqueued twice");
}

std::optional<TransferTask> TicTacScheduler::next_task(TimePoint) {
  if (queue_.empty()) return std::nullopt;
  const auto it = queue_.begin();
  TransferTask task;
  task.kind = kind();
  task.items.push_back(
      TransferItem{it->first, Bytes::zero(), it->second, /*last_slice=*/true});
  task.post_delay = blocking_ack_;
  queue_.erase(it);
  return task;
}

void TicTacScheduler::on_task_done(const TransferTask&, TimePoint, TimePoint) {}

}  // namespace prophet::sched
