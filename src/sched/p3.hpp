// P3 (Jayarajan et al., MLSys'19): priority-based parameter propagation.
// Every tensor is sliced into fixed-size partitions; partitions transfer
// strictly most-urgent-first, one partition per network operation, each a
// blocking call acknowledged by the server before the next starts (the
// paper, Sec. 6.1: P3 "relies on the blocking call of TCP protocol"). Fine
// slicing buys fast preemption at the price of per-transfer overhead — the
// trade-off the paper's Fig. 3(a) and Table 2 probe.
#pragma once

#include "sched/partition_queue.hpp"
#include "sched/scheduler.hpp"

namespace prophet::sched {

class P3Scheduler final : public CommScheduler {
 public:
  // The paper's evaluation sets the partition size to 4 MB (Sec. 5.1).
  P3Scheduler(TaskKind kind, Bytes partition_bytes = Bytes::mib(4),
              Duration blocking_ack = Duration::micros(1500));

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<TransferTask> next_task(TimePoint now) override;
  void on_task_done(const TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_recovery(TimePoint) override { queue_.clear(); }
  [[nodiscard]] bool has_pending() const override { return !queue_.empty(); }
  [[nodiscard]] std::string name() const override { return "p3"; }
  [[nodiscard]] Bytes partition_bytes() const { return queue_.partition_bytes(); }

 private:
  PartitionQueue queue_;
  Duration blocking_ack_;
};

}  // namespace prophet::sched
