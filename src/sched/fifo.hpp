// Default MXNet behaviour (the paper's baseline): whole tensors transferred
// in generation order, no priority, no slicing. WFBP overlap still applies
// because the engine enqueues gradients as backward produces them. Each
// key's send is a blocking KVStore call: the next send waits for the
// server-side acknowledgment (`blocking_ack`), the cost the paper pins on
// the conventional frameworks (Secs. 2.2, 6.1).
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace prophet::sched {

class FifoScheduler final : public CommScheduler {
 public:
  explicit FifoScheduler(TaskKind kind,
                         Duration blocking_ack = Duration::micros(1500))
      : CommScheduler{kind}, blocking_ack_{blocking_ack} {}

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<TransferTask> next_task(TimePoint now) override;
  void on_task_done(const TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_recovery(TimePoint) override { queue_.clear(); }
  [[nodiscard]] bool has_pending() const override { return !queue_.empty(); }
  [[nodiscard]] std::string name() const override { return "fifo"; }

 private:
  struct Entry {
    std::size_t grad;
    Bytes bytes;
  };
  Duration blocking_ack_;
  std::deque<Entry> queue_;
};

}  // namespace prophet::sched
