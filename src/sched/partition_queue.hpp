// Priority-ordered queue of tensor partitions, shared by the P3 and
// ByteScheduler baselines: tensors are sliced into fixed-size partitions on
// arrival and popped most-urgent-first (smallest gradient index, then
// ascending offset within a tensor).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sched/task.hpp"

namespace prophet::sched {

class PartitionQueue {
 public:
  explicit PartitionQueue(Bytes partition_bytes);

  // Slices tensor `grad` of `bytes` into partitions and enqueues them.
  void add(std::size_t grad, Bytes bytes);

  [[nodiscard]] bool empty() const { return partitions_.empty(); }
  [[nodiscard]] std::size_t partition_count() const { return partitions_.size(); }
  [[nodiscard]] Bytes partition_bytes() const { return partition_bytes_; }
  // Total bytes currently queued.
  [[nodiscard]] Bytes queued_bytes() const { return queued_; }

  // Size of the most urgent queued partition.
  [[nodiscard]] std::optional<Bytes> peek_bytes() const;

  // Pops partitions in priority order until `budget` is exhausted. Always
  // pops at least one partition when non-empty (a budget smaller than one
  // partition still makes progress, mirroring credit semantics).
  std::vector<TransferItem> pop(Bytes budget);

  // Drops everything queued (crash recovery: the engine re-enqueues what the
  // replayed iteration still needs).
  void clear() {
    partitions_.clear();
    queued_ = Bytes::zero();
  }

 private:
  struct Slice {
    Bytes bytes;
    bool last;
  };
  Bytes partition_bytes_;
  Bytes queued_{};
  // Key (grad, offset) sorts by priority then position.
  std::map<std::pair<std::size_t, std::int64_t>, Slice> partitions_;
};

}  // namespace prophet::sched
