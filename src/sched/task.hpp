// Transfer tasks: the unit handed from a communication scheduler to the NIC.
//
// One task == one network operation (one flow in the network model). A task
// carries one or more *items* — gradient partitions or whole gradients —
// because grouping is precisely what distinguishes the strategies under
// study: FIFO sends whole tensors, P3 sends single small partitions,
// ByteScheduler sends credit-sized groups, Prophet sends gradient blocks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet::sched {

// Direction of a transfer relative to the worker.
enum class TaskKind {
  kPush,  // gradient: worker -> PS
  kPull,  // updated parameter: PS -> worker
};

inline const char* to_string(TaskKind kind) {
  return kind == TaskKind::kPush ? "push" : "pull";
}

// A contiguous slice of one gradient/parameter tensor.
struct TransferItem {
  std::size_t grad;   // gradient index == priority (0 is most urgent)
  Bytes offset;       // first byte of the slice within the tensor
  Bytes bytes;        // slice length
  bool last_slice;    // true if this completes the tensor in this direction
};

struct TransferTask {
  TaskKind kind{TaskKind::kPush};
  std::vector<TransferItem> items;
  // NIC hold-off after this task completes before the next task may start.
  // Credit-based scheduling (ByteScheduler) uses it for the application-level
  // acknowledgment that replenishes the credit window; streaming schedulers
  // leave it zero.
  Duration post_delay{};

  [[nodiscard]] Bytes total_bytes() const {
    Bytes total{};
    for (const auto& item : items) total += item.bytes;
    return total;
  }
  // Task priority == the most urgent item it carries.
  [[nodiscard]] std::size_t priority() const {
    PROPHET_CHECK(!items.empty());
    std::size_t best = items.front().grad;
    for (const auto& item : items) best = std::min(best, item.grad);
    return best;
  }
  [[nodiscard]] std::string describe() const;
};

}  // namespace prophet::sched
