#include "sched/bayesopt.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prophet::sched {

namespace {

double rbf(double a, double b, double length_scale) {
  const double d = (a - b) / length_scale;
  return std::exp(-0.5 * d * d);
}

// In-place Cholesky factorization of a symmetric positive-definite matrix
// stored row-major; returns the lower triangle.
void cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        PROPHET_CHECK_MSG(sum > 0.0, "kernel matrix not positive definite");
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
    for (std::size_t j = i + 1; j < n; ++j) a[i * n + j] = 0.0;
  }
}

// Solves L y = b in place (forward substitution).
void solve_lower(const std::vector<double>& l, std::size_t n, std::vector<double>& b) {
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * b[k];
    b[i] = sum / l[i * n + i];
  }
}

// Solves L^T y = b in place (backward substitution).
void solve_upper(const std::vector<double>& l, std::size_t n, std::vector<double>& b) {
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = n - 1 - step;
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * b[k];
    b[i] = sum / l[i * n + i];
  }
}

}  // namespace

BayesOpt1D::BayesOpt1D(double lo, double hi, BayesOptParams params)
    : lo_{lo}, hi_{hi}, params_{params} {
  PROPHET_CHECK(hi > lo);
  PROPHET_CHECK(params_.grid_points >= 2);
}

void BayesOpt1D::observe(double x, double y) {
  PROPHET_CHECK(x >= lo_ && x <= hi_);
  xs_.push_back(normalize(x));
  ys_.push_back(y);
}

double BayesOpt1D::best_x() const {
  PROPHET_CHECK(!xs_.empty());
  const auto it = std::max_element(ys_.begin(), ys_.end());
  return denormalize(xs_[static_cast<std::size_t>(it - ys_.begin())]);
}

double BayesOpt1D::best_y() const {
  PROPHET_CHECK(!ys_.empty());
  return *std::max_element(ys_.begin(), ys_.end());
}

BayesOpt1D::Posterior BayesOpt1D::posterior(double t) const {
  const std::size_t n = xs_.size();
  if (n == 0) return Posterior{0.0, 1.0};

  // Center observations so the zero-mean GP prior is reasonable.
  double y_mean = 0.0;
  for (double y : ys_) y_mean += y;
  y_mean /= static_cast<double>(n);
  double y_spread = 1e-9;
  for (double y : ys_) y_spread = std::max(y_spread, std::abs(y - y_mean));

  const double noise_var =
      (params_.noise * y_spread) * (params_.noise * y_spread) + 1e-10;

  std::vector<double> k_matrix(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      k_matrix[i * n + j] = rbf(xs_[i], xs_[j], params_.length_scale);
      if (i == j) k_matrix[i * n + j] += noise_var;
    }
  }
  cholesky(k_matrix, n);

  std::vector<double> alpha(n);
  for (std::size_t i = 0; i < n; ++i) alpha[i] = ys_[i] - y_mean;
  solve_lower(k_matrix, n, alpha);
  solve_upper(k_matrix, n, alpha);

  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = rbf(t, xs_[i], params_.length_scale);

  double mean = y_mean;
  for (std::size_t i = 0; i < n; ++i) mean += k_star[i] * alpha[i];

  std::vector<double> v = k_star;
  solve_lower(k_matrix, n, v);
  double var = rbf(t, t, params_.length_scale);
  for (std::size_t i = 0; i < n; ++i) var -= v[i] * v[i];
  var = std::max(var, 0.0);
  // Scale predictive spread back to observation units.
  return Posterior{mean, std::sqrt(var) * y_spread};
}

double BayesOpt1D::suggest(Rng& rng) const {
  if (xs_.size() < params_.initial_probes) {
    // Space-filling start: ends first, then midpoints, lightly jittered.
    static constexpr double kAnchors[] = {0.15, 0.85, 0.5, 0.3, 0.7};
    const std::size_t idx = std::min(xs_.size(), std::size_t{4});
    const double t =
        std::clamp(kAnchors[idx] + rng.uniform(-0.05, 0.05), 0.0, 1.0);
    return denormalize(t);
  }
  double best_t = 0.0;
  double best_acq = -1e300;
  for (std::size_t g = 0; g < params_.grid_points; ++g) {
    const double t =
        static_cast<double>(g) / static_cast<double>(params_.grid_points - 1);
    const Posterior p = posterior(t);
    const double acq = p.mean + params_.kappa * p.stddev +
                       1e-9 * rng.next_double();  // deterministic-ish tie break
    if (acq > best_acq) {
      best_acq = acq;
      best_t = t;
    }
  }
  return denormalize(best_t);
}

}  // namespace prophet::sched
