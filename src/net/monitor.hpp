// Network Bandwidth Monitor — the runtime component the paper's prototype
// runs every ~5 seconds to feed the current available bandwidth B of a
// worker into Algorithm 1 (Sec. 4.2, Fig. 7).
//
// Estimation: achieved goodput while the port was busy, i.e.
// (bytes since last sample) / (busy time since last sample), smoothed with an
// EWMA. With the scheduler serializing transfers (Constraint (8)), busy-time
// goodput is precisely the bandwidth a solo gradient transfer attains, which
// is what E^(i) = s^(i)/B needs. Before any traffic is observed, the port
// capacity serves as the prior.
#pragma once

#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"

namespace prophet::net {

struct BandwidthMonitorConfig {
  Duration sample_period = Duration::seconds(5);
  double ewma_alpha = 0.3;
  // Samples with less busy time than this are discarded as noise.
  Duration min_busy_time = Duration::millis(5);
};

class BandwidthMonitor {
 public:
  // Monitors `node`'s `dir` port. Starts its periodic sampling immediately.
  BandwidthMonitor(sim::Simulator& sim, FlowNetwork& network, NodeId node,
                   Direction dir, BandwidthMonitorConfig config = {});
  ~BandwidthMonitor();
  BandwidthMonitor(const BandwidthMonitor&) = delete;
  BandwidthMonitor& operator=(const BandwidthMonitor&) = delete;

  // Current best estimate of the bandwidth available to one transfer.
  [[nodiscard]] Bandwidth estimate() const;
  [[nodiscard]] bool has_measurement() const { return ewma_.has_value(); }
  [[nodiscard]] std::size_t samples_taken() const { return samples_; }

  // Takes one sample immediately (also called by the periodic timer).
  void sample_now();

  // Cancels the periodic timer (lets the simulation drain at shutdown).
  void stop() { timer_.cancel(); }

 private:
  sim::Simulator& sim_;
  FlowNetwork& network_;
  NodeId node_;
  Direction dir_;
  BandwidthMonitorConfig config_;
  Ewma ewma_;
  double last_bytes_{0.0};
  Duration last_busy_{};
  std::size_t samples_{0};
  sim::EventHandle timer_;
};

}  // namespace prophet::net
