#include "net/reliability.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace prophet::net {

void ReliabilityConfig::validate() const {
  PROPHET_CHECK_MSG(loss_rate >= 0.0 && loss_rate < 1.0,
                    "ReliabilityConfig: loss_rate must be in [0, 1)");
  PROPHET_CHECK_MSG(stall_timeout > Duration::zero(),
                    "ReliabilityConfig: stall_timeout must be > 0");
  PROPHET_CHECK_MSG(backoff_base > Duration::zero(),
                    "ReliabilityConfig: backoff_base must be > 0");
  PROPHET_CHECK_MSG(backoff_cap >= backoff_base,
                    "ReliabilityConfig: backoff_cap must be >= backoff_base");
  PROPHET_CHECK_MSG(backoff_jitter >= 0.0 && backoff_jitter <= 1.0,
                    "ReliabilityConfig: backoff_jitter must be in [0, 1]");
  PROPHET_CHECK_MSG(!enabled() || retry_budget >= 1,
                    "ReliabilityConfig: retry budget of zero with loss enabled "
                    "would hang on the first drop; set retry_budget >= 1");
}

ReliableChannel::ReliableChannel(sim::Simulator& sim, FlowNetwork& net,
                                 ReliabilityConfig config, Rng rng)
    : sim_{sim}, net_{net}, config_{config}, rng_{rng} {
  config_.validate();
}

void ReliableChannel::set_loss_rate(double rate) {
  PROPHET_CHECK_MSG(rate >= 0.0 && rate < 1.0,
                    "ReliableChannel: loss rate must be in [0, 1)");
  config_.loss_rate = rate;
  if (config_.enabled()) config_.validate();
}

void ReliableChannel::send(NodeId src, NodeId dst, Bytes size,
                           CompleteFn on_complete) {
  PROPHET_CHECK(on_complete != nullptr);
  const std::uint64_t id = next_id_++;
  Pending& p = sends_[id];
  p.src = src;
  p.dst = dst;
  p.total = size;
  p.attempt_bytes = size;
  p.on_complete = std::move(on_complete);
  launch(id);
}

void ReliableChannel::launch(std::uint64_t id) {
  Pending& p = sends_.at(id);
  ++p.attempts;
  p.flow = net_.start_flow(p.src, p.dst, p.attempt_bytes,
                           [this, id](FlowId) { on_attempt_complete(id); });
  p.flow_live = true;
  if (!config_.enabled()) return;

  // Doomed attempts are decided up front (one bernoulli per attempt) and the
  // drop lands at a uniform point inside the attempt's ideal serialization
  // window (bytes over the bottleneck line rate). That window lower-bounds
  // the real completion time — congestion only stretches it — so a doomed
  // attempt fails before it can finish no matter how small the transfer is.
  if (rng_.bernoulli(config_.loss_rate)) {
    const Bandwidth line = std::min(net_.capacity(p.src, Direction::kTx),
                                    net_.capacity(p.dst, Direction::kRx));
    // A zero-capacity endpoint means the flow is parked; the watchdog owns
    // that case, so the (moot) drop just uses the stall window.
    const Duration ideal =
        line.is_zero() ? config_.stall_timeout : line.time_to_send(p.attempt_bytes);
    const Duration drop_after =
        std::max(ideal * rng_.next_double(), Duration::nanos(1));
    p.loss_event = sim_.schedule_after(
        drop_after, [this, id] { fail_attempt(id, ChannelFault::Kind::kLoss); });
  }
  p.watchdog_remaining = static_cast<double>(p.attempt_bytes.count());
  p.watchdog =
      sim_.schedule_after(config_.stall_timeout, [this, id] { on_watchdog(id); });
}

void ReliableChannel::on_watchdog(std::uint64_t id) {
  Pending& p = sends_.at(id);
  const double remaining = net_.flow_remaining_bytes(p.flow);
  if (remaining < p.watchdog_remaining) {
    // Bytes moved since the last check: still alive, re-arm.
    p.watchdog_remaining = remaining;
    p.watchdog =
        sim_.schedule_after(config_.stall_timeout, [this, id] { on_watchdog(id); });
    return;
  }
  fail_attempt(id, ChannelFault::Kind::kTimeout);
}

void ReliableChannel::cancel_timers(Pending& p) {
  p.loss_event.cancel();
  p.watchdog.cancel();
  p.retry_event.cancel();
}

Duration ReliableChannel::backoff_for(std::size_t failed_attempts) {
  Duration backoff = config_.backoff_base;
  for (std::size_t i = 1; i < failed_attempts && backoff < config_.backoff_cap;
       ++i) {
    backoff = backoff * std::int64_t{2};
  }
  backoff = std::min(backoff, config_.backoff_cap);
  if (config_.backoff_jitter > 0.0) {
    backoff = backoff * (1.0 - config_.backoff_jitter * rng_.next_double());
  }
  return std::max(backoff, Duration::nanos(1));
}

void ReliableChannel::fail_attempt(std::uint64_t id, ChannelFault::Kind kind) {
  Pending& p = sends_.at(id);
  cancel_timers(p);
  Bytes remaining = p.attempt_bytes;
  if (p.flow_live) {
    remaining = net_.cancel_flow(p.flow);
    p.flow_live = false;
  }
  const Bytes drained = p.attempt_bytes - remaining;
  PROPHET_CHECK_MSG(
      p.attempts <= config_.retry_budget,
      "reliable transfer exhausted its retry budget; raise "
      "ReliabilityConfig::retry_budget or lower loss_rate");
  if (config_.resume_partial) {
    // Byte-range resume: keep what drained, send only the tail.
    p.delivered += drained;
    p.attempt_bytes = p.total - p.delivered;
  } else {
    // Message-level restart: drained bytes of the failed attempt are wasted
    // and go over the wire again.
    p.retransmitted += drained;
    p.attempt_bytes = p.total;
  }
  const Duration backoff = backoff_for(p.attempts);
  if (on_fault_) {
    ChannelFault fault;
    fault.kind = kind;
    fault.attempt = p.attempts;
    fault.backoff = backoff;
    fault.remaining = p.total - p.delivered;
    on_fault_(fault);
  }
  p.retry_event = sim_.schedule_after(backoff, [this, id] { launch(id); });
}

void ReliableChannel::on_attempt_complete(std::uint64_t id) {
  Pending& p = sends_.at(id);
  p.flow_live = false;
  cancel_timers(p);
  SendOutcome outcome;
  outcome.attempts = p.attempts;
  outcome.retransmitted = p.retransmitted;
  CompleteFn done = std::move(p.on_complete);
  sends_.erase(id);
  done(outcome);
}

void ReliableChannel::abort_all() {
  for (auto& [id, p] : sends_) {
    cancel_timers(p);
    if (p.flow_live) {
      net_.cancel_flow(p.flow);
      p.flow_live = false;
    }
  }
  sends_.clear();
}

}  // namespace prophet::net
