// TopologySpec: the network-fabric half of a cluster configuration.
//
// The original model wired every NIC straight into an implicit
// full-bisection fabric (a star): contention only ever happened at node
// ports. TopologySpec makes the fabric explicit and value-typed:
//
//   * TopologySpec::star(...)        — today's semantics, bit for bit: each
//     node is its own bottleneck, the fabric is non-blocking.
//   * TopologySpec::leaf_spine(...)  — racks of hosts behind shared uplinks
//     with a configurable oversubscription ratio; cross-rack flows traverse
//     the source rack's uplink and the destination rack's downlink, so
//     co-located jobs contend on exactly the links a real leaf-spine fabric
//     would congest.
//
// BuiltTopology materializes a spec onto one FlowNetwork (racks first, then
// hosts) and is shared by every job placed on the fabric; placement itself —
// which rack a host lands in — is the cluster scheduler's decision, passed
// into add_host.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "net/flow_network.hpp"

namespace prophet::net {

struct TopologySpec {
  enum class Kind {
    kStar,       // implicit full-bisection fabric (the original model)
    kLeafSpine,  // racks behind shared, possibly oversubscribed uplinks
  };

  Kind kind = Kind::kStar;

  // --- star parameters (ignored for leaf-spine) ---------------------------
  // Uniform worker NIC rate; `worker_bandwidth_override` entries (indexed by
  // worker) replace it for heterogeneous clusters (Sec. 5.3).
  Bandwidth worker_bandwidth = Bandwidth::gbps(10);
  Bandwidth ps_bandwidth = Bandwidth::gbps(10);
  std::vector<Bandwidth> worker_bandwidth_override;

  // --- leaf-spine parameters (ignored for star) ---------------------------
  std::size_t racks = 2;
  std::size_t hosts_per_rack = 4;
  // Uniform host NIC rate (a leaf-spine fabric has interchangeable hosts;
  // heterogeneous NICs belong to the star model).
  Bandwidth host_bandwidth = Bandwidth::gbps(10);
  // Rack uplink capacity = hosts_per_rack * host_bandwidth / oversubscription
  // in each direction; 1.0 is a non-blocking fabric, 4.0 the classic
  // oversubscribed datacenter leaf.
  double oversubscription = 4.0;

  // --- presets ------------------------------------------------------------
  static TopologySpec star(Bandwidth worker_bw, Bandwidth ps_bw,
                           std::vector<Bandwidth> worker_override = {});
  static TopologySpec leaf_spine(std::size_t racks, std::size_t hosts_per_rack,
                                 Bandwidth host_bw, double oversubscription);

  [[nodiscard]] Bandwidth uplink_bandwidth() const;
  // Host slots the fabric offers (SIZE_MAX for star: one port per node,
  // unbounded).
  [[nodiscard]] std::size_t host_capacity() const;
  [[nodiscard]] const char* kind_name() const;

  // Aborts with a clear message on a malformed spec (zero racks/hosts,
  // non-positive rates or oversubscription, a zero override entry).
  void validate() const;

  // Parses "star" | "leaf-spine[:RACKS[:HOSTS_PER_RACK]]" (CLI spelling);
  // nullopt with *error set for anything else.
  static std::optional<TopologySpec> from_cli(const std::string& spec,
                                              std::string* error = nullptr);
};

// A spec materialized on a FlowNetwork: owns the rack ids and the host
// placement cursor. Hosts are added by the caller in a deterministic order
// (jobs in submission order, PS before workers within a job).
class BuiltTopology {
 public:
  BuiltTopology(FlowNetwork& network, TopologySpec spec);

  // Adds one host. Star: `bandwidth` is the NIC rate (callers differentiate
  // PS vs worker rates). Leaf-spine: the NIC rate is spec.host_bandwidth and
  // the host lands in `rack` — or, when unset, the next rack with a free
  // slot in rack-major order; aborts when the fabric is full.
  NodeId add_host(std::string name, Bandwidth bandwidth,
                  std::optional<std::size_t> rack = {});

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<RackId>& racks() const { return racks_; }
  [[nodiscard]] std::size_t hosts_added() const { return hosts_added_; }
  // Total bytes that crossed any rack uplink/downlink so far (spine
  // traffic); zero on a star.
  [[nodiscard]] std::int64_t spine_bytes() const;

 private:
  FlowNetwork& network_;
  TopologySpec spec_;
  std::vector<RackId> racks_;
  std::vector<std::size_t> rack_fill_;
  std::size_t hosts_added_ = 0;
};

// Resolves a dynamics link-target name against a built network into concrete
// links: an exact link name ("rack0.up"), a rack name or "<rack>.uplink"
// (both directions), or a node name (both access links — the back-compat
// mapping for plans that used to address NICs). Empty when unknown.
std::vector<LinkId> resolve_link_target(const FlowNetwork& network,
                                        std::string_view name);

}  // namespace prophet::net
