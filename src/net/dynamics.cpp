#include "net/dynamics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace prophet::net {

namespace {

// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in{s};
  while (std::getline(in, field, sep)) out.push_back(field);
  if (!s.empty() && s.back() == sep) out.emplace_back();
  return out;
}

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_index(const std::string& s, std::size_t* out) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size() || v < 0) return false;
    *out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

const char* DynamicsEvent::type_name(Type t) {
  switch (t) {
    case Type::kBandwidthScale: return "bandwidth_scale";
    case Type::kBandwidthSet: return "bandwidth_set";
    case Type::kOutageStart: return "outage_start";
    case Type::kOutageEnd: return "outage_end";
    case Type::kComputeScale: return "compute_scale";
    case Type::kPsComputeScale: return "ps_compute_scale";
    case Type::kWorkerCrash: return "worker_crash";
    case Type::kWorkerRecover: return "worker_recover";
    case Type::kPsCrash: return "ps_crash";
    case Type::kPsRecover: return "ps_recover";
    case Type::kLossRate: return "loss_rate";
  }
  return "?";
}

namespace {

DynamicsEvent event_at(Duration at, DynamicsEvent::Type type) {
  DynamicsEvent ev;
  ev.at = at;
  ev.type = type;
  return ev;
}

}  // namespace

DynamicsPlan& DynamicsPlan::bandwidth_scale(Duration at,
                                            std::optional<std::size_t> worker,
                                            double factor) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kBandwidthScale);
  ev.worker = worker;
  ev.factor = factor;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::bandwidth_set(Duration at,
                                          std::optional<std::size_t> worker,
                                          Bandwidth bw) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kBandwidthSet);
  ev.worker = worker;
  ev.bandwidth = bw;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_bandwidth_scale(Duration at, double factor) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kBandwidthScale);
  ev.target_ps = true;
  ev.factor = factor;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::link_bandwidth_scale(Duration at, std::string link,
                                                 double factor) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kBandwidthScale);
  ev.link = std::move(link);
  ev.factor = factor;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::link_bandwidth_set(Duration at, std::string link,
                                               Bandwidth bw) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kBandwidthSet);
  ev.link = std::move(link);
  ev.bandwidth = bw;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::link_outage(Duration at, Duration duration,
                                        std::string link) {
  PROPHET_CHECK_MSG(duration > Duration::zero(), "outage duration must be positive");
  DynamicsEvent start = event_at(at, DynamicsEvent::Type::kOutageStart);
  start.link = link;
  events.push_back(start);
  DynamicsEvent end = event_at(at + duration, DynamicsEvent::Type::kOutageEnd);
  end.link = std::move(link);
  events.push_back(end);
  return *this;
}

DynamicsPlan& DynamicsPlan::outage(Duration at, Duration duration,
                                   std::optional<std::size_t> worker) {
  PROPHET_CHECK_MSG(duration > Duration::zero(), "outage duration must be positive");
  DynamicsEvent start = event_at(at, DynamicsEvent::Type::kOutageStart);
  start.worker = worker;
  events.push_back(start);
  DynamicsEvent end = event_at(at + duration, DynamicsEvent::Type::kOutageEnd);
  end.worker = worker;
  events.push_back(end);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_outage(Duration at, Duration duration) {
  PROPHET_CHECK_MSG(duration > Duration::zero(), "outage duration must be positive");
  DynamicsEvent start = event_at(at, DynamicsEvent::Type::kOutageStart);
  start.target_ps = true;
  events.push_back(start);
  DynamicsEvent end = event_at(at + duration, DynamicsEvent::Type::kOutageEnd);
  end.target_ps = true;
  events.push_back(end);
  return *this;
}

DynamicsPlan& DynamicsPlan::straggler(Duration at, std::size_t worker, double factor) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kComputeScale);
  ev.worker = worker;
  ev.factor = factor;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_degrade(Duration at, double factor) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kPsComputeScale);
  ev.factor = factor;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::worker_crash(Duration at, Duration downtime,
                                         std::size_t worker) {
  PROPHET_CHECK_MSG(downtime > Duration::zero(),
                    "worker crash downtime must be positive");
  DynamicsEvent crash = event_at(at, DynamicsEvent::Type::kWorkerCrash);
  crash.worker = worker;
  events.push_back(crash);
  DynamicsEvent recover =
      event_at(at + downtime, DynamicsEvent::Type::kWorkerRecover);
  recover.worker = worker;
  events.push_back(recover);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_crash(Duration at, Duration failover) {
  PROPHET_CHECK_MSG(failover > Duration::zero(),
                    "ps crash failover delay must be positive");
  DynamicsEvent crash = event_at(at, DynamicsEvent::Type::kPsCrash);
  crash.target_ps = true;
  events.push_back(crash);
  DynamicsEvent recover = event_at(at + failover, DynamicsEvent::Type::kPsRecover);
  recover.target_ps = true;
  events.push_back(recover);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_shard_crash(Duration at, Duration failover,
                                           std::size_t shard) {
  PROPHET_CHECK_MSG(failover > Duration::zero(),
                    "ps shard crash failover delay must be positive");
  DynamicsEvent crash = event_at(at, DynamicsEvent::Type::kPsCrash);
  crash.target_ps = true;
  crash.ps_shard = shard;
  events.push_back(crash);
  DynamicsEvent recover = event_at(at + failover, DynamicsEvent::Type::kPsRecover);
  recover.target_ps = true;
  recover.ps_shard = shard;
  events.push_back(recover);
  return *this;
}

DynamicsPlan& DynamicsPlan::ps_shard_degrade(Duration at, double factor,
                                             std::size_t shard) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kPsComputeScale);
  ev.factor = factor;
  ev.ps_shard = shard;
  events.push_back(ev);
  return *this;
}

DynamicsPlan& DynamicsPlan::loss_rate(Duration at, double rate) {
  DynamicsEvent ev = event_at(at, DynamicsEvent::Type::kLossRate);
  ev.factor = rate;
  events.push_back(ev);
  return *this;
}

DynamicsPlan DynamicsPlan::fluctuation(std::uint64_t seed, double amplitude,
                                       Duration period, Duration horizon,
                                       std::size_t num_workers) {
  PROPHET_CHECK_MSG(amplitude >= 0.0 && amplitude < 1.0,
                    "fluctuation amplitude must be in [0, 1)");
  PROPHET_CHECK_MSG(period > Duration::zero(), "fluctuation period must be positive");
  DynamicsPlan plan;
  if (amplitude == 0.0) return plan;
  Rng rng{seed};
  for (Duration t = period; t <= horizon; t += period) {
    for (std::size_t w = 0; w < num_workers; ++w) {
      // Congestion dips: the configured rate is the NIC line rate, an upper
      // bound — cross-traffic can only take bandwidth away, never add it.
      const double factor = 1.0 - amplitude * rng.next_double();
      plan.bandwidth_scale(t, w, std::max(factor, 0.05));
    }
  }
  return plan;
}

std::optional<DynamicsPlan> DynamicsPlan::from_trace_csv(const std::string& path,
                                                         std::string* error) {
  std::ifstream in{path};
  if (!in.good()) {
    set_error(error, "cannot open dynamics trace '" + path + "'");
    return std::nullopt;
  }
  DynamicsPlan plan;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line.rfind("time_s", 0) == 0) continue;
    const auto fields = split(line, ',');
    const std::string where = path + ":" + std::to_string(lineno);
    if (fields.size() != 4) {
      set_error(error, where + ": want 4 fields `time_s,event,target,value`");
      return std::nullopt;
    }
    double time_s = 0.0;
    if (!parse_double(fields[0], &time_s) || time_s < 0.0) {
      set_error(error, where + ": bad time '" + fields[0] + "'");
      return std::nullopt;
    }
    DynamicsEvent ev;
    ev.at = Duration::from_seconds(time_s);
    if (fields[2] == "ps") {
      ev.target_ps = true;
    } else if (fields[2].rfind("shard:", 0) == 0) {
      std::size_t shard = 0;
      if (!parse_index(fields[2].substr(6), &shard)) {
        set_error(error, where + ": bad PS shard in target '" + fields[2] + "'");
        return std::nullopt;
      }
      ev.target_ps = true;
      ev.ps_shard = shard;
    } else if (fields[2].rfind("link:", 0) == 0) {
      ev.link = fields[2].substr(5);
      if (ev.link.empty()) {
        set_error(error, where + ": empty link name in target '" + fields[2] + "'");
        return std::nullopt;
      }
    } else if (fields[2] != "*") {
      std::size_t w = 0;
      if (!parse_index(fields[2], &w)) {
        set_error(error,
                  where + ": bad target '" + fields[2] + "' (index|*|ps|shard:K)");
        return std::nullopt;
      }
      ev.worker = w;
    }
    double value = 0.0;
    const bool has_value = parse_double(fields[3], &value);
    const std::string& kind = fields[1];
    if (kind == "bandwidth_scale") {
      ev.type = DynamicsEvent::Type::kBandwidthScale;
      ev.factor = value;
    } else if (kind == "bandwidth_gbps") {
      ev.type = DynamicsEvent::Type::kBandwidthSet;
      ev.bandwidth = Bandwidth::gbps(value);
    } else if (kind == "outage_start") {
      ev.type = DynamicsEvent::Type::kOutageStart;
    } else if (kind == "outage_end") {
      ev.type = DynamicsEvent::Type::kOutageEnd;
    } else if (kind == "compute_scale") {
      ev.type = DynamicsEvent::Type::kComputeScale;
    } else if (kind == "ps_compute_scale") {
      ev.type = DynamicsEvent::Type::kPsComputeScale;
    } else if (kind == "worker_crash") {
      ev.type = DynamicsEvent::Type::kWorkerCrash;
    } else if (kind == "worker_recover") {
      ev.type = DynamicsEvent::Type::kWorkerRecover;
    } else if (kind == "ps_crash") {
      ev.type = DynamicsEvent::Type::kPsCrash;
    } else if (kind == "ps_recover") {
      ev.type = DynamicsEvent::Type::kPsRecover;
    } else if (kind == "loss_rate") {
      ev.type = DynamicsEvent::Type::kLossRate;
    } else {
      set_error(error, where + ": unknown event '" + kind + "'");
      return std::nullopt;
    }
    if (kind == "compute_scale" || kind == "ps_compute_scale" ||
        kind == "loss_rate") {
      ev.factor = value;
    }
    const bool needs_value = kind != "outage_start" && kind != "outage_end" &&
                             kind != "worker_crash" && kind != "worker_recover" &&
                             kind != "ps_crash" && kind != "ps_recover";
    if (needs_value && !has_value) {
      set_error(error, where + ": bad value '" + fields[3] + "'");
      return std::nullopt;
    }
    plan.events.push_back(ev);
  }
  plan.sort();
  return plan;
}

std::optional<DynamicsPlan> DynamicsPlan::from_spec(const std::string& spec,
                                                    std::uint64_t seed,
                                                    Duration horizon,
                                                    std::size_t num_workers,
                                                    std::string* error) {
  if (spec.empty() || spec == "none") return DynamicsPlan{};
  const auto fields = split(spec, ':');
  if (fields[0] == "fluctuate") {
    double amplitude = 0.0;
    double period_s = 2.0;
    if (fields.size() < 2 || fields.size() > 3 ||
        !parse_double(fields[1], &amplitude) ||
        (fields.size() == 3 && !parse_double(fields[2], &period_s))) {
      set_error(error, "--dynamics fluctuate wants fluctuate:AMP[:PERIOD_S]");
      return std::nullopt;
    }
    if (amplitude < 0.0 || amplitude >= 1.0 || period_s <= 0.0) {
      set_error(error, "--dynamics fluctuate: AMP in [0,1), PERIOD_S > 0");
      return std::nullopt;
    }
    return fluctuation(seed, amplitude, Duration::from_seconds(period_s), horizon,
                       num_workers);
  }
  if (fields[0] == "step") {
    double at_s = 0.0;
    double factor = 0.0;
    std::size_t worker = 0;
    const bool has_worker = fields.size() == 4;
    if (fields.size() < 3 || fields.size() > 4 || !parse_double(fields[1], &at_s) ||
        !parse_double(fields[2], &factor) ||
        (has_worker && !parse_index(fields[3], &worker))) {
      set_error(error, "--dynamics step wants step:T_S:FACTOR[:WORKER]");
      return std::nullopt;
    }
    DynamicsPlan plan;
    plan.bandwidth_scale(Duration::from_seconds(at_s),
                         has_worker ? std::optional<std::size_t>{worker}
                                    : std::nullopt,
                         factor);
    return plan;
  }
  if (fields[0] == "trace") {
    if (fields.size() != 2) {
      set_error(error, "--dynamics trace wants trace:PATH");
      return std::nullopt;
    }
    return from_trace_csv(fields[1], error);
  }
  set_error(error, "unknown --dynamics spec '" + spec +
                       "' (none|fluctuate:...|step:...|trace:PATH)");
  return std::nullopt;
}

bool DynamicsPlan::add_outage_spec(const std::string& spec, std::string* error) {
  const auto fields = split(spec, ':');
  double at_s = 0.0;
  double dur_s = 0.0;
  std::size_t worker = 0;
  const bool has_worker = fields.size() == 3;
  if (fields.size() < 2 || fields.size() > 3 || !parse_double(fields[0], &at_s) ||
      !parse_double(fields[1], &dur_s) ||
      (has_worker && !parse_index(fields[2], &worker)) || dur_s <= 0.0) {
    set_error(error, "--outage wants T_S:DUR_S[:WORKER]");
    return false;
  }
  outage(Duration::from_seconds(at_s), Duration::from_seconds(dur_s),
         has_worker ? std::optional<std::size_t>{worker} : std::nullopt);
  return true;
}

bool DynamicsPlan::add_straggler_spec(const std::string& spec, std::string* error) {
  const auto fields = split(spec, ':');
  std::size_t worker = 0;
  double factor = 0.0;
  double at_s = 0.0;
  if (fields.size() < 2 || fields.size() > 3 || !parse_index(fields[0], &worker) ||
      !parse_double(fields[1], &factor) ||
      (fields.size() == 3 && !parse_double(fields[2], &at_s))) {
    set_error(error, "--straggler wants WORKER:FACTOR[:T_S]");
    return false;
  }
  straggler(Duration::from_seconds(at_s), worker, factor);
  return true;
}

bool DynamicsPlan::add_ps_degrade_spec(const std::string& spec, std::string* error) {
  const auto fields = split(spec, ':');
  double factor = 0.0;
  double at_s = 0.0;
  if (fields.empty() || fields.size() > 2 || !parse_double(fields[0], &factor) ||
      (fields.size() == 2 && !parse_double(fields[1], &at_s))) {
    set_error(error, "--ps-degrade wants FACTOR[:T_S]");
    return false;
  }
  ps_degrade(Duration::from_seconds(at_s), factor);
  return true;
}

bool DynamicsPlan::add_worker_crash_spec(const std::string& spec,
                                         std::string* error) {
  const auto fields = split(spec, ':');
  double at_s = 0.0;
  double dur_s = 0.0;
  std::size_t worker = 0;
  if (fields.size() != 3 || !parse_double(fields[0], &at_s) ||
      !parse_double(fields[1], &dur_s) || !parse_index(fields[2], &worker) ||
      at_s < 0.0 || dur_s <= 0.0) {
    set_error(error, "--worker-crash wants T_S:DUR_S:WORKER");
    return false;
  }
  worker_crash(Duration::from_seconds(at_s), Duration::from_seconds(dur_s), worker);
  return true;
}

bool DynamicsPlan::add_ps_crash_spec(const std::string& spec, std::string* error) {
  const auto fields = split(spec, ':');
  double at_s = 0.0;
  double dur_s = 0.0;
  std::size_t shard = 0;
  const bool has_shard = fields.size() == 4;
  if ((fields.size() != 2 && fields.size() != 4) ||
      !parse_double(fields[0], &at_s) || !parse_double(fields[1], &dur_s) ||
      (has_shard && (fields[2] != "shard" || !parse_index(fields[3], &shard))) ||
      at_s < 0.0 || dur_s <= 0.0) {
    set_error(error, "--ps-crash wants T_S:DUR_S[:shard:K]");
    return false;
  }
  if (has_shard) {
    ps_shard_crash(Duration::from_seconds(at_s), Duration::from_seconds(dur_s),
                   shard);
  } else {
    ps_crash(Duration::from_seconds(at_s), Duration::from_seconds(dur_s));
  }
  return true;
}

bool DynamicsPlan::add_loss_spec(const std::string& spec, std::string* error) {
  const auto fields = split(spec, ':');
  double rate = 0.0;
  double at_s = 0.0;
  if (fields.empty() || fields.size() > 2 || !parse_double(fields[0], &rate) ||
      (fields.size() == 2 && !parse_double(fields[1], &at_s)) || rate < 0.0 ||
      rate >= 1.0 || at_s < 0.0) {
    set_error(error, "--loss wants RATE[:T_S] with RATE in [0, 1)");
    return false;
  }
  loss_rate(Duration::from_seconds(at_s), rate);
  return true;
}

void DynamicsPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const DynamicsEvent& a, const DynamicsEvent& b) {
                     return a.at < b.at;
                   });
}

void DynamicsPlan::validate(std::size_t num_workers, std::size_t ps_shards) const {
  using Type = DynamicsEvent::Type;
  // Outage bookkeeping per exact target (worker index, all-workers, or PS).
  std::map<std::string, bool> link_down;
  // Crash bookkeeping per node ("ps", "ps:K" for one PS shard, or a worker
  // index).
  std::map<std::string, bool> node_down;
  std::size_t ps_shards_down = 0;
  Duration prev = Duration::zero();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const DynamicsEvent& ev = events[i];
    PROPHET_CHECK_MSG(ev.at >= Duration::zero(),
                      "dynamics event time must be non-negative");
    PROPHET_CHECK_MSG(ev.at >= prev,
                      "dynamics events must be time-sorted (call DynamicsPlan::sort())");
    prev = ev.at;
    if (!ev.target_ps && ev.worker.has_value()) {
      PROPHET_CHECK_MSG(*ev.worker < num_workers,
                        "dynamics event targets a worker index >= num_workers");
    }
    if (ev.ps_shard.has_value()) {
      PROPHET_CHECK_MSG(ev.target_ps || ev.type == Type::kPsComputeScale,
                        "dynamics ps_shard set on an event that does not "
                        "target the PS tier");
      PROPHET_CHECK_MSG(*ev.ps_shard < ps_shards,
                        "dynamics event targets a PS shard index >= ps_shards");
    }
    if (ev.targets_link()) {
      using T = DynamicsEvent::Type;
      PROPHET_CHECK_MSG(ev.type == T::kBandwidthScale || ev.type == T::kBandwidthSet ||
                            ev.type == T::kOutageStart || ev.type == T::kOutageEnd,
                        "dynamics link targets apply only to bandwidth and "
                        "outage events");
    }
    switch (ev.type) {
      case Type::kBandwidthScale:
      case Type::kComputeScale:
      case Type::kPsComputeScale:
        PROPHET_CHECK_MSG(ev.factor > 0.0,
                          "dynamics scale factor must be positive");
        break;
      case Type::kBandwidthSet:
        PROPHET_CHECK_MSG(!ev.bandwidth.is_zero(),
                          "dynamics bandwidth_set needs a positive bandwidth");
        break;
      case Type::kOutageStart:
      case Type::kOutageEnd: {
        const std::string key =
            ev.targets_link()
                ? "link:" + ev.link
                : (ev.target_ps
                       ? "ps"
                       : (ev.worker.has_value() ? std::to_string(*ev.worker) : "*"));
        bool& down = link_down[key];
        if (ev.type == Type::kOutageStart) {
          PROPHET_CHECK_MSG(!down, "dynamics outage_start while the link is already down");
          down = true;
        } else {
          PROPHET_CHECK_MSG(down, "dynamics outage_end without a matching outage_start");
          down = false;
        }
        break;
      }
      case Type::kWorkerCrash:
      case Type::kWorkerRecover: {
        PROPHET_CHECK_MSG(!ev.target_ps && ev.worker.has_value(),
                          "dynamics worker_crash/worker_recover needs a concrete "
                          "worker index (crashing every worker at once is not a "
                          "recoverable BSP state)");
        bool& down = node_down[std::to_string(*ev.worker)];
        if (ev.type == Type::kWorkerCrash) {
          PROPHET_CHECK_MSG(!down,
                            "dynamics worker_crash while the worker is already down");
          down = true;
        } else {
          PROPHET_CHECK_MSG(down,
                            "dynamics worker_recover without a matching worker_crash");
          down = false;
        }
        break;
      }
      case Type::kPsCrash:
      case Type::kPsRecover: {
        const std::string key =
            ev.ps_shard.has_value() ? "ps:" + std::to_string(*ev.ps_shard) : "ps";
        bool& down = node_down[key];
        if (ev.type == Type::kPsCrash) {
          PROPHET_CHECK_MSG(!down, "dynamics ps_crash while the PS is already down");
          // A whole-tier crash during a shard failover (or vice versa) has no
          // well-defined rollback arithmetic: the mid-failover shard would be
          // rolled back twice from inconsistent snapshots.
          PROPHET_CHECK_MSG(!node_down["ps"],
                            "dynamics ps_crash on a shard while the whole PS "
                            "tier is already down");
          PROPHET_CHECK_MSG(ev.ps_shard.has_value() || ps_shards_down == 0,
                            "dynamics whole-PS ps_crash while a PS shard is "
                            "already mid-failover");
          down = true;
          if (ev.ps_shard.has_value()) ++ps_shards_down;
        } else {
          PROPHET_CHECK_MSG(down, "dynamics ps_recover without a matching ps_crash");
          down = false;
          if (ev.ps_shard.has_value()) --ps_shards_down;
        }
        break;
      }
      case Type::kLossRate:
        PROPHET_CHECK_MSG(ev.factor >= 0.0 && ev.factor < 1.0,
                          "dynamics loss_rate must be in [0, 1)");
        break;
    }
  }
  for (const auto& [key, down] : link_down) {
    PROPHET_CHECK_MSG(!down, "dynamics outage_start without a matching outage_end");
  }
  for (const auto& [key, down] : node_down) {
    PROPHET_CHECK_MSG(!down, "dynamics crash without a matching recover");
  }
}

bool DynamicsPlan::has_ps_crash() const {
  return std::any_of(events.begin(), events.end(), [](const DynamicsEvent& ev) {
    return ev.type == DynamicsEvent::Type::kPsCrash;
  });
}

bool DynamicsPlan::has_worker_crash() const {
  return std::any_of(events.begin(), events.end(), [](const DynamicsEvent& ev) {
    return ev.type == DynamicsEvent::Type::kWorkerCrash;
  });
}

bool DynamicsPlan::has_loss() const {
  return std::any_of(events.begin(), events.end(), [](const DynamicsEvent& ev) {
    return ev.type == DynamicsEvent::Type::kLossRate && ev.factor > 0.0;
  });
}

}  // namespace prophet::net
