#include "net/topology.hpp"

#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace prophet::net {

TopologySpec TopologySpec::star(Bandwidth worker_bw, Bandwidth ps_bw,
                                std::vector<Bandwidth> worker_override) {
  TopologySpec s;
  s.kind = Kind::kStar;
  s.worker_bandwidth = worker_bw;
  s.ps_bandwidth = ps_bw;
  s.worker_bandwidth_override = std::move(worker_override);
  return s;
}

TopologySpec TopologySpec::leaf_spine(std::size_t racks,
                                      std::size_t hosts_per_rack,
                                      Bandwidth host_bw,
                                      double oversubscription) {
  TopologySpec s;
  s.kind = Kind::kLeafSpine;
  s.racks = racks;
  s.hosts_per_rack = hosts_per_rack;
  s.host_bandwidth = host_bw;
  s.oversubscription = oversubscription;
  return s;
}

Bandwidth TopologySpec::uplink_bandwidth() const {
  if (kind == Kind::kStar) return Bandwidth::zero();
  return host_bandwidth * (static_cast<double>(hosts_per_rack) / oversubscription);
}

std::size_t TopologySpec::host_capacity() const {
  if (kind == Kind::kStar) return std::numeric_limits<std::size_t>::max();
  return racks * hosts_per_rack;
}

const char* TopologySpec::kind_name() const {
  switch (kind) {
    case Kind::kStar: return "star";
    case Kind::kLeafSpine: return "leaf-spine";
  }
  return "?";
}

void TopologySpec::validate() const {
  switch (kind) {
    case Kind::kStar:
      PROPHET_CHECK_MSG(!worker_bandwidth.is_zero(),
                        "star topology needs positive worker bandwidth");
      PROPHET_CHECK_MSG(!ps_bandwidth.is_zero(),
                        "star topology needs positive PS bandwidth");
      for (const Bandwidth& bw : worker_bandwidth_override) {
        PROPHET_CHECK_MSG(!bw.is_zero(),
                          "worker bandwidth override entries must be positive");
      }
      break;
    case Kind::kLeafSpine:
      PROPHET_CHECK_MSG(racks > 0, "leaf-spine topology needs at least one rack");
      PROPHET_CHECK_MSG(hosts_per_rack > 0,
                        "leaf-spine topology needs at least one host per rack");
      PROPHET_CHECK_MSG(!host_bandwidth.is_zero(),
                        "leaf-spine topology needs positive host bandwidth");
      PROPHET_CHECK_MSG(oversubscription > 0.0,
                        "leaf-spine oversubscription ratio must be positive");
      break;
  }
}

std::optional<TopologySpec> TopologySpec::from_cli(const std::string& spec,
                                                   std::string* error) {
  if (spec == "star") return TopologySpec{};
  const std::string prefix = "leaf-spine";
  if (spec.rfind(prefix, 0) == 0) {
    TopologySpec s;
    s.kind = Kind::kLeafSpine;
    std::string rest = spec.substr(prefix.size());
    if (rest.empty()) return s;
    if (rest[0] != ':') {
      if (error) *error = "expected ':' after 'leaf-spine' in '" + spec + "'";
      return std::nullopt;
    }
    rest = rest.substr(1);
    char* end = nullptr;
    const long racks = std::strtol(rest.c_str(), &end, 10);
    if (end == rest.c_str() || racks <= 0) {
      if (error) *error = "bad rack count in topology '" + spec + "'";
      return std::nullopt;
    }
    s.racks = static_cast<std::size_t>(racks);
    if (*end == '\0') return s;
    if (*end != ':') {
      if (error) *error = "expected ':' before hosts-per-rack in '" + spec + "'";
      return std::nullopt;
    }
    const char* hosts_str = end + 1;
    const long hosts = std::strtol(hosts_str, &end, 10);
    if (end == hosts_str || *end != '\0' || hosts <= 0) {
      if (error) *error = "bad hosts-per-rack in topology '" + spec + "'";
      return std::nullopt;
    }
    s.hosts_per_rack = static_cast<std::size_t>(hosts);
    return s;
  }
  if (error) {
    *error = "unknown topology '" + spec +
             "' (expected star | leaf-spine[:RACKS[:HOSTS_PER_RACK]])";
  }
  return std::nullopt;
}

BuiltTopology::BuiltTopology(FlowNetwork& network, TopologySpec spec)
    : network_{network}, spec_{std::move(spec)} {
  spec_.validate();
  if (spec_.kind == TopologySpec::Kind::kLeafSpine) {
    const Bandwidth uplink = spec_.uplink_bandwidth();
    racks_.reserve(spec_.racks);
    rack_fill_.assign(spec_.racks, 0);
    for (std::size_t r = 0; r < spec_.racks; ++r) {
      racks_.push_back(
          network_.add_rack("rack" + std::to_string(r), uplink, uplink));
    }
  }
}

NodeId BuiltTopology::add_host(std::string name, Bandwidth bandwidth,
                               std::optional<std::size_t> rack) {
  if (spec_.kind == TopologySpec::Kind::kStar) {
    ++hosts_added_;
    return network_.add_node(std::move(name), bandwidth, bandwidth);
  }
  std::size_t r;
  if (rack.has_value()) {
    r = *rack;
    PROPHET_CHECK_MSG(r < racks_.size(), "host placed in nonexistent rack");
    PROPHET_CHECK_MSG(rack_fill_[r] < spec_.hosts_per_rack,
                      "host placed in a full rack");
  } else {
    r = 0;
    while (r < racks_.size() && rack_fill_[r] >= spec_.hosts_per_rack) ++r;
    PROPHET_CHECK_MSG(r < racks_.size(),
                      "leaf-spine fabric is full: no rack has a free host slot");
  }
  const NodeId node = network_.add_node(std::move(name), spec_.host_bandwidth,
                                        spec_.host_bandwidth);
  network_.assign_rack(node, racks_[r]);
  ++rack_fill_[r];
  ++hosts_added_;
  return node;
}

std::int64_t BuiltTopology::spine_bytes() const {
  std::int64_t total = 0;
  for (const RackId r : racks_) {
    total += network_.link_total_bytes(network_.rack_link(r, Direction::kTx));
    total += network_.link_total_bytes(network_.rack_link(r, Direction::kRx));
  }
  return total;
}

std::vector<LinkId> resolve_link_target(const FlowNetwork& network,
                                        std::string_view name) {
  std::vector<LinkId> out;
  if (auto id = network.find_link(name)) {
    out.push_back(*id);
    return out;
  }
  // "<rack>" or "<rack>.uplink": both directions of the rack's spine links.
  std::string_view base = name;
  if (const auto dot = name.rfind(".uplink"); dot != std::string_view::npos &&
                                              dot + 7 == name.size()) {
    base = name.substr(0, dot);
  }
  for (RackId r = 0; r < network.rack_count(); ++r) {
    if (network.rack_name(r) == base) {
      out.push_back(network.rack_link(r, Direction::kTx));
      out.push_back(network.rack_link(r, Direction::kRx));
      return out;
    }
  }
  // "<node>": both access links — the mapping for plans written against the
  // old per-NIC addressing.
  for (NodeId n = 0; n < network.node_count(); ++n) {
    if (network.node_name(n) == name) {
      out.push_back(network.node_link(n, Direction::kTx));
      out.push_back(network.node_link(n, Direction::kRx));
      return out;
    }
  }
  return out;
}

}  // namespace prophet::net
