// Per-transfer cost model — the concrete form of the paper's Eq. (10)
// B^(i) = f(s^(i), B).
//
// The paper names three sources of small-transfer overhead (Sec. 2.2):
// "TCP connection overhead, TCP slow start, and the synchronization between
// nodes". We charge each scheduled transfer task
//
//   d(s, B) = T_sync + ramp(s, B) + s / B
//
// where T_sync is a fixed per-task handshake/synchronization cost and
// ramp(s, B) is the extra latency of TCP slow start: the congestion window
// doubles every RTT starting at `initial_cwnd` until it covers the
// bandwidth-delay product, and bytes sent during the ramp are latency-bound
// rather than bandwidth-bound.
//
// Effective bandwidth f(s, B) = s / d(s, B) then has exactly the limits the
// paper requires: -> 0 as s -> 0 and -> B as s -> inf.
#pragma once

#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet::net {

struct TcpCostParams {
  // Round-trip time between g3.8xlarge instances over the EC2 VPC fabric
  // (virtualized TCP; far above bare-metal rack latency).
  Duration rtt = Duration::micros(500);
  // Fixed per-task overhead: BytePS RPC framing, rendezvous, key lookup at
  // the PS, engine synchronization, user/kernel copies. Paid once per
  // scheduled transfer task — this is what makes many small tasks slow
  // (P3's pain in Fig. 3(a)) and block assembly worthwhile.
  Duration per_task_overhead = Duration::micros(1000);
  // Initial congestion window (10 MSS of 1460 B, the Linux default).
  Bytes initial_cwnd = Bytes::of(14'600);
  // Set false to model long-lived pre-warmed connections (no slow start).
  bool slow_start = true;
};

class TcpCostModel {
 public:
  explicit TcpCostModel(TcpCostParams params = {});

  [[nodiscard]] const TcpCostParams& params() const { return params_; }

  // Latency charged before the flow drains at full rate: per-task overhead
  // plus the slow-start ramp penalty. Independent of any bandwidth sharing
  // that happens during draining.
  [[nodiscard]] Duration setup_delay(Bytes size, Bandwidth line_rate) const;

  // Total solo transfer duration: setup + serialization at `line_rate`.
  [[nodiscard]] Duration duration(Bytes size, Bandwidth line_rate) const;

  // f(s, B) = s / d(s, B).
  [[nodiscard]] Bandwidth effective_bandwidth(Bytes size, Bandwidth line_rate) const;

  // Largest payload whose solo transfer fits within `budget` (inverse of
  // duration(); binary search — duration is monotone in size). Zero when not
  // even an empty transfer fits.
  [[nodiscard]] Bytes max_bytes_within(Duration budget, Bandwidth line_rate) const;

 private:
  TcpCostParams params_;
};

}  // namespace prophet::net
