// Network-dynamics and fault-injection plans: a time-sorted script of events
// the cluster driver applies to a *running* simulation — per-link bandwidth
// shifts, transient link outages (in-flight transfers stall and resume),
// straggler compute slowdowns and PS CPU degradation.
//
// This is the regime the paper's Sec. 2.2 / Fig. 3(b) argues about: Prophet
// re-plans from *monitored* bandwidth while fixed-credit schedulers keep a
// tuning that no longer matches the network. A plan can be scripted (fluent
// builders), generated from a seeded RNG (`fluctuation`) or loaded from a
// CSV trace (`from_trace_csv`); all three are plain data, so a fixed seed
// always replays the identical timeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet::net {

struct DynamicsEvent {
  enum class Type {
    kBandwidthScale,  // re-rate a NIC to factor x its *configured* capacity
    kBandwidthSet,    // re-rate a NIC to an absolute capacity
    kOutageStart,     // link fully down: draining flows park at rate zero
    kOutageEnd,       // link back up: parked flows resume, re-rated
    kComputeScale,    // stretch a worker's compute times by factor (straggler)
    kPsComputeScale,  // stretch the PS's per-update CPU cost by factor
    kWorkerCrash,     // worker process dies: in-flight push/pull state is lost
    kWorkerRecover,   // worker restarts and replays its current iteration
    kPsCrash,         // PS dies; workers stall against a dead endpoint
    kPsRecover,       // PS restores the last checkpoint; workers roll back
    kLossRate,        // re-rate the per-attempt transport loss probability
  };

  Duration at{};  // offset from simulation start
  Type type = Type::kBandwidthScale;
  // Bandwidth/outage target: one worker, every worker (nullopt), or the PS.
  // Compute events ignore `target_ps`; kPsComputeScale ignores both.
  std::optional<std::size_t> worker;
  bool target_ps = false;
  // Narrows a PS-targeted event to one shard of a sharded parameter server
  // (ClusterConfig::ps_shards): a kPsCrash/kPsRecover pair rolls back only
  // that shard's rounds, kPsComputeScale degrades only that shard's CPU, and
  // PS bandwidth/outage events hit only that shard's access links. Unset
  // means the whole PS tier, which on ps_shards=1 is the historical
  // single-server behavior.
  std::optional<std::size_t> ps_shard;
  // Alternative bandwidth/outage target: a named topology link ("rack0.up",
  // "worker1.rx"), a rack name (both spine directions) or a node name (both
  // access links). Non-empty `link` wins over worker/target_ps; the
  // worker/PS spellings remain as the back-compat mapping for existing
  // plans, resolved to the target's access links at arm time.
  std::string link;
  double factor = 1.0;    // scale events
  Bandwidth bandwidth;    // kBandwidthSet payload

  [[nodiscard]] bool targets_link() const { return !link.empty(); }

  [[nodiscard]] static const char* type_name(Type t);
};

struct DynamicsPlan {
  std::vector<DynamicsEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  // --- fluent builders (scripted plans) -----------------------------------
  // Each appends and returns *this; call sort() if events were not added in
  // chronological order (validate() rejects unsorted plans).
  DynamicsPlan& bandwidth_scale(Duration at, std::optional<std::size_t> worker,
                                double factor);
  DynamicsPlan& bandwidth_set(Duration at, std::optional<std::size_t> worker,
                              Bandwidth bw);
  DynamicsPlan& ps_bandwidth_scale(Duration at, double factor);
  // Link-targeted variants: `link` names a topology link, rack or node (see
  // DynamicsEvent::link). Resolution happens when the plan is armed against
  // a built network, so plans stay plain data.
  DynamicsPlan& link_bandwidth_scale(Duration at, std::string link, double factor);
  DynamicsPlan& link_bandwidth_set(Duration at, std::string link, Bandwidth bw);
  DynamicsPlan& link_outage(Duration at, Duration duration, std::string link);
  // Appends the outage start *and* its end at `at + duration`.
  DynamicsPlan& outage(Duration at, Duration duration,
                       std::optional<std::size_t> worker);
  DynamicsPlan& ps_outage(Duration at, Duration duration);
  DynamicsPlan& straggler(Duration at, std::size_t worker, double factor);
  DynamicsPlan& ps_degrade(Duration at, double factor);
  // Appends the crash *and* its recovery at `at + downtime`. Worker crashes
  // need a concrete index (a cluster-wide worker wipeout is not a recoverable
  // BSP state); PS crashes roll every worker back to the last checkpoint.
  DynamicsPlan& worker_crash(Duration at, Duration downtime, std::size_t worker);
  DynamicsPlan& ps_crash(Duration at, Duration failover);
  // Per-shard variants for sharded PS tiers: the crash/recover pair (and the
  // CPU degrade) carry `ps_shard`, so only that shard's keys roll back while
  // the surviving shards keep serving.
  DynamicsPlan& ps_shard_crash(Duration at, Duration failover, std::size_t shard);
  DynamicsPlan& ps_shard_degrade(Duration at, double factor, std::size_t shard);
  // Transport loss probability from `at` onward (factor carries the rate;
  // 0 turns injection back off).
  DynamicsPlan& loss_rate(Duration at, double rate);

  // --- generators ---------------------------------------------------------
  // Seeded-random congestion dips: every `period`, each worker NIC is
  // re-scaled to a factor drawn uniformly from [1 - amplitude, 1] (floored
  // at 0.05x), until `horizon` — the configured rate is the line rate, so
  // cross-traffic only subtracts. amplitude 0 yields an empty plan.
  static DynamicsPlan fluctuation(std::uint64_t seed, double amplitude,
                                  Duration period, Duration horizon,
                                  std::size_t num_workers);

  // Trace-driven: CSV rows `time_s,event,target,value` where event is one of
  // bandwidth_scale|bandwidth_gbps|outage_start|outage_end|compute_scale|
  // ps_compute_scale|worker_crash|worker_recover|ps_crash|ps_recover|
  // loss_rate, target is a worker index, `*` (all workers), `ps`, `shard:K`
  // (one PS shard of a sharded tier), or `link:NAME` (a topology
  // link/rack/node name, bandwidth and outage events only), and value
  // carries the factor / Gbit-per-second rate / loss probability
  // (ignored for outages and crash/recover events). Lines starting with `#`
  // or `time_s` are skipped.
  static std::optional<DynamicsPlan> from_trace_csv(const std::string& path,
                                                    std::string* error = nullptr);

  // --- CLI spec parsing (run_experiment's flags) --------------------------
  // "none" | "fluctuate:AMP[:PERIOD_S]" | "step:T_S:FACTOR[:WORKER]" |
  // "trace:PATH". Fluctuation runs to `horizon` over `num_workers` NICs,
  // seeded by `seed`; steps re-rate one worker NIC (or all) permanently.
  static std::optional<DynamicsPlan> from_spec(const std::string& spec,
                                               std::uint64_t seed, Duration horizon,
                                               std::size_t num_workers,
                                               std::string* error = nullptr);
  // "T_S:DUR_S[:WORKER]" — transient link outage (worker omitted: all).
  bool add_outage_spec(const std::string& spec, std::string* error = nullptr);
  // "WORKER:FACTOR[:T_S]" — compute slowdown from T_S (default 0) onward.
  bool add_straggler_spec(const std::string& spec, std::string* error = nullptr);
  // "FACTOR[:T_S]" — PS CPU degradation from T_S (default 0) onward.
  bool add_ps_degrade_spec(const std::string& spec, std::string* error = nullptr);
  // "T_S:DUR_S:WORKER" — worker crash at T_S, restart after DUR_S.
  bool add_worker_crash_spec(const std::string& spec, std::string* error = nullptr);
  // "T_S:DUR_S[:shard:K]" — PS crash at T_S, checkpoint failover completes
  // after DUR_S; the optional `shard:K` suffix confines the crash to PS
  // shard K of a sharded tier.
  bool add_ps_crash_spec(const std::string& spec, std::string* error = nullptr);
  // "RATE[:T_S]" — transport loss probability from T_S (default 0) onward.
  bool add_loss_spec(const std::string& spec, std::string* error = nullptr);

  // Stable-sorts events by time (same-instant events keep insertion order,
  // so a sorted plan replays bit-identically).
  void sort();

  // Aborts with a clear message on a malformed plan: unsorted or negative
  // event times, out-of-range worker indices, non-positive scale factors or
  // bandwidths, unbalanced outage start/end pairs, crash events that overlap
  // an active crash of the same node (or recoveries without a crash), worker
  // crashes without a concrete worker index, loss rates outside [0, 1), or
  // link targets on event types other than bandwidth/outage. `ps_shards`
  // bounds per-shard PS targets; whole-PS and per-shard crash windows of the
  // same tier may not overlap (a whole-tier rollback has no well-defined
  // arithmetic while one shard is already mid-failover).
  void validate(std::size_t num_workers, std::size_t ps_shards = 1) const;

  // True if any event is a crash/recover of the given flavor (the cluster
  // driver uses these to arm checkpointing only when needed).
  [[nodiscard]] bool has_ps_crash() const;
  [[nodiscard]] bool has_worker_crash() const;
  [[nodiscard]] bool has_loss() const;
};

}  // namespace prophet::net
