#include "net/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prophet::net {

TcpCostModel::TcpCostModel(TcpCostParams params) : params_{params} {
  PROPHET_CHECK(params_.rtt > Duration::zero());
  PROPHET_CHECK(params_.per_task_overhead >= Duration::zero());
  PROPHET_CHECK(params_.initial_cwnd.count() > 0);
}

Duration TcpCostModel::setup_delay(Bytes size, Bandwidth line_rate) const {
  PROPHET_CHECK(size.count() >= 0);
  Duration delay = params_.per_task_overhead;
  if (!params_.slow_start || line_rate.is_zero()) return delay;

  // Slow-start: during ramp RTT k (k = 0, 1, ...) the window is cwnd0 * 2^k
  // bytes and takes a full RTT regardless of size; the ramp ends once the
  // window reaches the bandwidth-delay product. We charge, as *extra*
  // latency beyond plain serialization, rtt - bytes/B for every ramp round
  // actually used by this transfer.
  const double bdp =
      line_rate.bytes_per_second() * params_.rtt.to_seconds();
  const auto cwnd0 = static_cast<double>(params_.initial_cwnd.count());
  double window = cwnd0;
  double remaining = static_cast<double>(size.count());
  double extra_s = 0.0;
  const double rtt_s = params_.rtt.to_seconds();
  while (remaining > 0.0 && window < bdp) {
    const double sent = std::min(remaining, window);
    // A ramp round occupies one RTT; serialization alone would have taken
    // sent / B. Only the positive difference is overhead.
    extra_s += std::max(0.0, rtt_s - sent / line_rate.bytes_per_second());
    remaining -= sent;
    window *= 2.0;
  }
  return delay + Duration::from_seconds(extra_s);
}

Duration TcpCostModel::duration(Bytes size, Bandwidth line_rate) const {
  PROPHET_CHECK(!line_rate.is_zero());
  return setup_delay(size, line_rate) + line_rate.time_to_send(size);
}

Bytes TcpCostModel::max_bytes_within(Duration budget, Bandwidth line_rate) const {
  PROPHET_CHECK(!line_rate.is_zero());
  if (duration(Bytes::zero(), line_rate) > budget) return Bytes::zero();
  std::int64_t lo = 0;  // always fits
  std::int64_t hi = line_rate.bytes_in(budget).count() + 1;  // never fits
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (duration(Bytes::of(mid), line_rate) <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Bytes::of(lo);
}

Bandwidth TcpCostModel::effective_bandwidth(Bytes size, Bandwidth line_rate) const {
  if (size.count() <= 0) return Bandwidth::zero();
  const Duration d = duration(size, line_rate);
  return Bandwidth::bytes_per_sec(static_cast<double>(size.count()) / d.to_seconds());
}

}  // namespace prophet::net
