#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace prophet::net {

namespace {
// A flow is "done" when its remaining byte count falls below this; avoids
// rescheduling completions for sub-byte floating-point residue.
constexpr double kDrainEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& sim, TcpCostModel cost_model,
                         RebalanceMode mode)
    : sim_{sim}, cost_model_{cost_model}, mode_{mode} {}

LinkId FlowNetwork::add_link(std::string name, Bandwidth cap) {
  PROPHET_CHECK(!cap.is_zero());
  links_.push_back(Link{std::move(name), cap});
  fill_.emplace_back();
  link_flows_.emplace_back();
  link_epoch_.push_back(0);
  return static_cast<LinkId>(links_.size() - 1);
}

NodeId FlowNetwork::add_node(std::string name, Bandwidth egress, Bandwidth ingress) {
  PROPHET_CHECK(!egress.is_zero() && !ingress.is_zero());
  const LinkId tx = add_link(name + ".tx", egress);
  const LinkId rx = add_link(name + ".rx", ingress);
  nodes_.push_back(Node{std::move(name), tx, rx});
  return static_cast<NodeId>(nodes_.size() - 1);
}

RackId FlowNetwork::add_rack(std::string name, Bandwidth uplink, Bandwidth downlink) {
  const LinkId up = add_link(name + ".up", uplink);
  const LinkId down = add_link(name + ".down", downlink);
  racks_.push_back(Rack{std::move(name), up, down});
  return static_cast<RackId>(racks_.size() - 1);
}

void FlowNetwork::assign_rack(NodeId node, RackId rack) {
  PROPHET_CHECK(node < nodes_.size());
  PROPHET_CHECK(rack < racks_.size() || rack == kNoRack);
  nodes_[node].rack = rack;
}

RackId FlowNetwork::rack_of(NodeId node) const {
  PROPHET_CHECK(node < nodes_.size());
  return nodes_[node].rack;
}

const std::string& FlowNetwork::rack_name(RackId id) const {
  PROPHET_CHECK(id < racks_.size());
  return racks_[id].name;
}

LinkId FlowNetwork::rack_link(RackId id, Direction dir) const {
  PROPHET_CHECK(id < racks_.size());
  return dir == Direction::kTx ? racks_[id].up : racks_[id].down;
}

const std::string& FlowNetwork::node_name(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

const std::string& FlowNetwork::link_name(LinkId id) const {
  PROPHET_CHECK(id < links_.size());
  return links_[id].name;
}

std::optional<LinkId> FlowNetwork::find_link(std::string_view name) const {
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (links_[l].name == name) return static_cast<LinkId>(l);
  }
  return std::nullopt;
}

LinkId FlowNetwork::node_link(NodeId id, Direction dir) const {
  PROPHET_CHECK(id < nodes_.size());
  return dir == Direction::kTx ? nodes_[id].tx : nodes_[id].rx;
}

FlowNetwork::Link& FlowNetwork::link(LinkId id) {
  PROPHET_CHECK(id < links_.size());
  return links_[id];
}

const FlowNetwork::Link& FlowNetwork::link(LinkId id) const {
  PROPHET_CHECK(id < links_.size());
  return links_[id];
}

FlowNetwork::Link& FlowNetwork::access_link(NodeId id, Direction dir) {
  return link(node_link(id, dir));
}

const FlowNetwork::Link& FlowNetwork::access_link(NodeId id, Direction dir) const {
  return link(node_link(id, dir));
}

std::ptrdiff_t FlowNetwork::find_slot(FlowId id) const {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return -1;
  const FlowSlot& s = slots_[slot];
  if (!s.occupied || s.generation != generation) return -1;
  return static_cast<std::ptrdiff_t>(slot);
}

void FlowNetwork::set_link_capacity(LinkId id, Bandwidth cap) {
  PROPHET_CHECK(!cap.is_zero());
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    link(id).cap = cap;
    reassign_rates();
    return;
  }
  // Settlement credits bytes at the rates in force before the change, which
  // are stored per flow (or in the group's rate history) — safe to mutate
  // the capacity first.
  link(id).cap = cap;
  const std::uint32_t gid = group_of_link(id);
  if (gid != kNoGroup && group_capacity_change(gid, id)) return;
  const LinkId seeds[1] = {id};
  rebalance_from(seeds, 1);
}

Bandwidth FlowNetwork::link_capacity(LinkId id) const { return link(id).cap; }

void FlowNetwork::set_link_state(LinkId id, bool up) {
  if (link(id).up == up) return;
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    link(id).up = up;
    reassign_rates();
    return;
  }
  link(id).up = up;
  const LinkId seeds[1] = {id};
  rebalance_from(seeds, 1);
}

bool FlowNetwork::link_state(LinkId id) const { return link(id).up; }

std::int64_t FlowNetwork::link_total_bytes(LinkId id) {
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    return static_cast<std::int64_t>(link(id).total_bytes);
  }
  const TimePoint now = sim_.now();
  // Settling only this link's flows suffices for its byte/busy counters (the
  // rest of the component keeps draining at unchanged rates).
  comp_flows_.assign(link_flows_[id].begin(), link_flows_[id].end());
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return slots_[a].flow.admission < slots_[b].flow.admission;
            });
  for (const std::uint32_t slot : comp_flows_) settle_flow(slot, now);
  settle_link_busy(id, now);
  return static_cast<std::int64_t>(link(id).total_bytes);
}

Duration FlowNetwork::link_busy_time(LinkId id) {
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
  } else {
    settle_link_busy(id, sim_.now());
  }
  return link(id).busy;
}

void FlowNetwork::attach_link_tracker(LinkId id, BinnedSeries* series) {
  link(id).tracker = series;
}

void FlowNetwork::set_capacity(NodeId id, Direction dir, Bandwidth cap) {
  PROPHET_CHECK(!cap.is_zero());
  set_link_capacity(node_link(id, dir), cap);
}

Bandwidth FlowNetwork::capacity(NodeId id, Direction dir) const {
  return access_link(id, dir).cap;
}

void FlowNetwork::set_link_up(NodeId id, bool up) {
  PROPHET_CHECK(id < nodes_.size());
  if (links_[nodes_[id].tx].up == up && links_[nodes_[id].rx].up == up) return;
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    links_[nodes_[id].tx].up = up;
    links_[nodes_[id].rx].up = up;
    reassign_rates();
    return;
  }
  // Both access links flip at once: one rebalance over the union of their
  // components (they are usually disjoint — tx carries sends, rx receives).
  links_[nodes_[id].tx].up = up;
  links_[nodes_[id].rx].up = up;
  const LinkId seeds[2] = {nodes_[id].tx, nodes_[id].rx};
  rebalance_from(seeds, 2);
}

bool FlowNetwork::link_up(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return links_[nodes_[id].tx].up && links_[nodes_[id].rx].up;
}

std::uint8_t FlowNetwork::compute_path(
    NodeId src, NodeId dst, std::array<LinkId, kMaxPathLinks>& out) const {
  std::uint8_t n = 0;
  out[n++] = nodes_[src].tx;
  const RackId sr = nodes_[src].rack;
  const RackId dr = nodes_[dst].rack;
  if (sr != dr) {
    // Different racks — or one endpoint on the spine: traffic leaves the
    // source rack through its uplink and enters the destination rack through
    // its downlink; whichever endpoint is unracked sits at the spine and
    // contributes no shared link.
    if (sr != kNoRack) out[n++] = racks_[sr].up;
    if (dr != kNoRack) out[n++] = racks_[dr].down;
  }
  out[n++] = nodes_[dst].rx;
  return n;
}

std::vector<LinkId> FlowNetwork::route(NodeId src, NodeId dst) const {
  PROPHET_CHECK(src < nodes_.size() && dst < nodes_.size());
  std::array<LinkId, kMaxPathLinks> path{};
  const std::uint8_t n = compute_path(src, dst, path);
  return std::vector<LinkId>{path.begin(), path.begin() + n};
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, Bytes size,
                               std::function<void(FlowId)> on_complete) {
  PROPHET_CHECK(src < nodes_.size() && dst < nodes_.size());
  PROPHET_CHECK_MSG(src != dst, "loopback flows are not modeled");
  PROPHET_CHECK(size.count() >= 0);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slot_epoch_.push_back(0);
  }
  FlowSlot& s = slots_[slot];
  s.occupied = true;
  s.flow.src = src;
  s.flow.dst = dst;
  s.flow.remaining = static_cast<double>(size.count());
  s.flow.draining = false;
  s.flow.rate = 0.0;
  s.flow.path_len = compute_path(src, dst, s.flow.path);
  s.flow.admission = next_admission_++;
  s.flow.last_settled = sim_.now();
  s.flow.on_complete = std::move(on_complete);
  s.flow.completion = sim::EventHandle{};
  s.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(slot);
  const FlowId id = make_id(s.generation, slot);

  // The setup ramp is computed against the path's solo line rate: the best
  // the congestion window could hope for, matching how slow start probes.
  Bandwidth line_rate = links_[s.flow.path[0]].cap;
  for (std::uint8_t i = 1; i < s.flow.path_len; ++i) {
    line_rate = std::min(line_rate, links_[s.flow.path[i]].cap);
  }
  const Duration setup = cost_model_.setup_delay(size, line_rate);
  sim_.schedule_after(setup, [this, id] { enter_drain(id); });
  return id;
}

Bandwidth FlowNetwork::flow_rate(FlowId id) const {
  const std::ptrdiff_t slot = find_slot(id);
  PROPHET_CHECK_MSG(slot >= 0, "flow_rate on unknown flow");
  const Flow& f = slots_[static_cast<std::size_t>(slot)].flow;
  // A grouped member's own rate field is lazily maintained; the group holds
  // the live share.
  if (f.group != kNoGroup) return Bandwidth::bytes_per_sec(groups_[f.group].rate);
  return Bandwidth::bytes_per_sec(f.rate);
}

void FlowNetwork::attach_tracker(NodeId id, Direction dir, BinnedSeries* series) {
  access_link(id, dir).tracker = series;
}

std::int64_t FlowNetwork::total_bytes(NodeId id, Direction dir) {
  return link_total_bytes(node_link(id, dir));
}

Duration FlowNetwork::busy_time(NodeId id, Direction dir) {
  return link_busy_time(node_link(id, dir));
}

// --- incremental engine -----------------------------------------------------

void FlowNetwork::graph_insert(std::uint32_t slot) {
  Flow& f = slots_[slot].flow;
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    std::vector<std::uint32_t>& flows = link_flows_[f.path[i]];
    f.link_pos[i] = static_cast<std::uint32_t>(flows.size());
    flows.push_back(slot);
  }
}

void FlowNetwork::graph_remove(std::uint32_t slot) {
  Flow& f = slots_[slot].flow;
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    const LinkId l = f.path[i];
    std::vector<std::uint32_t>& flows = link_flows_[l];
    const std::uint32_t pos = f.link_pos[i];
    const std::uint32_t moved = flows.back();
    flows[pos] = moved;
    flows.pop_back();
    if (moved != slot) {
      Flow& mf = slots_[moved].flow;
      for (std::uint8_t j = 0; j < mf.path_len; ++j) {
        if (mf.path[j] == l) {
          mf.link_pos[j] = pos;
          break;
        }
      }
    }
  }
}

void FlowNetwork::collect_component(const LinkId* seeds, std::size_t n_seeds) {
  ++epoch_;
  comp_links_.clear();
  comp_flows_.clear();
  for (std::size_t i = 0; i < n_seeds; ++i) {
    const LinkId l = seeds[i];
    if (link_epoch_[l] == epoch_) continue;
    link_epoch_[l] = epoch_;
    comp_links_.push_back(l);
  }
  // Frontier expansion: a link pulls in its draining flows, a flow pulls in
  // every link on its path.
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    const LinkId l = comp_links_[i];
    for (const std::uint32_t slot : link_flows_[l]) {
      if (slot_epoch_[slot] == epoch_) continue;
      slot_epoch_[slot] = epoch_;
      comp_flows_.push_back(slot);
      // A slow-path walk reaching any member dissolves its whole rate group:
      // the walk is about to re-derive the component's rates from scratch,
      // and every member shares this flow's anchor so the BFS covers them.
      if (slots_[slot].flow.group != kNoGroup) dissolve_group(slots_[slot].flow.group);
      const Flow& f = slots_[slot].flow;
      for (std::uint8_t p = 0; p < f.path_len; ++p) {
        const LinkId pl = f.path[p];
        if (link_epoch_[pl] == epoch_) continue;
        link_epoch_[pl] = epoch_;
        comp_links_.push_back(pl);
      }
    }
  }
  // Admission order is the deterministic walk order everywhere (it is what
  // the full algorithm uses), independent of discovery order.
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return slots_[a].flow.admission < slots_[b].flow.admission;
            });
}

void FlowNetwork::settle_flow(std::uint32_t slot, TimePoint now) {
  Flow& f = slots_[slot].flow;
  if (f.group != kNoGroup) {
    settle_group_flow(slot, now);
    return;
  }
  if (f.last_settled == now) return;
  if (f.draining && f.rate > 0.0) {
    ++stats_.flows_settled;
    const double elapsed_s = (now - f.last_settled).to_seconds();
    const double drained = std::min(f.remaining, f.rate * elapsed_s);
    f.remaining -= drained;
    for (std::uint8_t i = 0; i < f.path_len; ++i) {
      Link& l = links_[f.path[i]];
      l.total_bytes += drained;
      if (l.tracker != nullptr) {
        // The rate is constant over [last_settled, now] (rate changes always
        // settle first), so one uniform spread is exact.
        l.tracker->add_amount_spread(f.last_settled, now, drained);
      }
    }
  }
  f.last_settled = now;
}

void FlowNetwork::settle_link_busy(LinkId id, TimePoint now) {
  Link& l = links_[id];
  if (l.busy_active) l.busy += now - l.busy_mark;
  l.busy_mark = now;
}

void FlowNetwork::settle_component(TimePoint now) {
  for (const std::uint32_t slot : comp_flows_) settle_flow(slot, now);
  for (const LinkId l : comp_links_) settle_link_busy(l, now);
}

void FlowNetwork::rebalance_from(const LinkId* seeds, std::size_t n_seeds) {
  collect_component(seeds, n_seeds);
  settle_component(sim_.now());
  refill_component();
}

template <typename SetRate>
void FlowNetwork::progressive_fill(const std::vector<std::uint32_t>& flow_slots,
                                   SetRate&& set_rate) {
  // Progressive filling: repeatedly saturate the link with the smallest fair
  // share, freeze its flows at that rate, remove the consumed capacity. Only
  // links that carry a draining flow participate; everything runs out of
  // persistent scratch, so steady-state reassignment allocates nothing.
  unfrozen_.clear();
  active_links_.clear();
  for (const std::uint32_t slot : flow_slots) {
    const Flow& flow = slots_[slot].flow;
    set_rate(slot, 0.0);
    unfrozen_.push_back(slot);
    for (std::uint8_t i = 0; i < flow.path_len; ++i) {
      const LinkId l = flow.path[i];
      if (fill_[l].unfrozen == 0) {
        // First draining flow on this link: (re)load its capacity. A down
        // link offers no capacity: its flows freeze at rate zero below.
        fill_[l].cap = links_[l].up ? links_[l].cap.bytes_per_second() : 0.0;
        active_links_.push_back(l);
      }
      ++fill_[l].unfrozen;
    }
  }

  std::size_t remaining = unfrozen_.size();
  while (remaining > 0) {
    // Find the tightest link among those with unfrozen flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (const LinkId l : active_links_) {
      if (fill_[l].unfrozen > 0) {
        min_share = std::min(min_share, fill_[l].cap / fill_[l].unfrozen);
      }
    }
    PROPHET_CHECK(min_share < std::numeric_limits<double>::infinity());
    // Floating-point residue in the capacity subtractions can push a nearly
    // exhausted link's share epsilon-negative; clamp so no flow ever gets a
    // negative rate.
    min_share = std::max(min_share, 0.0);
    // Freeze every flow touching a link whose fair share equals the minimum.
    const auto is_tight = [&](const Flow& f) {
      for (std::uint8_t i = 0; i < f.path_len; ++i) {
        const LinkFill& fl = fill_[f.path[i]];
        if (fl.cap / fl.unfrozen <= min_share * (1.0 + 1e-12)) return true;
      }
      return false;
    };
    bool froze_any = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < remaining; ++i) {
      const std::uint32_t slot = unfrozen_[i];
      const Flow& f = slots_[slot].flow;
      if (is_tight(f)) {
        set_rate(slot, min_share);
        for (std::uint8_t p = 0; p < f.path_len; ++p) {
          fill_[f.path[p]].cap -= min_share;
          --fill_[f.path[p]].unfrozen;
        }
        froze_any = true;
      } else {
        unfrozen_[kept++] = slot;
      }
    }
    remaining = kept;
    PROPHET_CHECK_MSG(froze_any, "progressive filling made no progress");
  }
}

void FlowNetwork::reschedule_completion(std::uint32_t slot) {
  Flow& flow = slots_[slot].flow;
  flow.completion.cancel();
  const FlowId fid = make_id(slots_[slot].generation, slot);
  if (flow.remaining <= kDrainEpsilon) {
    flow.completion =
        sim_.schedule_after(Duration::zero(), [this, fid] { complete_flow(fid); });
  } else if (flow.rate > 0.0) {
    const Duration eta = Duration::from_seconds(flow.remaining / flow.rate);
    flow.completion = sim_.schedule_after(eta, [this, fid] { complete_flow(fid); });
  }
  // rate == 0 (fully starved link) leaves the flow parked until the next
  // rebalance; set_capacity / flow departures will wake it.
}

void FlowNetwork::refill_component() {
  // A departure between collect and refill leaves a freed (or no longer
  // draining) slot in the buffer; compact it out before filling.
  std::size_t kept = 0;
  for (const std::uint32_t slot : comp_flows_) {
    if (slots_[slot].occupied && slots_[slot].flow.draining) {
      comp_flows_[kept++] = slot;
    }
  }
  comp_flows_.resize(kept);
  ++stats_.rebalances;
  stats_.component_flows += comp_flows_.size();

  progressive_fill(comp_flows_,
                   [&](std::uint32_t slot, double r) { slots_[slot].flow.rate = r; });

  // Busy flags: a component link is busy while any of its draining flows has
  // a positive rate (marks were just settled to now by settle_component).
  for (const LinkId l : comp_links_) {
    bool active = false;
    for (const std::uint32_t slot : link_flows_[l]) {
      if (slots_[slot].flow.rate > 0.0) {
        active = true;
        break;
      }
    }
    links_[l].busy_active = active;
  }

  // Reschedule completions at the new rates (admission order, so same-instant
  // completions keep their deterministic tie-break).
  for (const std::uint32_t slot : comp_flows_) reschedule_completion(slot);

  if (verify_rates_) verify_against_full();

  // If the refreshed component is a single-bottleneck incast, promote it to
  // a rate group so subsequent events stay off this slow path entirely.
  maybe_form_group();
}

void FlowNetwork::gather_draining_by_admission(std::vector<std::uint32_t>& out) const {
  out.clear();
  for (const std::uint32_t slot : active_) {
    if (slots_[slot].flow.draining) out.push_back(slot);
  }
  std::sort(out.begin(), out.end(), [&](std::uint32_t a, std::uint32_t b) {
    return slots_[a].flow.admission < slots_[b].flow.admission;
  });
}

void FlowNetwork::verify_against_full() {
  ++stats_.verify_checks;
  gather_draining_by_admission(all_draining_);
  verify_rate_.assign(slots_.size(), 0.0);
  progressive_fill(all_draining_,
                   [&](std::uint32_t slot, double r) { verify_rate_[slot] = r; });
  for (const std::uint32_t slot : all_draining_) {
    const Flow& f = slots_[slot].flow;
    if (f.rate != verify_rate_[slot]) ++stats_.verify_mismatches;
    PROPHET_CHECK_MSG(f.rate == verify_rate_[slot],
                      "incremental rebalance diverged from full recompute");
  }
}

// --- rate-group engine ------------------------------------------------------
//
// Exactness contract: a group never invents new floating-point operations.
// The group rate is the same cap/int-count division progressive filling
// evaluates; member settlement replays the same per-boundary rate*elapsed
// chunks (with the same min-clamp, link credits and tracker spreads) the
// eager engine applied; and the lane is aimed with the same
// remaining/rate -> Duration::from_seconds rounding as
// reschedule_completion. That is what keeps verify mode and the cross-mode
// byte identities bit-for-bit. See DESIGN.md §4d.

namespace {
// "later" ordering for the next-finisher heap: std:: heap helpers keep the
// smallest (vfinish, admission) pair at the front.
constexpr auto kGroupEntryLater = [](const auto& a, const auto& b) {
  if (a.vfinish != b.vfinish) return a.vfinish > b.vfinish;
  return a.admission > b.admission;
};
}  // namespace

std::uint32_t FlowNetwork::group_of_link(LinkId id) const {
  // All draining flows on a link belong to one component, and a group always
  // spans its whole component — any one of them knows the membership.
  if (link_flows_[id].empty()) return kNoGroup;
  return slots_[link_flows_[id][0]].flow.group;
}

void FlowNetwork::group_heap_push(RateGroup& g, const GroupEntry& e) {
  g.heap.push_back(e);
  std::push_heap(g.heap.begin(), g.heap.end(), kGroupEntryLater);
}

void FlowNetwork::group_heap_pop(RateGroup& g) {
  std::pop_heap(g.heap.begin(), g.heap.end(), kGroupEntryLater);
  g.heap.pop_back();
}

std::ptrdiff_t FlowNetwork::group_heap_head(std::uint32_t gid) {
  RateGroup& g = groups_[gid];
  while (!g.heap.empty()) {
    const GroupEntry& top = g.heap.front();
    const FlowSlot& s = slots_[top.slot];
    if (s.occupied && s.flow.draining && s.flow.group == gid &&
        s.flow.admission == top.admission) {
      return static_cast<std::ptrdiff_t>(top.slot);
    }
    group_heap_pop(g);  // lazily deleted (cancelled member / recycled slot)
  }
  return -1;
}

void FlowNetwork::group_advance(RateGroup& g, TimePoint now) {
  if (now > g.last_boundary) {
    g.virtual_work += g.rate * (now - g.last_boundary).to_seconds();
    g.last_boundary = now;
  }
}

void FlowNetwork::group_set_rate(RateGroup& g, double rate, TimePoint now) {
  group_advance(g, now);
  g.rate = rate;
  if (g.history.back().start == now) {
    // A second boundary in the same instant: the zero-length segment
    // collapses, so replays only ever see rates that were in force.
    g.history.back().rate = rate;
  } else {
    g.history.push_back(GroupSegment{now, rate});
  }
}

void FlowNetwork::settle_group_flow(std::uint32_t slot, TimePoint now) {
  Flow& f = slots_[slot].flow;
  if (f.last_settled >= now) return;
  const RateGroup& g = groups_[f.group];
  ++stats_.flows_settled;
  // Replay the group's piecewise-constant rate history from the flow's last
  // settlement point. Each chunk applies the identical rate*elapsed product
  // (same min-clamp, same link/tracker credits over the same interval) the
  // eager engine applied at that boundary, so byte accounting stays
  // bit-identical no matter when settlement actually happens.
  std::size_t k = f.group_hist;
  const std::size_t nseg = g.history.size();
  for (;;) {
    const TimePoint seg_end = (k + 1 < nseg) ? g.history[k + 1].start : now;
    const TimePoint end = seg_end < now ? seg_end : now;
    if (end > f.last_settled) {
      const double rate = g.history[k].rate;
      if (rate > 0.0) {
        const double elapsed_s = (end - f.last_settled).to_seconds();
        const double drained = std::min(f.remaining, rate * elapsed_s);
        f.remaining -= drained;
        for (std::uint8_t i = 0; i < f.path_len; ++i) {
          Link& l = links_[f.path[i]];
          l.total_bytes += drained;
          if (l.tracker != nullptr) {
            l.tracker->add_amount_spread(f.last_settled, end, drained);
          }
        }
      }
      f.last_settled = end;
    }
    if (seg_end >= now || k + 1 >= nseg) break;
    ++k;
  }
  f.group_hist = static_cast<std::uint32_t>(k);
  f.last_settled = now;
}

void FlowNetwork::maybe_form_group() {
  if (comp_flows_.size() < kMinGroupFlows) return;
  const double rate = slots_[comp_flows_[0]].flow.rate;
  if (rate <= 0.0) return;
  for (const std::uint32_t slot : comp_flows_) {
    if (slots_[slot].flow.rate != rate) return;
  }
  // Anchor: a component link carrying every flow whose fair share is the
  // common rate bit-for-bit; every other populated link must keep a share
  // at or above it (true for any max-min allocation, but checked so a
  // numerically marginal component never gets promoted).
  const std::size_t n = comp_flows_.size();
  bool have_anchor = false;
  LinkId anchor = 0;
  double min_other = std::numeric_limits<double>::infinity();
  for (const LinkId l : comp_links_) {
    const std::size_t cnt = link_flows_[l].size();
    if (cnt == 0) continue;  // a seed link that carries no draining flow
    const double share = (links_[l].up ? links_[l].cap.bytes_per_second() : 0.0) /
                         static_cast<double>(cnt);
    if (!have_anchor && cnt == n && share == rate) {
      have_anchor = true;
      anchor = l;
    } else {
      if (share < rate) return;
      min_other = std::min(min_other, share);
    }
  }
  if (!have_anchor) return;

  const TimePoint now = sim_.now();
  std::uint32_t gid;
  if (!free_groups_.empty()) {
    gid = free_groups_.back();
    free_groups_.pop_back();
  } else {
    gid = static_cast<std::uint32_t>(groups_.size());
    groups_.emplace_back();
  }
  RateGroup& g = groups_[gid];
  g.anchor = anchor;
  g.n = static_cast<std::uint32_t>(n);
  g.rate = rate;
  g.min_other_share = min_other;
  g.virtual_work = 0.0;
  g.last_boundary = now;  // every member was just settled to now
  g.history.clear();
  g.history.push_back(GroupSegment{now, rate});
  g.heap.clear();
  g.heap.reserve(n);
  for (const std::uint32_t slot : comp_flows_) {
    Flow& f = slots_[slot].flow;
    f.group = gid;
    f.group_hist = 0;
    // The lane supersedes per-flow completion events from here on.
    f.completion.cancel();
    f.completion = sim::EventHandle{};
    g.heap.push_back(GroupEntry{f.remaining, f.admission, slot});
  }
  std::make_heap(g.heap.begin(), g.heap.end(), kGroupEntryLater);
  g.live = true;
  ++groups_live_;
  g.lane = sim_.lane_create([this, gid] { group_lane_fire(gid); });
  ++stats_.group_forms;
  group_rearm(gid, now);
}

void FlowNetwork::group_rearm(std::uint32_t gid, TimePoint now) {
  RateGroup& g = groups_[gid];
  const std::ptrdiff_t head = group_heap_head(gid);
  if (head < 0) {
    sim_.lane_disarm(g.lane);
    return;
  }
  const auto slot = static_cast<std::uint32_t>(head);
  // Settling the head at every boundary keeps the aim below on the identical
  // remaining/rate floating-point chain reschedule_completion would use.
  settle_flow(slot, now);
  const Flow& f = slots_[slot].flow;
  if (f.remaining <= kDrainEpsilon) {
    sim_.lane_aim(g.lane, now);
  } else {
    sim_.lane_aim(g.lane, now + Duration::from_seconds(f.remaining / g.rate));
  }
}

void FlowNetwork::group_lane_fire(std::uint32_t gid) {
  const TimePoint now = sim_.now();
  RateGroup& g = groups_[gid];
  const std::ptrdiff_t head = group_heap_head(gid);
  PROPHET_CHECK_MSG(head >= 0, "group lane fired with no live member");
  const auto slot = static_cast<std::uint32_t>(head);
  settle_flow(slot, now);  // the final chunk drains the member dry
  FlowSlot& s = slots_[slot];
  PROPHET_CHECK_MSG(s.flow.remaining <= 1.0,
                    "flow completion fired with bytes still pending");
  const FlowId fid = make_id(s.generation, slot);
  auto on_complete = std::move(s.flow.on_complete);
  group_heap_pop(g);
  group_remove_member(gid, slot, now);
  if (on_complete) on_complete(fid);
}

void FlowNetwork::group_remove_member(std::uint32_t gid, std::uint32_t slot,
                                      TimePoint now) {
  RateGroup& g = groups_[gid];
  Flow& f = slots_[slot].flow;
  f.group = kNoGroup;
  f.group_hist = 0;
  graph_remove(slot);
  // A link losing its last draining flow stops accruing busy time; the
  // anchor (and any link still shared with another member) stays busy.
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    const LinkId l = f.path[i];
    if (link_flows_[l].empty()) {
      settle_link_busy(l, now);
      links_[l].busy_active = false;
    }
  }
  release_slot(slot);
  PROPHET_CHECK(g.n > 0);
  g.n -= 1;
  if (g.n == 0) {
    ++stats_.group_fast_events;
    group_advance(g, now);
    group_destroy(gid);
    return;
  }
  // The survivors' share, via the same cap/int-count division progressive
  // filling evaluates for the anchor's round.
  const double new_rate =
      links_[g.anchor].cap.bytes_per_second() / static_cast<double>(g.n);
  if (new_rate > g.min_other_share) {
    // The bottleneck may move off the anchor: dissolve and pay one full
    // component rebalance (which re-forms a group with a fresh bound when
    // the shape still qualifies).
    const LinkId anchor = g.anchor;
    dissolve_group(gid);
    const LinkId seeds[1] = {anchor};
    rebalance_from(seeds, 1);
    return;
  }
  ++stats_.group_fast_events;
  group_set_rate(g, new_rate, now);
  group_rearm(gid, now);
  if (verify_rates_) group_verify(gid);
}

bool FlowNetwork::group_try_admit(std::uint32_t slot, TimePoint now) {
  Flow& f = slots_[slot].flow;
  // The arrival qualifies iff its path touches exactly one group, includes
  // that group's anchor, crosses only up links, and leaves every non-anchor
  // path link with a fair share at or above the group's post-arrival rate.
  std::uint32_t gid = kNoGroup;
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    const LinkId l = f.path[i];
    if (!links_[l].up) return false;
    if (link_flows_[l].empty()) continue;
    const std::uint32_t lg = slots_[link_flows_[l][0]].flow.group;
    if (lg == kNoGroup) return false;  // touches an ungrouped component
    if (gid == kNoGroup) {
      gid = lg;
    } else if (gid != lg) {
      return false;  // would merge two groups
    }
  }
  if (gid == kNoGroup) return false;  // isolated arrival — slow path is O(1)
  RateGroup& g = groups_[gid];
  bool on_anchor = false;
  for (std::uint8_t i = 0; i < f.path_len; ++i) on_anchor |= f.path[i] == g.anchor;
  if (!on_anchor) return false;  // bridges into the group off its bottleneck
  const double new_rate =
      links_[g.anchor].cap.bytes_per_second() / static_cast<double>(g.n + 1);
  double min_other = g.min_other_share;
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    const LinkId l = f.path[i];
    if (l == g.anchor) continue;
    const double share = links_[l].cap.bytes_per_second() /
                         static_cast<double>(link_flows_[l].size() + 1);
    if (share < new_rate) return false;  // the arrival moves the bottleneck
    min_other = std::min(min_other, share);
  }
  // Commit: one boundary, one heap push, one lane re-aim.
  group_set_rate(g, new_rate, now);
  f.draining = true;
  f.last_settled = now;
  f.group = gid;
  f.group_hist = static_cast<std::uint32_t>(g.history.size() - 1);
  graph_insert(slot);
  g.n += 1;
  g.min_other_share = min_other;
  for (std::uint8_t i = 0; i < f.path_len; ++i) {
    Link& l = links_[f.path[i]];
    if (!l.busy_active) {
      settle_link_busy(f.path[i], now);
      l.busy_active = true;
    }
  }
  group_heap_push(g, GroupEntry{g.virtual_work + f.remaining, f.admission, slot});
  ++stats_.group_fast_events;
  group_rearm(gid, now);
  if (verify_rates_) group_verify(gid);
  return true;
}

bool FlowNetwork::group_capacity_change(std::uint32_t gid, LinkId id) {
  RateGroup& g = groups_[gid];
  const TimePoint now = sim_.now();
  if (id != g.anchor) {
    // A non-anchor member link: the group survives while the link's new fair
    // share still clears the group rate. No member's rate changes, so no
    // boundary is recorded.
    const double share = links_[id].cap.bytes_per_second() /
                         static_cast<double>(link_flows_[id].size());
    if (share < g.rate) return false;
    g.min_other_share = std::min(g.min_other_share, share);
    ++stats_.group_fast_events;
    if (verify_rates_) group_verify(gid);
    return true;
  }
  const double new_rate =
      links_[id].cap.bytes_per_second() / static_cast<double>(g.n);
  if (new_rate > g.min_other_share) return false;
  ++stats_.group_fast_events;
  group_set_rate(g, new_rate, now);
  group_rearm(gid, now);
  if (verify_rates_) group_verify(gid);
  return true;
}

void FlowNetwork::dissolve_group(std::uint32_t gid) {
  RateGroup& g = groups_[gid];
  const TimePoint now = sim_.now();
  // Settle every member exactly (they all sit on the anchor), hand its rate
  // back to the per-flow field, and let the caller's slow-path rebalance
  // re-rate them and schedule fresh completion events.
  for (const std::uint32_t slot : link_flows_[g.anchor]) {
    settle_flow(slot, now);
    Flow& f = slots_[slot].flow;
    f.rate = g.rate;
    f.group = kNoGroup;
    f.group_hist = 0;
  }
  group_advance(g, now);
  ++stats_.group_dissolves;
  group_destroy(gid);
}

void FlowNetwork::group_destroy(std::uint32_t gid) {
  RateGroup& g = groups_[gid];
  sim_.lane_destroy(g.lane);
  g.lane = sim::kNoLane;
  g.history.clear();
  g.heap.clear();
  g.live = false;
  g.n = 0;
  PROPHET_CHECK(groups_live_ > 0);
  --groups_live_;
  free_groups_.push_back(gid);
}

void FlowNetwork::group_verify(std::uint32_t gid) {
  RateGroup& g = groups_[gid];
  // verify_against_full reads per-flow rate fields; refresh the members'
  // lazily-maintained copies first. Every group op in verify mode does this,
  // so the global check always sees current rates everywhere.
  for (const std::uint32_t slot : link_flows_[g.anchor]) {
    slots_[slot].flow.rate = g.rate;
  }
  verify_against_full();
}

void FlowNetwork::remove_active(std::uint32_t slot) {
  const std::uint32_t pos = slots_[slot].active_pos;
  const std::uint32_t moved = active_.back();
  active_[pos] = moved;
  active_.pop_back();
  if (moved != slot) slots_[moved].active_pos = pos;
}

void FlowNetwork::release_slot(std::uint32_t slot) {
  FlowSlot& s = slots_[slot];
  s.flow.on_complete = nullptr;
  s.flow.completion = sim::EventHandle{};
  s.flow.draining = false;
  s.occupied = false;
  ++s.generation;
  free_slots_.push_back(slot);
  remove_active(slot);
}

// --- original full-recompute path -------------------------------------------

void FlowNetwork::advance_to_now() {
  const TimePoint now = sim_.now();
  if (now == last_update_) return;
  const double elapsed_s = (now - last_update_).to_seconds();
  gather_draining_by_admission(all_draining_);
  for (const std::uint32_t slot : all_draining_) {
    Flow& flow = slots_[slot].flow;
    flow.last_settled = now;
    if (flow.rate <= 0.0) continue;
    ++stats_.flows_settled;
    const double drained = std::min(flow.remaining, flow.rate * elapsed_s);
    flow.remaining -= drained;
    for (std::uint8_t i = 0; i < flow.path_len; ++i) {
      Link& l = links_[flow.path[i]];
      l.total_bytes += drained;
      if (l.tracker != nullptr) l.tracker->add_amount_spread(last_update_, now, drained);
    }
  }
  const Duration elapsed = now - last_update_;
  for (Link& l : links_) {
    if (l.busy_active) l.busy += elapsed;
    l.busy_mark = now;
  }
  last_update_ = now;
}

void FlowNetwork::reassign_rates() {
  gather_draining_by_admission(all_draining_);
  ++stats_.rebalances;
  stats_.component_flows += all_draining_.size();
  progressive_fill(all_draining_,
                   [&](std::uint32_t slot, double r) { slots_[slot].flow.rate = r; });
  for (Link& l : links_) l.busy_active = false;
  for (const std::uint32_t slot : all_draining_) {
    const Flow& flow = slots_[slot].flow;
    if (flow.rate <= 0.0) continue;
    for (std::uint8_t i = 0; i < flow.path_len; ++i) {
      links_[flow.path[i]].busy_active = true;
    }
  }
  // Reschedule completions at the new rates.
  for (const std::uint32_t slot : all_draining_) reschedule_completion(slot);
}

void FlowNetwork::enter_drain(FlowId id) {
  const std::ptrdiff_t found = find_slot(id);
  // The flow may have been cancelled while still in setup; its ramp event
  // then fires against a stale id and must be inert.
  if (found < 0) return;
  const auto slot = static_cast<std::uint32_t>(found);
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    slots_[slot].flow.draining = true;
    graph_insert(slot);
    reassign_rates();
    return;
  }
  const TimePoint now = sim_.now();
  // An arrival that lands squarely on one rate group's bottleneck joins it
  // in O(log n) without touching the rest of the component.
  if (group_try_admit(slot, now)) return;
  Flow& f = slots_[slot].flow;
  // The arrival may bridge previously independent components; its whole path
  // seeds the frontier.
  std::array<LinkId, kMaxPathLinks> seeds = f.path;
  collect_component(seeds.data(), f.path_len);
  settle_component(now);
  f.draining = true;
  f.last_settled = now;
  graph_insert(slot);
  comp_flows_.push_back(slot);
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return slots_[a].flow.admission < slots_[b].flow.admission;
            });
  refill_component();
}

Bytes FlowNetwork::cancel_flow(FlowId id) {
  const std::ptrdiff_t found = find_slot(id);
  if (found < 0) return Bytes::zero();
  const auto slot = static_cast<std::uint32_t>(found);
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    FlowSlot& s = slots_[slot];
    const auto remaining =
        static_cast<std::int64_t>(std::ceil(s.flow.remaining - kDrainEpsilon));
    s.flow.completion.cancel();
    if (s.flow.draining) graph_remove(slot);
    release_slot(slot);
    reassign_rates();
    return Bytes::of(std::max<std::int64_t>(remaining, 0));
  }
  const TimePoint now = sim_.now();
  FlowSlot& s = slots_[slot];
  if (s.flow.draining && s.flow.group != kNoGroup) {
    // Fast-path abort of a grouped member (crash teardown mid-incast):
    // settle it exactly, then detach — the group re-rates in O(log n) or
    // dissolves if the departure moves the bottleneck.
    settle_flow(slot, now);
    const auto remaining =
        static_cast<std::int64_t>(std::ceil(s.flow.remaining - kDrainEpsilon));
    group_remove_member(s.flow.group, slot, now);
    return Bytes::of(std::max<std::int64_t>(remaining, 0));
  }
  if (s.flow.draining) {
    std::array<LinkId, kMaxPathLinks> seeds = s.flow.path;
    const std::uint8_t n_seeds = s.flow.path_len;
    collect_component(seeds.data(), n_seeds);
    settle_component(now);
    const auto remaining =
        static_cast<std::int64_t>(std::ceil(s.flow.remaining - kDrainEpsilon));
    s.flow.completion.cancel();
    graph_remove(slot);
    release_slot(slot);
    refill_component();
    return Bytes::of(std::max<std::int64_t>(remaining, 0));
  }
  // Still in setup: the flow held no capacity, so no rates change.
  const auto remaining =
      static_cast<std::int64_t>(std::ceil(s.flow.remaining - kDrainEpsilon));
  s.flow.completion.cancel();
  release_slot(slot);
  return Bytes::of(std::max<std::int64_t>(remaining, 0));
}

double FlowNetwork::flow_remaining_bytes(FlowId id) {
  const std::ptrdiff_t slot = find_slot(id);
  if (slot < 0) return 0.0;
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
  } else {
    settle_flow(static_cast<std::uint32_t>(slot), sim_.now());
  }
  return slots_[static_cast<std::size_t>(slot)].flow.remaining;
}

void FlowNetwork::complete_flow(FlowId id) {
  const std::ptrdiff_t found = find_slot(id);
  if (found < 0) return;
  const auto slot = static_cast<std::uint32_t>(found);
  if (mode_ == RebalanceMode::kFull) {
    advance_to_now();
    FlowSlot& s = slots_[slot];
    PROPHET_CHECK_MSG(s.flow.remaining <= 1.0,
                      "flow completion fired with bytes still pending");
    auto on_complete = std::move(s.flow.on_complete);
    if (s.flow.draining) graph_remove(slot);
    release_slot(slot);
    reassign_rates();
    if (on_complete) on_complete(id);
    return;
  }
  const TimePoint now = sim_.now();
  FlowSlot& s = slots_[slot];
  std::array<LinkId, kMaxPathLinks> seeds = s.flow.path;
  const std::uint8_t n_seeds = s.flow.path_len;
  collect_component(seeds.data(), n_seeds);
  settle_component(now);
  PROPHET_CHECK_MSG(s.flow.remaining <= 1.0,
                    "flow completion fired with bytes still pending");
  auto on_complete = std::move(s.flow.on_complete);
  graph_remove(slot);
  release_slot(slot);
  refill_component();
  if (on_complete) on_complete(id);
}

}  // namespace prophet::net
