#include "net/flow_network.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace prophet::net {

namespace {
// A flow is "done" when its remaining byte count falls below this; avoids
// rescheduling completions for sub-byte floating-point residue.
constexpr double kDrainEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& sim, TcpCostModel cost_model)
    : sim_{sim}, cost_model_{cost_model} {}

NodeId FlowNetwork::add_node(std::string name, Bandwidth egress, Bandwidth ingress) {
  PROPHET_CHECK(!egress.is_zero() && !ingress.is_zero());
  nodes_.push_back(Node{std::move(name), Port{egress}, Port{ingress}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& FlowNetwork::node_name(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

FlowNetwork::Port& FlowNetwork::port(NodeId id, Direction dir) {
  PROPHET_CHECK(id < nodes_.size());
  return dir == Direction::kTx ? nodes_[id].tx : nodes_[id].rx;
}

const FlowNetwork::Port& FlowNetwork::port(NodeId id, Direction dir) const {
  PROPHET_CHECK(id < nodes_.size());
  return dir == Direction::kTx ? nodes_[id].tx : nodes_[id].rx;
}

void FlowNetwork::set_capacity(NodeId id, Direction dir, Bandwidth cap) {
  PROPHET_CHECK(!cap.is_zero());
  advance_to_now();
  port(id, dir).cap = cap;
  reassign_rates();
}

Bandwidth FlowNetwork::capacity(NodeId id, Direction dir) const { return port(id, dir).cap; }

void FlowNetwork::set_link_up(NodeId id, bool up) {
  PROPHET_CHECK(id < nodes_.size());
  if (nodes_[id].up == up) return;
  advance_to_now();
  nodes_[id].up = up;
  reassign_rates();
}

bool FlowNetwork::link_up(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return nodes_[id].up;
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, Bytes size,
                               std::function<void(FlowId)> on_complete) {
  PROPHET_CHECK(src < nodes_.size() && dst < nodes_.size());
  PROPHET_CHECK_MSG(src != dst, "loopback flows are not modeled");
  PROPHET_CHECK(size.count() >= 0);
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(size.count());
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));

  // The setup ramp is computed against the path's solo line rate: the best
  // the congestion window could hope for, matching how slow start probes.
  const Bandwidth line_rate =
      std::min(nodes_[src].tx.cap, nodes_[dst].rx.cap);
  const Duration setup = cost_model_.setup_delay(size, line_rate);
  sim_.schedule_after(setup, [this, id] { enter_drain(id); });
  return id;
}

Bandwidth FlowNetwork::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  PROPHET_CHECK_MSG(it != flows_.end(), "flow_rate on unknown flow");
  return Bandwidth::bytes_per_sec(it->second.rate);
}

void FlowNetwork::attach_tracker(NodeId id, Direction dir, BinnedSeries* series) {
  port(id, dir).tracker = series;
}

std::int64_t FlowNetwork::total_bytes(NodeId id, Direction dir) {
  advance_to_now();
  return static_cast<std::int64_t>(port(id, dir).total_bytes);
}

Duration FlowNetwork::busy_time(NodeId id, Direction dir) {
  advance_to_now();
  return port(id, dir).busy;
}

void FlowNetwork::advance_to_now() {
  const TimePoint now = sim_.now();
  if (now == last_update_) return;
  const double elapsed_s = (now - last_update_).to_seconds();
  std::vector<bool> tx_busy(nodes_.size(), false);
  std::vector<bool> rx_busy(nodes_.size(), false);
  for (auto& [id, flow] : flows_) {
    if (!flow.draining || flow.rate <= 0.0) continue;
    const double drained = std::min(flow.remaining, flow.rate * elapsed_s);
    flow.remaining -= drained;
    auto& tx = nodes_[flow.src].tx;
    auto& rx = nodes_[flow.dst].rx;
    tx.total_bytes += drained;
    rx.total_bytes += drained;
    if (tx.tracker != nullptr) tx.tracker->add_amount_spread(last_update_, now, drained);
    if (rx.tracker != nullptr) rx.tracker->add_amount_spread(last_update_, now, drained);
    tx_busy[flow.src] = true;
    rx_busy[flow.dst] = true;
  }
  const Duration elapsed = now - last_update_;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (tx_busy[n]) nodes_[n].tx.busy += elapsed;
    if (rx_busy[n]) nodes_[n].rx.busy += elapsed;
  }
  last_update_ = now;
}

void FlowNetwork::reassign_rates() {
  // Progressive filling: repeatedly saturate the port with the smallest fair
  // share, freeze its flows at that rate, remove the consumed capacity.
  struct PortState {
    double cap;
    int unfrozen = 0;
  };
  std::vector<PortState> tx(nodes_.size());
  std::vector<PortState> rx(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    // A down link offers no capacity: its flows freeze at rate zero below.
    tx[n].cap = nodes_[n].up ? nodes_[n].tx.cap.bytes_per_second() : 0.0;
    rx[n].cap = nodes_[n].up ? nodes_[n].rx.cap.bytes_per_second() : 0.0;
  }
  std::vector<std::pair<FlowId, Flow*>> unfrozen;
  for (auto& [id, flow] : flows_) {
    if (!flow.draining) continue;
    flow.rate = 0.0;
    unfrozen.emplace_back(id, &flow);
    ++tx[flow.src].unfrozen;
    ++rx[flow.dst].unfrozen;
  }

  while (!unfrozen.empty()) {
    // Find the tightest port among those with unfrozen flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (tx[n].unfrozen > 0) min_share = std::min(min_share, tx[n].cap / tx[n].unfrozen);
      if (rx[n].unfrozen > 0) min_share = std::min(min_share, rx[n].cap / rx[n].unfrozen);
    }
    PROPHET_CHECK(min_share < std::numeric_limits<double>::infinity());
    // Floating-point residue in the capacity subtractions can push a nearly
    // exhausted port's share epsilon-negative; clamp so no flow ever gets a
    // negative rate.
    min_share = std::max(min_share, 0.0);
    // Freeze every flow touching a port whose fair share equals the minimum.
    auto is_tight = [&](const Flow& f) {
      const double tx_share = tx[f.src].cap / tx[f.src].unfrozen;
      const double rx_share = rx[f.dst].cap / rx[f.dst].unfrozen;
      return tx_share <= min_share * (1.0 + 1e-12) || rx_share <= min_share * (1.0 + 1e-12);
    };
    bool froze_any = false;
    for (auto it = unfrozen.begin(); it != unfrozen.end();) {
      Flow& f = *it->second;
      if (is_tight(f)) {
        f.rate = min_share;
        tx[f.src].cap -= min_share;
        rx[f.dst].cap -= min_share;
        --tx[f.src].unfrozen;
        --rx[f.dst].unfrozen;
        it = unfrozen.erase(it);
        froze_any = true;
      } else {
        ++it;
      }
    }
    PROPHET_CHECK_MSG(froze_any, "progressive filling made no progress");
  }

  // Reschedule completions at the new rates.
  for (auto& [id, flow] : flows_) {
    if (!flow.draining) continue;
    flow.completion.cancel();
    if (flow.remaining <= kDrainEpsilon) {
      const FlowId fid = id;
      flow.completion = sim_.schedule_after(Duration::zero(),
                                            [this, fid] { complete_flow(fid); });
    } else if (flow.rate > 0.0) {
      const Duration eta = Duration::from_seconds(flow.remaining / flow.rate);
      const FlowId fid = id;
      flow.completion = sim_.schedule_after(eta, [this, fid] { complete_flow(fid); });
    }
    // rate == 0 (fully starved port) leaves the flow parked until the next
    // reassignment; set_capacity / flow departures will wake it.
  }
}

void FlowNetwork::enter_drain(FlowId id) {
  const auto it = flows_.find(id);
  PROPHET_CHECK(it != flows_.end());
  advance_to_now();
  it->second.draining = true;
  reassign_rates();
}

void FlowNetwork::complete_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_to_now();
  PROPHET_CHECK_MSG(it->second.remaining <= 1.0,
                    "flow completion fired with bytes still pending");
  auto on_complete = std::move(it->second.on_complete);
  flows_.erase(it);
  reassign_rates();
  if (on_complete) on_complete(id);
}

}  // namespace prophet::net
