#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace prophet::net {

namespace {
// A flow is "done" when its remaining byte count falls below this; avoids
// rescheduling completions for sub-byte floating-point residue.
constexpr double kDrainEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& sim, TcpCostModel cost_model)
    : sim_{sim}, cost_model_{cost_model} {}

NodeId FlowNetwork::add_node(std::string name, Bandwidth egress, Bandwidth ingress) {
  PROPHET_CHECK(!egress.is_zero() && !ingress.is_zero());
  nodes_.push_back(Node{std::move(name), Port{egress}, Port{ingress}});
  fill_tx_.emplace_back();
  fill_rx_.emplace_back();
  busy_tx_.push_back(0);
  busy_rx_.push_back(0);
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& FlowNetwork::node_name(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

FlowNetwork::Port& FlowNetwork::port(NodeId id, Direction dir) {
  PROPHET_CHECK(id < nodes_.size());
  return dir == Direction::kTx ? nodes_[id].tx : nodes_[id].rx;
}

const FlowNetwork::Port& FlowNetwork::port(NodeId id, Direction dir) const {
  PROPHET_CHECK(id < nodes_.size());
  return dir == Direction::kTx ? nodes_[id].tx : nodes_[id].rx;
}

std::ptrdiff_t FlowNetwork::find_slot(FlowId id) const {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return -1;
  const FlowSlot& s = slots_[slot];
  if (!s.occupied || s.generation != generation) return -1;
  return static_cast<std::ptrdiff_t>(slot);
}

void FlowNetwork::set_capacity(NodeId id, Direction dir, Bandwidth cap) {
  PROPHET_CHECK(!cap.is_zero());
  advance_to_now();
  port(id, dir).cap = cap;
  reassign_rates();
}

Bandwidth FlowNetwork::capacity(NodeId id, Direction dir) const { return port(id, dir).cap; }

void FlowNetwork::set_link_up(NodeId id, bool up) {
  PROPHET_CHECK(id < nodes_.size());
  if (nodes_[id].up == up) return;
  advance_to_now();
  nodes_[id].up = up;
  reassign_rates();
}

bool FlowNetwork::link_up(NodeId id) const {
  PROPHET_CHECK(id < nodes_.size());
  return nodes_[id].up;
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, Bytes size,
                               std::function<void(FlowId)> on_complete) {
  PROPHET_CHECK(src < nodes_.size() && dst < nodes_.size());
  PROPHET_CHECK_MSG(src != dst, "loopback flows are not modeled");
  PROPHET_CHECK(size.count() >= 0);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  FlowSlot& s = slots_[slot];
  s.occupied = true;
  s.flow.src = src;
  s.flow.dst = dst;
  s.flow.remaining = static_cast<double>(size.count());
  s.flow.draining = false;
  s.flow.rate = 0.0;
  s.flow.on_complete = std::move(on_complete);
  s.flow.completion = sim::EventHandle{};
  active_.push_back(slot);
  const FlowId id = make_id(s.generation, slot);

  // The setup ramp is computed against the path's solo line rate: the best
  // the congestion window could hope for, matching how slow start probes.
  const Bandwidth line_rate = std::min(nodes_[src].tx.cap, nodes_[dst].rx.cap);
  const Duration setup = cost_model_.setup_delay(size, line_rate);
  sim_.schedule_after(setup, [this, id] { enter_drain(id); });
  return id;
}

Bandwidth FlowNetwork::flow_rate(FlowId id) const {
  const std::ptrdiff_t slot = find_slot(id);
  PROPHET_CHECK_MSG(slot >= 0, "flow_rate on unknown flow");
  return Bandwidth::bytes_per_sec(slots_[static_cast<std::size_t>(slot)].flow.rate);
}

void FlowNetwork::attach_tracker(NodeId id, Direction dir, BinnedSeries* series) {
  port(id, dir).tracker = series;
}

std::int64_t FlowNetwork::total_bytes(NodeId id, Direction dir) {
  advance_to_now();
  return static_cast<std::int64_t>(port(id, dir).total_bytes);
}

Duration FlowNetwork::busy_time(NodeId id, Direction dir) {
  advance_to_now();
  return port(id, dir).busy;
}

void FlowNetwork::advance_to_now() {
  const TimePoint now = sim_.now();
  if (now == last_update_) return;
  const double elapsed_s = (now - last_update_).to_seconds();
  std::fill(busy_tx_.begin(), busy_tx_.end(), 0);
  std::fill(busy_rx_.begin(), busy_rx_.end(), 0);
  for (const std::uint32_t slot : active_) {
    Flow& flow = slots_[slot].flow;
    if (!flow.draining || flow.rate <= 0.0) continue;
    const double drained = std::min(flow.remaining, flow.rate * elapsed_s);
    flow.remaining -= drained;
    auto& tx = nodes_[flow.src].tx;
    auto& rx = nodes_[flow.dst].rx;
    tx.total_bytes += drained;
    rx.total_bytes += drained;
    if (tx.tracker != nullptr) tx.tracker->add_amount_spread(last_update_, now, drained);
    if (rx.tracker != nullptr) rx.tracker->add_amount_spread(last_update_, now, drained);
    busy_tx_[flow.src] = 1;
    busy_rx_[flow.dst] = 1;
  }
  const Duration elapsed = now - last_update_;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (busy_tx_[n] != 0) nodes_[n].tx.busy += elapsed;
    if (busy_rx_[n] != 0) nodes_[n].rx.busy += elapsed;
  }
  last_update_ = now;
}

void FlowNetwork::reassign_rates() {
  // Progressive filling: repeatedly saturate the port with the smallest fair
  // share, freeze its flows at that rate, remove the consumed capacity. Only
  // ports that carry a draining flow participate; everything runs out of
  // persistent scratch, so steady-state reassignment allocates nothing.
  unfrozen_.clear();
  active_tx_ports_.clear();
  active_rx_ports_.clear();
  for (const std::uint32_t slot : active_) {
    Flow& flow = slots_[slot].flow;
    if (!flow.draining) continue;
    flow.rate = 0.0;
    unfrozen_.push_back(slot);
    if (fill_tx_[flow.src].unfrozen == 0) {
      // First draining flow on this port: (re)load its capacity. A down link
      // offers no capacity: its flows freeze at rate zero below.
      fill_tx_[flow.src].cap = nodes_[flow.src].up
                                   ? nodes_[flow.src].tx.cap.bytes_per_second()
                                   : 0.0;
      active_tx_ports_.push_back(flow.src);
    }
    ++fill_tx_[flow.src].unfrozen;
    if (fill_rx_[flow.dst].unfrozen == 0) {
      fill_rx_[flow.dst].cap = nodes_[flow.dst].up
                                   ? nodes_[flow.dst].rx.cap.bytes_per_second()
                                   : 0.0;
      active_rx_ports_.push_back(flow.dst);
    }
    ++fill_rx_[flow.dst].unfrozen;
  }

  std::size_t remaining = unfrozen_.size();
  while (remaining > 0) {
    // Find the tightest port among those with unfrozen flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (const NodeId n : active_tx_ports_) {
      if (fill_tx_[n].unfrozen > 0) {
        min_share = std::min(min_share, fill_tx_[n].cap / fill_tx_[n].unfrozen);
      }
    }
    for (const NodeId n : active_rx_ports_) {
      if (fill_rx_[n].unfrozen > 0) {
        min_share = std::min(min_share, fill_rx_[n].cap / fill_rx_[n].unfrozen);
      }
    }
    PROPHET_CHECK(min_share < std::numeric_limits<double>::infinity());
    // Floating-point residue in the capacity subtractions can push a nearly
    // exhausted port's share epsilon-negative; clamp so no flow ever gets a
    // negative rate.
    min_share = std::max(min_share, 0.0);
    // Freeze every flow touching a port whose fair share equals the minimum.
    const auto is_tight = [&](const Flow& f) {
      const double tx_share = fill_tx_[f.src].cap / fill_tx_[f.src].unfrozen;
      const double rx_share = fill_rx_[f.dst].cap / fill_rx_[f.dst].unfrozen;
      return tx_share <= min_share * (1.0 + 1e-12) ||
             rx_share <= min_share * (1.0 + 1e-12);
    };
    bool froze_any = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < remaining; ++i) {
      Flow& f = slots_[unfrozen_[i]].flow;
      if (is_tight(f)) {
        f.rate = min_share;
        fill_tx_[f.src].cap -= min_share;
        fill_rx_[f.dst].cap -= min_share;
        --fill_tx_[f.src].unfrozen;
        --fill_rx_[f.dst].unfrozen;
        froze_any = true;
      } else {
        unfrozen_[kept++] = unfrozen_[i];
      }
    }
    remaining = kept;
    PROPHET_CHECK_MSG(froze_any, "progressive filling made no progress");
  }

  // Reschedule completions at the new rates.
  for (const std::uint32_t slot : active_) {
    Flow& flow = slots_[slot].flow;
    if (!flow.draining) continue;
    flow.completion.cancel();
    const FlowId fid = make_id(slots_[slot].generation, slot);
    if (flow.remaining <= kDrainEpsilon) {
      flow.completion =
          sim_.schedule_after(Duration::zero(), [this, fid] { complete_flow(fid); });
    } else if (flow.rate > 0.0) {
      const Duration eta = Duration::from_seconds(flow.remaining / flow.rate);
      flow.completion = sim_.schedule_after(eta, [this, fid] { complete_flow(fid); });
    }
    // rate == 0 (fully starved port) leaves the flow parked until the next
    // reassignment; set_capacity / flow departures will wake it.
  }
}

void FlowNetwork::enter_drain(FlowId id) {
  const std::ptrdiff_t slot = find_slot(id);
  // The flow may have been cancelled while still in setup; its ramp event
  // then fires against a stale id and must be inert.
  if (slot < 0) return;
  advance_to_now();
  slots_[static_cast<std::size_t>(slot)].flow.draining = true;
  reassign_rates();
}

Bytes FlowNetwork::cancel_flow(FlowId id) {
  const std::ptrdiff_t found = find_slot(id);
  if (found < 0) return Bytes::zero();
  const auto slot = static_cast<std::uint32_t>(found);
  advance_to_now();
  FlowSlot& s = slots_[slot];
  // Round the fractional residue up: a resuming retry must cover every byte
  // the drain did not fully deliver.
  const auto remaining =
      static_cast<std::int64_t>(std::ceil(s.flow.remaining - kDrainEpsilon));
  s.flow.completion.cancel();
  s.flow.on_complete = nullptr;
  s.flow.completion = sim::EventHandle{};
  s.occupied = false;
  ++s.generation;
  free_slots_.push_back(slot);
  active_.erase(std::find(active_.begin(), active_.end(), slot));
  reassign_rates();
  return Bytes::of(std::max<std::int64_t>(remaining, 0));
}

double FlowNetwork::flow_remaining_bytes(FlowId id) {
  const std::ptrdiff_t slot = find_slot(id);
  if (slot < 0) return 0.0;
  advance_to_now();
  return slots_[static_cast<std::size_t>(slot)].flow.remaining;
}

void FlowNetwork::complete_flow(FlowId id) {
  const std::ptrdiff_t found = find_slot(id);
  if (found < 0) return;
  const auto slot = static_cast<std::uint32_t>(found);
  advance_to_now();
  FlowSlot& s = slots_[slot];
  PROPHET_CHECK_MSG(s.flow.remaining <= 1.0,
                    "flow completion fired with bytes still pending");
  auto on_complete = std::move(s.flow.on_complete);
  s.flow.on_complete = nullptr;
  s.flow.completion = sim::EventHandle{};
  s.occupied = false;
  ++s.generation;
  free_slots_.push_back(slot);
  active_.erase(std::find(active_.begin(), active_.end(), slot));
  reassign_rates();
  if (on_complete) on_complete(id);
}

}  // namespace prophet::net
