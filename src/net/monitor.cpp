#include "net/monitor.hpp"

#include "common/check.hpp"

namespace prophet::net {

BandwidthMonitor::BandwidthMonitor(sim::Simulator& sim, FlowNetwork& network,
                                   NodeId node, Direction dir,
                                   BandwidthMonitorConfig config)
    : sim_{sim},
      network_{network},
      node_{node},
      dir_{dir},
      config_{config},
      ewma_{config.ewma_alpha} {
  PROPHET_CHECK(config_.sample_period > Duration::zero());
  timer_ = sim_.schedule_periodic(config_.sample_period,
                                  [this](TimePoint) { sample_now(); });
}

BandwidthMonitor::~BandwidthMonitor() { timer_.cancel(); }

void BandwidthMonitor::sample_now() {
  const auto bytes = static_cast<double>(network_.total_bytes(node_, dir_));
  const Duration busy = network_.busy_time(node_, dir_);
  const double delta_bytes = bytes - last_bytes_;
  const Duration delta_busy = busy - last_busy_;
  last_bytes_ = bytes;
  last_busy_ = busy;
  ++samples_;
  if (delta_busy < config_.min_busy_time || delta_bytes <= 0.0) return;
  ewma_.add(delta_bytes / delta_busy.to_seconds());
}

Bandwidth BandwidthMonitor::estimate() const {
  if (ewma_.has_value()) return Bandwidth::bytes_per_sec(ewma_.value());
  return network_.capacity(node_, dir_);
}

}  // namespace prophet::net
