// Flow-level network model: a set of nodes (each with an egress and an
// ingress port) exchanging flows whose rates are assigned by progressive
// filling (max-min fairness) — the standard fluid approximation of TCP
// sharing a bottleneck.
//
// This is the substrate under the PS architecture: worker->PS pushes share
// the PS ingress port (incast), PS->worker pulls share the PS egress port,
// and per-worker limits model heterogeneous clusters (Sec. 5.3).
//
// A flow passes through two phases:
//   1. setup  — latency-bound (per-task overhead + TCP slow-start ramp from
//               TcpCostModel); consumes no port capacity;
//   2. drain  — its bytes drain at the max-min fair rate; rates are
//               recomputed whenever a flow enters/leaves drain or a port
//               capacity changes.
//
// Flows live in a slab: each admitted flow occupies a reusable slot and its
// FlowId encodes {generation, slot}, so admission allocates nothing in
// steady state and stale ids are recognized cheaply. Rate reassignment works
// from persistent scratch buffers and only walks the ports that currently
// carry draining flows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/time_series.hpp"
#include "common/units.hpp"
#include "net/cost_model.hpp"
#include "sim/simulator.hpp"

namespace prophet::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

enum class Direction { kTx, kRx };

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& sim, TcpCostModel cost_model);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  NodeId add_node(std::string name, Bandwidth egress, Bandwidth ingress);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  // Dynamic capacity change (takes effect immediately; in-flight flows are
  // re-rated). Models the varying-bandwidth experiments of Sec. 5.3.
  void set_capacity(NodeId id, Direction dir, Bandwidth cap);
  [[nodiscard]] Bandwidth capacity(NodeId id, Direction dir) const;

  // Fault injection: a down link contributes zero capacity in both
  // directions, so its draining flows park at rate zero (they stall without
  // losing progress and resume, re-rated, when the link comes back up).
  // capacity() keeps reporting the configured rate; setup-phase delays of
  // already-started flows still elapse while the link is down.
  void set_link_up(NodeId id, bool up);
  [[nodiscard]] bool link_up(NodeId id) const;

  // Starts a flow of `size` bytes from `src` to `dst`. `on_complete` fires
  // (once) when the last byte drains. Zero-size flows complete after setup.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size,
                    std::function<void(FlowId)> on_complete);

  // Aborts a flow without firing its completion callback (transport loss or
  // a crashed endpoint). Returns the bytes that had not yet drained, rounded
  // up — what a byte-range-resuming retry would still have to send. Stale
  // ids are a no-op returning zero.
  Bytes cancel_flow(FlowId id);
  // Bytes not yet drained, settled to now(); zero for stale ids. Kept as the
  // raw fractional count so progress watchdogs see sub-byte movement.
  [[nodiscard]] double flow_remaining_bytes(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const { return find_slot(id) >= 0; }
  [[nodiscard]] std::size_t active_flow_count() const { return active_.size(); }
  // Current drain rate; zero while in setup.
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  // --- observability ------------------------------------------------------
  // Optional per-node throughput series (bytes credited as flows drain).
  void attach_tracker(NodeId id, Direction dir, BinnedSeries* series);
  // Bytes moved through the port up to the current simulation time. Not
  // const: in-flight flows are settled up to now() before reading.
  [[nodiscard]] std::int64_t total_bytes(NodeId id, Direction dir);
  // Cumulative time the port had at least one draining flow, up to now().
  [[nodiscard]] Duration busy_time(NodeId id, Direction dir);

 private:
  struct Port {
    Bandwidth cap;
    double total_bytes = 0.0;
    Duration busy{};
    BinnedSeries* tracker = nullptr;
  };
  struct Node {
    std::string name;
    Port tx;
    Port rx;
    bool up = true;
  };
  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;  // bytes left to drain
    bool draining = false;
    double rate = 0.0;  // bytes/s, valid while draining
    std::function<void(FlowId)> on_complete;
    sim::EventHandle completion;
  };
  // One slab entry; `generation` advances when the slot is recycled so stale
  // FlowIds stop resolving.
  struct FlowSlot {
    Flow flow;
    std::uint32_t generation = 1;
    bool occupied = false;
  };
  // Per-port scratch for progressive filling (persistent across calls).
  struct PortFill {
    double cap = 0.0;
    int unfrozen = 0;
  };

  static constexpr FlowId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<FlowId>(generation) << 32) | slot;
  }
  // Slot index for a live id, or -1 if the id is stale/unknown.
  [[nodiscard]] std::ptrdiff_t find_slot(FlowId id) const;

  Port& port(NodeId id, Direction dir);
  [[nodiscard]] const Port& port(NodeId id, Direction dir) const;

  // Credits drained bytes / busy time for [last_update_, now] at current
  // rates, then sets last_update_ = now. Must precede any rate change.
  void advance_to_now();
  // Recomputes max-min fair rates and reschedules completion events.
  void reassign_rates();
  void enter_drain(FlowId id);
  void complete_flow(FlowId id);

  sim::Simulator& sim_;
  TcpCostModel cost_model_;
  std::vector<Node> nodes_;
  std::vector<FlowSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Slots of admitted flows, in admission order (completion removes in
  // place, preserving order — rate reassignment and byte crediting walk
  // flows in this deterministic order).
  std::vector<std::uint32_t> active_;
  TimePoint last_update_{};

  // Persistent scratch (sized to the node/flow counts, reused every call).
  std::vector<PortFill> fill_tx_;
  std::vector<PortFill> fill_rx_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<NodeId> active_tx_ports_;
  std::vector<NodeId> active_rx_ports_;
  std::vector<char> busy_tx_;
  std::vector<char> busy_rx_;
};

}  // namespace prophet::net
