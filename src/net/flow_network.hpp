// Flow-level network model: a set of nodes exchanging flows whose rates are
// assigned by progressive filling (max-min fairness) — the standard fluid
// approximation of TCP sharing a bottleneck.
//
// Capacity lives in *links*, the unit of contention. Every node owns two
// access links (egress and ingress — the NIC ports of the original
// star-topology model), and the network can additionally hold shared links:
// per-rack leaf-spine uplinks with a configurable capacity, which is where
// oversubscription and cross-job contention live. Each flow traverses a
// deterministic path of links:
//
//   intra-rack / star:  [src.tx, dst.rx]
//   cross-rack:         [src.tx, srcrack.up, dstrack.down, dst.rx]
//
// (a node not assigned to any rack attaches directly to the spine, so only
// its own access links appear on its paths). Progressive filling runs over
// whatever links carry draining flows, so an oversubscribed uplink shared by
// two jobs caps their aggregate rate without any scheduler involvement. A
// star network — no racks — reduces exactly to the original two-port model,
// bit for bit.
//
// This is the substrate under the PS architecture: worker->PS pushes share
// the PS ingress (incast), PS->worker pulls share the PS egress, and
// per-worker limits model heterogeneous clusters (Sec. 5.3).
//
// A flow passes through two phases:
//   1. setup  — latency-bound (per-task overhead + TCP slow-start ramp from
//               TcpCostModel); consumes no link capacity;
//   2. drain  — its bytes drain at the max-min fair rate; rates are
//               recomputed whenever a flow enters/leaves drain or a link
//               capacity changes.
//
// Flows live in a slab: each admitted flow occupies a reusable slot and its
// FlowId encodes {generation, slot}, so admission allocates nothing in
// steady state and stale ids are recognized cheaply.
//
// Rate maintenance is *incremental*: the network keeps the flow<->link
// contention graph explicit (per-link lists of draining flows), and a flow
// arrival/departure or a link capacity/state change rebalances only the
// connected component of that graph reachable from the dirty links. Flows in
// other components keep their rates, their byte accounting (settled lazily,
// per flow, against piecewise-constant rates) and their already-scheduled
// completion events. Max-min allocations are component-local, so the rates
// are the ones a full recompute would produce — a property the differential
// verification mode (`set_verify_rates`) checks bit-for-bit against the
// retained full algorithm after every rebalance. `RebalanceMode::kFull`
// keeps the original whole-network path alive as the reference baseline
// (bench/scale measures incremental speedup against it).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/time_series.hpp"
#include "common/units.hpp"
#include "net/cost_model.hpp"
#include "sim/simulator.hpp"

namespace prophet::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using RackId = std::uint32_t;
using FlowId = std::uint64_t;

// A node outside any rack attaches straight to the spine.
inline constexpr RackId kNoRack = 0xffffffffu;

enum class Direction { kTx, kRx };

// How rate reassignment reacts to a contention change. kIncremental walks
// only the affected connected component of the flow<->link graph;
// kFull re-runs progressive filling over the whole network on every change
// (the original algorithm, kept as the reference/bench baseline).
enum class RebalanceMode { kIncremental, kFull };

// Rebalance-engine observability counters, cumulative over the network's
// lifetime. Cheap enough to maintain unconditionally; surfaced through
// ClusterResult / MultiJobResult and the BENCH_scale.json writer so perf
// regressions can be triaged from recorded artifacts instead of reruns.
struct RebalanceStats {
  // Slow-path component rebalances (collect + settle + progressive fill).
  std::uint64_t rebalances = 0;
  // Flows walked by those slow-path rebalances (settled + re-rated + their
  // completions rescheduled); rebalances/flows give the mean component size.
  std::uint64_t component_flows = 0;
  // Per-flow settlement chunks applied (each one rate*elapsed credit).
  std::uint64_t flows_settled = 0;
  // Rate-group lifecycle: formations, dissolutions back to the slow path,
  // and events (completion/admission/cancel/capacity change) absorbed by a
  // group in O(log n) without a component rebalance.
  std::uint64_t group_forms = 0;
  std::uint64_t group_dissolves = 0;
  std::uint64_t group_fast_events = 0;
  // Differential verification (set_verify_rates): full-recompute comparisons
  // run and rate mismatches observed. A mismatch aborts the run, so a
  // surviving artifact always records zero — the column exists so a future
  // soft-fail mode has somewhere to report.
  std::uint64_t verify_checks = 0;
  std::uint64_t verify_mismatches = 0;
};

class FlowNetwork {
 public:
  // Longest possible path: access tx, rack uplink, rack downlink, access rx.
  static constexpr std::size_t kMaxPathLinks = 4;

  FlowNetwork(sim::Simulator& sim, TcpCostModel cost_model,
              RebalanceMode mode = RebalanceMode::kIncremental);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  [[nodiscard]] RebalanceMode rebalance_mode() const { return mode_; }
  // When enabled (tests), every incremental rebalance is followed by a full
  // progressive-filling recompute over the whole network and each draining
  // flow's rate is checked bit-identical against it; aborts on divergence.
  void set_verify_rates(bool on) { verify_rates_ = on; }

  NodeId add_node(std::string name, Bandwidth egress, Bandwidth ingress);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  // --- topology: racks and shared links -----------------------------------
  // Adds a rack whose hosts reach the spine through a pair of directed
  // shared links ("<name>.up" / "<name>.down"). Oversubscription is simply
  // uplink < sum of member access rates.
  RackId add_rack(std::string name, Bandwidth uplink, Bandwidth downlink);
  // Places a node in a rack; flows between nodes of different racks (or
  // between a racked and an unracked node) traverse the rack uplinks.
  void assign_rack(NodeId node, RackId rack);
  [[nodiscard]] RackId rack_of(NodeId node) const;
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  [[nodiscard]] const std::string& rack_name(RackId id) const;
  // kTx: the rack's uplink (toward the spine); kRx: its downlink.
  [[nodiscard]] LinkId rack_link(RackId id, Direction dir) const;

  // --- link-level API ------------------------------------------------------
  // Access links are named "<node>.tx" / "<node>.rx", rack links
  // "<rack>.up" / "<rack>.down".
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::string& link_name(LinkId id) const;
  [[nodiscard]] std::optional<LinkId> find_link(std::string_view name) const;
  [[nodiscard]] LinkId node_link(NodeId id, Direction dir) const;
  void set_link_capacity(LinkId id, Bandwidth cap);
  [[nodiscard]] Bandwidth link_capacity(LinkId id) const;
  // A down link contributes zero capacity: its draining flows park at rate
  // zero (they stall without losing progress and resume, re-rated, when the
  // link comes back up). link_capacity() keeps reporting the configured rate.
  void set_link_state(LinkId id, bool up);
  [[nodiscard]] bool link_state(LinkId id) const;
  [[nodiscard]] std::int64_t link_total_bytes(LinkId id);
  [[nodiscard]] Duration link_busy_time(LinkId id);
  void attach_link_tracker(LinkId id, BinnedSeries* series);

  // The deterministic link path a flow from `src` to `dst` traverses now.
  [[nodiscard]] std::vector<LinkId> route(NodeId src, NodeId dst) const;

  // --- node-level shims over the access links ------------------------------
  // Dynamic capacity change (takes effect immediately; in-flight flows are
  // re-rated). Models the varying-bandwidth experiments of Sec. 5.3.
  void set_capacity(NodeId id, Direction dir, Bandwidth cap);
  [[nodiscard]] Bandwidth capacity(NodeId id, Direction dir) const;

  // Fault injection: takes both access links of the node down/up at once.
  // Setup-phase delays of already-started flows still elapse while down.
  void set_link_up(NodeId id, bool up);
  [[nodiscard]] bool link_up(NodeId id) const;

  // Starts a flow of `size` bytes from `src` to `dst`. `on_complete` fires
  // (once) when the last byte drains. Zero-size flows complete after setup.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size,
                    std::function<void(FlowId)> on_complete);

  // Aborts a flow without firing its completion callback (transport loss or
  // a crashed endpoint). Returns the bytes that had not yet drained, rounded
  // up — what a byte-range-resuming retry would still have to send. Stale
  // ids are a no-op returning zero.
  Bytes cancel_flow(FlowId id);
  // Bytes not yet drained, settled to now(); zero for stale ids. Kept as the
  // raw fractional count so progress watchdogs see sub-byte movement.
  [[nodiscard]] double flow_remaining_bytes(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const { return find_slot(id) >= 0; }
  [[nodiscard]] std::size_t active_flow_count() const { return active_.size(); }
  // Current drain rate; zero while in setup.
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  // --- observability ------------------------------------------------------
  // Optional per-node throughput series (bytes credited as flows drain).
  void attach_tracker(NodeId id, Direction dir, BinnedSeries* series);
  // Bytes moved through the access link up to the current simulation time.
  // Not const: in-flight flows are settled up to now() before reading.
  [[nodiscard]] std::int64_t total_bytes(NodeId id, Direction dir);
  // Cumulative time the access link had at least one draining flow, to now().
  [[nodiscard]] Duration busy_time(NodeId id, Direction dir);
  [[nodiscard]] const RebalanceStats& rebalance_stats() const { return stats_; }
  // Live rate groups (see the RateGroup comment below); exposed for tests.
  [[nodiscard]] std::size_t rate_group_count() const { return groups_live_; }

 private:
  // The unit of capacity and contention (an access port or a shared rack
  // uplink). `up` is per-link so a rack uplink can fail independently of the
  // hosts behind it. `busy_active`/`busy_mark` accrue busy time exactly
  // between contention changes (a link is busy while it carries at least one
  // positive-rate draining flow).
  struct Link {
    std::string name;
    Bandwidth cap;
    bool up = true;
    bool busy_active = false;
    double total_bytes = 0.0;
    Duration busy{};
    TimePoint busy_mark{};
    BinnedSeries* tracker = nullptr;
  };
  struct Node {
    std::string name;
    LinkId tx;
    LinkId rx;
    RackId rack = kNoRack;
  };
  struct Rack {
    std::string name;
    LinkId up;
    LinkId down;
  };
  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;  // bytes left to drain, settled to `last_settled`
    bool draining = false;
    double rate = 0.0;  // bytes/s, valid while draining
    // The link path, fixed at admission (src.tx first, dst.rx last).
    std::array<LinkId, kMaxPathLinks> path;
    std::uint8_t path_len = 0;
    // This flow's index inside link_flows_[path[i]] while draining, so the
    // contention graph supports O(1) swap-and-pop removal.
    std::array<std::uint32_t, kMaxPathLinks> link_pos;
    // Admission order, the deterministic tie-break every walk uses.
    std::uint64_t admission = 0;
    // Byte accounting is lazy: remaining/link totals are settled per flow
    // from its piecewise-constant rate when its component is next touched.
    TimePoint last_settled{};
    // Rate-group membership (kIncremental only): while grouped, `rate` may be
    // stale — the live rate is the group's — and settlement replays the
    // group's rate history from segment `group_hist` onward.
    std::uint32_t group = kNoGroup;
    std::uint32_t group_hist = 0;
    std::function<void(FlowId)> on_complete;
    sim::EventHandle completion;
  };
  // One slab entry; `generation` advances when the slot is recycled so stale
  // FlowIds stop resolving. `active_pos` is the slot's index in active_
  // (swap-and-pop slot->index map).
  struct FlowSlot {
    Flow flow;
    std::uint32_t generation = 1;
    std::uint32_t active_pos = 0;
    bool occupied = false;
  };
  // Per-link scratch for progressive filling (persistent across calls).
  struct LinkFill {
    double cap = 0.0;
    int unfrozen = 0;
  };

  // --- rate groups (kIncremental fast path) --------------------------------
  // When one link is the common bottleneck of an entire component — the PS
  // incast shape — progressive filling gives every flow the identical share
  // cap/n. Such a component is promoted to a *rate group*: members stop
  // carrying individual completion events and per-event settlement; instead
  // the group keeps (a) a next-finisher heap ordered by virtual finish work
  // (drained work at join + remaining bytes at join), (b) a piecewise-
  // constant rate history so a member settles lazily by replaying exactly
  // the per-boundary chunks the eager engine would have applied (bit-
  // identical byte/tracker accounting), and (c) one simulator lane aimed at
  // the head's completion. A completion/admission/cancel then costs O(log n)
  // heap work plus O(1) boundary bookkeeping; anything that can change the
  // bottleneck structure (a BFS reaching the group, a link going down, the
  // risen share crossing another link's) dissolves the group back to the
  // slow path, which re-forms it if the shape still qualifies.
  struct GroupSegment {
    TimePoint start;
    double rate;  // in force from `start` until the next segment's start
  };
  // Next-finisher heap entry; lazy deletion (an entry is live while its slot
  // still holds the same admission and membership).
  struct GroupEntry {
    double vfinish;
    std::uint64_t admission;
    std::uint32_t slot;
  };
  struct RateGroup {
    LinkId anchor = 0;
    std::uint32_t n = 0;  // live members
    double rate = 0.0;    // current per-member share, bit-equal to fill's cap/n
    // Conservative lower bound on every non-anchor member-link fair share;
    // the group stays valid while its rate never exceeds this.
    double min_other_share = 0.0;
    // Cumulative per-member drained bytes since formation (one product per
    // boundary); orders the heap, never used for byte accounting.
    double virtual_work = 0.0;
    TimePoint last_boundary{};
    sim::LaneId lane = sim::kNoLane;
    std::vector<GroupSegment> history;
    std::vector<GroupEntry> heap;  // binary min-heap on (vfinish, admission)
    bool live = false;
  };
  static constexpr std::uint32_t kNoGroup = 0xffffffffu;
  // Components below this size stay on the slow path: tiny refills are cheap
  // and the small pinned-golden scenarios keep their exact event sequences.
  static constexpr std::size_t kMinGroupFlows = 8;

  static constexpr FlowId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<FlowId>(generation) << 32) | slot;
  }
  // Slot index for a live id, or -1 if the id is stale/unknown.
  [[nodiscard]] std::ptrdiff_t find_slot(FlowId id) const;

  LinkId add_link(std::string name, Bandwidth cap);
  Link& link(LinkId id);
  [[nodiscard]] const Link& link(LinkId id) const;
  Link& access_link(NodeId id, Direction dir);
  [[nodiscard]] const Link& access_link(NodeId id, Direction dir) const;
  // Writes the current path into `out`, returns its length.
  std::uint8_t compute_path(NodeId src, NodeId dst,
                            std::array<LinkId, kMaxPathLinks>& out) const;

  // --- incremental engine --------------------------------------------------
  // Contention-graph maintenance (draining flows only).
  void graph_insert(std::uint32_t slot);
  void graph_remove(std::uint32_t slot);
  // BFS over the contention graph from `seeds` into comp_links_/comp_flows_
  // (flows sorted by admission). Seeds are always included in comp_links_.
  void collect_component(const LinkId* seeds, std::size_t n_seeds);
  // Credits the flow's drained bytes to its links for [last_settled, now].
  void settle_flow(std::uint32_t slot, TimePoint now);
  // Accrues the link's busy time to `now`.
  void settle_link_busy(LinkId id, TimePoint now);
  // Settles every flow and link of the component already in comp_* buffers.
  void settle_component(TimePoint now);
  // Settles + re-runs progressive filling + reschedules completions for the
  // component reachable from `seeds` (call after mutating caps/link state;
  // for arrivals/departures, mutate the graph between collect and fill — see
  // enter_drain / complete_flow).
  void rebalance_from(const LinkId* seeds, std::size_t n_seeds);
  // Progressive filling over `flow_slots` (admission-sorted, draining);
  // set_rate(slot, rate) receives every assignment. Uses fill_/scratch.
  template <typename SetRate>
  void progressive_fill(const std::vector<std::uint32_t>& flow_slots,
                        SetRate&& set_rate);
  // Filling + busy-flag refresh + completion rescheduling for comp_flows_.
  void refill_component();
  // Cancels + reschedules the completion event of one draining flow.
  void reschedule_completion(std::uint32_t slot);
  // Asserts every draining flow's rate matches a full recompute bit-for-bit.
  void verify_against_full();

  // --- rate-group engine ---------------------------------------------------
  // The group (if any) owning link `id`'s draining flows.
  [[nodiscard]] std::uint32_t group_of_link(LinkId id) const;
  // Promotes comp_flows_/comp_links_ to a rate group when the shape
  // qualifies; called at the end of every slow-path refill.
  void maybe_form_group();
  // Settles a grouped flow by replaying the group's rate history (the exact
  // chunk sequence the eager engine would have applied).
  void settle_group_flow(std::uint32_t slot, TimePoint now);
  // Advances the group's virtual-work clock to `now`.
  void group_advance(RateGroup& g, TimePoint now);
  // Boundary: advance virtual work, then switch the group to `rate`.
  void group_set_rate(RateGroup& g, double rate, TimePoint now);
  void group_heap_push(RateGroup& g, const GroupEntry& e);
  void group_heap_pop(RateGroup& g);
  // Drops stale heap entries; returns the live head slot or -1 if empty.
  std::ptrdiff_t group_heap_head(std::uint32_t gid);
  // Settles the head to `now` and re-aims the group's lane at its finish.
  void group_rearm(std::uint32_t gid, TimePoint now);
  // Fast-path admission of a settled, not-yet-draining flow; returns false
  // (leaving all state untouched) when the arrival must take the slow path.
  bool group_try_admit(std::uint32_t slot, TimePoint now);
  // Fast-path member removal (completion and cancellation): detaches the
  // member, then re-rates, dissolves, or destroys the group as needed.
  void group_remove_member(std::uint32_t gid, std::uint32_t slot, TimePoint now);
  // Fast-path capacity change on a group link; false -> caller rebalances.
  bool group_capacity_change(std::uint32_t gid, LinkId id);
  // Settles every member to now, restores per-flow rates/completions being
  // managed eagerly again, and frees the group (members keep draining; the
  // caller must follow with a slow-path rebalance covering them).
  void dissolve_group(std::uint32_t gid);
  void group_destroy(std::uint32_t gid);
  // Verify mode: refresh member rates, then run the full differential check.
  void group_verify(std::uint32_t gid);
  // Lane callback: the group head finished.
  void group_lane_fire(std::uint32_t gid);
  // All draining flow slots, in admission order (full/verify paths).
  void gather_draining_by_admission(std::vector<std::uint32_t>& out) const;
  void remove_active(std::uint32_t slot);

  // --- original full-recompute path (RebalanceMode::kFull) -----------------
  // Credits drained bytes / busy time for [last_update_, now] at current
  // rates for every flow, then sets last_update_ = now.
  void advance_to_now();
  // Recomputes max-min fair rates and reschedules completion events for the
  // whole network.
  void reassign_rates();

  void enter_drain(FlowId id);
  void complete_flow(FlowId id);
  void release_slot(std::uint32_t slot);

  sim::Simulator& sim_;
  TcpCostModel cost_model_;
  RebalanceMode mode_;
  bool verify_rates_ = false;
  std::vector<Node> nodes_;
  std::vector<Rack> racks_;
  std::vector<Link> links_;
  std::vector<FlowSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Slots of admitted flows, unordered (swap-and-pop via FlowSlot::active_pos;
  // deterministic walks sort by Flow::admission instead).
  std::vector<std::uint32_t> active_;
  std::uint64_t next_admission_ = 0;
  // Full-recompute mode's global settlement clock.
  TimePoint last_update_{};

  // The explicit contention graph: draining flows on each link.
  std::vector<std::vector<std::uint32_t>> link_flows_;

  // Persistent scratch (sized to the link/flow counts, reused every call).
  std::vector<LinkFill> fill_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<LinkId> active_links_;
  // Component-BFS scratch: visited stamps + the collected component.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> link_epoch_;
  std::vector<std::uint64_t> slot_epoch_;
  std::vector<LinkId> comp_links_;
  std::vector<std::uint32_t> comp_flows_;
  // Full/verify-path scratch.
  std::vector<std::uint32_t> all_draining_;
  std::vector<double> verify_rate_;
  // Rate-group slab (freed groups keep their vector capacity for reuse).
  std::vector<RateGroup> groups_;
  std::vector<std::uint32_t> free_groups_;
  std::size_t groups_live_ = 0;
  RebalanceStats stats_;
};

}  // namespace prophet::net
