// Reliable transport over FlowNetwork: the retransmission substrate the
// paper's EC2 runs get from TCP for free, made explicit so its cost under
// loss is measurable.
//
// A ReliableChannel wraps start_flow with per-attempt loss injection (seeded
// via common/rng, so a fixed seed replays the identical fault timeline), a
// per-attempt no-progress watchdog, bounded exponential backoff with jitter
// and a retry budget. Whether a failed attempt resumes from the bytes already
// drained or restarts the whole transfer is a config knob
// (`resume_partial`), quantifying the difference a byte-range-resuming
// transport makes versus message-level retransmission.
//
// Pay-for-use: with loss_rate == 0 a send is exactly one start_flow and zero
// extra events or RNG draws — a fault-free run is bit-identical to one built
// without this layer. The channel still tracks the live FlowId so a crash
// can abort in-flight transfers (abort_all).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "net/flow_network.hpp"

namespace prophet::net {

struct ReliabilityConfig {
  // Per-attempt probability that the attempt is lost in flight.
  double loss_rate = 0.0;
  // No-progress watchdog: an attempt that drains nothing for this long is
  // declared lost (covers both injected losses that stall the stream and
  // flows parked behind a link outage). Long transfers keep resetting the
  // watchdog as bytes drain, so the timeout does not bound transfer size.
  Duration stall_timeout = Duration::millis(200);
  // Exponential backoff before retry n: base * 2^(n-1), capped.
  Duration backoff_base = Duration::millis(2);
  Duration backoff_cap = Duration::millis(200);
  // Fraction of the backoff subtracted uniformly at random (decorrelates
  // retry storms after a shared fault).
  double backoff_jitter = 0.2;
  // Retries allowed per transfer beyond the first attempt; exhausting it
  // aborts the run loudly (the simulation models a training job that would
  // hang, not one that silently drops a gradient).
  std::size_t retry_budget = 16;
  // true: a retry resends only the bytes the failed attempt did not drain
  // (byte-range resume); false: every retry restarts the whole transfer.
  bool resume_partial = true;

  [[nodiscard]] bool enabled() const { return loss_rate > 0.0; }
  // Aborts with an actionable message on an ill-formed config.
  void validate() const;
};

// Delivered to the sender's completion callback.
struct SendOutcome {
  std::size_t attempts = 1;
  // Bytes drained by failed attempts and sent again (zero under resume).
  Bytes retransmitted = Bytes::zero();
};

// Transport-fault notification (a failed attempt that will be retried).
struct ChannelFault {
  enum class Kind {
    kLoss,     // injected in-flight drop
    kTimeout,  // no-progress watchdog expired
  };
  Kind kind = Kind::kLoss;
  std::size_t attempt = 0;  // failed attempt, 1-based
  Duration backoff{};       // wait before the next attempt
  Bytes remaining{};        // bytes the failed attempt left undelivered
};

class ReliableChannel {
 public:
  using CompleteFn = std::function<void(const SendOutcome&)>;
  using FaultFn = std::function<void(const ChannelFault&)>;

  ReliableChannel(sim::Simulator& sim, FlowNetwork& net, ReliabilityConfig config,
                  Rng rng);
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Starts a reliable transfer; `on_complete` fires exactly once, when every
  // byte has drained (after however many attempts that takes).
  void send(NodeId src, NodeId dst, Bytes size, CompleteFn on_complete);

  // Crash support: abandons every in-flight send. Their completion callbacks
  // never fire and their flows are cancelled immediately.
  void abort_all();

  // Runtime loss-rate update (dynamics `loss_rate` events).
  void set_loss_rate(double rate);

  // Observer for retry events (metrics/trace recording); optional.
  void set_fault_handler(FaultFn fn) { on_fault_ = std::move(fn); }

  [[nodiscard]] const ReliabilityConfig& config() const { return config_; }
  [[nodiscard]] std::size_t inflight() const { return sends_.size(); }

 private:
  struct Pending {
    NodeId src = 0;
    NodeId dst = 0;
    Bytes total = Bytes::zero();
    Bytes attempt_bytes = Bytes::zero();  // size of the current attempt
    Bytes delivered = Bytes::zero();      // drained by failed attempts (resume)
    Bytes retransmitted = Bytes::zero();
    std::size_t attempts = 0;
    FlowId flow = 0;
    bool flow_live = false;
    double watchdog_remaining = 0.0;  // progress marker at last watchdog check
    CompleteFn on_complete;
    sim::EventHandle loss_event;
    sim::EventHandle watchdog;
    sim::EventHandle retry_event;
  };

  void launch(std::uint64_t id);
  void on_attempt_complete(std::uint64_t id);
  void on_watchdog(std::uint64_t id);
  void fail_attempt(std::uint64_t id, ChannelFault::Kind kind);
  [[nodiscard]] Duration backoff_for(std::size_t failed_attempts);
  static void cancel_timers(Pending& p);

  sim::Simulator& sim_;
  FlowNetwork& net_;
  ReliabilityConfig config_;
  Rng rng_;
  FaultFn on_fault_;
  // Keyed by a monotone id; point lookups plus a deterministic full walk in
  // abort_all, so an ordered map keeps replay exact.
  std::map<std::uint64_t, Pending> sends_;
  std::uint64_t next_id_ = 0;
};

}  // namespace prophet::net
