// Minimal CSV writer for experiment artifacts (each bench drops a CSV next to
// its printed table so the series can be re-plotted).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace prophet {

class CsvWriter {
 public:
  // Opens (truncates) `path`; writes the header row immediately.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  [[nodiscard]] bool ok() const { return out_.good(); }

  void write_row(const std::vector<std::string>& cells);
  // Convenience: formats doubles with enough precision for re-plotting.
  void write_row_values(std::initializer_list<double> values);

  static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace prophet
