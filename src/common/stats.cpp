#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace prophet {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  PROPHET_CHECK_MSG(n_ > 0, "mean of empty stats");
  return mean_;
}

double RunningStats::variance() const {
  PROPHET_CHECK_MSG(n_ > 0, "variance of empty stats");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  PROPHET_CHECK_MSG(n_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  PROPHET_CHECK_MSG(n_ > 0, "max of empty stats");
  return max_;
}

double percentile(std::vector<double> values, double q) {
  PROPHET_CHECK(!values.empty());
  PROPHET_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Ewma::Ewma(double alpha) : alpha_{alpha} {
  PROPHET_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Ewma::value() const {
  PROPHET_CHECK_MSG(initialized_, "Ewma::value before first sample");
  return value_;
}

}  // namespace prophet
