// Time-binned series used to reproduce the paper's over-time plots
// (GPU utilization in Figs. 2/9/13, network throughput in Figs. 2/10).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace prophet {

// Accumulates weighted values into fixed-width time bins.
//
// Two usage modes, matching the two plot families in the paper:
//  * add_amount   — for throughput: bytes landing in a bin; report() divides
//                   by the bin width to yield a rate.
//  * add_interval — for utilization: a busy interval is spread across the
//                   bins it overlaps; report() divides by the bin width to
//                   yield a fraction in [0, 1].
class BinnedSeries {
 public:
  BinnedSeries(Duration bin_width, Duration horizon);

  void add_amount(TimePoint at, double amount);
  // Spreads `amount` uniformly over [begin, end) across the bins it overlaps
  // (used for bytes drained by a network flow at a constant rate).
  void add_amount_spread(TimePoint begin, TimePoint end, double amount);
  void add_interval(TimePoint begin, TimePoint end);

  [[nodiscard]] Duration bin_width() const { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] TimePoint bin_start(std::size_t i) const;
  // Raw accumulated amount in bin i.
  [[nodiscard]] double bin_amount(std::size_t i) const;
  // Amount divided by bin width in seconds (rate or utilization fraction).
  [[nodiscard]] double bin_rate(std::size_t i) const;

  // Mean of bin_rate over bins [first, last); used for the paper's average
  // utilization / throughput claims.
  [[nodiscard]] double mean_rate(std::size_t first, std::size_t last) const;
  [[nodiscard]] double mean_rate() const { return mean_rate(0, bins_.size()); }

 private:
  Duration bin_width_;
  std::vector<double> bins_;
};

}  // namespace prophet
