// Leveled logging. Off by default in benches/tests; the simulator threads a
// simulated timestamp through so traces read in simulation time, not wall time.
#pragma once

#include <cstdarg>
#include <string_view>

#include "common/time.hpp"

namespace prophet {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style; `at` prefixes the line with the simulated time.
void log_line(LogLevel level, TimePoint at, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace prophet

#define PROPHET_LOG(level, at, ...)                          \
  do {                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::prophet::log_level())) \
      ::prophet::log_line(level, at, __VA_ARGS__);           \
  } while (0)
