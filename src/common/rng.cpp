#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace prophet {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the child id into a hash of the parent state; children of distinct
  // ids, and children of distinct parents, get unrelated streams.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  mix ^= 0xA0761D6478BD642FULL * (stream_id + 1);
  return Rng{mix};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PROPHET_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  PROPHET_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draws two uniforms, returns one variate (keeps the generator
  // stateless so fork/replay semantics stay simple).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal_median(double median, double sigma) {
  PROPHET_CHECK(median > 0.0);
  return median * std::exp(normal(0.0, sigma));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

}  // namespace prophet
