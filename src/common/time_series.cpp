#include "common/time_series.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet {

BinnedSeries::BinnedSeries(Duration bin_width, Duration horizon) : bin_width_{bin_width} {
  PROPHET_CHECK(bin_width > Duration::zero());
  PROPHET_CHECK(horizon > Duration::zero());
  const auto n = static_cast<std::size_t>(
      (horizon.count_nanos() + bin_width.count_nanos() - 1) / bin_width.count_nanos());
  bins_.assign(n, 0.0);
}

void BinnedSeries::add_amount(TimePoint at, double amount) {
  if (at < TimePoint::origin()) return;
  const auto idx = static_cast<std::size_t>(at.count_nanos() / bin_width_.count_nanos());
  if (idx < bins_.size()) bins_[idx] += amount;
}

void BinnedSeries::add_amount_spread(TimePoint begin, TimePoint end, double amount) {
  if (end <= begin) {
    add_amount(begin, amount);
    return;
  }
  const double rate = amount / (end - begin).to_seconds();
  auto b = std::max(begin, TimePoint::origin());
  const auto horizon = TimePoint::origin() + bin_width_ * static_cast<std::int64_t>(bins_.size());
  const auto e = std::min(end, horizon);
  while (b < e) {
    const auto idx = static_cast<std::size_t>(b.count_nanos() / bin_width_.count_nanos());
    const TimePoint bin_end =
        TimePoint::origin() + bin_width_ * static_cast<std::int64_t>(idx + 1);
    const TimePoint seg_end = std::min(e, bin_end);
    bins_[idx] += rate * (seg_end - b).to_seconds();
    b = seg_end;
  }
}

void BinnedSeries::add_interval(TimePoint begin, TimePoint end) {
  if (end <= begin) return;
  auto b = std::max(begin, TimePoint::origin());
  const auto horizon = TimePoint::origin() + bin_width_ * static_cast<std::int64_t>(bins_.size());
  const auto e = std::min(end, horizon);
  while (b < e) {
    const auto idx = static_cast<std::size_t>(b.count_nanos() / bin_width_.count_nanos());
    const TimePoint bin_end =
        TimePoint::origin() + bin_width_ * static_cast<std::int64_t>(idx + 1);
    const TimePoint seg_end = std::min(e, bin_end);
    bins_[idx] += (seg_end - b).to_seconds();
    b = seg_end;
  }
}

TimePoint BinnedSeries::bin_start(std::size_t i) const {
  PROPHET_CHECK(i < bins_.size());
  return TimePoint::origin() + bin_width_ * static_cast<std::int64_t>(i);
}

double BinnedSeries::bin_amount(std::size_t i) const {
  PROPHET_CHECK(i < bins_.size());
  return bins_[i];
}

double BinnedSeries::bin_rate(std::size_t i) const {
  return bin_amount(i) / bin_width_.to_seconds();
}

double BinnedSeries::mean_rate(std::size_t first, std::size_t last) const {
  PROPHET_CHECK(first <= last && last <= bins_.size());
  if (first == last) return 0.0;
  double total = 0.0;
  for (std::size_t i = first; i < last; ++i) total += bin_rate(i);
  return total / static_cast<double>(last - first);
}

}  // namespace prophet
