// ASCII table printer: the bench binaries print paper-style rows with it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace prophet {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Formats a double with `precision` significant digits.
  static std::string num(double v, int precision = 4);
  static std::string pct(double fraction, int decimals = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prophet
