// Deterministic random number generation for reproducible simulations.
//
// xoshiro256** seeded through SplitMix64, per the reference implementations by
// Blackman & Vigna. Every stochastic component of the simulator owns its own
// stream (forked from a root seed), so adding randomness to one module never
// perturbs another module's draws — a requirement for the paired
// scheduler-vs-scheduler comparisons in the benches.
#pragma once

#include <cstdint>
#include <random>

namespace prophet {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Derives an independent stream; `stream_id` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  // Uniform double in [0, 1).
  double next_double();
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  double uniform(double lo, double hi);
  // Standard normal via Box–Muller (cached pair member unused: stateless form).
  double normal(double mean, double stddev);
  // Log-normal such that the *median* is `median` and sigma is on log scale.
  double lognormal_median(double median, double sigma);
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4]{};
};

}  // namespace prophet
