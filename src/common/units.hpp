// Byte counts and network bandwidth as strong types.
//
// Bandwidth is stored as bytes per second (double): transfer-time arithmetic
// mixes sizes and durations multiplicatively, so a rational representation
// buys nothing, and the quantity is an *estimate* everywhere it is used
// (monitored bandwidth, Eq. (5) E^(i) = s^(i)/B^(i)).
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/time.hpp"

namespace prophet {

class Bytes {
 public:
  constexpr Bytes() = default;
  static constexpr Bytes of(std::int64_t b) { return Bytes{b}; }
  static constexpr Bytes kib(std::int64_t k) { return Bytes{k * 1024}; }
  static constexpr Bytes mib(std::int64_t m) { return Bytes{m * 1024 * 1024}; }
  static constexpr Bytes zero() { return Bytes{0}; }

  [[nodiscard]] constexpr std::int64_t count() const { return b_; }
  [[nodiscard]] constexpr double to_mib() const {
    return static_cast<double>(b_) / (1024.0 * 1024.0);
  }

  friend constexpr auto operator<=>(Bytes, Bytes) = default;
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.b_ + b.b_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.b_ - b.b_}; }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) { return Bytes{a.b_ * k}; }
  constexpr Bytes& operator+=(Bytes o) { b_ += o.b_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { b_ -= o.b_; return *this; }

 private:
  constexpr explicit Bytes(std::int64_t b) : b_{b} {}
  std::int64_t b_{0};
};

class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bytes_per_sec(double bps) { return Bandwidth{bps}; }
  // Network convention: megabits / gigabits per second (10^6 / 10^9 bits).
  static constexpr Bandwidth mbps(double m) { return Bandwidth{m * 1e6 / 8.0}; }
  static constexpr Bandwidth gbps(double g) { return Bandwidth{g * 1e9 / 8.0}; }
  static constexpr Bandwidth zero() { return Bandwidth{0.0}; }

  [[nodiscard]] constexpr double bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_mbps() const { return bps_ * 8.0 / 1e6; }
  [[nodiscard]] constexpr double to_gbps() const { return bps_ * 8.0 / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  // Serialization time of `s` bytes at this rate.
  [[nodiscard]] Duration time_to_send(Bytes s) const {
    PROPHET_CHECK_MSG(bps_ > 0.0, "time_to_send on zero bandwidth");
    return Duration::from_seconds(static_cast<double>(s.count()) / bps_);
  }
  // Bytes transferable within `d` at this rate.
  [[nodiscard]] Bytes bytes_in(Duration d) const {
    return Bytes::of(static_cast<std::int64_t>(bps_ * d.to_seconds()));
  }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  friend constexpr Bandwidth operator*(Bandwidth b, double k) { return Bandwidth{b.bps_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth b) { return Bandwidth{b.bps_ * k}; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ + b.bps_};
  }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }

 private:
  constexpr explicit Bandwidth(double bps) : bps_{bps} {}
  double bps_{0.0};
};

inline std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b.count());
  if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(b.count()));
  }
  return buf;
}

inline std::string format_bandwidth(Bandwidth b) {
  char buf[64];
  if (b.to_gbps() >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f Gbps", b.to_gbps());
  } else {
    std::snprintf(buf, sizeof buf, "%.1f Mbps", b.to_mbps());
  }
  return buf;
}

}  // namespace prophet
