// Streaming and batch statistics used by the metrics/report layers.
#pragma once

#include <cstddef>
#include <vector>

namespace prophet {

// Welford online mean/variance; numerically stable for long runs.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

// Batch percentile over a copied sample set (linear interpolation between
// order statistics). `q` in [0, 1].
double percentile(std::vector<double> values, double q);

// Exponentially-weighted moving average, the estimator behind the paper's
// periodic Network Bandwidth Monitor.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  [[nodiscard]] bool has_value() const { return initialized_; }
  [[nodiscard]] double value() const;

 private:
  double alpha_;
  double value_{0.0};
  bool initialized_{false};
};

}  // namespace prophet
