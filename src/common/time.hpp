// Strong time types for the discrete-event simulator.
//
// `Duration` is a span, `TimePoint` an absolute simulation time; both count
// integer nanoseconds so event ordering is exact and runs are bit-reproducible
// (no floating-point clock drift). Conversions to/from floating-point seconds
// and milliseconds exist only at the measurement/reporting boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace prophet {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1'000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  // Converts a floating-point second count, rounding to the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration from_millis(double ms) { return from_seconds(ms * 1e-3); }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(Duration a, double k) {
    return from_seconds(a.to_seconds() * k);
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration{-ns_}; }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint from_nanos(std::int64_t n) { return TimePoint{Duration::nanos(n)}; }
  static constexpr TimePoint max() { return TimePoint{Duration::max()}; }

  // Time elapsed since the simulation origin.
  [[nodiscard]] constexpr Duration since_origin() const { return d_; }
  [[nodiscard]] constexpr std::int64_t count_nanos() const { return d_.count_nanos(); }
  [[nodiscard]] constexpr double to_seconds() const { return d_.to_seconds(); }
  [[nodiscard]] constexpr double to_millis() const { return d_.to_millis(); }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.d_ + d}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return TimePoint{t.d_ + d}; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.d_ - d}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return a.d_ - b.d_; }
  constexpr TimePoint& operator+=(Duration d) { d_ += d; return *this; }

 private:
  constexpr explicit TimePoint(Duration d) : d_{d} {}
  Duration d_{};
};

// (a - b)^+ : the positive part used throughout the paper's wait-time model
// (Eq. (2): GPU idle time only accrues when the update completes *after* the
// previous layer's forward pass).
constexpr Duration positive_part(Duration d) { return d > Duration::zero() ? d : Duration::zero(); }

inline std::string format_duration(Duration d) {
  const double ms = d.to_millis();
  char buf[64];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", d.to_micros());
  }
  return buf;
}

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::nanos(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace prophet
