// Runtime invariant checks. PROPHET_CHECK aborts with a message on violation;
// it stays enabled in release builds because the simulator's correctness
// claims (no concurrent transfers, priority ordering) are part of the
// reproduction, not just debugging aids.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace prophet {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PROPHET_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace prophet

#define PROPHET_CHECK(expr)                                        \
  do {                                                             \
    if (!(expr)) ::prophet::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PROPHET_CHECK_MSG(expr, msg)                                  \
  do {                                                                \
    if (!(expr)) ::prophet::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
