// Minimal command-line flag parser for the example/tool binaries:
// `--name value` and `--name=value` forms, typed accessors with defaults,
// and an auto-generated usage listing. No global state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace prophet {

class Flags {
 public:
  // Parses argv; returns std::nullopt (and fills `error`) on malformed
  // input (unknown flags are collected, not rejected — callers validate).
  static std::optional<Flags> parse(int argc, const char* const* argv,
                                    std::string* error = nullptr);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  // Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  // Every flag name seen (for unknown-flag validation).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace prophet
