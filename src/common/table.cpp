#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace prophet {

TextTable::TextTable(std::vector<std::string> header) : header_{std::move(header)} {
  PROPHET_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PROPHET_CHECK_MSG(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

}  // namespace prophet
