#include "common/flags.hpp"

#include <cstdlib>

namespace prophet {

std::optional<Flags> Flags::parse(int argc, const char* const* argv,
                                  std::string* error) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      if (error != nullptr) *error = "bare '--' is not a flag";
      return std::nullopt;
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const { return values_.contains(name); }

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

double Flags::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

std::int64_t Flags::get(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it != values_.end()
             ? std::strtoll(it->second.c_str(), nullptr, 10)
             : fallback;
}

bool Flags::get(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

}  // namespace prophet
