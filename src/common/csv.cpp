#include "common/csv.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace prophet {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_{path}, columns_{header.size()} {
  PROPHET_CHECK(columns_ > 0);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  PROPHET_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_values(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    cells.emplace_back(buf);
  }
  write_row(cells);
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{cell};
  std::string out{"\""};
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace prophet
