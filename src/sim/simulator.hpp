// Discrete-event simulation engine.
//
// Single-threaded and deterministic: events fire in (time, insertion-seq)
// order, so two events scheduled for the same instant run in the order they
// were scheduled. Handlers may schedule or cancel further events freely.
//
// Determinism is a feature, not a simplification — every paired
// scheduler-vs-scheduler experiment in the benches relies on replaying the
// identical compute/network random draws under a different communication
// schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace prophet::sim {

class Simulator;

// Cancellation handle for a scheduled event. Default-constructed handles are
// inert. Cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<bool> done, std::shared_ptr<std::size_t> live)
      : done_{std::move(done)}, live_{std::move(live)} {}
  // `done` flips to true when the event fires or is cancelled; `live` is the
  // simulator's live-event counter (shared so a handle may outlive it).
  std::shared_ptr<bool> done_;
  std::shared_ptr<std::size_t> live_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() : live_events_{std::make_shared<std::size_t>(0)} {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `cb` to run at `at` (>= now).
  EventHandle schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` to run `delay` from now.
  EventHandle schedule_after(Duration delay, Callback cb);
  // Schedules `cb` every `period`, starting at now + period. The returned
  // handle cancels the whole chain (a tick already in the queue when the
  // chain is cancelled fires as a no-op).
  EventHandle schedule_periodic(Duration period, std::function<void(TimePoint)> cb);

  // Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();
  // Runs until the queue drains or simulated time would pass `deadline`;
  // events at exactly `deadline` still fire.
  std::uint64_t run_until(TimePoint deadline);
  // Fires exactly one event if any is pending. Returns false on empty queue.
  bool step();

  [[nodiscard]] bool empty() const { return *live_events_ == 0; }
  // Scheduled, not-yet-fired, not-cancelled events.
  [[nodiscard]] std::size_t pending_events() const { return *live_events_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Record {
    TimePoint at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> done;
  };
  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops and fires the front event; assumes the queue holds a live event.
  void fire_front();
  void drop_cancelled();

  std::priority_queue<Record, std::vector<Record>, Later> queue_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
  std::shared_ptr<std::size_t> live_events_;
};

}  // namespace prophet::sim
