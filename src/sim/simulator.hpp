// Discrete-event simulation engine.
//
// Single-threaded and deterministic: events fire in (time, insertion-seq)
// order, so two events scheduled for the same instant run in the order they
// were scheduled. Handlers may schedule or cancel further events freely.
//
// Determinism is a feature, not a simplification — every paired
// scheduler-vs-scheduler experiment in the benches relies on replaying the
// identical compute/network random draws under a different communication
// schedule.
//
// Event lifecycle state lives in a slab-allocated pool: each scheduled event
// occupies one reusable slot addressed by a {slot, generation} handle, so
// scheduling performs no per-event heap allocation (the old design paid two
// shared_ptr control blocks per event). The generation counter makes stale
// handles inert after a slot is recycled (no ABA): a handle only matches
// while its own event still owns the slot. The pool itself is shared between
// the simulator and outstanding handles, so a handle may safely outlive the
// simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace prophet::sim {

class Simulator;

// Identifier of an event *lane*: a persistent, re-aimable sentinel event.
// Where a plain scheduled event is one-shot (slot acquired, fired, released),
// a lane keeps its callback and identity across arbitrarily many re-aims, so
// a subsystem that repeatedly reschedules "the next interesting instant" for
// some aggregate (e.g. a FlowNetwork rate group's next finisher) pays one
// heap push per re-aim and nothing else — no slot churn, no callback moves.
using LaneId = std::uint32_t;
inline constexpr LaneId kNoLane = 0xffffffffu;

namespace detail {

// Slab of per-event lifecycle slots. `done` flips when the event fires or is
// cancelled; `generation` advances each time the slot is recycled. The slot
// also owns the event's callback, which keeps the priority-heap records
// trivially copyable — heap sifts move 24-byte PODs, never a std::function.
struct EventPool {
  struct Slot {
    std::function<void()> cb;
    std::uint32_t generation = 0;
    bool done = true;
    // Whether cancelling this event must decrement `live` (periodic-chain
    // slots never hold a queue entry, so they do not count as live events).
    bool counts_live = false;
  };
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;
  // Scheduled, not-yet-fired, not-cancelled events.
  std::size_t live = 0;

  [[nodiscard]] bool matches(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots.size() && slots[slot].generation == generation;
  }
  [[nodiscard]] bool pending(std::uint32_t slot, std::uint32_t generation) const {
    return matches(slot, generation) && !slots[slot].done;
  }

  std::uint32_t acquire(bool counts_live) {
    std::uint32_t slot;
    if (!free_list.empty()) {
      slot = free_list.back();
      free_list.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    slots[slot].done = false;
    slots[slot].counts_live = counts_live;
    if (counts_live) ++live;
    return slot;
  }

  // Marks the event done (idempotent); used by both cancel and fire.
  void finish(std::uint32_t slot) {
    Slot& s = slots[slot];
    if (s.done) return;
    s.done = true;
    if (s.counts_live && live > 0) --live;
  }

  // Returns the slot to the free list; stale handles stop matching and the
  // callback (with whatever it captured) is dropped.
  void release(std::uint32_t slot) {
    slots[slot].cb = nullptr;
    ++slots[slot].generation;
    free_list.push_back(slot);
  }
};

}  // namespace detail

// Cancellation handle for a scheduled event. Default-constructed handles are
// inert. Cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (pool_ && pool_->pending(slot_, generation_)) pool_->finish(slot_);
  }
  [[nodiscard]] bool pending() const {
    return pool_ && pool_->pending(slot_, generation_);
  }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<detail::EventPool> pool, std::uint32_t slot,
              std::uint32_t generation)
      : pool_{std::move(pool)}, slot_{slot}, generation_{generation} {}
  std::shared_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() : pool_{std::make_shared<detail::EventPool>()} {}
  // Undelivered events die with the simulator: outstanding handles see them
  // as no longer pending, and their callbacks (with captures) are dropped.
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `cb` to run at `at` (>= now).
  EventHandle schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` to run `delay` from now.
  EventHandle schedule_after(Duration delay, Callback cb);
  // Schedules `cb` every `period`, starting at now + period. The returned
  // handle cancels the whole chain (a tick already in the queue when the
  // chain is cancelled fires as a no-op). The chain state is owned by the
  // simulator — no reference cycle keeps it alive once cancelled.
  EventHandle schedule_periodic(Duration period, std::function<void(TimePoint)> cb);

  // Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();
  // Runs until the queue drains or simulated time would pass `deadline`;
  // events at exactly `deadline` still fire.
  std::uint64_t run_until(TimePoint deadline);
  // Fires exactly one event if any is pending. Returns false on empty queue.
  bool step();

  // --- event lanes ---------------------------------------------------------
  // Creates a lane owning `cb`. The lane starts disarmed; `lane_aim` arms it
  // (or moves an armed lane's target). When the lane's target instant is
  // reached it disarms itself and runs `cb` — the callback may re-aim the
  // lane, schedule events, or destroy the lane. Superseded aims are skipped
  // without firing (lazy deletion in the heap, like cancelled events).
  LaneId lane_create(Callback cb);
  // Destroys the lane: pending aims become inert and the id may be recycled.
  // Safe to call from inside the lane's own callback.
  void lane_destroy(LaneId id);
  // Arms the lane to fire at `at` (>= now), superseding any previous aim.
  void lane_aim(LaneId id, TimePoint at);
  // Un-arms the lane without destroying it; a later lane_aim re-arms.
  void lane_disarm(LaneId id);
  [[nodiscard]] bool lane_armed(LaneId id) const;
  // Live (created, not destroyed) lanes; exposed for the slab-reuse tests.
  [[nodiscard]] std::size_t lane_count() const { return lanes_live_; }

  [[nodiscard]] bool empty() const { return pool_->live == 0 && lanes_armed_ == 0; }
  // Scheduled, not-yet-fired, not-cancelled events (armed lanes included).
  [[nodiscard]] std::size_t pending_events() const { return pool_->live + lanes_armed_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  // Pool capacity (high-water mark of concurrently tracked events); exposed
  // for the slab-reuse tests.
  [[nodiscard]] std::size_t event_slot_count() const { return pool_->slots.size(); }

 private:
  // Trivially copyable, 16 bytes — the callback lives in the pool slot, so
  // heap sifts shuffle small PODs instead of dragging a std::function
  // through every swap, and four records share a cache line. A queued record
  // owns its pool slot until popped, so no generation tag is needed here
  // (only external handles can go stale). seq is 32-bit: schedule_at fails
  // loudly if a single simulator ever issues 2^32 events.
  struct Record {
    TimePoint at;
    std::uint32_t seq;
    std::uint32_t slot;
  };
  // Heap records for lanes reuse the Record layout with the top bit of `slot`
  // set (the pool would need 2^31 concurrent events to collide, checked at
  // acquire). A lane record is live iff the lane is still armed with exactly
  // this seq — seqs are unique, so a superseded aim can never false-match.
  static constexpr std::uint32_t kLaneTag = 0x80000000u;
  static bool earlier(const Record& a, const Record& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  struct PeriodicChain {
    Duration period;
    std::function<void(TimePoint)> cb;
  };
  struct Lane {
    Callback cb;
    std::uint32_t aim_seq = 0;
    bool armed = false;
    bool alive = false;
  };

  // Inserts into / pops the earliest record off heap_.
  void heap_push(const Record& rec);
  Record pop_front();
  // Fires `rec`; assumes it is live.
  void fire(Record rec);
  // Routes a popped record (event or lane) to its callback; returns whether
  // anything fired (false for cancelled events and superseded lane aims).
  bool dispatch(const Record& rec);
  void periodic_tick(std::uint32_t slot, std::uint32_t generation);

  std::shared_ptr<detail::EventPool> pool_;
  // 4-ary implicit min-heap on (at, seq). Versus a binary heap this halves
  // the sift depth and keeps a node's children in adjacent cache lines, which
  // is what dominates dispatch cost once the queue outgrows L2.
  std::vector<Record> heap_;
  // Periodic-chain state, keyed by the chain's pool slot.
  std::unordered_map<std::uint32_t, PeriodicChain> chains_;
  // Lane slab (ids recycled through the free list; staleness is resolved by
  // aim seq, so no generation counter is needed).
  std::vector<Lane> lanes_;
  std::vector<std::uint32_t> lane_free_;
  std::size_t lanes_live_ = 0;
  std::size_t lanes_armed_ = 0;
  TimePoint now_{};
  std::uint32_t next_seq_{0};
  std::uint64_t fired_{0};
};

}  // namespace prophet::sim
