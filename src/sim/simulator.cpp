#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

namespace prophet::sim {

Simulator::~Simulator() {
  for (auto& slot : pool_->slots) {
    slot.done = true;
    slot.cb = nullptr;
  }
  pool_->live = 0;
}

EventHandle Simulator::schedule_at(TimePoint at, Callback cb) {
  PROPHET_CHECK_MSG(at >= now_, "scheduling into the past");
  PROPHET_CHECK(cb != nullptr);
  const std::uint32_t slot = pool_->acquire(/*counts_live=*/true);
  PROPHET_CHECK_MSG(slot < kLaneTag, "event pool exhausted the slot space");
  const std::uint32_t generation = pool_->slots[slot].generation;
  pool_->slots[slot].cb = std::move(cb);
  PROPHET_CHECK_MSG(next_seq_ != std::numeric_limits<std::uint32_t>::max(),
                    "event sequence counter exhausted");
  heap_push(Record{at, next_seq_++, slot});
  return EventHandle{pool_, slot, generation};
}

EventHandle Simulator::schedule_after(Duration delay, Callback cb) {
  PROPHET_CHECK_MSG(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_periodic(Duration period,
                                         std::function<void(TimePoint)> cb) {
  PROPHET_CHECK(period > Duration::zero());
  // The chain occupies a pool slot of its own (distinct from the per-tick
  // queue slots): cancelling it stops future work, while a tick already in
  // the queue keeps its own lifecycle and fires as a no-op. The tick
  // callback captures only {this, slot, generation} — the chain's closure is
  // owned by `chains_`, so no self-referencing cycle is formed and a
  // cancelled chain's state is reclaimed by the next tick.
  const std::uint32_t slot = pool_->acquire(/*counts_live=*/false);
  const std::uint32_t generation = pool_->slots[slot].generation;
  chains_.emplace(slot, PeriodicChain{period, std::move(cb)});
  schedule_at(now_ + period, [this, slot, generation] { periodic_tick(slot, generation); });
  return EventHandle{pool_, slot, generation};
}

void Simulator::periodic_tick(std::uint32_t slot, std::uint32_t generation) {
  auto reclaim = [this, slot] {
    chains_.erase(slot);
    pool_->release(slot);
  };
  if (!pool_->pending(slot, generation)) {
    reclaim();
    return;
  }
  const auto it = chains_.find(slot);
  PROPHET_CHECK(it != chains_.end());
  it->second.cb(now_);
  if (!pool_->pending(slot, generation)) {
    reclaim();
    return;
  }
  schedule_at(now_ + it->second.period,
              [this, slot, generation] { periodic_tick(slot, generation); });
}

LaneId Simulator::lane_create(Callback cb) {
  PROPHET_CHECK(cb != nullptr);
  LaneId id;
  if (!lane_free_.empty()) {
    id = lane_free_.back();
    lane_free_.pop_back();
  } else {
    id = static_cast<LaneId>(lanes_.size());
    PROPHET_CHECK_MSG(id < kLaneTag, "lane slab exhausted the slot space");
    lanes_.emplace_back();
  }
  Lane& ln = lanes_[id];
  ln.cb = std::move(cb);
  ln.armed = false;
  ln.alive = true;
  ++lanes_live_;
  return id;
}

void Simulator::lane_destroy(LaneId id) {
  PROPHET_CHECK(id < lanes_.size() && lanes_[id].alive);
  Lane& ln = lanes_[id];
  if (ln.armed) {
    ln.armed = false;
    --lanes_armed_;
  }
  ln.alive = false;
  ln.cb = nullptr;  // no-op if destroyed mid-fire: dispatch() holds the cb
  --lanes_live_;
  lane_free_.push_back(id);
}

void Simulator::lane_aim(LaneId id, TimePoint at) {
  PROPHET_CHECK(id < lanes_.size() && lanes_[id].alive);
  PROPHET_CHECK_MSG(at >= now_, "aiming a lane into the past");
  PROPHET_CHECK_MSG(next_seq_ != std::numeric_limits<std::uint32_t>::max(),
                    "event sequence counter exhausted");
  Lane& ln = lanes_[id];
  const std::uint32_t seq = next_seq_++;
  ln.aim_seq = seq;  // supersedes any queued record for this lane
  if (!ln.armed) {
    ln.armed = true;
    ++lanes_armed_;
  }
  heap_push(Record{at, seq, id | kLaneTag});
}

void Simulator::lane_disarm(LaneId id) {
  PROPHET_CHECK(id < lanes_.size() && lanes_[id].alive);
  Lane& ln = lanes_[id];
  if (ln.armed) {
    ln.armed = false;
    --lanes_armed_;
  }
}

bool Simulator::lane_armed(LaneId id) const {
  PROPHET_CHECK(id < lanes_.size() && lanes_[id].alive);
  return lanes_[id].armed;
}

void Simulator::heap_push(const Record& rec) {
  heap_.push_back(rec);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulator::Record Simulator::pop_front() {
  const Record top = heap_.front();
  const Record last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Sift the hole down, then drop `last` into it.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
    // Warm the next event's pool slot while the popped event's callback
    // runs — the slot access pattern is random, and this hides most of the
    // resulting cache miss. (Lane records live in lanes_, not the pool.)
    if ((heap_[0].slot & kLaneTag) == 0) __builtin_prefetch(&pool_->slots[heap_[0].slot]);
  }
  return top;
}

void Simulator::fire(Record rec) {
  PROPHET_CHECK(rec.at >= now_);
  now_ = rec.at;
  // Move the callback out before the slot is recycled: the callback itself
  // may schedule new events that reuse this very slot.
  Callback cb = std::move(pool_->slots[rec.slot].cb);
  pool_->finish(rec.slot);
  pool_->release(rec.slot);
  ++fired_;
  cb();
}

bool Simulator::dispatch(const Record& rec) {
  if ((rec.slot & kLaneTag) != 0) {
    const LaneId id = rec.slot & ~kLaneTag;
    Lane& ln = lanes_[id];
    if (!ln.alive || !ln.armed || ln.aim_seq != rec.seq) return false;  // superseded
    PROPHET_CHECK(rec.at >= now_);
    now_ = rec.at;
    ln.armed = false;
    --lanes_armed_;
    ++fired_;
    // Run the callback from a local: it may re-aim this lane, destroy it, or
    // even recycle the id for a fresh lane — destroying the std::function we
    // are executing would be UB. Restore it only if the slot still wants it.
    Callback cb = std::move(ln.cb);
    cb();
    Lane& after = lanes_[id];
    if (after.alive && !after.cb) after.cb = std::move(cb);
    return true;
  }
  if (pool_->slots[rec.slot].done) {  // cancelled while queued
    pool_->release(rec.slot);
    return false;
  }
  fire(rec);
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (!heap_.empty()) {
    if (dispatch(pop_front())) ++fired;
  }
  return fired;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) {
    if (dispatch(pop_front())) ++fired;
  }
  return fired;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    if (dispatch(pop_front())) return true;
  }
  return false;
}

}  // namespace prophet::sim
