#include "sim/simulator.hpp"

namespace prophet::sim {

void EventHandle::cancel() {
  if (done_ && !*done_) {
    *done_ = true;
    if (live_ && *live_ > 0) --*live_;
  }
}

bool EventHandle::pending() const { return done_ && !*done_; }

EventHandle Simulator::schedule_at(TimePoint at, Callback cb) {
  PROPHET_CHECK_MSG(at >= now_, "scheduling into the past");
  PROPHET_CHECK(cb != nullptr);
  auto done = std::make_shared<bool>(false);
  queue_.push(Record{at, next_seq_++, std::move(cb), done});
  ++*live_events_;
  return EventHandle{std::move(done), live_events_};
}

EventHandle Simulator::schedule_after(Duration delay, Callback cb) {
  PROPHET_CHECK_MSG(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_periodic(Duration period,
                                         std::function<void(TimePoint)> cb) {
  PROPHET_CHECK(period > Duration::zero());
  // The chain flag is distinct from the per-record done flags: cancelling
  // the chain stops future work, while each queued tick keeps its own
  // lifecycle (it may already be in the queue and fires as a no-op).
  auto chain_cancelled = std::make_shared<bool>(false);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, cb = std::move(cb), chain_cancelled, tick]() {
    if (*chain_cancelled) return;
    cb(now_);
    if (*chain_cancelled) return;
    schedule_at(now_ + period, *tick);
  };
  schedule_at(now_ + period, *tick);
  // The chain handle does not hold a queue slot itself; pass no live counter.
  return EventHandle{std::move(chain_cancelled), nullptr};
}

void Simulator::drop_cancelled() {
  while (!queue_.empty() && *queue_.top().done) {
    queue_.pop();
  }
}

void Simulator::fire_front() {
  Record rec = queue_.top();
  queue_.pop();
  PROPHET_CHECK(rec.at >= now_);
  now_ = rec.at;
  *rec.done = true;
  if (*live_events_ > 0) --*live_events_;
  ++fired_;
  rec.cb();
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  for (;;) {
    drop_cancelled();
    if (queue_.empty()) break;
    fire_front();
    ++fired;
  }
  return fired;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  for (;;) {
    drop_cancelled();
    if (queue_.empty() || queue_.top().at > deadline) break;
    fire_front();
    ++fired;
  }
  return fired;
}

bool Simulator::step() {
  drop_cancelled();
  if (queue_.empty()) return false;
  fire_front();
  return true;
}

}  // namespace prophet::sim
