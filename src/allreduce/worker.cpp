#include "allreduce/worker.hpp"

#include <map>

#include "common/check.hpp"

namespace prophet::ar {

Worker::Worker(sim::Simulator& sim, std::size_t id, std::size_t iterations,
               const dnn::IterationModel* iteration_model, Coordinator* coordinator,
               int batch, Duration metrics_bin, Duration metrics_horizon, Rng rng)
    : sim_{sim},
      id_{id},
      iterations_{iterations},
      iteration_model_{iteration_model},
      coordinator_{coordinator},
      rng_{rng},
      training_{batch},
      gpu_{metrics_bin, metrics_horizon} {
  PROPHET_CHECK(iteration_model_ != nullptr);
  PROPHET_CHECK(coordinator_ != nullptr);
  reduced_.assign(iteration_model_->model().tensor_count(), 0);
}

void Worker::start() { begin_iteration(); }

void Worker::begin_iteration() {
  training_.mark_iteration_start(iter_, sim_.now());
  if (done()) return;
  timing_ = iteration_model_->sample(rng_);
  fwd_layer_ = 0;
  waiting_for_reduction_ = false;
  advance_forward();
}

bool Worker::forward_gate_open(std::size_t layer) const {
  // Layer `layer` of iteration k needs its k-th reduction; the coordinator
  // notifies all workers together, so the local counter mirrors it.
  return iter_ == 0 || reduced_[layer] >= iter_;
}

void Worker::advance_forward() {
  const std::size_t n = reduced_.size();
  if (fwd_layer_ == n) {
    begin_backward();
    return;
  }
  if (!forward_gate_open(fwd_layer_)) {
    waiting_for_reduction_ = true;
    return;
  }
  gpu_.busy_from(sim_.now());
  sim_.schedule_after(timing_.fwd[fwd_layer_], [this] {
    gpu_.idle_from(sim_.now());
    ++fwd_layer_;
    advance_forward();
  });
}

void Worker::begin_backward() {
  const TimePoint now = sim_.now();
  // Worker 0 drives the scheduler's iteration lifecycle (BSP keeps the
  // workers within jitter of each other).
  if (id_ == 0) {
    if (iter_ > 0) coordinator_->on_iteration_end(iter_ - 1, now);
    coordinator_->on_iteration_start(iter_, now);
  }
  gpu_.busy_from(now);
  std::map<Duration, std::vector<std::size_t>> events;
  for (std::size_t g = 0; g < timing_.ready_offset.size(); ++g) {
    events[timing_.ready_offset[g]].push_back(g);
  }
  for (const auto& [offset, grads] : events) {
    sim_.schedule_after(offset, [this, grads = grads] {
      for (std::size_t g : grads) coordinator_->on_gradient_ready(id_, g);
    });
  }
  sim_.schedule_after(timing_.backward_total(), [this] { end_backward(); });
}

void Worker::end_backward() {
  gpu_.idle_from(sim_.now());
  ++iter_;
  begin_iteration();
}

void Worker::on_reduced(std::size_t key) {
  PROPHET_CHECK(key < reduced_.size());
  ++reduced_[key];
  if (waiting_for_reduction_ && fwd_layer_ < reduced_.size() &&
      forward_gate_open(fwd_layer_)) {
    waiting_for_reduction_ = false;
    advance_forward();
  }
}

void Worker::finish() {
  gpu_.finish(sim_.now());
  training_.finish(sim_.now());
}

}  // namespace prophet::ar
