#include "allreduce/cluster.hpp"

#include <algorithm>
#include <memory>

#include "allreduce/coordinator.hpp"
#include "allreduce/worker.hpp"
#include "common/check.hpp"
#include "net/flow_network.hpp"
#include "net/monitor.hpp"
#include "ps/strategy.hpp"
#include "sim/simulator.hpp"

namespace prophet::ar {

double AllReduceResult::mean_rate() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.rate_samples_per_sec;
  return total / static_cast<double>(workers.size());
}

double AllReduceResult::mean_utilization() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.gpu_utilization;
  return total / static_cast<double>(workers.size());
}

AllReduceResult run_allreduce(const ps::ClusterConfig& cfg,
                              std::optional<std::size_t> measure_first) {
  PROPHET_CHECK(cfg.num_workers >= 2);
  sim::Simulator sim;
  const net::TcpCostModel cost{cfg.tcp};
  net::FlowNetwork network{sim, cost, cfg.rate_rebalance};
  network.set_verify_rates(cfg.verify_rates);

  std::vector<net::NodeId> nodes;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const Bandwidth bw = cfg.bandwidth_of_worker(w);
    nodes.push_back(network.add_node("worker" + std::to_string(w), bw, bw));
  }

  const dnn::IterationModel iteration_model{cfg.model, cfg.gpu, cfg.batch,
                                            cfg.kvstore, cfg.jitter_sigma};

  // The collective scheduler sees the ring's effective per-member rate.
  net::BandwidthMonitor monitor{sim, network, nodes[0], net::Direction::kTx,
                                cfg.monitor};
  auto scheduler =
      ps::make_scheduler(cfg.strategy, sched::TaskKind::kPush,
                         cfg.model.tensor_count(),
                         [&monitor] { return monitor.estimate(); }, cost);

  std::vector<std::unique_ptr<Worker>> workers;
  Coordinator coordinator{sim,
                          network,
                          nodes,
                          cfg.model,
                          std::move(scheduler),
                          [&workers](std::size_t w, std::size_t key) {
                            workers[w]->on_reduced(key);
                          }};

  Rng root{cfg.seed};
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    workers.push_back(std::make_unique<Worker>(
        sim, w, cfg.iterations, &iteration_model, &coordinator, cfg.batch,
        cfg.metrics_bin, cfg.metrics_horizon, root.fork(w)));
  }
  for (auto& worker : workers) worker->start();

  const TimePoint horizon = TimePoint::origin() + cfg.metrics_horizon;
  auto all_done = [&] {
    return std::all_of(workers.begin(), workers.end(),
                       [](const auto& w) { return w->done(); });
  };
  while (!all_done() && sim.now() < horizon) {
    if (!sim.step()) break;
  }
  PROPHET_CHECK_MSG(all_done(), "all-reduce training did not finish in time");
  const Duration span = sim.now() - TimePoint::origin();
  for (auto& worker : workers) worker->finish();
  monitor.stop();
  sim.run_until(horizon);

  std::size_t first = measure_first.value_or(0);
  if (!measure_first.has_value()) {
    std::size_t warmup = 3;
    if (cfg.strategy.kind == ps::StrategyConfig::Kind::kProphet) {
      warmup = cfg.strategy.prophet_config.profile_iterations + 3;
    }
    PROPHET_CHECK(warmup + 1 < cfg.iterations);
    first = warmup;
  }

  AllReduceResult result;
  result.measure_first = first;
  result.measure_last = cfg.iterations;
  result.simulated_time = span;
  for (const auto& worker : workers) {
    const auto& tm = worker->training_metrics();
    AllReduceResult::WorkerStats stats;
    stats.iterations_completed = worker->current_iteration();
    stats.rate_samples_per_sec = tm.rate_samples_per_sec(first, cfg.iterations);
    stats.gpu_utilization = worker->gpu().utilization(
        tm.iteration_start(first), tm.iteration_start(cfg.iterations));
    result.workers.push_back(stats);
  }
  return result;
}

}  // namespace prophet::ar
