#include "allreduce/coordinator.hpp"

#include "common/check.hpp"

namespace prophet::ar {

Coordinator::Coordinator(sim::Simulator& sim, net::FlowNetwork& network,
                         std::vector<net::NodeId> nodes, const dnn::ModelSpec& model,
                         std::unique_ptr<sched::CommScheduler> scheduler,
                         ReducedCallback on_reduced)
    : sim_{sim},
      num_workers_{nodes.size()},
      scheduler_{std::move(scheduler)},
      on_reduced_{std::move(on_reduced)},
      ring_{sim, network, std::move(nodes)} {
  PROPHET_CHECK(scheduler_ != nullptr);
  PROPHET_CHECK(on_reduced_ != nullptr);
  keys_.resize(model.tensor_count());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    keys_[k].size = model.tensor(k).bytes;
  }
}

void Coordinator::on_gradient_ready(std::size_t worker, std::size_t key) {
  PROPHET_CHECK(key < keys_.size());
  PROPHET_CHECK(worker < num_workers_);
  KeyState& state = keys_[key];
  ++state.arrived;
  PROPHET_CHECK_MSG(state.arrived <= num_workers_,
                    "gradient readiness over-reported");
  if (state.arrived == num_workers_) {
    state.arrived = 0;
    scheduler_->enqueue(key, state.size, sim_.now());
    pump();
  }
}

void Coordinator::on_iteration_start(std::size_t iteration, TimePoint now) {
  scheduler_->on_iteration_start(iteration, now);
}

void Coordinator::on_iteration_end(std::size_t iteration, TimePoint now) {
  scheduler_->on_iteration_end(iteration, now);
}

std::size_t Coordinator::reductions_completed(std::size_t key) const {
  PROPHET_CHECK(key < keys_.size());
  return keys_[key].versions;
}

void Coordinator::pump() {
  if (ring_.busy()) return;
  auto task = scheduler_->next_task(sim_.now());
  if (!task.has_value()) {
    if (scheduler_->has_pending() && !poll_.pending()) {
      poll_ = sim_.schedule_after(Duration::millis(1), [this] { pump(); });
    }
    return;
  }
  PROPHET_CHECK(!task->items.empty());
  const TimePoint started = sim_.now();
  const Bytes fused = task->total_bytes();
  ring_.run(fused, [this, t = std::move(*task), started] {
    scheduler_->on_task_done(t, started, sim_.now());
    on_collective_done(t);
  });
}

void Coordinator::on_collective_done(const sched::TransferTask& task) {
  for (const auto& item : task.items) {
    KeyState& state = keys_[item.grad];
    state.reduced += item.bytes.count();
    PROPHET_CHECK(state.reduced <= state.size.count());
    if (state.reduced == state.size.count()) {
      state.reduced = 0;
      ++state.versions;
      for (std::size_t w = 0; w < num_workers_; ++w) on_reduced_(w, item.grad);
    }
  }
  pump();
}

}  // namespace prophet::ar
