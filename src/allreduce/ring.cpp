#include "allreduce/ring.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::ar {

RingAllReduce::RingAllReduce(sim::Simulator& sim, net::FlowNetwork& network,
                             std::vector<net::NodeId> nodes)
    : sim_{sim}, network_{network}, nodes_{std::move(nodes)} {
  PROPHET_CHECK_MSG(nodes_.size() >= 2, "a ring needs at least two members");
}

void RingAllReduce::run(Bytes bytes, std::function<void()> done) {
  PROPHET_CHECK_MSG(!busy_, "one collective at a time");
  PROPHET_CHECK(bytes.count() > 0);
  busy_ = true;
  done_ = std::move(done);
  const auto members = static_cast<std::int64_t>(nodes_.size());
  chunk_ = Bytes::of(std::max<std::int64_t>(1, bytes.count() / members));
  rounds_left_ = total_rounds();
  start_round();
}

void RingAllReduce::start_round() {
  PROPHET_CHECK(rounds_left_ > 0);
  flows_in_round_ = nodes_.size();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const net::NodeId src = nodes_[i];
    const net::NodeId dst = nodes_[(i + 1) % nodes_.size()];
    network_.start_flow(src, dst, chunk_,
                        [this](net::FlowId) { on_flow_done(); });
  }
}

void RingAllReduce::on_flow_done() {
  PROPHET_CHECK(flows_in_round_ > 0);
  if (--flows_in_round_ > 0) return;  // round barrier
  if (--rounds_left_ > 0) {
    start_round();
    return;
  }
  busy_ = false;
  // Completion runs outside the flow callback chain so the handler may
  // immediately start the next collective.
  auto done = std::move(done_);
  done_ = nullptr;
  sim_.schedule_after(Duration::zero(), std::move(done));
}

}  // namespace prophet::ar
