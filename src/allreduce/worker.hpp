// Compute-side worker for the all-reduce architecture: runs the same
// forward/backward loop as the PS worker, but gradients go to the collective
// Coordinator and forward layers gate on completed reductions instead of
// pulls.
#pragma once

#include <vector>

#include "allreduce/coordinator.hpp"
#include "common/rng.hpp"
#include "dnn/iteration_model.hpp"
#include "metrics/gpu_tracker.hpp"
#include "metrics/training_metrics.hpp"
#include "sim/simulator.hpp"

namespace prophet::ar {

class Worker {
 public:
  Worker(sim::Simulator& sim, std::size_t id, std::size_t iterations,
         const dnn::IterationModel* iteration_model, Coordinator* coordinator,
         int batch, Duration metrics_bin, Duration metrics_horizon, Rng rng);
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  // Coordinator callback: `key`'s all-reduce completed.
  void on_reduced(std::size_t key);
  void finish();

  [[nodiscard]] bool done() const { return iter_ >= iterations_; }
  [[nodiscard]] std::size_t current_iteration() const { return iter_; }
  [[nodiscard]] const metrics::TrainingMetrics& training_metrics() const {
    return training_;
  }
  [[nodiscard]] const metrics::GpuTracker& gpu() const { return gpu_; }

 private:
  void begin_iteration();
  void advance_forward();
  void begin_backward();
  void end_backward();
  [[nodiscard]] bool forward_gate_open(std::size_t layer) const;

  sim::Simulator& sim_;
  std::size_t id_;
  std::size_t iterations_;
  const dnn::IterationModel* iteration_model_;
  Coordinator* coordinator_;
  Rng rng_;

  metrics::TrainingMetrics training_;
  metrics::GpuTracker gpu_;

  std::size_t iter_{0};
  std::size_t fwd_layer_{0};
  bool waiting_for_reduction_{false};
  dnn::IterationTiming timing_;
  std::vector<std::size_t> reduced_;  // completed reductions per key
};

}  // namespace prophet::ar
