// Ring all-reduce collective over the flow network: W workers arranged in a
// ring; a reduction of S bytes runs 2(W-1) rounds (reduce-scatter then
// all-gather), each round moving S/W bytes from every worker to its ring
// successor concurrently. Rounds are barrier-synchronized — the standard
// bulk-synchronous model of NCCL-style rings.
//
// The cost structure this produces is the reason tensor fusion matters in
// all-reduce stacks: every round pays the per-task setup, so small buckets
// run latency-bound while fused buckets approach 2S/B * (W-1)/W.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"

namespace prophet::ar {

class RingAllReduce {
 public:
  // `nodes` are the ring members in order (>= 2).
  RingAllReduce(sim::Simulator& sim, net::FlowNetwork& network,
                std::vector<net::NodeId> nodes);

  // Starts a collective over `bytes` total payload; `done` fires when the
  // all-gather completes on every member. One collective at a time.
  void run(Bytes bytes, std::function<void()> done);
  [[nodiscard]] bool busy() const { return busy_; }

  // Rounds a full reduction takes: 2 * (W - 1).
  [[nodiscard]] std::size_t total_rounds() const { return 2 * (nodes_.size() - 1); }

 private:
  void start_round();
  void on_flow_done();

  sim::Simulator& sim_;
  net::FlowNetwork& network_;
  std::vector<net::NodeId> nodes_;
  bool busy_{false};
  Bytes chunk_{};
  std::size_t rounds_left_{0};
  std::size_t flows_in_round_{0};
  std::function<void()> done_;
};

}  // namespace prophet::ar
