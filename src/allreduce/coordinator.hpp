// Collective scheduling coordinator: the all-reduce counterpart of the PS.
//
// Gradients become *collectively ready* when every worker has produced
// them; the coordinator feeds ready tensors into a single CommScheduler
// instance (any of the six strategies — this is how PACE-style preemptive
// all-reduce scheduling and Prophet's block assembly transfer to the
// all-reduce architecture) and executes the emitted groups as fused ring
// collectives, one at a time. When a tensor's reduction completes, every
// worker is notified (its next forward pass ungates).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "allreduce/ring.hpp"
#include "dnn/tensor.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace prophet::ar {

class Coordinator {
 public:
  // `on_reduced(worker, key)` fires for every worker when `key`'s
  // all-reduce completes.
  using ReducedCallback = std::function<void(std::size_t worker, std::size_t key)>;

  Coordinator(sim::Simulator& sim, net::FlowNetwork& network,
              std::vector<net::NodeId> nodes, const dnn::ModelSpec& model,
              std::unique_ptr<sched::CommScheduler> scheduler,
              ReducedCallback on_reduced);

  // Worker `worker` finished producing gradient `key` this round.
  void on_gradient_ready(std::size_t worker, std::size_t key);
  // Iteration lifecycle, forwarded to the scheduler (worker 0's backward
  // start stands in for the synchronized BSP round boundary).
  void on_iteration_start(std::size_t iteration, TimePoint now);
  void on_iteration_end(std::size_t iteration, TimePoint now);

  [[nodiscard]] std::size_t reductions_completed(std::size_t key) const;
  [[nodiscard]] sched::CommScheduler& scheduler() { return *scheduler_; }

 private:
  void pump();
  void on_collective_done(const sched::TransferTask& task);

  sim::Simulator& sim_;
  std::size_t num_workers_;
  std::unique_ptr<sched::CommScheduler> scheduler_;
  ReducedCallback on_reduced_;
  RingAllReduce ring_;

  struct KeyState {
    Bytes size;
    std::size_t arrived = 0;   // workers ready this round
    std::int64_t reduced = 0;  // bytes reduced this round (partial fusion)
    std::size_t versions = 0;
  };
  std::vector<KeyState> keys_;
  sim::EventHandle poll_;
};

}  // namespace prophet::ar
