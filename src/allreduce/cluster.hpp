// Driver for all-reduce training runs: W workers in a ring, a collective
// Coordinator running one of the communication strategies, and the same
// metrics the PS engine reports — so the two dominant DDNN architectures
// can be compared under identical workloads.
#pragma once

#include <optional>
#include <vector>

#include "dnn/model_zoo.hpp"
#include "metrics/training_metrics.hpp"
#include "ps/config.hpp"

namespace prophet::ar {

// Reuses the PS ClusterConfig (model / batch / bandwidths / strategy /
// iterations); PS-specific fields (ps_bandwidth, update costs, sync mode)
// are ignored.
struct AllReduceResult {
  struct WorkerStats {
    double rate_samples_per_sec = 0.0;
    double gpu_utilization = 0.0;
    std::size_t iterations_completed = 0;
  };
  std::vector<WorkerStats> workers;
  Duration simulated_time{};
  std::size_t measure_first = 0;
  std::size_t measure_last = 0;

  [[nodiscard]] double mean_rate() const;
  [[nodiscard]] double mean_utilization() const;
};

AllReduceResult run_allreduce(const ps::ClusterConfig& config,
                              std::optional<std::size_t> measure_first = {});

}  // namespace prophet::ar
