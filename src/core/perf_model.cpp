#include "core/perf_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace prophet::core {

PerfModel::PerfModel(GradientProfile profile, std::vector<Duration> fwd_times,
                     Bandwidth bandwidth, net::TcpCostModel cost)
    : profile_{std::move(profile)},
      fwd_times_{std::move(fwd_times)},
      bandwidth_{bandwidth},
      cost_{cost} {
  PROPHET_CHECK(fwd_times_.size() == profile_.gradient_count());
  PROPHET_CHECK(!bandwidth_.is_zero());
}

Duration PerfModel::transfer_estimate(std::size_t grad) const {
  PROPHET_CHECK(grad < profile_.gradient_count());
  return cost_.duration(profile_.sizes[grad], bandwidth_);
}

Duration PerfModel::task_duration(const ScheduledTask& task) const {
  Bytes total{};
  for (std::size_t g : task.grads) {
    PROPHET_CHECK(g < profile_.gradient_count());
    total += profile_.sizes[g];
  }
  return cost_.duration(total, bandwidth_);
}

WaitTimeBreakdown PerfModel::evaluate(const Schedule& schedule) const {
  const std::size_t n = profile_.gradient_count();
  WaitTimeBreakdown out;
  out.update_done.assign(n, Duration::max());
  out.forward_done.assign(n, Duration::max());

  // Eq. (4): u^(i) = t + 2E — the pull mirrors the push through the same
  // bottleneck, so a task's gradients update at start + 2 * task duration.
  std::vector<bool> scheduled(n, false);
  for (const auto& task : schedule.tasks) {
    const Duration done = task.start + task_duration(task) * std::int64_t{2};
    for (std::size_t g : task.grads) {
      PROPHET_CHECK_MSG(!scheduled[g], "gradient scheduled twice");
      scheduled[g] = true;
      out.update_done[g] = done;
    }
  }
  for (std::size_t g = 0; g < n; ++g) {
    PROPHET_CHECK_MSG(scheduled[g], "schedule left a gradient untransferred");
  }

  // Eq. (3): forward dependency chain.
  out.forward_done[0] = out.update_done[0] + fwd_times_[0];
  for (std::size_t i = 1; i < n; ++i) {
    out.forward_done[i] =
        std::max(out.forward_done[i - 1], out.update_done[i]) + fwd_times_[i];
  }

  // Eq. (2): T_wait.
  Duration wait = out.update_done[0] - profile_.ready[0];
  for (std::size_t i = 1; i < n; ++i) {
    wait += positive_part(out.update_done[i] - out.forward_done[i - 1]);
  }
  out.t_wait = wait;
  out.span = out.forward_done[n - 1];
  return out;
}

std::vector<std::string> PerfModel::check_constraints(const Schedule& schedule) const {
  std::vector<std::string> violations;
  char buf[160];
  const Duration c0 = profile_.ready.empty() ? Duration::zero() : profile_.ready[0];

  Duration prev_end = -Duration::max();
  std::size_t prev_fwd_priority = 0;
  bool have_prev_fwd = false;
  for (std::size_t k = 0; k < schedule.tasks.size(); ++k) {
    const auto& task = schedule.tasks[k];
    PROPHET_CHECK(!task.grads.empty());
    const Duration end = task.start + task_duration(task);

    // Constraint (7): members must exist before the task starts.
    for (std::size_t g : task.grads) {
      if (task.start < profile_.ready[g]) {
        std::snprintf(buf, sizeof buf,
                      "constraint (7): task %zu starts at %.3f ms before gradient "
                      "%zu is generated (%.3f ms)",
                      k, task.start.to_millis(), g, profile_.ready[g].to_millis());
        violations.emplace_back(buf);
      }
    }
    // Constraint (8): no concurrent transfers.
    if (k > 0 && task.start < prev_end) {
      std::snprintf(buf, sizeof buf,
                    "constraint (8): task %zu starts at %.3f ms inside the previous "
                    "transfer (ends %.3f ms)",
                    k, task.start.to_millis(), prev_end.to_millis());
      violations.emplace_back(buf);
    }
    prev_end = end;

    const std::size_t priority = *std::min_element(task.grads.begin(), task.grads.end());
    if (task.start > c0) {
      // Constraint (9): after gradient 0 exists, strict priority order.
      if (have_prev_fwd && priority < prev_fwd_priority) {
        std::snprintf(buf, sizeof buf,
                      "constraint (9): task %zu (priority %zu) runs after a lower-"
                      "priority task (priority %zu) post-c0",
                      k, priority, prev_fwd_priority);
        violations.emplace_back(buf);
      }
      prev_fwd_priority = priority;
      have_prev_fwd = true;
    } else {
      // Constraint (11): backward-phase tasks must finish before the next
      // higher-priority gradient is generated.
      Duration next_gen = Duration::max();
      for (std::size_t j = 0; j < priority; ++j) {
        if (profile_.ready[j] > task.start) {
          next_gen = std::min(next_gen, profile_.ready[j]);
        }
      }
      if (end > next_gen) {
        std::snprintf(buf, sizeof buf,
                      "constraint (11): task %zu (priority %zu) ends at %.3f ms, past "
                      "the next higher-priority generation at %.3f ms",
                      k, priority, end.to_millis(), next_gen.to_millis());
        violations.emplace_back(buf);
      }
    }
  }
  return violations;
}

}  // namespace prophet::core
