#include "core/perf_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace prophet::core {

PerfModel::PerfModel(GradientProfile profile, std::vector<Duration> fwd_times,
                     Bandwidth bandwidth, net::TcpCostModel cost)
    : profile_{std::move(profile)},
      fwd_times_{std::move(fwd_times)},
      bandwidth_{bandwidth},
      cost_{cost} {
  PROPHET_CHECK(fwd_times_.size() == profile_.gradient_count());
  PROPHET_CHECK(!bandwidth_.is_zero());
}

Duration PerfModel::transfer_estimate(std::size_t grad) const {
  PROPHET_CHECK(grad < profile_.gradient_count());
  return cost_.duration(profile_.sizes[grad], bandwidth_);
}

Duration PerfModel::task_duration(const ScheduledTask& task) const {
  Bytes total{};
  for (std::size_t g : task.grads) {
    PROPHET_CHECK(g < profile_.gradient_count());
    total += profile_.sizes[g];
  }
  return cost_.duration(total, bandwidth_);
}

Duration PerfModel::task_duration(Bytes total) const {
  return cost_.duration(total, bandwidth_);
}

WaitTimeBreakdown PerfModel::evaluate(const Schedule& schedule) const {
  const std::size_t n = profile_.gradient_count();
  WaitTimeBreakdown out;
  out.update_done.assign(n, Duration::max());
  out.forward_done.assign(n, Duration::max());

  // Eq. (4): u^(i) = t + 2E — the pull mirrors the push through the same
  // bottleneck, so a task's gradients update at start + 2 * task duration.
  std::vector<bool> scheduled(n, false);
  for (const auto& task : schedule.tasks) {
    const Duration done = task.start + task_duration(task) * std::int64_t{2};
    for (std::size_t g : task.grads) {
      PROPHET_CHECK_MSG(!scheduled[g], "gradient scheduled twice");
      scheduled[g] = true;
      out.update_done[g] = done;
    }
  }
  for (std::size_t g = 0; g < n; ++g) {
    PROPHET_CHECK_MSG(scheduled[g], "schedule left a gradient untransferred");
  }

  // Eq. (3): forward dependency chain.
  out.forward_done[0] = out.update_done[0] + fwd_times_[0];
  for (std::size_t i = 1; i < n; ++i) {
    out.forward_done[i] =
        std::max(out.forward_done[i - 1], out.update_done[i]) + fwd_times_[i];
  }

  // Eq. (2): T_wait.
  Duration wait = out.update_done[0] - profile_.ready[0];
  for (std::size_t i = 1; i < n; ++i) {
    wait += positive_part(out.update_done[i] - out.forward_done[i - 1]);
  }
  out.t_wait = wait;
  out.span = out.forward_done[n - 1];
  return out;
}

IncrementalEvaluator::IncrementalEvaluator(const PerfModel& model, const Schedule& initial)
    : model_{&model}, sched_{initial} {
  const auto& profile = model.profile();
  // Re-time exactly as LocalSearchPlanner::retime, caching the byte totals,
  // member-readiness maxima, and durations the trials will reuse.
  Duration nic_free{};
  for (auto& task : sched_.tasks) {
    Duration ready{};
    Bytes total{};
    for (std::size_t g : task.grads) {
      ready = std::max(ready, profile.ready[g]);
      total += profile.sizes[g];
    }
    task.start = std::max(ready, nic_free);
    const Duration dur = model.task_duration(task);  // per-member bounds checks
    nic_free = task.start + dur;
    ready_.push_back(ready);
    bytes_.push_back(total);
    dur_.push_back(dur);
    end_.push_back(nic_free);
  }

  // One full evaluation (with its schedule-validity checks) seeds the
  // per-gradient state; everything after is delta-maintained.
  const WaitTimeBreakdown bd = model.evaluate(sched_);
  update_done_ = bd.update_done;
  forward_done_ = bd.forward_done;
  t_wait_ = bd.t_wait;
  span_ = bd.span;
  const std::size_t n = profile.gradient_count();
  wait_.resize(n);
  wait_[0] = update_done_[0] - profile.ready[0];
  for (std::size_t g = 1; g < n; ++g) {
    wait_[g] = positive_part(update_done_[g] - forward_done_[g - 1]);
  }
  u_stamp_.assign(n, 0);
  u_val_.resize(n);
  f_val_.resize(n);
  w_val_.resize(n);
}

WaitTimeBreakdown IncrementalEvaluator::breakdown() const {
  WaitTimeBreakdown bd;
  bd.update_done = update_done_;
  bd.forward_done = forward_done_;
  bd.t_wait = t_wait_;
  bd.span = span_;
  return bd;
}

Duration IncrementalEvaluator::trial(
    std::size_t first, std::size_t removed,
    std::span<const std::vector<std::size_t>* const> replacement) {
  const auto& profile = model_->profile();
  const std::size_t task_count = sched_.tasks.size();
  PROPHET_CHECK(first + removed <= task_count);
  ++epoch_;
  trial_first_ = first;
  trial_removed_ = removed;
  trial_new_.clear();
  trial_moved_.clear();
  touched_u_.clear();
  touched_f_.clear();

  // Stage 1: re-time the replacement tasks and the tail after them, stopping
  // as soon as a start time matches the resident one — from there on the NIC
  // timeline (and hence every later start) is unchanged.
  Duration nic = first == 0 ? Duration::zero() : end_[first - 1];
  for (const auto* grads : replacement) {
    TrialTask t;
    t.ready = Duration::zero();
    t.bytes = Bytes::zero();
    for (std::size_t g : *grads) {
      t.ready = std::max(t.ready, profile.ready[g]);
      t.bytes += profile.sizes[g];
    }
    t.start = std::max(t.ready, nic);
    t.dur = model_->task_duration(t.bytes);
    t.grads = grads;
    nic = t.start + t.dur;
    trial_new_.push_back(t);
  }
  for (std::size_t j = first + removed; j < task_count; ++j) {
    const Duration start = std::max(ready_[j], nic);
    if (start == sched_.tasks[j].start) break;
    trial_moved_.emplace_back(j, start);
    nic = start + dur_[j];
  }

  // Stage 2: per-gradient update-completion deltas (Eq. (4)).
  const std::size_t n = profile.gradient_count();
  std::size_t g_min = n, g_max = 0;
  const auto set_update = [&](std::size_t g, Duration done) {
    if (done == update_done_[g]) return;
    u_stamp_[g] = epoch_;
    u_val_[g] = done;
    touched_u_.push_back(g);
    g_min = std::min(g_min, g);
    g_max = std::max(g_max, g);
  };
  for (const auto& t : trial_new_) {
    const Duration done = t.start + t.dur * std::int64_t{2};
    for (std::size_t g : *t.grads) set_update(g, done);
  }
  for (const auto& [j, start] : trial_moved_) {
    const Duration done = start + dur_[j] * std::int64_t{2};
    for (std::size_t g : sched_.tasks[j].grads) set_update(g, done);
  }
  if (touched_u_.empty()) {
    trial_t_wait_ = t_wait_;
    trial_span_ = span_;
    trial_valid_ = true;
    return trial_t_wait_;
  }

  // Stage 3: replay the forward-dependency chain (Eq. (3)) and the wait
  // terms (Eq. (2)) from the first affected gradient, stopping once — past
  // the last changed u^(i) — the chain re-converges with the resident state.
  Duration delta{};
  Duration fd_prev = g_min == 0 ? Duration::zero() : forward_done_[g_min - 1];
  Duration span = span_;
  for (std::size_t g = g_min; g < n; ++g) {
    const Duration u = u_stamp_[g] == epoch_ ? u_val_[g] : update_done_[g];
    Duration w, fd;
    if (g == 0) {
      w = u - profile.ready[0];
      fd = u + model_->forward_times()[0];
    } else {
      w = positive_part(u - fd_prev);
      fd = std::max(fd_prev, u) + model_->forward_times()[g];
    }
    delta += w - wait_[g];
    f_val_[g] = fd;
    w_val_[g] = w;
    touched_f_.push_back(g);
    if (g > g_max && fd == forward_done_[g]) break;  // suffix unchanged
    if (g == n - 1) span = fd;
    fd_prev = fd;
  }

  trial_t_wait_ = t_wait_ + delta;
  trial_span_ = span;
  trial_valid_ = true;
  return trial_t_wait_;
}

void IncrementalEvaluator::commit() {
  PROPHET_CHECK_MSG(trial_valid_, "commit without a preceding trial");
  trial_valid_ = false;

  // Splice the replacement into the task-aligned arrays.
  const auto tfirst = static_cast<std::ptrdiff_t>(trial_first_);
  const auto tlast = static_cast<std::ptrdiff_t>(trial_first_ + trial_removed_);
  sched_.tasks.erase(sched_.tasks.begin() + tfirst, sched_.tasks.begin() + tlast);
  bytes_.erase(bytes_.begin() + tfirst, bytes_.begin() + tlast);
  dur_.erase(dur_.begin() + tfirst, dur_.begin() + tlast);
  ready_.erase(ready_.begin() + tfirst, ready_.begin() + tlast);
  end_.erase(end_.begin() + tfirst, end_.begin() + tlast);
  for (std::size_t k = 0; k < trial_new_.size(); ++k) {
    const TrialTask& t = trial_new_[k];
    const auto at = tfirst + static_cast<std::ptrdiff_t>(k);
    ScheduledTask task;
    task.grads = *t.grads;
    task.start = t.start;
    sched_.tasks.insert(sched_.tasks.begin() + at, std::move(task));
    bytes_.insert(bytes_.begin() + at, t.bytes);
    dur_.insert(dur_.begin() + at, t.dur);
    ready_.insert(ready_.begin() + at, t.ready);
    end_.insert(end_.begin() + at, t.start + t.dur);
  }
  // Re-timed tail (indices recorded against the pre-splice layout).
  const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(trial_new_.size()) -
                               static_cast<std::ptrdiff_t>(trial_removed_);
  for (const auto& [j, start] : trial_moved_) {
    const auto idx = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(j) + shift);
    sched_.tasks[idx].start = start;
    end_[idx] = start + dur_[idx];
  }

  for (std::size_t g : touched_u_) update_done_[g] = u_val_[g];
  for (std::size_t g : touched_f_) {
    forward_done_[g] = f_val_[g];
    wait_[g] = w_val_[g];
  }
  t_wait_ = trial_t_wait_;
  span_ = trial_span_;
}

std::vector<std::string> PerfModel::check_constraints(const Schedule& schedule) const {
  std::vector<std::string> violations;
  char buf[160];
  const Duration c0 = profile_.ready.empty() ? Duration::zero() : profile_.ready[0];

  Duration prev_end = -Duration::max();
  std::size_t prev_fwd_priority = 0;
  bool have_prev_fwd = false;
  for (std::size_t k = 0; k < schedule.tasks.size(); ++k) {
    const auto& task = schedule.tasks[k];
    PROPHET_CHECK(!task.grads.empty());
    const Duration end = task.start + task_duration(task);

    // Constraint (7): members must exist before the task starts.
    for (std::size_t g : task.grads) {
      if (task.start < profile_.ready[g]) {
        std::snprintf(buf, sizeof buf,
                      "constraint (7): task %zu starts at %.3f ms before gradient "
                      "%zu is generated (%.3f ms)",
                      // prophet-lint: allow(R1): renders final ns-exact times as ms in a diagnostic string
                      k, task.start.to_millis(), g, profile_.ready[g].to_millis());
        violations.emplace_back(buf);
      }
    }
    // Constraint (8): no concurrent transfers.
    if (k > 0 && task.start < prev_end) {
      std::snprintf(buf, sizeof buf,
                    "constraint (8): task %zu starts at %.3f ms inside the previous "
                    "transfer (ends %.3f ms)",
                    // prophet-lint: allow(R1): renders final ns-exact times as ms in a diagnostic string
                    k, task.start.to_millis(), prev_end.to_millis());
      violations.emplace_back(buf);
    }
    prev_end = end;

    const std::size_t priority = *std::min_element(task.grads.begin(), task.grads.end());
    if (task.start > c0) {
      // Constraint (9): after gradient 0 exists, strict priority order.
      if (have_prev_fwd && priority < prev_fwd_priority) {
        std::snprintf(buf, sizeof buf,
                      "constraint (9): task %zu (priority %zu) runs after a lower-"
                      "priority task (priority %zu) post-c0",
                      k, priority, prev_fwd_priority);
        violations.emplace_back(buf);
      }
      prev_fwd_priority = priority;
      have_prev_fwd = true;
    } else {
      // Constraint (11): backward-phase tasks must finish before the next
      // higher-priority gradient is generated.
      Duration next_gen = Duration::max();
      for (std::size_t j = 0; j < priority; ++j) {
        if (profile_.ready[j] > task.start) {
          next_gen = std::min(next_gen, profile_.ready[j]);
        }
      }
      if (end > next_gen) {
        std::snprintf(buf, sizeof buf,
                      "constraint (11): task %zu (priority %zu) ends at %.3f ms, past "
                      "the next higher-priority generation at %.3f ms",
                      // prophet-lint: allow(R1): renders final ns-exact times as ms in a diagnostic string
                      k, priority, end.to_millis(), next_gen.to_millis());
        violations.emplace_back(buf);
      }
    }
  }
  return violations;
}

}  // namespace prophet::core
