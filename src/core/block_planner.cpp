#include "core/block_planner.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace prophet::core {

BlockPlanner::BlockPlanner(net::TcpCostModel cost, BlockPlannerConfig config)
    : cost_{cost}, config_{config} {
  PROPHET_CHECK(config_.budget_margin >= 0.0 && config_.budget_margin < 1.0);
}

Schedule BlockPlanner::plan(const GradientProfile& profile, Bandwidth bandwidth) const {
  PROPHET_CHECK(!bandwidth.is_zero());
  const std::size_t n = profile.gradient_count();
  PROPHET_CHECK(n > 0);

  // Generation events in time order, as one flat (ready, gradient) array —
  // runs of equal `ready` are the steps of the stepwise pattern. Profiles
  // arrive priority-ordered (gradient n-1 is generated first), so this is a
  // nearly-reversed sequence; sorting it is the only O(n log n) step and the
  // planning loop below allocates no per-gradient nodes.
  std::vector<std::pair<Duration, std::size_t>> order(n);
  for (std::size_t g = 0; g < n; ++g) order[g] = {profile.ready[g], g};
  std::sort(order.begin(), order.end());

  Schedule schedule;
  // Released-but-untransferred gradients, kept sorted ascending (== priority
  // order). Insertions go near the front (later-generated gradients have
  // higher priority); the greedy pass consumes a prefix.
  std::vector<std::size_t> ready;
  ready.reserve(n);
  Duration nic_free{};  // Constraint (8): single transfer at a time

  std::size_t ev = 0;
  while (ev < n) {
    const Duration now = order[ev].first;
    for (; ev < n && order[ev].first == now; ++ev) {
      const std::size_t g = order[ev].second;
      ready.insert(std::lower_bound(ready.begin(), ready.end(), g), g);
    }
    if (ev == n) break;  // gradient 0's event: switch to forward phase

    // Budget: everything assembled now must finish before the next
    // generation event, so high-priority gradients are never blocked.
    const Duration next_gen = order[ev].first;
    const Duration start = std::max(now, nic_free);
    const Duration budget = (next_gen - start) * (1.0 - config_.budget_margin);
    if (budget <= Duration::zero()) continue;

    // Greedy assembly (Alg. 1 lines 6-11): take ready gradients in priority
    // order while the block still fits. The first setup charge pays the
    // per-task overhead; members add pure serialization time (that is the
    // point of blocks).
    ScheduledTask task;
    task.start = start;
    Bytes block_bytes{};
    std::size_t consumed = 0;
    while (consumed < ready.size()) {
      const Bytes candidate = block_bytes + profile.sizes[ready[consumed]];
      if (cost_.duration(candidate, bandwidth) <= budget) {
        block_bytes = candidate;
        task.grads.push_back(ready[consumed]);
        ++consumed;
      } else {
        // Strict priority: never skip ahead of a gradient that does not fit.
        break;
      }
    }
    ready.erase(ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(consumed));
    if (!task.grads.empty()) {
      nic_free = task.start + cost_.duration(block_bytes, bandwidth);
      schedule.tasks.push_back(std::move(task));
    }
  }

  // Forward phase (Alg. 1 lines 13-18): gradient 0 goes first, at its
  // generation time if the NIC is idle; the leftovers follow one by one in
  // priority order.
  for (std::size_t g : ready) {
    ScheduledTask task;
    task.start = std::max(profile.ready[g], nic_free);
    task.grads.push_back(g);
    nic_free = task.start + cost_.duration(profile.sizes[g], bandwidth);
    schedule.tasks.push_back(std::move(task));
  }
  return schedule;
}

}  // namespace prophet::core
