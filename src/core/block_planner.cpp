#include "core/block_planner.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.hpp"

namespace prophet::core {

BlockPlanner::BlockPlanner(net::TcpCostModel cost, BlockPlannerConfig config)
    : cost_{cost}, config_{config} {
  PROPHET_CHECK(config_.budget_margin >= 0.0 && config_.budget_margin < 1.0);
}

Schedule BlockPlanner::plan(const GradientProfile& profile, Bandwidth bandwidth) const {
  PROPHET_CHECK(!bandwidth.is_zero());
  const std::size_t n = profile.gradient_count();
  PROPHET_CHECK(n > 0);

  // Distinct generation events in time order (the steps of the stepwise
  // pattern); each event releases the gradients generated at that instant.
  std::map<Duration, std::vector<std::size_t>> events;
  for (std::size_t g = 0; g < n; ++g) events[profile.ready[g]].push_back(g);

  Schedule schedule;
  std::set<std::size_t> ready;  // ascending == priority order
  Duration nic_free{};          // Constraint (8): single transfer at a time

  auto event_it = events.begin();
  while (event_it != events.end()) {
    const Duration now = event_it->first;
    for (std::size_t g : event_it->second) ready.insert(g);
    ++event_it;
    const bool is_final_event = event_it == events.end();

    if (is_final_event) break;  // gradient 0's event: switch to forward phase

    // Budget: everything assembled now must finish before the next
    // generation event, so high-priority gradients are never blocked.
    const Duration next_gen = event_it->first;
    const Duration start = std::max(now, nic_free);
    const Duration budget = (next_gen - start) * (1.0 - config_.budget_margin);
    if (budget <= Duration::zero()) continue;

    // Greedy assembly (Alg. 1 lines 6-11): take ready gradients in priority
    // order while the block still fits. The first setup charge pays the
    // per-task overhead; members add pure serialization time (that is the
    // point of blocks).
    ScheduledTask task;
    task.start = start;
    Bytes block_bytes{};
    for (auto it = ready.begin(); it != ready.end();) {
      const Bytes candidate = block_bytes + profile.sizes[*it];
      if (cost_.duration(candidate, bandwidth) <= budget) {
        block_bytes = candidate;
        task.grads.push_back(*it);
        it = ready.erase(it);
      } else {
        // Strict priority: never skip ahead of a gradient that does not fit.
        break;
      }
    }
    if (!task.grads.empty()) {
      nic_free = task.start + cost_.duration(block_bytes, bandwidth);
      schedule.tasks.push_back(std::move(task));
    }
  }

  // Forward phase (Alg. 1 lines 13-18): gradient 0 goes first, at its
  // generation time if the NIC is idle; the leftovers follow one by one in
  // priority order.
  for (std::size_t g : ready) {
    ScheduledTask task;
    task.start = std::max(profile.ready[g], nic_free);
    task.grads.push_back(g);
    nic_free = task.start + cost_.duration(profile.sizes[g], bandwidth);
    schedule.tasks.push_back(std::move(task));
  }
  return schedule;
}

}  // namespace prophet::core
