// Reference (brute-force) scheduler: enumerates every grouping of gradients
// into contiguous priority-order blocks, evaluates each with the performance
// model, and returns the schedule minimizing T_wait.
//
// The paper argues its optimization problem is hard to solve exactly at
// runtime (Sec. 3.2) and justifies the greedy Algorithm 1; this oracle makes
// the claim testable: unit tests and the ablation bench measure how close
// the greedy plan gets on small instances.
#pragma once

#include <cstddef>

#include "core/perf_model.hpp"

namespace prophet::core {

struct OracleResult {
  Schedule schedule;
  WaitTimeBreakdown breakdown;
  std::size_t schedules_evaluated = 0;
};

class OracleScheduler {
 public:
  // Refuses instances with more gradients than `max_gradients` (the search
  // enumerates 2^(n-1) contiguous splits).
  explicit OracleScheduler(std::size_t max_gradients = 20);

  [[nodiscard]] OracleResult solve(const PerfModel& model) const;

 private:
  std::size_t max_gradients_;
};

}  // namespace prophet::core
