#include "core/oracle.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::core {

OracleScheduler::OracleScheduler(std::size_t max_gradients)
    : max_gradients_{max_gradients} {
  PROPHET_CHECK(max_gradients_ >= 1 && max_gradients_ <= 24);
}

OracleResult OracleScheduler::solve(const PerfModel& model) const {
  const auto& profile = model.profile();
  const std::size_t n = profile.gradient_count();
  PROPHET_CHECK_MSG(n <= max_gradients_, "instance too large for exhaustive search");

  OracleResult best;
  bool have_best = false;

  // `mask` bit b set => a block boundary between gradient index b and b+1
  // (indices in generation order: n-1 first). Groups execute in generation
  // order; each starts when its highest-priority (= last generated) member
  // exists and the NIC is free.
  const std::uint64_t combinations = n >= 2 ? (1ULL << (n - 1)) : 1;
  for (std::uint64_t mask = 0; mask < combinations; ++mask) {
    Schedule schedule;
    Duration nic_free{};
    std::size_t hi = n;  // exclusive upper bound of the current group
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t idx = n - 1 - step;  // generation order
      const bool boundary = idx == 0 || ((mask >> (idx - 1)) & 1ULL) != 0;
      if (!boundary) continue;
      ScheduledTask task;
      for (std::size_t g = idx; g < hi; ++g) task.grads.push_back(g);
      std::reverse(task.grads.begin(), task.grads.end());  // cosmetic
      // Group ready when its most urgent member (smallest index, generated
      // last) exists.
      task.start = std::max(profile.ready[idx], nic_free);
      nic_free = task.start + model.task_duration(task);
      schedule.tasks.push_back(std::move(task));
      hi = idx;
    }
    const WaitTimeBreakdown breakdown = model.evaluate(schedule);
    ++best.schedules_evaluated;
    if (!have_best || breakdown.t_wait < best.breakdown.t_wait) {
      best.schedule = std::move(schedule);
      best.breakdown = breakdown;
      have_best = true;
    }
  }
  PROPHET_CHECK(have_best);
  return best;
}

}  // namespace prophet::core
