// Training Job Profiler (Fig. 7): records, over the first ~50 iterations,
// when each gradient becomes ready for transfer relative to the start of
// backward propagation, plus the gradient sizes — producing the c^(i) / s^(i)
// inputs of Algorithm 1 and the derived expected transfer intervals A^(i).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet::core {

struct GradientProfile {
  // s^(i): gradient payload sizes.
  std::vector<Bytes> sizes;
  // c^(i): mean ready offset from backward start; non-increasing in i.
  std::vector<Duration> ready;
  // A^(i): time from c^(i) until the next higher-priority gradient is
  // generated (Duration::max() for the final generation step). Derived from
  // `ready` via dnn::transfer_intervals.
  std::vector<Duration> intervals;
  std::size_t iterations_profiled = 0;

  [[nodiscard]] std::size_t gradient_count() const { return sizes.size(); }
  [[nodiscard]] Duration backward_duration() const;
};

class TrainingJobProfiler {
 public:
  // `gradient_count` fixes the model size up front; `target_iterations`
  // matches the paper's 50-iteration pre-training profile.
  TrainingJobProfiler(std::size_t gradient_count, std::size_t target_iterations = 50);

  void begin_iteration(TimePoint backward_start);
  // Gradient `grad` of size `size` became transferable at `when`.
  void record_ready(std::size_t grad, Bytes size, TimePoint when);
  void end_iteration();

  // Crash recovery: discards the open iteration (if any) without recording
  // it — a partially-observed iteration would skew the c^(i) means.
  void abandon_iteration();
  // Marks the open iteration as unusable (a replayed iteration that skips
  // already-aggregated gradients can never see every tensor); end_iteration
  // then discards it instead of asserting completeness. No-op when closed.
  void invalidate_iteration();

  [[nodiscard]] std::size_t iterations_recorded() const { return iterations_; }
  [[nodiscard]] bool complete() const { return iterations_ >= target_; }

  // Averaged profile over everything recorded so far. Requires at least one
  // full iteration.
  [[nodiscard]] GradientProfile build() const;

 private:
  std::size_t gradient_count_;
  std::size_t target_;
  std::size_t iterations_{0};
  std::optional<TimePoint> backward_start_;
  std::vector<Bytes> sizes_;
  // Sum of ready offsets per gradient (for averaging) and per-iteration
  // scratch of this iteration's offsets. Accumulated in integer nanoseconds:
  // summing through double seconds loses sub-ns precision and makes c^(i)
  // depend on accumulation order, which would leak into the block plan.
  std::vector<std::int64_t> offset_sum_ns_;
  // This iteration's offsets are staged here and folded into the sums only
  // when the iteration completes cleanly, so a discarded iteration leaves no
  // residue in the means.
  std::vector<std::int64_t> iter_offset_ns_;
  std::vector<std::int8_t> seen_this_iter_;
  std::size_t seen_count_{0};
  bool invalid_{false};
};

}  // namespace prophet::core
