#include "core/prophet_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace prophet::core {

ProphetScheduler::ProphetScheduler(sched::TaskKind kind, std::size_t gradient_count,
                                   BandwidthFn bandwidth_fn, net::TcpCostModel cost,
                                   ProphetConfig config)
    : CommScheduler{kind},
      gradient_count_{gradient_count},
      bandwidth_fn_{std::move(bandwidth_fn)},
      cost_{cost},
      config_{config},
      partitions_{config.partition_bytes},
      arrived_(gradient_count, 0) {
  PROPHET_CHECK(gradient_count_ > 0);
  PROPHET_CHECK(bandwidth_fn_ != nullptr);
  PROPHET_CHECK(config_.budget_margin >= 0.0 && config_.budget_margin < 1.0);
  if (kind == sched::TaskKind::kPush) {
    profiler_ = std::make_unique<TrainingJobProfiler>(gradient_count_,
                                                      config_.profile_iterations);
  } else {
    // Pull side never profiles: it activates once given the push profile,
    // and until then behaves as FIFO like the profiling phase does.
  }
}

const GradientProfile& ProphetScheduler::profile() const {
  PROPHET_CHECK_MSG(profile_.has_value(), "profile not ready");
  return *profile_;
}

void ProphetScheduler::set_profile(GradientProfile profile) {
  PROPHET_CHECK(profile.gradient_count() == gradient_count_);
  profile_ = std::move(profile);
  profiler_.reset();
}

void ProphetScheduler::on_iteration_start(std::size_t, TimePoint now) {
  backward_start_ = now;
  std::fill(arrived_.begin(), arrived_.end(), std::int8_t{0});
  if (profiler_ != nullptr) {
    if (iteration_open_) {
      profiler_->end_iteration();
      if (profiler_->complete()) {
        profile_ = profiler_->build();
        profiler_.reset();
      }
    }
    if (profiler_ != nullptr) {
      profiler_->begin_iteration(now);
      iteration_open_ = true;
    } else {
      iteration_open_ = false;
    }
  }
  // Once the block assembler is live, (re-)plan against the monitored B at
  // each iteration boundary. The push side plans its interval budgets against
  // the snapshot; both sides size their drain groups from it.
  if (profile_.has_value()) maybe_replan();
}

void ProphetScheduler::on_recovery(TimePoint) {
  // Queued partitions died with the worker's in-flight state; the engine
  // re-enqueues what the replayed iteration still owes.
  partitions_.clear();
  // A partially-observed profiling iteration would skew the c^(i) means —
  // drop it. The profile built from the surviving iterations is what the
  // re-plan works from (profiling simply runs one iteration longer).
  if (profiler_ != nullptr && iteration_open_) {
    profiler_->abandon_iteration();
    iteration_open_ = false;
  }
  // Schedule repair: force a fresh plan from the monitored bandwidth at the
  // next iteration boundary instead of trusting a pre-crash snapshot (the
  // recovery traffic burst and any link change since make it stale).
  if (config_.repair_replan && !planning_bandwidth_.is_zero()) {
    planning_bandwidth_ = Bandwidth::zero();
    ++replans_;
  }
}

void ProphetScheduler::on_partial_recovery(
    const std::vector<std::uint8_t>& /*affected_keys*/, TimePoint now) {
  // The engine clears and re-enqueues the replayed work either way, so the
  // queue and profiling handling match a full recovery...
  partitions_.clear();
  if (profiler_ != nullptr && iteration_open_) {
    profiler_->abandon_iteration();
    iteration_open_ = false;
  }
  // ...but the repair itself is shard-aware: only one PS shard bounced, the
  // fabric kept carrying the surviving shards' flows, so the monitored
  // estimate never went cold. Re-plan from it immediately instead of zeroing
  // the snapshot and waiting for the next iteration boundary — a whole-tier
  // failover cannot do this because its estimate is polluted by the outage
  // window.
  (void)now;
  if (config_.repair_replan && !planning_bandwidth_.is_zero()) {
    const Bandwidth live = bandwidth_fn_();
    if (!live.is_zero()) planning_bandwidth_ = live;
    ++replans_;
  }
}

void ProphetScheduler::on_gradient_skipped(std::size_t grad, TimePoint) {
  PROPHET_CHECK(grad < gradient_count_);
  // The PS already holds this round's aggregate for `grad`: the replayed
  // iteration will not transfer it, but block assembly must not keep
  // predicting its generation either.
  arrived_[grad] = 1;
  // A profiling iteration that skips tensors can never be complete.
  if (profiler_ != nullptr && iteration_open_) profiler_->invalidate_iteration();
}

void ProphetScheduler::maybe_replan() {
  if (!config_.bandwidth_override.is_zero()) return;
  const Bandwidth live = bandwidth_fn_();
  if (live.is_zero()) return;
  if (planning_bandwidth_.is_zero()) {
    planning_bandwidth_ = live;  // initial plan, not a re-plan
    return;
  }
  const double drift =
      std::abs(live.bytes_per_second() - planning_bandwidth_.bytes_per_second()) /
      planning_bandwidth_.bytes_per_second();
  // Drift beyond the dead-band feeds the peak-hold instability signal that
  // sizes the drain groups; measured *before* the snapshot refresh, so a
  // re-plan clears the drift but the instability decays gradually.
  instability_ = std::max(std::max(0.0, drift - config_.instability_deadband),
                          instability_ * config_.instability_decay);
  if (drift > config_.replan_drift) {
    planning_bandwidth_ = live;
    ++replans_;
  }
}

Bandwidth ProphetScheduler::plan_bandwidth_now() const {
  if (!config_.bandwidth_override.is_zero()) return config_.bandwidth_override;
  if (!planning_bandwidth_.is_zero()) return planning_bandwidth_;
  return bandwidth_fn_();
}

Bytes ProphetScheduler::drain_group_bytes() const {
  if (!config_.adaptive_drain_groups || instability_ <= 0.0) {
    return config_.forward_group_max;
  }
  const double scale = 1.0 / (1.0 + config_.instability_gain * instability_);
  // Floor at a quarter of the full cap (and never below a partition): the
  // point is preemption granularity, not giving up amortization entirely.
  const Bytes floor = std::max(config_.partition_bytes,
                               Bytes::of(config_.forward_group_max.count() / 4));
  return std::clamp(
      Bytes::of(static_cast<std::int64_t>(
          static_cast<double>(config_.forward_group_max.count()) * scale)),
      floor, config_.forward_group_max);
}

void ProphetScheduler::enqueue(std::size_t grad, Bytes bytes, TimePoint now) {
  PROPHET_CHECK(grad < gradient_count_);
  arrived_[grad] = 1;
  if (profiler_ != nullptr && iteration_open_) {
    profiler_->record_ready(grad, bytes, now);
  }
  partitions_.add(grad, bytes);
}

bool ProphetScheduler::has_pending() const { return !partitions_.empty(); }

std::optional<TimePoint> ProphetScheduler::next_higher_priority_eta(
    std::size_t grad) const {
  std::optional<TimePoint> eta;
  for (std::size_t j = 0; j < grad; ++j) {
    if (arrived_[j] != 0) continue;
    const TimePoint predicted = backward_start_ + profile_->ready[j];
    if (!eta.has_value() || predicted < *eta) eta = predicted;
  }
  return eta;
}

std::optional<sched::TransferTask> ProphetScheduler::next_task(TimePoint now) {
  if (partitions_.empty()) return std::nullopt;
  if (!profile_.has_value()) {
    // Profiling phase: the underlying engine's default behaviour — priority
    // order, fixed credit-sized groups (BytePS without block assembly).
    sched::TransferTask task;
    task.kind = kind();
    task.items = partitions_.pop(kind() == sched::TaskKind::kPush
                                     ? config_.min_block
                                     : config_.forward_group_max);
    return task;
  }
  return kind() == sched::TaskKind::kPush ? next_push_task(now) : next_pull_task(now);
}

std::optional<sched::TransferTask> ProphetScheduler::next_push_task(TimePoint now) {
  const auto head = partitions_.peek_bytes();
  PROPHET_CHECK(head.has_value());
  sched::TransferTask task;
  task.kind = kind();

  // During forward propagation (gradient 0 arrived) there is nothing left to
  // race: drain the leftovers in strict priority order (Constraint (9) /
  // Alg. 1 lines 13-14), wrapped into block tasks like the prototype's
  // Scheduled Queue wraps gradients into network data — capped so a more
  // urgent tensor never waits long behind an in-flight block.
  const bool backward_running = arrived_[0] == 0;
  const Bandwidth bandwidth = plan_bandwidth_now();
  if (!backward_running) {
    task.items = partitions_.pop(drain_group_bytes());
    return task;
  }

  // Backward phase: block assembly under the predicted interval budget —
  // the time until the next pending gradient is generated. Backward emits in
  // descending index order, so every pending gradient is more urgent than
  // anything already queued; a transfer crossing its generation instant
  // would delay it, violating Constraint (11).
  Duration budget = Duration::max();
  std::optional<TimePoint> eta = next_higher_priority_eta(gradient_count_);
  if (eta.has_value()) {
    budget = positive_part(*eta - now) * (1.0 - config_.budget_margin);
  }
  Bytes byte_budget = budget == Duration::max()
                          ? Bytes::of(std::numeric_limits<std::int64_t>::max() / 2)
                          : cost_.max_bytes_within(budget, bandwidth);
  // Never idle a NIC with work queued, and never shrink below the assembly
  // floor: when the predicted interval collapses (transfers running late, a
  // generation event overdue), a starved or sliver-sending NIC loses far
  // more than the bounded preemption delay one floor-sized block costs
  // (e.g. the 1 Gbps rows of Table 2).
  Bytes floor = config_.min_block;
  // Backlog awareness: when the queued bytes cannot possibly drain before
  // backward propagation completes, racing the generation events is moot —
  // every gradient will queue regardless — so amortize the per-task cost
  // with full-size blocks instead (deep network-bound regimes: FC-heavy or
  // transformer models on slow links).
  const Duration until_c0 =
      positive_part(backward_start_ + profile_->ready[0] - now);
  if (partitions_.queued_bytes() > bandwidth.bytes_in(until_c0)) {
    floor = std::max(floor, drain_group_bytes());
  }
  byte_budget = std::max({byte_budget, *head, floor});
  task.items = partitions_.pop(byte_budget);
  PROPHET_CHECK(!task.items.empty());
  return task;
}

std::optional<sched::TransferTask> ProphetScheduler::next_pull_task(TimePoint) {
  sched::TransferTask task;
  task.kind = kind();
  task.items = partitions_.pop(drain_group_bytes());
  PROPHET_CHECK(!task.items.empty());
  return task;
}

void ProphetScheduler::on_task_done(const sched::TransferTask&, TimePoint, TimePoint) {}

}  // namespace prophet::core
