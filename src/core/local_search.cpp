#include "core/local_search.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::core {

LocalSearchPlanner::LocalSearchPlanner(std::size_t max_rounds)
    : max_rounds_{max_rounds} {
  PROPHET_CHECK(max_rounds_ > 0);
}

Schedule LocalSearchPlanner::retime(const Schedule& schedule, const PerfModel& model) {
  const auto& profile = model.profile();
  Schedule out = schedule;
  Duration nic_free{};
  for (auto& task : out.tasks) {
    Duration ready{};
    for (std::size_t g : task.grads) {
      ready = std::max(ready, profile.ready[g]);
    }
    task.start = std::max(ready, nic_free);
    nic_free = task.start + model.task_duration(task);
  }
  return out;
}

LocalSearchResult LocalSearchPlanner::refine(const Schedule& initial,
                                             const PerfModel& model) const {
  LocalSearchResult result;
  result.schedule = retime(initial, model);
  result.breakdown = model.evaluate(result.schedule);

  for (std::size_t round = 0; round < max_rounds_; ++round) {
    bool improved = false;

    // Move 1: merge adjacent tasks (saves one setup; may delay the earlier
    // task's gradients until the later members exist).
    for (std::size_t i = 0; i + 1 < result.schedule.tasks.size(); ++i) {
      Schedule candidate = result.schedule;
      auto& a = candidate.tasks[i];
      const auto& b = candidate.tasks[i + 1];
      a.grads.insert(a.grads.end(), b.grads.begin(), b.grads.end());
      candidate.tasks.erase(candidate.tasks.begin() +
                            static_cast<std::ptrdiff_t>(i) + 1);
      candidate = retime(candidate, model);
      const auto breakdown = model.evaluate(candidate);
      ++result.moves_evaluated;
      if (breakdown.t_wait < result.breakdown.t_wait) {
        result.schedule = std::move(candidate);
        result.breakdown = breakdown;
        ++result.moves_applied;
        improved = true;
      }
    }

    // Move 2: split a multi-gradient task at every interior position.
    for (std::size_t i = 0; i < result.schedule.tasks.size(); ++i) {
      const std::size_t members = result.schedule.tasks[i].grads.size();
      for (std::size_t cut = 1; cut < members; ++cut) {
        Schedule candidate = result.schedule;
        auto& task = candidate.tasks[i];
        ScheduledTask tail;
        tail.grads.assign(task.grads.begin() + static_cast<std::ptrdiff_t>(cut),
                          task.grads.end());
        task.grads.resize(cut);
        candidate.tasks.insert(candidate.tasks.begin() +
                                   static_cast<std::ptrdiff_t>(i) + 1,
                               std::move(tail));
        candidate = retime(candidate, model);
        const auto breakdown = model.evaluate(candidate);
        ++result.moves_evaluated;
        if (breakdown.t_wait < result.breakdown.t_wait) {
          result.schedule = std::move(candidate);
          result.breakdown = breakdown;
          ++result.moves_applied;
          improved = true;
          break;  // task indices shifted; restart this task's scan
        }
      }
    }

    // Move 3: shift one gradient across an adjacent task boundary (both
    // directions). This is the rebalancing step merge+split cannot express
    // without passing through a worse intermediate schedule.
    for (std::size_t i = 0; i + 1 < result.schedule.tasks.size(); ++i) {
      for (int direction = 0; direction < 2; ++direction) {
        Schedule candidate = result.schedule;
        auto& a = candidate.tasks[i];
        auto& b = candidate.tasks[i + 1];
        if (direction == 0) {
          if (a.grads.size() < 2) continue;  // do not empty a task
          b.grads.insert(b.grads.begin(), a.grads.back());
          a.grads.pop_back();
        } else {
          if (b.grads.size() < 2) continue;
          a.grads.push_back(b.grads.front());
          b.grads.erase(b.grads.begin());
        }
        candidate = retime(candidate, model);
        const auto breakdown = model.evaluate(candidate);
        ++result.moves_evaluated;
        if (breakdown.t_wait < result.breakdown.t_wait) {
          result.schedule = std::move(candidate);
          result.breakdown = breakdown;
          ++result.moves_applied;
          improved = true;
        }
      }
    }

    // Move 4: swap adjacent tasks. Reordering leaves the space the paper's
    // Constraint (9) confines runtime schedules to — the offline optimum can
    // prefer generation order over priority order in backlogged regimes, and
    // quantifying that gap is exactly what this planner is for.
    for (std::size_t i = 0; i + 1 < result.schedule.tasks.size(); ++i) {
      Schedule candidate = result.schedule;
      std::swap(candidate.tasks[i], candidate.tasks[i + 1]);
      candidate = retime(candidate, model);
      const auto breakdown = model.evaluate(candidate);
      ++result.moves_evaluated;
      if (breakdown.t_wait < result.breakdown.t_wait) {
        result.schedule = std::move(candidate);
        result.breakdown = breakdown;
        ++result.moves_applied;
        improved = true;
      }
    }

    if (!improved) break;
  }
  return result;
}

}  // namespace prophet::core
