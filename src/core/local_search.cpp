#include "core/local_search.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace prophet::core {

LocalSearchPlanner::LocalSearchPlanner(std::size_t max_rounds)
    : max_rounds_{max_rounds} {
  PROPHET_CHECK(max_rounds_ > 0);
}

Schedule LocalSearchPlanner::retime(const Schedule& schedule, const PerfModel& model) {
  const auto& profile = model.profile();
  Schedule out = schedule;
  Duration nic_free{};
  for (auto& task : out.tasks) {
    Duration ready{};
    for (std::size_t g : task.grads) {
      ready = std::max(ready, profile.ready[g]);
    }
    task.start = std::max(ready, nic_free);
    nic_free = task.start + model.task_duration(task);
  }
  return out;
}

LocalSearchResult LocalSearchPlanner::refine(const Schedule& initial,
                                             const PerfModel& model) const {
  LocalSearchResult result;
  // All candidate moves are priced by the incremental evaluator: each one is
  // a replacement of one or two adjacent tasks, so only the edited region,
  // the re-timed tail, and the affected forward-chain range are recomputed —
  // never a schedule copy or a full evaluate().
  IncrementalEvaluator eval{model, initial};

  // Reusable member-list buffers for the candidate tasks (the evaluator
  // reads them until commit()).
  std::vector<std::size_t> buf_a, buf_b;
  const std::vector<std::size_t>* reps[2] = {&buf_a, &buf_b};
  const auto try_move = [&](std::size_t first, std::size_t removed,
                            std::size_t replacement_count) {
    const Duration candidate =
        eval.trial(first, removed, std::span{reps, replacement_count});
    ++result.moves_evaluated;
    if (candidate < eval.t_wait()) {
      eval.commit();
      ++result.moves_applied;
      return true;
    }
    return false;
  };

  for (std::size_t round = 0; round < max_rounds_; ++round) {
    bool improved = false;
    const auto& tasks = eval.schedule().tasks;

    // Move 1: merge adjacent tasks (saves one setup; may delay the earlier
    // task's gradients until the later members exist).
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      buf_a = tasks[i].grads;
      buf_a.insert(buf_a.end(), tasks[i + 1].grads.begin(), tasks[i + 1].grads.end());
      improved |= try_move(i, 2, 1);
    }

    // Move 2: split a multi-gradient task at every interior position.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const std::size_t members = tasks[i].grads.size();
      for (std::size_t cut = 1; cut < members; ++cut) {
        const auto& grads = tasks[i].grads;
        buf_a.assign(grads.begin(), grads.begin() + static_cast<std::ptrdiff_t>(cut));
        buf_b.assign(grads.begin() + static_cast<std::ptrdiff_t>(cut), grads.end());
        if (try_move(i, 1, 2)) {
          improved = true;
          break;  // task indices shifted; restart this task's scan
        }
      }
    }

    // Move 3: shift one gradient across an adjacent task boundary (both
    // directions). This is the rebalancing step merge+split cannot express
    // without passing through a worse intermediate schedule.
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      for (int direction = 0; direction < 2; ++direction) {
        const auto& a = tasks[i].grads;
        const auto& b = tasks[i + 1].grads;
        if (direction == 0) {
          if (a.size() < 2) continue;  // do not empty a task
          buf_a.assign(a.begin(), a.end() - 1);
          buf_b.clear();
          buf_b.push_back(a.back());
          buf_b.insert(buf_b.end(), b.begin(), b.end());
        } else {
          if (b.size() < 2) continue;
          buf_a = a;
          buf_a.push_back(b.front());
          buf_b.assign(b.begin() + 1, b.end());
        }
        improved |= try_move(i, 2, 2);
      }
    }

    // Move 4: swap adjacent tasks. Reordering leaves the space the paper's
    // Constraint (9) confines runtime schedules to — the offline optimum can
    // prefer generation order over priority order in backlogged regimes, and
    // quantifying that gap is exactly what this planner is for.
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      buf_a = tasks[i + 1].grads;
      buf_b = tasks[i].grads;
      improved |= try_move(i, 2, 2);
    }

    if (!improved) break;
  }

  result.schedule = eval.schedule();
  result.breakdown = eval.breakdown();
  return result;
}

}  // namespace prophet::core
