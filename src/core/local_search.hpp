// Local-search refinement of a transfer schedule — an extension beyond the
// paper: starting from Algorithm 1's greedy plan, repeatedly try merging
// adjacent tasks (fewer per-task setups) and splitting tasks (finer
// preemption), keep any move that lowers the performance-model T_wait, and
// stop at a local optimum. Demonstrates how the Eq. (1)-(5) model can drive
// plan optimization offline; the ablation bench quantifies the headroom the
// greedy heuristic leaves.
#pragma once

#include <cstddef>

#include "core/perf_model.hpp"

namespace prophet::core {

struct LocalSearchResult {
  Schedule schedule;
  WaitTimeBreakdown breakdown;
  std::size_t moves_applied = 0;
  std::size_t moves_evaluated = 0;
};

class LocalSearchPlanner {
 public:
  explicit LocalSearchPlanner(std::size_t max_rounds = 32);

  // Recomputes feasible start times for tasks in their given order: each
  // task starts when its most urgent member exists and the NIC is free.
  [[nodiscard]] static Schedule retime(const Schedule& schedule,
                                       const PerfModel& model);

  // Refines `initial` (typically BlockPlanner output) under `model`.
  [[nodiscard]] LocalSearchResult refine(const Schedule& initial,
                                         const PerfModel& model) const;

 private:
  std::size_t max_rounds_;
};

}  // namespace prophet::core
