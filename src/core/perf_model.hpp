// The paper's DDNN training performance model (Sec. 3, Eqs. (1)-(5)) plus
// machine-checkable forms of Constraints (7)-(9) and (11).
//
// A Schedule is an ordered list of transfer tasks (each one or more whole
// gradients); evaluate() derives per-gradient update-completion times u^(i)
// (Eq. (4): push + pull), forward completion times p^(i) (Eq. (3)) and the
// total GPU wait time T_wait (Eq. (2)) — the objective Prophet minimizes.
//
// IncrementalEvaluator keeps a schedule plus its full evaluation state
// resident, so a candidate edit (replace a small run of tasks) is priced by
// re-timing only the modified suffix until start times re-converge and by
// re-running the forward-dependency chain only over the affected gradient
// range. All arithmetic is integer nanoseconds, so the incremental T_wait is
// bit-identical to a from-scratch evaluate() of the edited schedule.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "core/profile.hpp"
#include "net/cost_model.hpp"

namespace prophet::core {

// One planned network operation; `start` is an offset from backward start.
struct ScheduledTask {
  std::vector<std::size_t> grads;
  Duration start;
};

struct Schedule {
  // Tasks in execution order (they never overlap: Constraint (8)).
  std::vector<ScheduledTask> tasks;
};

struct WaitTimeBreakdown {
  // u^(i): when gradient i's parameter update (push + aggregate + pull)
  // completes, offset from backward start.
  std::vector<Duration> update_done;
  // p^(i): when layer i's next-iteration forward pass completes.
  std::vector<Duration> forward_done;
  // T_wait (Eq. (2)).
  Duration t_wait;
  // Wall-clock span from backward start to the last forward completion;
  // what iteration time reduces to when compute times are fixed (Eq. (1)).
  Duration span;
};

class PerfModel {
 public:
  // `fwd_times[i]` = T_fp^(i). `bandwidth` = B; `cost` supplies the concrete
  // f(s, B) of Eq. (10) (per-task setup + serialization).
  PerfModel(GradientProfile profile, std::vector<Duration> fwd_times,
            Bandwidth bandwidth, net::TcpCostModel cost);

  [[nodiscard]] const GradientProfile& profile() const { return profile_; }

  // E^(i) of Eq. (5): estimated one-way transfer time of gradient i alone.
  [[nodiscard]] Duration transfer_estimate(std::size_t grad) const;
  // One-way duration of a whole task (single setup charge, summed bytes).
  [[nodiscard]] Duration task_duration(const ScheduledTask& task) const;
  // Same cost for a pre-summed byte total — lets callers that cache per-task
  // totals skip the per-gradient re-summation.
  [[nodiscard]] Duration task_duration(Bytes total) const;
  // T_fp^(i) per gradient, as passed to the constructor.
  [[nodiscard]] const std::vector<Duration>& forward_times() const { return fwd_times_; }

  [[nodiscard]] WaitTimeBreakdown evaluate(const Schedule& schedule) const;

  // Returns human-readable violations of Constraints (7), (8), (9) and (11);
  // empty means the schedule is feasible.
  [[nodiscard]] std::vector<std::string> check_constraints(const Schedule& schedule) const;

 private:
  GradientProfile profile_;
  std::vector<Duration> fwd_times_;
  Bandwidth bandwidth_;
  net::TcpCostModel cost_;
};

// Resident evaluation state for local search: holds a re-timed schedule and
// every intermediate of evaluate() (per-task byte totals/durations,
// per-gradient u^(i), p^(i), and wait terms), and prices candidate edits
// incrementally.
//
// Protocol: trial() describes an edit — replace tasks [first, first+removed)
// with `replacement` member lists — and returns the candidate T_wait without
// changing the resident state. commit() applies the most recent trial. The
// replacement vectors must stay alive and unmodified until commit() or the
// next trial().
class IncrementalEvaluator {
 public:
  // Re-times `initial` (as LocalSearchPlanner::retime) and fully evaluates
  // it once; all later edits are priced incrementally from this state.
  IncrementalEvaluator(const PerfModel& model, const Schedule& initial);

  [[nodiscard]] const Schedule& schedule() const { return sched_; }
  [[nodiscard]] Duration t_wait() const { return t_wait_; }
  // Materializes the full breakdown from the resident per-gradient state.
  [[nodiscard]] WaitTimeBreakdown breakdown() const;

  // Candidate T_wait for the edit; O(edit size + re-timed tail + affected
  // forward range) instead of O(tasks * gradients).
  Duration trial(std::size_t first, std::size_t removed,
                 std::span<const std::vector<std::size_t>* const> replacement);
  // Applies the edit priced by the last trial().
  void commit();

 private:
  struct TrialTask {
    Duration start;
    Duration dur;
    Duration ready;
    Bytes bytes;
    const std::vector<std::size_t>* grads;
  };

  const PerfModel* model_;
  Schedule sched_;
  // Per task, aligned with sched_.tasks.
  std::vector<Bytes> bytes_;
  std::vector<Duration> dur_;
  std::vector<Duration> ready_;  // max member generation time (floored at 0)
  std::vector<Duration> end_;    // start + dur (NIC-free time after the task)
  // Per gradient.
  std::vector<Duration> update_done_;
  std::vector<Duration> forward_done_;
  std::vector<Duration> wait_;  // the per-gradient T_wait terms of Eq. (2)
  Duration t_wait_{};
  Duration span_{};

  // Trial scratch: epoch-stamped overlays avoid O(n) clears per candidate.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> u_stamp_;
  std::vector<Duration> u_val_;
  std::vector<Duration> f_val_;
  std::vector<Duration> w_val_;
  std::vector<std::size_t> touched_u_;
  std::vector<std::size_t> touched_f_;
  std::vector<TrialTask> trial_new_;
  std::vector<std::pair<std::size_t, Duration>> trial_moved_;  // old index -> new start
  std::size_t trial_first_ = 0;
  std::size_t trial_removed_ = 0;
  Duration trial_t_wait_{};
  Duration trial_span_{};
  bool trial_valid_ = false;
};

}  // namespace prophet::core
