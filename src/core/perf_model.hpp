// The paper's DDNN training performance model (Sec. 3, Eqs. (1)-(5)) plus
// machine-checkable forms of Constraints (7)-(9) and (11).
//
// A Schedule is an ordered list of transfer tasks (each one or more whole
// gradients); evaluate() derives per-gradient update-completion times u^(i)
// (Eq. (4): push + pull), forward completion times p^(i) (Eq. (3)) and the
// total GPU wait time T_wait (Eq. (2)) — the objective Prophet minimizes.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "core/profile.hpp"
#include "net/cost_model.hpp"

namespace prophet::core {

// One planned network operation; `start` is an offset from backward start.
struct ScheduledTask {
  std::vector<std::size_t> grads;
  Duration start;
};

struct Schedule {
  // Tasks in execution order (they never overlap: Constraint (8)).
  std::vector<ScheduledTask> tasks;
};

struct WaitTimeBreakdown {
  // u^(i): when gradient i's parameter update (push + aggregate + pull)
  // completes, offset from backward start.
  std::vector<Duration> update_done;
  // p^(i): when layer i's next-iteration forward pass completes.
  std::vector<Duration> forward_done;
  // T_wait (Eq. (2)).
  Duration t_wait;
  // Wall-clock span from backward start to the last forward completion;
  // what iteration time reduces to when compute times are fixed (Eq. (1)).
  Duration span;
};

class PerfModel {
 public:
  // `fwd_times[i]` = T_fp^(i). `bandwidth` = B; `cost` supplies the concrete
  // f(s, B) of Eq. (10) (per-task setup + serialization).
  PerfModel(GradientProfile profile, std::vector<Duration> fwd_times,
            Bandwidth bandwidth, net::TcpCostModel cost);

  [[nodiscard]] const GradientProfile& profile() const { return profile_; }

  // E^(i) of Eq. (5): estimated one-way transfer time of gradient i alone.
  [[nodiscard]] Duration transfer_estimate(std::size_t grad) const;
  // One-way duration of a whole task (single setup charge, summed bytes).
  [[nodiscard]] Duration task_duration(const ScheduledTask& task) const;

  [[nodiscard]] WaitTimeBreakdown evaluate(const Schedule& schedule) const;

  // Returns human-readable violations of Constraints (7), (8), (9) and (11);
  // empty means the schedule is feasible.
  [[nodiscard]] std::vector<std::string> check_constraints(const Schedule& schedule) const;

 private:
  GradientProfile profile_;
  std::vector<Duration> fwd_times_;
  Bandwidth bandwidth_;
  net::TcpCostModel cost_;
};

}  // namespace prophet::core
