#include "core/profile.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dnn/stepwise.hpp"

namespace prophet::core {

Duration GradientProfile::backward_duration() const {
  Duration last{};
  for (Duration d : ready) last = std::max(last, d);
  return last;
}

TrainingJobProfiler::TrainingJobProfiler(std::size_t gradient_count,
                                         std::size_t target_iterations)
    : gradient_count_{gradient_count},
      target_{target_iterations},
      sizes_(gradient_count, Bytes::zero()),
      offset_sum_ns_(gradient_count, 0),
      iter_offset_ns_(gradient_count, 0),
      seen_this_iter_(gradient_count, 0) {
  PROPHET_CHECK(gradient_count > 0);
  PROPHET_CHECK(target_iterations > 0);
}

void TrainingJobProfiler::begin_iteration(TimePoint backward_start) {
  PROPHET_CHECK_MSG(!backward_start_.has_value(),
                    "begin_iteration without matching end_iteration");
  backward_start_ = backward_start;
  std::fill(seen_this_iter_.begin(), seen_this_iter_.end(), std::int8_t{0});
  seen_count_ = 0;
  invalid_ = false;
}

void TrainingJobProfiler::record_ready(std::size_t grad, Bytes size, TimePoint when) {
  PROPHET_CHECK(grad < gradient_count_);
  PROPHET_CHECK_MSG(backward_start_.has_value(), "record_ready outside an iteration");
  PROPHET_CHECK_MSG(seen_this_iter_[grad] == 0, "gradient recorded twice in one iteration");
  PROPHET_CHECK(when >= *backward_start_);
  seen_this_iter_[grad] = 1;
  ++seen_count_;
  sizes_[grad] = size;
  iter_offset_ns_[grad] = (when - *backward_start_).count_nanos();
}

void TrainingJobProfiler::end_iteration() {
  PROPHET_CHECK_MSG(backward_start_.has_value(), "end_iteration without begin");
  if (invalid_) {
    backward_start_.reset();
    invalid_ = false;
    return;
  }
  PROPHET_CHECK_MSG(seen_count_ == gradient_count_,
                    "iteration ended before every gradient was recorded");
  for (std::size_t i = 0; i < gradient_count_; ++i) {
    offset_sum_ns_[i] += iter_offset_ns_[i];
  }
  backward_start_.reset();
  ++iterations_;
}

void TrainingJobProfiler::abandon_iteration() {
  backward_start_.reset();
  invalid_ = false;
}

void TrainingJobProfiler::invalidate_iteration() {
  if (backward_start_.has_value()) invalid_ = true;
}

GradientProfile TrainingJobProfiler::build() const {
  PROPHET_CHECK_MSG(iterations_ > 0, "profile requested before any full iteration");
  GradientProfile profile;
  profile.sizes = sizes_;
  profile.ready.resize(gradient_count_);
  const auto iters = static_cast<std::int64_t>(iterations_);
  for (std::size_t i = 0; i < gradient_count_; ++i) {
    // Round-to-nearest integer mean, matching what the previous
    // double-seconds path produced for every profile in the golden suite.
    profile.ready[i] = Duration::nanos((offset_sum_ns_[i] + iters / 2) / iters);
  }
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = iterations_;
  return profile;
}

}  // namespace prophet::core
