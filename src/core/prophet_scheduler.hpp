// The runtime Prophet scheduler: the online realization of Algorithm 1,
// structured like the BytePS-based prototype (Fig. 7).
//
//  * Training Job Profiler — during the first `profile_iterations`
//    iterations gradient generation times and sizes are recorded while
//    transfers run the underlying BytePS default (priority order in
//    credit-sized groups) — the paper's pre-training phase, whose cost is
//    the runtime overhead examined in Sec. 5.4 / Fig. 13.
//  * Network Bandwidth Monitor — injected as a callable returning the
//    current estimate of B (wired to net::BandwidthMonitor by the engine).
//  * Gradient Block Assembler — on every NIC-idle poll during backward
//    propagation, packs partitions of ready gradients, most urgent first,
//    into one block sized to finish before the *predicted* generation time
//    of the next higher-priority gradient (Constraint (11)). If even one
//    partition does not fit, the NIC deliberately idles: the imminent
//    high-priority gradient must not queue behind us.
//  * Scheduled Queue — next_task()/on_task_done() mirror the prototype's
//    getTask/reportFinish interfaces.
//
// Once gradient 0 arrives, backward is over and the remaining gradients
// drain whole, one per task, in strict priority order (Constraint (9)).
//
// The pull direction has no stepwise generation pattern to predict (updated
// parameters arrive as the PS finishes aggregating), so the pull instance
// groups ready parameters most-urgent-first into blocks capped at
// `pull_group_max` bytes — grouped like the push blocks they mirror, capped
// to bound the preemption delay of a late-arriving parameter 0.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/profile.hpp"
#include "net/cost_model.hpp"
#include "sched/partition_queue.hpp"
#include "sched/scheduler.hpp"

namespace prophet::core {

struct ProphetConfig {
  // Pre-training profile length (the paper uses 50 iterations).
  std::size_t profile_iterations = 50;
  // Packing granularity inside a block (partial tensors are allowed: Fig. 5
  // shows Prophet sending two of gradient 1's three partitions).
  Bytes partition_bytes = Bytes::mib(1);
  // Fraction of the predicted interval kept as safety margin.
  double budget_margin = 0.05;
  // Floor on backward-phase block assembly. When transfers run behind the
  // generation timeline the interval budget collapses to ~zero; assembling
  // at least this much keeps the per-task overhead amortized (an overdue
  // higher-priority gradient then waits at most one such block — credit-like
  // preemption granularity) instead of degenerating into P3-sized slivers.
  Bytes min_block = Bytes::mib(4);
  // Block cap outside the backward race: pull-side groups and the
  // forward-phase drain both wrap ready tensors, most urgent first, into
  // blocks of at most this many bytes (bounds the preemption delay a
  // late-arriving urgent tensor can suffer).
  Bytes forward_group_max = Bytes::mib(8);
  // Under a dynamic network the drain-phase cap tightens with monitored
  // *instability*: each iteration the drift between the live bandwidth
  // estimate and the planning snapshot feeds a peak-hold signal (drift
  // beyond instability_deadband, decaying by instability_decay per
  // iteration), and groups shrink by 1 / (1 + instability_gain *
  // instability). An in-flight group on an unstable link then delays a newly
  // urgent tensor briefly even mid-dip, while a stable network (drift inside
  // the dead-band — monitor jitter) keeps full forward_group_max
  // amortization, leaving static behaviour unchanged. False pins the cap at
  // forward_group_max regardless (ablation knob).
  bool adaptive_drain_groups = true;
  double instability_deadband = 0.02;
  double instability_gain = 60.0;
  double instability_decay = 0.95;
  // Ablation knob: when non-zero, Algorithm 1 uses this fixed bandwidth
  // instead of the live Network Bandwidth Monitor estimate (what Prophet
  // degenerates to without its monitor component).
  Bandwidth bandwidth_override = Bandwidth::zero();
  // Re-plan trigger (the monitor feedback loop of Fig. 7 under a *dynamic*
  // network): Algorithm 1 plans each iteration against a bandwidth snapshot;
  // when the monitored estimate drifts from that snapshot by more than this
  // fraction, the snapshot is refreshed — a re-plan — at the next iteration
  // boundary. Zero refreshes every iteration.
  double replan_drift = 0.1;
  // Schedule repair after a crash/failover: true re-plans from the monitored
  // bandwidth at the next iteration boundary (the recovery burst and any
  // sub-threshold link change since the snapshot make the pre-crash plan
  // stale); false keeps the stale plan and merely re-enqueues lost work —
  // the naive recovery the baselines use (ablation knob; bench/fault_recovery
  // measures the gap).
  bool repair_replan = true;
};

class ProphetScheduler final : public sched::CommScheduler {
 public:
  using BandwidthFn = std::function<Bandwidth()>;

  // `gradient_count` is known from the model; `bandwidth_fn` supplies the
  // monitored B; `cost` is the transfer cost model used for predictions.
  ProphetScheduler(sched::TaskKind kind, std::size_t gradient_count,
                   BandwidthFn bandwidth_fn, net::TcpCostModel cost,
                   ProphetConfig config = {});

  void enqueue(std::size_t grad, Bytes bytes, TimePoint now) override;
  std::optional<sched::TransferTask> next_task(TimePoint now) override;
  void on_task_done(const sched::TransferTask& task, TimePoint started,
                    TimePoint finished) override;
  void on_iteration_start(std::size_t iteration, TimePoint now) override;
  void on_recovery(TimePoint now) override;
  void on_partial_recovery(const std::vector<std::uint8_t>& affected_keys,
                           TimePoint now) override;
  void on_gradient_skipped(std::size_t grad, TimePoint now) override;
  [[nodiscard]] bool has_pending() const override;
  [[nodiscard]] std::string name() const override { return "prophet"; }

  // Profiling finished and the block assembler is active.
  [[nodiscard]] bool profile_ready() const { return profile_.has_value(); }
  [[nodiscard]] const GradientProfile& profile() const;

  // Injects a pre-built profile (skips the profiling phase). Used by tests
  // and by pull-side instances that share the push side's profile.
  void set_profile(GradientProfile profile);

  // Bandwidth Algorithm 1 currently plans against (zero until the first
  // post-profile iteration); drift-triggered refreshes are counted.
  [[nodiscard]] Bandwidth planning_bandwidth() const { return planning_bandwidth_; }
  [[nodiscard]] std::size_t replan_count() const { return replans_; }

 private:
  // Refreshes planning_bandwidth_ when the monitored estimate drifted past
  // config_.replan_drift; called at iteration boundaries once planning.
  void maybe_replan();
  [[nodiscard]] Bandwidth plan_bandwidth_now() const;
  // Cap on drain-phase (forward/pull) groups: forward_group_max shrunk by
  // the monitored-instability signal, clamped to
  // [partition_bytes, forward_group_max].
  [[nodiscard]] Bytes drain_group_bytes() const;
  std::optional<sched::TransferTask> next_push_task(TimePoint now);
  std::optional<sched::TransferTask> next_pull_task(TimePoint now);
  // Predicted generation time of the next gradient more urgent than `grad`
  // that has not been enqueued yet this iteration; nullopt if none pending.
  [[nodiscard]] std::optional<TimePoint> next_higher_priority_eta(std::size_t grad) const;

  std::size_t gradient_count_;
  BandwidthFn bandwidth_fn_;
  net::TcpCostModel cost_;
  ProphetConfig config_;

  // Profiling state (push side only).
  std::unique_ptr<TrainingJobProfiler> profiler_;
  std::optional<GradientProfile> profile_;

  // Block-assembly state (also serves the profiling phase, where tasks are
  // popped most-urgent-first in fixed credit-sized groups).
  sched::PartitionQueue partitions_;
  std::vector<std::int8_t> arrived_;  // per-iteration arrival flags
  TimePoint backward_start_{};
  bool iteration_open_{false};
  Bandwidth planning_bandwidth_ = Bandwidth::zero();
  double instability_{0.0};  // peak-hold monitored drift beyond the dead-band
  std::size_t replans_{0};
};

}  // namespace prophet::core
