// Algorithm 1 — Prophet's communication scheduling strategy, offline form.
//
// Given the profiled generation times c^(i), sizes s^(i) and the monitored
// bandwidth B, the planner walks the stepwise generation timeline and
// greedily assembles gradient blocks that fit inside the expected transfer
// interval A^(i) (time until the next higher-priority gradient appears),
// so that no block ever delays a more urgent gradient (Constraint (11)).
// Gradient 0 starts at its generation time c^(0) (line 17); whatever is left
// after backward ends transfers one gradient at a time in priority order
// (lines 13-14, Constraint (9)).
#pragma once

#include "common/units.hpp"
#include "core/perf_model.hpp"
#include "core/profile.hpp"
#include "net/cost_model.hpp"

namespace prophet::core {

struct BlockPlannerConfig {
  // Safety margin subtracted from every block budget to absorb profile
  // jitter (plan a block slightly smaller than the interval it must fit).
  double budget_margin = 0.05;
};

class BlockPlanner {
 public:
  BlockPlanner(net::TcpCostModel cost, BlockPlannerConfig config = {});

  // Plans one iteration's gradient transfers. The returned schedule is
  // feasible under PerfModel::check_constraints by construction.
  [[nodiscard]] Schedule plan(const GradientProfile& profile, Bandwidth bandwidth) const;

 private:
  net::TcpCostModel cost_;
  BlockPlannerConfig config_;
};

}  // namespace prophet::core
