// Cluster-level scheduling policies for many training jobs sharing one
// leaf-spine fabric — the cross-job layer the ROADMAP's top open item asks
// for, built on the observation that Prophet-style *predictable* per-job
// communication is exactly the input a cross-job scheduler needs:
//
//   * placement  — which rack each job's PS and workers land in. Naive FIFO
//     striping spreads every job across racks (maximal spine traffic); the
//     network-aware policy packs each job into the fewest racks (Dally-style
//     locality), taking cross-rack gradient traffic off the oversubscribed
//     spine entirely when a job fits in one rack.
//   * interleaving — CASSINI-style start-offset assignment for jobs that
//     span racks anyway: from each job's analytically predicted
//     communication-phase duration (IterationModel nominal timing + model
//     bytes over the shared-link rate), stagger starts so BSP-self-clocked
//     comm phases tile the shared uplinks instead of colliding.
//
// Both policies are pure functions of specs and placements: they decide,
// the multi-job driver executes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/topology.hpp"
#include "ps/config.hpp"

namespace prophet::cluster {

enum class PlacementPolicy {
  kFifoStripe,    // submission order, hosts round-robined across racks
  kNetworkAware,  // best-fit: pack each job into the fewest racks
};

enum class InterleavePolicy {
  kNone,     // every job starts at t = 0
  kCassini,  // stagger starts by predicted communication-phase durations
};

[[nodiscard]] const char* placement_name(PlacementPolicy p);
[[nodiscard]] const char* interleave_name(InterleavePolicy p);
[[nodiscard]] std::optional<PlacementPolicy> placement_from_name(
    const std::string& name);
[[nodiscard]] std::optional<InterleavePolicy> interleave_from_name(
    const std::string& name);

// One job submitted to the shared fabric. The job's own ClusterConfig
// topology/bandwidth fields are ignored — the fabric is the driver's.
struct JobSpec {
  ps::ClusterConfig config;
  std::string name;  // defaults to "job<index>"
};

// Rack assignment for one job's hosts (empty / unset on a star fabric:
// placement is meaningless there).
struct Placement {
  std::optional<std::size_t> ps_rack;
  std::vector<std::size_t> worker_racks;

  // Workers placed in a different rack than the PS — each contributes
  // 2 x model bytes per iteration to the spine (push up + pull down).
  [[nodiscard]] std::size_t cross_rack_workers() const;
};

// Assigns every job's hosts to racks under `policy`. Aborts if the combined
// jobs exceed fabric capacity. Star fabrics yield empty placements.
std::vector<Placement> place_jobs(const net::TopologySpec& topology,
                                  const std::vector<JobSpec>& jobs,
                                  PlacementPolicy policy);

// Analytic per-iteration phase prediction for one placed job — the Prophet
// insight applied cross-job: nominal compute from the iteration model, comm
// from bytes over the narrowest link the job's gradient traffic crosses.
struct PhaseEstimate {
  Duration compute{};  // forward + backward, noise-free
  Duration comm{};     // communication phase at the predicted bottleneck
  Duration period{};   // compute + comm (no-overlap upper bound)
  std::int64_t spine_bytes_per_iter = 0;  // one direction, per iteration
};

PhaseEstimate estimate_phases(const net::TopologySpec& topology,
                              const ps::ClusterConfig& config,
                              const Placement& placement);

// Start offsets per job under `policy`. kCassini greedily staggers jobs
// with spine traffic by the accumulated predicted comm durations of the
// spine-sharing jobs before them (capped at one period: beyond that, BSP
// self-clocking has wrapped); jobs without spine traffic start at zero.
std::vector<Duration> interleave_offsets(const net::TopologySpec& topology,
                                         const std::vector<JobSpec>& jobs,
                                         const std::vector<Placement>& placements,
                                         InterleavePolicy policy);

}  // namespace prophet::cluster
