#include "cluster/multi_job.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"
#include "net/flow_network.hpp"
#include "ps/job_runtime.hpp"
#include "sim/simulator.hpp"

namespace prophet::cluster {

MultiJobResult run_multi_job(const MultiJobConfig& config) {
  PROPHET_CHECK_MSG(!config.jobs.empty(), "run_multi_job: no jobs submitted");
  config.topology.validate();

  const std::vector<Placement> placements =
      place_jobs(config.topology, config.jobs, config.placement);
  const std::vector<Duration> offsets = interleave_offsets(
      config.topology, config.jobs, placements, config.interleave);

  sim::Simulator sim;
  const net::TcpCostModel cost{config.jobs.front().config.tcp};
  net::FlowNetwork network{sim, cost, config.rate_rebalance};
  network.set_verify_rates(config.verify_rates);
  net::BuiltTopology topology{network, config.topology};

  std::vector<std::unique_ptr<ps::JobRuntime>> jobs;
  for (std::size_t j = 0; j < config.jobs.size(); ++j) {
    ps::ClusterConfig cfg = config.jobs[j].config;
    // The fabric is the driver's: per-job topology/bandwidth fields are
    // replaced so validate() and bandwidth_of_worker agree with it.
    cfg.topology = config.topology;
    cfg.worker_bandwidth_override.clear();
    cfg.validate();
    ps::JobOptions opts;
    opts.name_prefix = (config.jobs[j].name.empty()
                            ? "job" + std::to_string(j)
                            : config.jobs[j].name) +
                       ".";
    opts.start_offset = offsets[j];
    opts.ps_rack = placements[j].ps_rack;
    opts.worker_racks = placements[j].worker_racks;
    jobs.push_back(std::make_unique<ps::JobRuntime>(sim, network, topology,
                                                    std::move(cfg),
                                                    std::move(opts)));
  }
  for (auto& job : jobs) job->start();

  // One event loop for everyone. A job that crosses its final iteration is
  // finalized on the spot (span recorded, metrics closed, late fault events
  // disarmed) while its residual flows drain alongside the still-running
  // jobs.
  const TimePoint horizon = TimePoint::origin() + config.horizon;
  std::vector<bool> finished(jobs.size(), false);
  std::vector<Duration> finish_at(jobs.size(), Duration::zero());
  std::size_t remaining = jobs.size();
  auto sweep_finished = [&] {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (finished[j] || !jobs[j]->done()) continue;
      jobs[j]->recover_crashed();
      jobs[j]->disarm_faults();
      jobs[j]->finish_training(sim.now());
      finished[j] = true;
      finish_at[j] = sim.now() - TimePoint::origin();
      --remaining;
    }
  };
  sweep_finished();
  while (remaining > 0 && sim.now() < horizon) {
    if (!sim.step()) break;
    sweep_finished();
  }
  PROPHET_CHECK_MSG(remaining == 0,
                    "run_multi_job: a job did not finish within the horizon");
  // Drain residual traffic (all monitors are stopped, so this converges).
  sim.run_until(horizon);
  for (auto& job : jobs) job->finish_audit();

  MultiJobResult result;
  result.events_fired = sim.events_fired();
  result.spine_bytes = topology.spine_bytes();
  result.rebalance = network.rebalance_stats();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobOutcome out;
    out.name = config.jobs[j].name.empty() ? "job" + std::to_string(j)
                                           : config.jobs[j].name;
    out.result = jobs[j]->collect({}, sim.events_fired());
    out.placement = placements[j];
    out.start_offset = offsets[j];
    out.finish_time = finish_at[j];
    if (out.finish_time > result.makespan) result.makespan = out.finish_time;
    result.jobs.push_back(std::move(out));
  }
  return result;
}

}  // namespace prophet::cluster
