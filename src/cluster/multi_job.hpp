// Multi-job driver: N training jobs in ONE simulator event loop on ONE
// shared FlowNetwork, with the cluster scheduler deciding rack placement and
// start interleaving. Jobs contend for the fabric exactly the way their
// flows do — there is no cross-job modeling shortcut; an oversubscribed
// uplink shared by two jobs throttles both through ordinary max-min fairness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/scheduler.hpp"
#include "common/time.hpp"
#include "net/topology.hpp"
#include "ps/cluster.hpp"

namespace prophet::cluster {

struct MultiJobConfig {
  net::TopologySpec topology = net::TopologySpec::leaf_spine(
      /*racks=*/2, /*hosts_per_rack=*/4, Bandwidth::gbps(10),
      /*oversubscription=*/4.0);
  std::vector<JobSpec> jobs;
  PlacementPolicy placement = PlacementPolicy::kNetworkAware;
  InterleavePolicy interleave = InterleavePolicy::kCassini;
  // Shared event-loop bound; every job must finish training within it.
  Duration horizon = Duration::seconds(900);
  // Rate-rebalance engine for the shared fabric (see ClusterConfig).
  net::RebalanceMode rate_rebalance = net::RebalanceMode::kIncremental;
  bool verify_rates = false;
};

struct JobOutcome {
  std::string name;
  ps::ClusterResult result;
  Placement placement;
  Duration start_offset{};
  // Job's last training event, measured from the shared origin (includes the
  // start offset); finish - offset is the job's own training span.
  Duration finish_time{};
};

struct MultiJobResult {
  std::vector<JobOutcome> jobs;
  // Time from origin until the last job crossed its final iteration — the
  // number the scheduling policies compete on.
  Duration makespan{};
  std::uint64_t events_fired = 0;
  // Bytes that crossed any rack uplink/downlink (zero: nothing used the
  // spine, i.e. placement achieved full locality).
  std::int64_t spine_bytes = 0;
  // Rebalance-engine counters for the shared fabric (one network, so one
  // snapshot covering every job).
  net::RebalanceStats rebalance;
};

// Places, interleaves and runs every job to completion. Aborts if the jobs
// exceed fabric capacity or any job misses the horizon. Per-job ClusterConfig
// topology/bandwidth fields are overridden by `config.topology`; the fabric's
// TCP cost model comes from the first job.
MultiJobResult run_multi_job(const MultiJobConfig& config);

}  // namespace prophet::cluster
