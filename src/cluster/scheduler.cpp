#include "cluster/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dnn/iteration_model.hpp"

namespace prophet::cluster {

const char* placement_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kFifoStripe: return "fifo-stripe";
    case PlacementPolicy::kNetworkAware: return "network-aware";
  }
  return "?";
}

const char* interleave_name(InterleavePolicy p) {
  switch (p) {
    case InterleavePolicy::kNone: return "none";
    case InterleavePolicy::kCassini: return "cassini";
  }
  return "?";
}

std::optional<PlacementPolicy> placement_from_name(const std::string& name) {
  if (name == "fifo-stripe") return PlacementPolicy::kFifoStripe;
  if (name == "network-aware") return PlacementPolicy::kNetworkAware;
  return std::nullopt;
}

std::optional<InterleavePolicy> interleave_from_name(const std::string& name) {
  if (name == "none") return InterleavePolicy::kNone;
  if (name == "cassini") return InterleavePolicy::kCassini;
  return std::nullopt;
}

std::size_t Placement::cross_rack_workers() const {
  if (!ps_rack.has_value()) return 0;
  std::size_t n = 0;
  for (const std::size_t r : worker_racks) {
    if (r != *ps_rack) ++n;
  }
  return n;
}

namespace {

std::int64_t model_bytes(const ps::ClusterConfig& cfg) {
  std::int64_t total = 0;
  for (std::size_t k = 0; k < cfg.model.tensor_count(); ++k) {
    total += cfg.model.tensor(k).bytes.count();
  }
  return total;
}

}  // namespace

std::vector<Placement> place_jobs(const net::TopologySpec& topology,
                                  const std::vector<JobSpec>& jobs,
                                  PlacementPolicy policy) {
  std::vector<Placement> placements(jobs.size());
  if (topology.kind == net::TopologySpec::Kind::kStar) return placements;

  std::size_t need = 0;
  for (const JobSpec& job : jobs) need += job.config.num_workers + 1;
  PROPHET_CHECK_MSG(need <= topology.host_capacity(),
                    "cluster scheduler: jobs need more hosts than the fabric has");

  std::vector<std::size_t> free(topology.racks, topology.hosts_per_rack);
  std::size_t cursor = 0;  // fifo-stripe round-robin position
  auto take_striped = [&] {
    while (free[cursor % topology.racks] == 0) ++cursor;
    const std::size_t r = cursor % topology.racks;
    --free[r];
    ++cursor;
    return r;
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t hosts = jobs[j].config.num_workers + 1;
    Placement& p = placements[j];
    if (policy == PlacementPolicy::kFifoStripe) {
      // Naive baseline: hosts land round-robin across racks in submission
      // order, so every job straddles the spine.
      p.ps_rack = take_striped();
      for (std::size_t w = 0; w < jobs[j].config.num_workers; ++w) {
        p.worker_racks.push_back(take_striped());
      }
      continue;
    }
    // Network-aware: best-fit pack. Prefer the fullest rack that still holds
    // the whole job (locality with minimal fragmentation); otherwise spill
    // greedily from the emptiest rack so the spill spans as few racks as
    // possible.
    std::vector<std::size_t> assigned;
    std::size_t best = topology.racks;
    for (std::size_t r = 0; r < topology.racks; ++r) {
      if (free[r] >= hosts && (best == topology.racks || free[r] < free[best])) {
        best = r;
      }
    }
    if (best != topology.racks) {
      assigned.assign(hosts, best);
      free[best] -= hosts;
    } else {
      std::size_t left = hosts;
      while (left > 0) {
        std::size_t widest = 0;
        for (std::size_t r = 1; r < topology.racks; ++r) {
          if (free[r] > free[widest]) widest = r;
        }
        const std::size_t take = std::min(left, free[widest]);
        PROPHET_CHECK(take > 0);
        assigned.insert(assigned.end(), take, widest);
        free[widest] -= take;
        left -= take;
      }
    }
    // PS goes where most of the job sits (the first, widest chunk).
    p.ps_rack = assigned.front();
    p.worker_racks.assign(assigned.begin() + 1, assigned.end());
  }
  return placements;
}

PhaseEstimate estimate_phases(const net::TopologySpec& topology,
                              const ps::ClusterConfig& config,
                              const Placement& placement) {
  PhaseEstimate est;
  const dnn::IterationModel model{config.model, config.gpu, config.batch,
                                  config.kvstore, config.jitter_sigma};
  const dnn::IterationTiming nominal = model.nominal();
  est.compute = nominal.forward_total() + nominal.backward_total();

  const std::int64_t bytes = model_bytes(config);
  const double workers = static_cast<double>(config.num_workers);
  // The PS NIC serializes every worker's push (incast); it bounds the comm
  // phase even with a quiet spine.
  const Bandwidth ps_nic = topology.kind == net::TopologySpec::Kind::kStar
                               ? config.resolved_topology().ps_bandwidth
                               : topology.host_bandwidth;
  Duration comm = Duration::from_seconds(
      workers * static_cast<double>(bytes) / ps_nic.bytes_per_second());
  const std::size_t cross = placement.cross_rack_workers();
  if (cross > 0) {
    est.spine_bytes_per_iter = static_cast<std::int64_t>(cross) * bytes;
    // Cross-rack gradients cross the PS rack's (oversubscribed) links.
    const Duration spine = Duration::from_seconds(
        static_cast<double>(est.spine_bytes_per_iter) /
        topology.uplink_bandwidth().bytes_per_second());
    comm = std::max(comm, spine);
  }
  est.comm = comm;
  est.period = est.compute + est.comm;
  return est;
}

std::vector<Duration> interleave_offsets(const net::TopologySpec& topology,
                                         const std::vector<JobSpec>& jobs,
                                         const std::vector<Placement>& placements,
                                         InterleavePolicy policy) {
  PROPHET_CHECK(jobs.size() == placements.size());
  std::vector<Duration> offsets(jobs.size(), Duration::zero());
  if (policy == InterleavePolicy::kNone) return offsets;
  // Greedy CASSINI-style stagger: each spine-using job starts after the
  // accumulated predicted comm phases of the spine-using jobs before it, so
  // first (and, via BSP self-clocking, subsequent) comm bursts tile the
  // shared links instead of colliding. The stagger wraps at the shortest
  // predicted period — past one period the tiling repeats anyway.
  Duration accumulated = Duration::zero();
  Duration min_period = Duration::zero();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const PhaseEstimate est =
        estimate_phases(topology, jobs[j].config, placements[j]);
    if (est.spine_bytes_per_iter == 0) continue;
    if (min_period == Duration::zero() || est.period < min_period) {
      min_period = est.period;
    }
    Duration offset = accumulated;
    while (offset >= min_period) offset = offset - min_period;
    offsets[j] = offset;
    accumulated = accumulated + est.comm;
  }
  return offsets;
}

}  // namespace prophet::cluster
