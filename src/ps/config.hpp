// Full configuration of a simulated DDNN training cluster (Sec. 5.1 setup:
// up to 8 g3.8xlarge instances, 1 PS + N workers, 1-10 Gbps networks).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "dnn/gpu.hpp"
#include "dnn/iteration_model.hpp"
#include "dnn/model_zoo.hpp"
#include "net/cost_model.hpp"
#include "net/dynamics.hpp"
#include "net/monitor.hpp"
#include "net/reliability.hpp"
#include "net/topology.hpp"
#include "ps/strategy.hpp"

namespace prophet::ps {

enum class SyncMode {
  kBsp,  // Bulk Synchronous Parallel (the paper's setting)
  kAsp,  // Asynchronous Parallel (paper's future-work extension)
};

struct ClusterConfig {
  std::size_t num_workers = 3;
  dnn::ModelSpec model = dnn::resnet50();
  int batch = 64;
  std::size_t iterations = 30;
  std::uint64_t seed = 42;
  // Per-layer compute time jitter (lognormal sigma).
  double jitter_sigma = 0.02;

  dnn::GpuSpec gpu = dnn::tesla_m60_pair();
  dnn::KvStoreConfig kvstore;
  net::TcpCostParams tcp;
  net::BandwidthMonitorConfig monitor;
  SyncMode sync = SyncMode::kBsp;
  StrategyConfig strategy = StrategyConfig::prophet();

  // Network-dynamics / fault-injection timeline applied at event time while
  // the cluster runs (bandwidth shifts, outages, stragglers, PS slowdown,
  // worker/PS crashes, transport loss). Empty by default: a static network.
  net::DynamicsPlan dynamics;

  // Reliable-transport knobs shared by every worker<->PS channel (seeded
  // loss, stall watchdog, bounded backoff, retry budget). Defaults lose
  // nothing and draw no randomness — a fault-free run is bit-identical to
  // one without the channel.
  net::ReliabilityConfig reliability;

  // PS checkpoint period: a `ps_crash` failover restores key versions to the
  // last multiple of this before the crash. Only consulted when the dynamics
  // plan contains a ps_crash event.
  Duration checkpoint_period = Duration::seconds(2);

  // Number of parameter-server shards the key space is striped across
  // (ShardMap: key k lives on shard k % ps_shards). Each shard is its own
  // fabric node with its own reliable channel per worker, checkpoints
  // independently, and a `ps_crash` targeted at `shard:K` rolls back only
  // that shard's rounds while the others keep serving. 1 (the default) is
  // bit-identical to the historical single-PS cluster.
  std::size_t ps_shards = 1;

  // Network fabric the cluster runs on. When unset, the three legacy
  // bandwidth fields below are folded into a TopologySpec::star — today's
  // semantics, bit for bit. Set it explicitly for leaf-spine fabrics (and
  // for new star configs: the flat fields are the deprecated spelling, kept
  // as shims the same way StrategyConfig keeps its make_* factories).
  std::optional<net::TopologySpec> topology;

  // DEPRECATED: use `topology` (TopologySpec::star(...)). Consulted only
  // when `topology` is unset. Uniform worker NIC rate; entries in
  // `worker_bandwidth_override` (indexed by worker) replace it for
  // heterogeneous clusters (Sec. 5.3).
  Bandwidth worker_bandwidth = Bandwidth::gbps(10);
  std::vector<Bandwidth> worker_bandwidth_override;
  Bandwidth ps_bandwidth = Bandwidth::gbps(10);

  // Rate-rebalance engine for the shared FlowNetwork: kIncremental (default)
  // rebalances only the contention component a change touches; kFull re-runs
  // the original whole-network recompute (kept as the reference baseline —
  // bench/scale measures one against the other). `verify_rates` makes every
  // incremental rebalance differential-check its rates bit-for-bit against a
  // full recompute; test-only, it aborts on divergence.
  net::RebalanceMode rate_rebalance = net::RebalanceMode::kIncremental;
  bool verify_rates = false;

  // PS-side aggregation + optimizer step applied per updated key: the PS is
  // CPU-bound (sums W gradient copies and runs the optimizer), a well-known
  // parameter-server bottleneck.
  Duration update_fixed = Duration::micros(200);
  double update_bytes_per_sec = 4e9;
  // Model the PS CPU as a serialized resource (updates queue) instead of
  // independent per-key delays.
  bool serialize_ps_cpu = false;

  // Utilization / throughput series resolution and horizon.
  Duration metrics_bin = Duration::millis(250);
  Duration metrics_horizon = Duration::seconds(900);

  // The fabric actually in effect: `topology` when set, else a star built
  // from the deprecated flat fields.
  [[nodiscard]] net::TopologySpec resolved_topology() const {
    if (topology.has_value()) return *topology;
    return net::TopologySpec::star(worker_bandwidth, ps_bandwidth,
                                   worker_bandwidth_override);
  }

  [[nodiscard]] Bandwidth bandwidth_of_worker(std::size_t w) const {
    const net::TopologySpec t = resolved_topology();
    if (t.kind == net::TopologySpec::Kind::kLeafSpine) return t.host_bandwidth;
    if (w < t.worker_bandwidth_override.size() &&
        !t.worker_bandwidth_override[w].is_zero()) {
      return t.worker_bandwidth_override[w];
    }
    return t.worker_bandwidth;
  }

  // Single validation entry point, called by Cluster's constructor: aborts
  // with a clear message on a misconfiguration (zero workers, too few
  // iterations, non-positive bandwidths or update rate, an override vector
  // longer than the cluster, a malformed dynamics plan, ...) instead of
  // silently simulating nonsense.
  void validate() const;
};

}  // namespace prophet::ps
