#include "ps/worker.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.hpp"

namespace prophet::ps {

Worker::Worker(sim::Simulator& sim, net::FlowNetwork& network, Params params, Rng rng)
    : sim_{sim},
      network_{network},
      params_{std::move(params)},
      rng_{rng},
      training_{params_.batch},
      gpu_{params_.metrics_bin, params_.metrics_horizon},
      transfer_log_{} {
  PROPHET_CHECK(params_.iteration_model != nullptr);
  PROPHET_CHECK(params_.server != nullptr);
  PROPHET_CHECK_MSG(!params_.ps_nodes.empty(), "worker needs at least one PS endpoint");
  PROPHET_CHECK_MSG(params_.ps_nodes.size() == params_.server->num_shards(),
                    "worker endpoint count must match the server's shard count");
  const std::size_t n = params_.iteration_model->model().tensor_count();

  // Each channel owns its own RNG stream: transport loss draws must not
  // shift the compute-jitter sequence (fork draws nothing, so a loss-free
  // run is bit-identical to one without the channels). Shard 0 keeps the
  // historical stream id, so ps_shards=1 replays the single-channel
  // timeline exactly; sibling shards fork disjoint streams.
  for (std::size_t s = 0; s < params_.ps_nodes.size(); ++s) {
    channels_.push_back(std::make_unique<net::ReliableChannel>(
        sim, network, params_.reliability, rng.fork(0xfa017 + s)));
  }

  tx_monitor_ = std::make_unique<net::BandwidthMonitor>(
      sim_, network_, params_.node, net::Direction::kTx, params_.monitor);
  rx_monitor_ = std::make_unique<net::BandwidthMonitor>(
      sim_, network_, params_.node, net::Direction::kRx, params_.monitor);

  push_sched_ = make_scheduler(params_.strategy, sched::TaskKind::kPush, n,
                               [m = tx_monitor_.get()] { return m->estimate(); },
                               params_.cost);
  pull_sched_ = make_scheduler(params_.strategy, sched::TaskKind::kPull, n,
                               [m = rx_monitor_.get()] { return m->estimate(); },
                               params_.cost);

  pulls_done_.assign(n, 0);
  pull_pending_bytes_.assign(n, 0);
  pull_rounds_claimed_.assign(n, 0);
  push_rounds_done_.assign(n, 0);
  push_round_bytes_.assign(n, 0);
  enqueue_time_push_.assign(n, TimePoint::origin());
  enqueue_time_pull_.assign(n, TimePoint::origin());
  enqueue_iter_push_.assign(n, 0);
  ps_shard_down_.assign(params_.ps_nodes.size(), 0);

  for (auto& channel : channels_) {
    channel->set_fault_handler([this](const net::ChannelFault& fault) {
      transfer_log_.record_fault(
          {metrics::FaultKind::kTransportRetry, sim_.now(), fault.attempt});
      if (params_.auditor != nullptr) {
        params_.auditor->on_transport_retry(params_.id, sim_.now());
      }
    });
  }
}

sched::CommScheduler& Worker::scheduler(sched::TaskKind kind) {
  return kind == sched::TaskKind::kPush ? *push_sched_ : *pull_sched_;
}

bool Worker::all_ps_down() const {
  return std::all_of(ps_shard_down_.begin(), ps_shard_down_.end(),
                     [](std::uint8_t down) { return down != 0; });
}

bool Worker::any_ps_down() const {
  return std::any_of(ps_shard_down_.begin(), ps_shard_down_.end(),
                     [](std::uint8_t down) { return down != 0; });
}

void Worker::start() { begin_iteration(); }

void Worker::set_compute_factor(double factor) {
  PROPHET_CHECK_MSG(factor > 0.0, "compute factor must be positive");
  compute_factor_ = factor;
}

std::size_t Worker::prophet_replans() const {
  if (const auto* prophet = dynamic_cast<const core::ProphetScheduler*>(
          push_sched_.get())) {
    return prophet->replan_count();
  }
  return 0;
}

void Worker::begin_iteration() {
  if (params_.auditor != nullptr) {
    params_.auditor->on_iteration_start(params_.id, iter_, sim_.now());
  }
  training_.mark_iteration_start(iter_, sim_.now());
  if (done()) return;  // final boundary recorded; no more compute
  timing_ = params_.iteration_model->sample(rng_);
  if (compute_factor_ != 1.0) {
    // Straggler injection: the whole compute timeline stretches, including
    // the gradient-ready offsets the KVStore flushes are pinned to.
    for (auto& d : timing_.fwd) d = d * compute_factor_;
    for (auto& d : timing_.bwd) d = d * compute_factor_;
    for (auto& d : timing_.ready_offset) d = d * compute_factor_;
  }
  fwd_layer_ = 0;
  waiting_for_param_ = false;
  advance_forward();
}

bool Worker::forward_gate_open(std::size_t layer) const {
  return iter_ == 0 || pulls_done_[layer] >= iter_;
}

void Worker::advance_forward() {
  const std::size_t n = pulls_done_.size();
  while (fwd_layer_ < n) {
    if (!forward_gate_open(fwd_layer_)) {
      // Eq. (3): layer fwd blocked until its parameter update is pulled;
      // this idle gap is exactly the (u - p)^+ term of T_wait.
      waiting_for_param_ = true;
      return;
    }
    gpu_.busy_from(sim_.now());
    sim_.schedule_after(timing_.fwd[fwd_layer_], [this, inc = incarnation_] {
      if (inc != incarnation_) return;  // compute died with the crash
      gpu_.idle_from(sim_.now());
      ++fwd_layer_;
      advance_forward();
    });
    return;  // resumes from the completion event
  }
  begin_backward();
}

void Worker::begin_backward() {
  const TimePoint now = sim_.now();
  if (params_.auditor != nullptr) {
    params_.auditor->on_backward_start(params_.id, iter_, now);
  }
  transfer_log_.mark_backward_start(iter_, now);

  // Iteration lifecycle hooks: iteration k-1 "ends" when forward k has
  // fully completed, i.e. right now.
  if (iter_ > 0) {
    push_sched_->on_iteration_end(iter_ - 1, now);
    pull_sched_->on_iteration_end(iter_ - 1, now);
  }
  push_sched_->on_iteration_start(iter_, now);
  pull_sched_->on_iteration_start(iter_, now);

  // Prophet: once the push side finishes profiling, share the profile with
  // the pull side and note the activation iteration (Fig. 13 boundary).
  if (auto* push_prophet = dynamic_cast<core::ProphetScheduler*>(push_sched_.get())) {
    if (push_prophet->profile_ready()) {
      if (!prophet_activated_at_.has_value()) prophet_activated_at_ = iter_;
      if (auto* pull_prophet =
              dynamic_cast<core::ProphetScheduler*>(pull_sched_.get());
          pull_prophet != nullptr && !pull_prophet->profile_ready()) {
        pull_prophet->set_profile(push_prophet->profile());
      }
    }
  }

  // Backward compute occupies the GPU until the final flush.
  gpu_.busy_from(now);

  // Gradient emissions at the KVStore flush instants (stepwise pattern).
  std::map<Duration, std::vector<std::size_t>> events;
  for (std::size_t g = 0; g < timing_.ready_offset.size(); ++g) {
    events[timing_.ready_offset[g]].push_back(g);
  }
  for (const auto& [offset, grads] : events) {
    sim_.schedule_after(offset, [this, grads = grads, inc = incarnation_] {
      if (inc != incarnation_) return;  // flush died with the crash
      for (std::size_t g : grads) {
        if (push_rounds_done_[g] > iter_) {
          // Replayed backward: this key's round already aggregated at the PS
          // before the fault; re-sending it would double-count the gradient.
          push_sched_->on_gradient_skipped(g, sim_.now());
          continue;
        }
        enqueue_time_push_[g] = sim_.now();
        enqueue_iter_push_[g] = iter_;
        push_sched_->enqueue(g, params_.iteration_model->model().tensor(g).bytes,
                             sim_.now());
      }
      pump(sched::TaskKind::kPush);
    });
  }
  sim_.schedule_after(timing_.backward_total(), [this, inc = incarnation_] {
    if (inc != incarnation_) return;  // backward died with the crash
    end_backward();
  });
}

void Worker::end_backward() {
  gpu_.idle_from(sim_.now());
  ++iter_;
  begin_iteration();
}

void Worker::pump(sched::TaskKind kind) {
  if (crashed_ || all_ps_down()) return;  // no endpoint to talk to
  auto& active = kind == sched::TaskKind::kPush ? push_active_ : pull_active_;
  if (active.has_value()) return;  // one task in flight per direction
  const TimePoint hold = kind == sched::TaskKind::kPush ? push_hold_ : pull_hold_;
  if (sim_.now() < hold) return;  // ack window; a pump is scheduled at `hold`
  auto task = scheduler(kind).next_task(sim_.now());
  if (!task.has_value()) {
    // The scheduler may be holding tensors whose release is time-driven;
    // poll again shortly so such work cannot strand.
    sim::EventHandle& poll = kind == sched::TaskKind::kPush ? push_poll_ : pull_poll_;
    if (scheduler(kind).has_pending() && !poll.pending()) {
      poll = sim_.schedule_after(Duration::millis(1), [this, kind] { pump(kind); });
    }
    return;
  }
  PROPHET_CHECK(!task->items.empty());

  // Fan the task out into one sub-flow per PS shard. Items addressed to a
  // downed shard are dropped here: the shard's failover rollback clears and
  // re-enqueues its keys' work, so sending would only double it later.
  const std::size_t shards = num_shards();
  std::vector<std::vector<sched::TransferItem>> groups(shards);
  bool dropped = false;
  for (const auto& item : task->items) {
    const std::size_t s = shard_of(item.grad);
    if (ps_shard_down_[s] != 0) {
      dropped = true;
      continue;
    }
    groups[s].push_back(item);
  }
  std::size_t live = 0;
  for (const auto& group : groups) {
    if (!group.empty()) ++live;
  }
  if (live == 0) {
    // The whole task addressed downed shards; it dies like an aborted
    // transfer and the next queued task gets the NIC.
    pump(kind);
    return;
  }

  const TimePoint started = sim_.now();
  active.emplace();
  active->task = std::move(*task);
  active->started = started;
  active->open_subflows = live;
  active->lost_items = dropped;
  active->live_on_shard.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    if (groups[s].empty()) continue;
    active->live_on_shard[s] = 1;
    Bytes flow_bytes = Bytes::zero();
    for (const auto& item : groups[s]) flow_bytes += item.bytes;
    const net::NodeId src =
        kind == sched::TaskKind::kPush ? params_.node : params_.ps_nodes[s];
    const net::NodeId dst =
        kind == sched::TaskKind::kPush ? params_.ps_nodes[s] : params_.node;
    channels_[s]->send(src, dst, flow_bytes,
                       [this, kind, s, items = std::move(groups[s]), started](
                           const net::SendOutcome& outcome) {
                         on_subflow_done(kind, s, items, started, outcome);
                       });
  }
}

void Worker::on_subflow_done(sched::TaskKind kind, std::size_t shard,
                             const std::vector<sched::TransferItem>& items,
                             TimePoint started, const net::SendOutcome& outcome) {
  const TimePoint now = sim_.now();
  auto& active = kind == sched::TaskKind::kPush ? push_active_ : pull_active_;
  PROPHET_CHECK(active.has_value() && active->open_subflows > 0);
  active->live_on_shard[shard] = 0;

  for (const auto& item : items) {
    metrics::TransferRecord rec;
    // Attribute the record to the round the tensor was enqueued in: pushes
    // belong to their backward iteration, pulls to the matching update.
    rec.iteration = kind == sched::TaskKind::kPush ? enqueue_iter_push_[item.grad]
                                                   : pulls_done_[item.grad];
    rec.grad = item.grad;
    rec.kind = kind;
    rec.bytes = item.bytes;
    rec.enqueued = kind == sched::TaskKind::kPush ? enqueue_time_push_[item.grad]
                                                  : enqueue_time_pull_[item.grad];
    rec.started = started;
    rec.finished = now;
    rec.attempts = outcome.attempts;
    transfer_log_.record(rec);

    if (kind == sched::TaskKind::kPush) {
      params_.server->on_push_bytes(params_.id, item.grad, item.bytes);
      const std::int64_t full =
          params_.iteration_model->model().tensor(item.grad).bytes.count();
      push_round_bytes_[item.grad] += item.bytes.count();
      PROPHET_CHECK(push_round_bytes_[item.grad] <= full);
      if (push_round_bytes_[item.grad] == full) {
        push_round_bytes_[item.grad] = 0;
        ++push_rounds_done_[item.grad];
      }
    } else {
      pull_pending_bytes_[item.grad] -= item.bytes.count();
      PROPHET_CHECK(pull_pending_bytes_[item.grad] >= 0);
      if (pull_pending_bytes_[item.grad] == 0) {
        ++pulls_done_[item.grad];
        if (params_.auditor != nullptr) {
          params_.auditor->on_pull_complete(params_.id, item.grad,
                                            pulls_done_[item.grad], now);
        }
        if (waiting_for_param_ && forward_gate_open(fwd_layer_)) {
          waiting_for_param_ = false;
          advance_forward();
        }
      }
    }
  }
  close_subflow(kind);
}

void Worker::close_subflow(sched::TaskKind kind) {
  auto& active = kind == sched::TaskKind::kPush ? push_active_ : pull_active_;
  if (--active->open_subflows > 0) return;
  const TimePoint now = sim_.now();
  const sched::TransferTask task = std::move(active->task);
  const TimePoint started = active->started;
  const bool complete = !active->lost_items;
  active.reset();
  if (!complete) {
    // A sub-flow died with a shard (or items were dropped at send time):
    // the task never fully delivered, so it ends without on_task_done —
    // exactly how a whole-tier abort ends a task. The rollback re-enqueues
    // what the lost items owed.
    pump(kind);
    return;
  }
  scheduler(kind).on_task_done(task, started, now);
  if (task.post_delay > Duration::zero()) {
    // Credit-based flow control: hold the NIC until the window-replenishing
    // acknowledgment returns.
    TimePoint& hold = kind == sched::TaskKind::kPush ? push_hold_ : pull_hold_;
    hold = now + task.post_delay;
    sim_.schedule_after(task.post_delay, [this, kind] { pump(kind); });
  } else {
    pump(kind);
  }
}

void Worker::detach_subflows(std::size_t shard) {
  for (const auto kind : {sched::TaskKind::kPush, sched::TaskKind::kPull}) {
    auto& active = kind == sched::TaskKind::kPush ? push_active_ : pull_active_;
    if (!active.has_value() || active->live_on_shard[shard] == 0) continue;
    // The aborted sub-flow's completion callback never fires; account for it
    // here so the surviving sub-flows can still close the task (silently —
    // part of it was lost).
    active->live_on_shard[shard] = 0;
    active->lost_items = true;
    if (--active->open_subflows == 0) active.reset();
  }
}

void Worker::on_param_updated(std::size_t key) {
  // A crashed (or PS-orphaned) worker misses the announcement; recovery
  // re-derives it from the claimed-vs-version gap.
  if (crashed_ || ps_shard_down_[shard_of(key)] != 0) return;
  if (pull_rounds_claimed_[key] >= params_.server->version(key)) return;
  claim_pull(key);
  pump(sched::TaskKind::kPull);
}

void Worker::claim_pull(std::size_t key) {
  const Bytes size = params_.iteration_model->model().tensor(key).bytes;
  PROPHET_CHECK_MSG(pull_pending_bytes_[key] == 0,
                    "param update claimed while a previous pull is still pending");
  ++pull_rounds_claimed_[key];
  pull_pending_bytes_[key] = size.count();
  enqueue_time_pull_[key] = sim_.now();
  pull_sched_->enqueue(key, size, sim_.now());
}

void Worker::reclaim_missed_pulls() {
  for (std::size_t key = 0; key < pull_rounds_claimed_.size(); ++key) {
    if (pull_rounds_claimed_[key] < params_.server->version(key)) claim_pull(key);
  }
}

void Worker::repush_owed_rounds() {
  if (iter_ == 0) return;
  for (std::size_t g = 0; g < push_rounds_done_.size(); ++g) {
    if (push_rounds_done_[g] >= iter_) continue;
    // The round-k barrier precedes backward k, so the debt is exactly the
    // one round whose transfers were in flight when the fault hit.
    PROPHET_CHECK_MSG(push_rounds_done_[g] + 1 == iter_,
                      "fault recovery found a push debt deeper than one round; "
                      "the BSP barrier should have stopped the worker earlier");
    enqueue_time_push_[g] = sim_.now();
    enqueue_iter_push_[g] = iter_ - 1;
    push_sched_->enqueue(g, params_.iteration_model->model().tensor(g).bytes,
                         sim_.now());
  }
}

void Worker::halt_inflight() {
  ++incarnation_;  // fences every scheduled compute callback
  for (auto& channel : channels_) channel->abort_all();
  push_active_.reset();
  pull_active_.reset();
  push_poll_.cancel();
  pull_poll_.cancel();
  push_hold_ = TimePoint::origin();
  pull_hold_ = TimePoint::origin();
  waiting_for_param_ = false;
  std::fill(pull_pending_bytes_.begin(), pull_pending_bytes_.end(), 0);
  std::fill(push_round_bytes_.begin(), push_round_bytes_.end(), 0);
  if (gpu_.is_busy()) gpu_.idle_from(sim_.now());
}

void Worker::replay_iteration() {
  if (done()) return;
  // The interrupted iteration restarts from the top of forward: its start
  // mark is re-recorded and its compute timing is re-sampled.
  training_.rewind_to(iter_);
  begin_iteration();
}

void Worker::crash() {
  PROPHET_CHECK_MSG(!crashed_, "worker crashed while already down");
  crashed_ = true;
  halt_inflight();
  // Announcements delivered while down are lost; recovery re-claims the gap
  // between what the pull pipeline had accepted and the server's version.
  pull_rounds_claimed_ = pulls_done_;
  params_.server->on_worker_crash(params_.id);
  transfer_log_.record_fault({metrics::FaultKind::kWorkerCrash, sim_.now(), 0});
  if (params_.auditor != nullptr) {
    params_.auditor->on_worker_crash(params_.id, sim_.now());
  }
}

void Worker::recover() {
  PROPHET_CHECK_MSG(crashed_, "worker recover without a crash");
  crashed_ = false;
  transfer_log_.record_fault({metrics::FaultKind::kWorkerRecover, sim_.now(), 0});
  if (params_.auditor != nullptr) {
    params_.auditor->on_worker_recover(params_.id, sim_.now());
  }
  // Queued scheduler work refers to the interrupted round; drop it (Prophet
  // re-plans from its surviving profile, the others start clean).
  push_sched_->on_recovery(sim_.now());
  pull_sched_->on_recovery(sim_.now());
  // rollback() restarts the pipeline once the PS is back. A partially-down
  // tier keeps serving: work addressed to the downed shard is dropped at
  // send time and re-enqueued by that shard's rollback.
  if (all_ps_down()) return;
  reclaim_missed_pulls();
  repush_owed_rounds();
  replay_iteration();
  pump(sched::TaskKind::kPush);
  pump(sched::TaskKind::kPull);
}

void Worker::on_ps_crash() {
  PROPHET_CHECK_MSG(!any_ps_down(), "PS crashed while already down");
  std::fill(ps_shard_down_.begin(), ps_shard_down_.end(), std::uint8_t{1});
  halt_inflight();
  // In-flight pull claims died with the PS round state.
  pull_rounds_claimed_ = pulls_done_;
  transfer_log_.record_fault({metrics::FaultKind::kPsCrash, sim_.now(), 0});
}

void Worker::on_ps_shard_crash(std::size_t shard) {
  PROPHET_CHECK(shard < num_shards());
  PROPHET_CHECK_MSG(ps_shard_down_[shard] == 0, "PS shard crashed while already down");
  ps_shard_down_[shard] = 1;
  // Only this shard's endpoint died: abort its channel, detach its sub-flows
  // from the active tasks, and leave compute unfenced — forward stalls only
  // when (and if) it reaches a layer that needs a shard-k pull.
  channels_[shard]->abort_all();
  detach_subflows(shard);
  for (std::size_t key = shard; key < pulls_done_.size(); key += num_shards()) {
    // In-flight pulls of the shard's keys died with its round state, and the
    // server-side crash wiped their open partial pushes; mirror both.
    pull_pending_bytes_[key] = 0;
    pull_rounds_claimed_[key] = pulls_done_[key];
    push_round_bytes_[key] = 0;
  }
  transfer_log_.record_fault({metrics::FaultKind::kPsCrash, sim_.now(), 0});
  if (crashed_ || all_ps_down()) return;
  pump(sched::TaskKind::kPush);
  pump(sched::TaskKind::kPull);
}

void Worker::rollback(const std::vector<std::size_t>& versions) {
  PROPHET_CHECK_MSG(all_ps_down(), "rollback without a PS crash");
  PROPHET_CHECK(versions.size() == pulls_done_.size());
  halt_inflight();
  std::size_t target = params_.iterations;
  for (std::size_t k = 0; k < versions.size(); ++k) {
    // Force a re-pull of the snapshot round: the restored parameter value
    // must reach the worker even if it had pulled that round before.
    pulls_done_[k] = versions[k] > 0 ? versions[k] - 1 : 0;
    pull_rounds_claimed_[k] = pulls_done_[k];
    push_rounds_done_[k] = std::min(push_rounds_done_[k], versions[k]);
    target = std::min(target, versions[k]);
  }
  iter_ = std::min(iter_, target);
  std::fill(ps_shard_down_.begin(), ps_shard_down_.end(), std::uint8_t{0});
  transfer_log_.record_fault({metrics::FaultKind::kPsFailover, sim_.now(), 0});
  push_sched_->on_recovery(sim_.now());
  pull_sched_->on_recovery(sim_.now());
  if (crashed_) return;  // this worker restarts on its own recover()
  reclaim_missed_pulls();
  repush_owed_rounds();
  replay_iteration();
  pump(sched::TaskKind::kPush);
  pump(sched::TaskKind::kPull);
}

void Worker::rollback_shard(std::size_t shard,
                            const std::vector<std::size_t>& versions) {
  PROPHET_CHECK(shard < num_shards());
  PROPHET_CHECK_MSG(ps_shard_down_[shard] != 0, "rollback without a PS crash");
  PROPHET_CHECK(versions.size() == pulls_done_.size());
  // Every direction restarts: the halt aborts in-flight transfers on every
  // shard, so open partial pushes on surviving shards must be discarded
  // server-side too — their rounds re-send whole during replay.
  halt_inflight();
  params_.server->discard_open_pushes(params_.id);
  // Interrupted pull claims (on any shard) are re-derived from the
  // claimed-vs-version gap below.
  pull_rounds_claimed_ = pulls_done_;
  std::size_t target = params_.iterations;
  for (std::size_t key = shard; key < versions.size(); key += num_shards()) {
    // Only the shard's keys roll back; `versions` carries the surviving
    // keys' live versions through verbatim (the server's recover_shard
    // contract, version-fenced by the auditor).
    pulls_done_[key] = versions[key] > 0 ? versions[key] - 1 : 0;
    pull_rounds_claimed_[key] = pulls_done_[key];
    push_rounds_done_[key] = std::min(push_rounds_done_[key], versions[key]);
    target = std::min(target, versions[key]);
  }
  iter_ = std::min(iter_, target);
  ps_shard_down_[shard] = 0;
  transfer_log_.record_fault({metrics::FaultKind::kPsFailover, sim_.now(), 0});
  // Shard-aware schedule repair: strategies learn which keys rolled back
  // (Prophet re-plans immediately from its still-warm bandwidth estimate).
  std::vector<std::uint8_t> affected(versions.size(), 0);
  for (std::size_t key = shard; key < affected.size(); key += num_shards()) {
    affected[key] = 1;
  }
  push_sched_->on_partial_recovery(affected, sim_.now());
  pull_sched_->on_partial_recovery(affected, sim_.now());
  if (crashed_) return;  // this worker restarts on its own recover()
  reclaim_missed_pulls();
  repush_owed_rounds();
  replay_iteration();
  pump(sched::TaskKind::kPush);
  pump(sched::TaskKind::kPull);
}

void Worker::set_loss_rate(double rate) {
  for (auto& channel : channels_) channel->set_loss_rate(rate);
}

void Worker::finish() {
  gpu_.finish(sim_.now());
  training_.finish(sim_.now());
  tx_monitor_->stop();
  rx_monitor_->stop();
}

}  // namespace prophet::ps
