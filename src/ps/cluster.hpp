// Cluster driver: wires N workers, one PS, the flow network and the chosen
// communication strategy into a Simulator, runs the training job, and
// collects every measurement the paper's evaluation reports.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/time_series.hpp"
#include "dnn/model_zoo.hpp"
#include "metrics/gpu_tracker.hpp"
#include "metrics/training_metrics.hpp"
#include "metrics/transfer_log.hpp"
#include "net/flow_network.hpp"
#include "ps/config.hpp"

namespace prophet::ps {

struct WorkerResult {
  std::size_t id = 0;
  // Headline numbers over the default measurement window.
  double rate_samples_per_sec = 0.0;
  double gpu_utilization = 0.0;
  std::size_t iterations_completed = 0;
  std::optional<std::size_t> prophet_activated_at;
  // Drift-triggered bandwidth re-plans (Prophet only; zero otherwise).
  std::size_t prophet_replans = 0;
  // Full series/logs for timeline benches.
  metrics::TrainingMetrics training;
  metrics::TransferLog transfers;
  BinnedSeries gpu_series;
  // Raw GPU busy intervals (trace export).
  std::vector<std::pair<TimePoint, TimePoint>> gpu_intervals;
  BinnedSeries tx_series;
  BinnedSeries rx_series;
};

struct ClusterResult {
  std::vector<WorkerResult> workers;
  // Measurement window (iterations) used for the headline numbers.
  std::size_t measure_first = 0;
  std::size_t measure_last = 0;
  Duration simulated_time{};
  std::uint64_t events_fired = 0;
  // BSP invariant checks evaluated by the auditor (0 under ASP).
  std::size_t audit_checks = 0;
  // Rebalance-engine counters (settlements, component walks, rate-group
  // lifecycle, verify checks) for the network this job ran on. Under
  // multi-job sharing the fabric is common, so every job reports the same
  // shared snapshot.
  net::RebalanceStats rebalance;

  // Mean per-worker training rate (samples/s) over the window.
  [[nodiscard]] double mean_rate() const;
  [[nodiscard]] double mean_utilization() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  // Runs the configured number of iterations and gathers results. The rate
  // window defaults to [warmup, iterations), where warmup skips Prophet's
  // profiling phase (plus slack) so strategies are compared at steady state;
  // pass `measure_first` to override.
  [[nodiscard]] ClusterResult run(std::optional<std::size_t> measure_first = {});

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

// One-call convenience used by benches and tests.
ClusterResult run_cluster(const ClusterConfig& config,
                          std::optional<std::size_t> measure_first = {});

}  // namespace prophet::ps
