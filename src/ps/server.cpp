#include "ps/server.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::ps {

Server::Server(sim::Simulator& sim, const dnn::ModelSpec& model,
               std::size_t num_workers, bool asp, Duration update_fixed,
               double update_bytes_per_sec, UpdateCallback on_updated,
               bool serialize_cpu)
    : sim_{sim},
      num_workers_{num_workers},
      asp_{asp},
      update_fixed_{update_fixed},
      update_bytes_per_sec_{update_bytes_per_sec},
      on_updated_{std::move(on_updated)},
      serialize_cpu_{serialize_cpu} {
  PROPHET_CHECK(num_workers_ > 0);
  PROPHET_CHECK(update_bytes_per_sec_ > 0.0);
  PROPHET_CHECK(on_updated_ != nullptr);
  keys_.resize(model.tensor_count());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    keys_[k].size = model.tensor(k).bytes;
    keys_[k].received.assign(num_workers_, 0);
  }
}

void Server::on_push_bytes(std::size_t worker, std::size_t key, Bytes bytes) {
  PROPHET_CHECK(key < keys_.size());
  PROPHET_CHECK(worker < num_workers_);
  KeyState& state = keys_[key];
  state.received[worker] += bytes.count();
  PROPHET_CHECK_MSG(state.received[worker] <= state.size.count(),
                    "worker pushed more bytes than the key holds this round");
  if (state.received[worker] < state.size.count()) return;

  if (asp_) {
    // ASP: this worker's contribution updates immediately and only this
    // worker learns the new value.
    state.received[worker] = 0;
    ++state.versions;
    const Duration cost =
        // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
        update_fixed_ + Duration::from_seconds(
                            static_cast<double>(state.size.count()) /
                            update_bytes_per_sec_);
    const std::size_t k = key;
    const std::size_t w = worker;
    schedule_update(cost, [this, w, k] { on_updated_(w, k); });
    return;
  }

  ++state.arrived;
  PROPHET_CHECK(state.arrived <= num_workers_);
  if (state.arrived == num_workers_) complete_round(key);
}

void Server::complete_round(std::size_t key) {
  KeyState& state = keys_[key];
  state.arrived = 0;
  std::fill(state.received.begin(), state.received.end(), 0);
  ++state.versions;
  // Aggregation of W copies + optimizer step, charged per byte.
  const Duration cost =
      update_fixed_ +
      // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
      Duration::from_seconds(static_cast<double>(state.size.count()) *
                             static_cast<double>(num_workers_) /
                             update_bytes_per_sec_);
  schedule_update(cost, [this, key] {
    for (std::size_t w = 0; w < num_workers_; ++w) on_updated_(w, key);
  });
}

void Server::set_cpu_factor(double factor) {
  PROPHET_CHECK_MSG(factor > 0.0, "PS cpu factor must be positive");
  cpu_factor_ = factor;
}

void Server::schedule_update(Duration cost, std::function<void()> done) {
  if (cpu_factor_ != 1.0) cost = cost * cpu_factor_;
  if (!serialize_cpu_) {
    sim_.schedule_after(cost, std::move(done));
    return;
  }
  const TimePoint start = std::max(sim_.now(), cpu_free_);
  cpu_free_ = start + cost;
  sim_.schedule_at(cpu_free_, std::move(done));
}

std::size_t Server::version(std::size_t key) const {
  PROPHET_CHECK(key < keys_.size());
  return keys_[key].versions;
}

}  // namespace prophet::ps
