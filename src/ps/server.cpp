#include "ps/server.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::ps {

Server::Server(sim::Simulator& sim, const dnn::ModelSpec& model,
               std::size_t num_workers, bool asp, Duration update_fixed,
               double update_bytes_per_sec, UpdateCallback on_updated,
               bool serialize_cpu, std::size_t ps_shards)
    : sim_{sim},
      num_workers_{num_workers},
      asp_{asp},
      update_fixed_{update_fixed},
      update_bytes_per_sec_{update_bytes_per_sec},
      on_updated_{std::move(on_updated)},
      serialize_cpu_{serialize_cpu},
      shard_map_{ps_shards} {
  PROPHET_CHECK(num_workers_ > 0);
  PROPHET_CHECK(update_bytes_per_sec_ > 0.0);
  PROPHET_CHECK(on_updated_ != nullptr);
  PROPHET_CHECK_MSG(ps_shards <= model.tensor_count(),
                    "Server: more PS shards than keys — trailing shards would "
                    "own nothing");
  shards_.resize(ps_shards);
  keys_.resize(model.tensor_count());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    keys_[k].size = model.tensor(k).bytes;
    keys_[k].received.assign(num_workers_, 0);
  }
}

void Server::on_push_bytes(std::size_t worker, std::size_t key, Bytes bytes) {
  PROPHET_CHECK(key < keys_.size());
  PROPHET_CHECK(worker < num_workers_);
  const std::size_t shard = shard_map_.shard_of(key);
  PROPHET_CHECK_MSG(!shards_[shard].crashed,
                    "push delivered to a crashed PS shard — workers must abort "
                    "their in-flight transfers to it on ps_crash");
  if (auditor_ != nullptr) {
    auditor_->on_push_delivered(worker, key, bytes, sim_.now());
  }
  KeyState& state = keys_[key];
  state.received[worker] += bytes.count();
  PROPHET_CHECK_MSG(state.received[worker] <= state.size.count(),
                    "worker pushed more bytes than the key holds this round");
  if (state.received[worker] < state.size.count()) return;

  if (asp_) {
    // ASP: this worker's contribution updates immediately and only this
    // worker learns the new value.
    state.received[worker] = 0;
    ++state.versions;
    const Duration cost =
        // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
        update_fixed_ + Duration::from_seconds(
                            static_cast<double>(state.size.count()) /
                            update_bytes_per_sec_);
    const std::size_t k = key;
    const std::size_t w = worker;
    schedule_update(shard, cost, [this, w, k, shard, e = shards_[shard].epoch] {
      if (e != shards_[shard].epoch) return;
      on_updated_(w, k);
    });
    return;
  }

  ++state.arrived;
  PROPHET_CHECK(state.arrived <= num_workers_);
  if (state.arrived == num_workers_) complete_round(key);
}

void Server::complete_round(std::size_t key) {
  if (auditor_ != nullptr) auditor_->on_round_complete(key, sim_.now());
  const std::size_t shard = shard_map_.shard_of(key);
  KeyState& state = keys_[key];
  state.arrived = 0;
  std::fill(state.received.begin(), state.received.end(), 0);
  ++state.versions;
  if (failover_enabled_) shards_[shard].round_log.push_back({sim_.now(), key});
  // Aggregation of W copies + optimizer step, charged per byte.
  const Duration cost =
      update_fixed_ +
      // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
      Duration::from_seconds(static_cast<double>(state.size.count()) *
                             static_cast<double>(num_workers_) /
                             update_bytes_per_sec_);
  schedule_update(shard, cost, [this, key, shard, e = shards_[shard].epoch] {
    if (e != shards_[shard].epoch) return;
    for (std::size_t w = 0; w < num_workers_; ++w) on_updated_(w, key);
  });
}

void Server::enable_failover(Duration period) {
  PROPHET_CHECK_MSG(period > Duration::zero(),
                    "checkpoint period must be positive");
  PROPHET_CHECK_MSG(!asp_, "checkpoint failover is a BSP mechanism");
  failover_enabled_ = true;
  failover_period_ = period;
}

void Server::crash() {
  for (std::size_t s = 0; s < shards_.size(); ++s) crash_shard(s);
}

void Server::crash_shard(std::size_t shard) {
  PROPHET_CHECK(shard < shards_.size());
  ShardState& ps = shards_[shard];
  PROPHET_CHECK_MSG(!ps.crashed, "PS shard crashed while already down");
  ps.crashed = true;
  ++ps.epoch;  // updates in this shard's CPU pipeline die with the process
  ps.crash_time = sim_.now();
  ps.cpu_free = TimePoint::origin();
  // The open round's partial contributions on this shard's keys are lost.
  for (std::size_t k = shard; k < keys_.size(); k += shards_.size()) {
    KeyState& state = keys_[k];
    state.arrived = 0;
    std::fill(state.received.begin(), state.received.end(), 0);
  }
  if (auditor_ != nullptr) auditor_->on_ps_crash(shard, sim_.now());
}

std::vector<std::size_t> Server::recover() {
  PROPHET_CHECK_MSG(crashed(), "PS recover without a crash");
  std::vector<std::size_t> versions;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].crashed) versions = recover_shard(s);
  }
  return versions;
}

std::vector<std::size_t> Server::recover_shard(std::size_t shard) {
  PROPHET_CHECK(shard < shards_.size());
  ShardState& ps = shards_[shard];
  PROPHET_CHECK_MSG(ps.crashed, "PS shard recover without a crash");
  PROPHET_CHECK_MSG(failover_enabled_,
                    "PS recover needs enable_failover (a checkpoint to restore)");
  ps.crashed = false;
  // Snapshot instant: the last checkpoint boundary at or before the crash.
  const std::int64_t period_ns = failover_period_.count_nanos();
  const std::int64_t crash_ns = (ps.crash_time - TimePoint::origin()).count_nanos();
  const TimePoint snapshot_at =
      TimePoint::origin() + Duration::nanos((crash_ns / period_ns) * period_ns);
  // Rounds completed after the snapshot are lost; truncate them off this
  // shard's log (entries are chronological) and rebuild its keys' versions.
  std::size_t kept = 0;
  while (kept < ps.round_log.size() && ps.round_log[kept].at <= snapshot_at) ++kept;
  for (std::size_t k = shard; k < keys_.size(); k += shards_.size()) {
    keys_[k].versions = 0;
  }
  for (std::size_t i = 0; i < kept; ++i) ++keys_[ps.round_log[i].key].versions;
  ps.round_log.resize(kept);
  // Full-length vector: restored entries for this shard's keys, live
  // versions elsewhere — whole-model context for workers and the auditor.
  std::vector<std::size_t> versions(keys_.size(), 0);
  for (std::size_t k = 0; k < keys_.size(); ++k) versions[k] = keys_[k].versions;
  if (auditor_ != nullptr) auditor_->on_rollback(shard, versions, sim_.now());
  return versions;
}

bool Server::crashed() const {
  return std::any_of(shards_.begin(), shards_.end(),
                     [](const ShardState& s) { return s.crashed; });
}

bool Server::shard_crashed(std::size_t shard) const {
  PROPHET_CHECK(shard < shards_.size());
  return shards_[shard].crashed;
}

std::vector<std::size_t> Server::checkpoint_versions() const {
  PROPHET_CHECK_MSG(failover_enabled_,
                    "checkpoint_versions needs enable_failover");
  const std::int64_t period_ns = failover_period_.count_nanos();
  const std::int64_t now_ns = (sim_.now() - TimePoint::origin()).count_nanos();
  const TimePoint snapshot_at =
      TimePoint::origin() + Duration::nanos((now_ns / period_ns) * period_ns);
  std::vector<std::size_t> versions(keys_.size(), 0);
  for (const ShardState& ps : shards_) {
    for (const RoundEntry& entry : ps.round_log) {
      if (entry.at <= snapshot_at) ++versions[entry.key];
    }
  }
  return versions;
}

void Server::on_worker_crash(std::size_t worker) { discard_open_pushes(worker); }

void Server::discard_open_pushes(std::size_t worker) {
  PROPHET_CHECK(worker < num_workers_);
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    KeyState& state = keys_[k];
    std::int64_t& received = state.received[worker];
    if (received > 0 && received < state.size.count()) {
      // The in-flight push state died with the worker (or was aborted by a
      // failover halt); its replayed iteration re-sends the whole key. Full
      // contributions stand.
      if (auditor_ != nullptr) {
        auditor_->on_push_discarded(worker, k, Bytes::of(received), sim_.now());
      }
      received = 0;
    }
  }
}

void Server::set_cpu_factor(double factor) {
  for (std::size_t s = 0; s < shards_.size(); ++s) set_shard_cpu_factor(s, factor);
}

void Server::set_shard_cpu_factor(std::size_t shard, double factor) {
  PROPHET_CHECK(shard < shards_.size());
  PROPHET_CHECK_MSG(factor > 0.0, "PS cpu factor must be positive");
  shards_[shard].cpu_factor = factor;
}

void Server::schedule_update(std::size_t shard, Duration cost,
                             std::function<void()> done) {
  ShardState& ps = shards_[shard];
  if (ps.cpu_factor != 1.0) cost = cost * ps.cpu_factor;
  if (!serialize_cpu_) {
    sim_.schedule_after(cost, std::move(done));
    return;
  }
  const TimePoint start = std::max(sim_.now(), ps.cpu_free);
  ps.cpu_free = start + cost;
  sim_.schedule_at(ps.cpu_free, std::move(done));
}

std::size_t Server::version(std::size_t key) const {
  PROPHET_CHECK(key < keys_.size());
  return keys_[key].versions;
}

}  // namespace prophet::ps
