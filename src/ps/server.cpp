#include "ps/server.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::ps {

Server::Server(sim::Simulator& sim, const dnn::ModelSpec& model,
               std::size_t num_workers, bool asp, Duration update_fixed,
               double update_bytes_per_sec, UpdateCallback on_updated,
               bool serialize_cpu)
    : sim_{sim},
      num_workers_{num_workers},
      asp_{asp},
      update_fixed_{update_fixed},
      update_bytes_per_sec_{update_bytes_per_sec},
      on_updated_{std::move(on_updated)},
      serialize_cpu_{serialize_cpu} {
  PROPHET_CHECK(num_workers_ > 0);
  PROPHET_CHECK(update_bytes_per_sec_ > 0.0);
  PROPHET_CHECK(on_updated_ != nullptr);
  keys_.resize(model.tensor_count());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    keys_[k].size = model.tensor(k).bytes;
    keys_[k].received.assign(num_workers_, 0);
  }
}

void Server::on_push_bytes(std::size_t worker, std::size_t key, Bytes bytes) {
  PROPHET_CHECK(key < keys_.size());
  PROPHET_CHECK(worker < num_workers_);
  PROPHET_CHECK_MSG(!crashed_,
                    "push delivered to a crashed PS — workers must abort their "
                    "in-flight transfers on ps_crash");
  if (auditor_ != nullptr) {
    auditor_->on_push_delivered(worker, key, bytes, sim_.now());
  }
  KeyState& state = keys_[key];
  state.received[worker] += bytes.count();
  PROPHET_CHECK_MSG(state.received[worker] <= state.size.count(),
                    "worker pushed more bytes than the key holds this round");
  if (state.received[worker] < state.size.count()) return;

  if (asp_) {
    // ASP: this worker's contribution updates immediately and only this
    // worker learns the new value.
    state.received[worker] = 0;
    ++state.versions;
    const Duration cost =
        // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
        update_fixed_ + Duration::from_seconds(
                            static_cast<double>(state.size.count()) /
                            update_bytes_per_sec_);
    const std::size_t k = key;
    const std::size_t w = worker;
    schedule_update(cost, [this, w, k, e = epoch_] {
      if (e != epoch_) return;
      on_updated_(w, k);
    });
    return;
  }

  ++state.arrived;
  PROPHET_CHECK(state.arrived <= num_workers_);
  if (state.arrived == num_workers_) complete_round(key);
}

void Server::complete_round(std::size_t key) {
  if (auditor_ != nullptr) auditor_->on_round_complete(key, sim_.now());
  KeyState& state = keys_[key];
  state.arrived = 0;
  std::fill(state.received.begin(), state.received.end(), 0);
  ++state.versions;
  if (failover_enabled_) round_log_.push_back({sim_.now(), key});
  // Aggregation of W copies + optimizer step, charged per byte.
  const Duration cost =
      update_fixed_ +
      // prophet-lint: allow(R1): update-cost model divides bytes by a double bytes/sec rate; single rounding point into Duration
      Duration::from_seconds(static_cast<double>(state.size.count()) *
                             static_cast<double>(num_workers_) /
                             update_bytes_per_sec_);
  schedule_update(cost, [this, key, e = epoch_] {
    if (e != epoch_) return;
    for (std::size_t w = 0; w < num_workers_; ++w) on_updated_(w, key);
  });
}

void Server::enable_failover(Duration period) {
  PROPHET_CHECK_MSG(period > Duration::zero(),
                    "checkpoint period must be positive");
  PROPHET_CHECK_MSG(!asp_, "checkpoint failover is a BSP mechanism");
  failover_enabled_ = true;
  failover_period_ = period;
}

void Server::crash() {
  PROPHET_CHECK_MSG(!crashed_, "PS crashed while already down");
  crashed_ = true;
  ++epoch_;  // updates in the CPU pipeline die with the process
  crash_time_ = sim_.now();
  cpu_free_ = TimePoint::origin();
  for (KeyState& state : keys_) {
    state.arrived = 0;
    std::fill(state.received.begin(), state.received.end(), 0);
  }
  if (auditor_ != nullptr) auditor_->on_ps_crash(sim_.now());
}

std::vector<std::size_t> Server::recover() {
  PROPHET_CHECK_MSG(crashed_, "PS recover without a crash");
  PROPHET_CHECK_MSG(failover_enabled_,
                    "PS recover needs enable_failover (a checkpoint to restore)");
  crashed_ = false;
  // Snapshot instant: the last checkpoint boundary at or before the crash.
  const std::int64_t period_ns = failover_period_.count_nanos();
  const std::int64_t crash_ns = (crash_time_ - TimePoint::origin()).count_nanos();
  const TimePoint snapshot_at =
      TimePoint::origin() + Duration::nanos((crash_ns / period_ns) * period_ns);
  // Rounds completed after the snapshot are lost; truncate them off the log
  // (entries are chronological) and rebuild the per-key versions.
  std::size_t kept = 0;
  while (kept < round_log_.size() && round_log_[kept].at <= snapshot_at) ++kept;
  std::vector<std::size_t> versions(keys_.size(), 0);
  for (std::size_t i = 0; i < kept; ++i) ++versions[round_log_[i].key];
  round_log_.resize(kept);
  for (std::size_t k = 0; k < keys_.size(); ++k) keys_[k].versions = versions[k];
  if (auditor_ != nullptr) auditor_->on_rollback(versions, sim_.now());
  return versions;
}

void Server::on_worker_crash(std::size_t worker) {
  PROPHET_CHECK(worker < num_workers_);
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    KeyState& state = keys_[k];
    std::int64_t& received = state.received[worker];
    if (received > 0 && received < state.size.count()) {
      // The in-flight push state died with the worker; its replayed
      // iteration re-sends the whole key. Full contributions stand.
      if (auditor_ != nullptr) {
        auditor_->on_push_discarded(worker, k, Bytes::of(received), sim_.now());
      }
      received = 0;
    }
  }
}

void Server::set_cpu_factor(double factor) {
  PROPHET_CHECK_MSG(factor > 0.0, "PS cpu factor must be positive");
  cpu_factor_ = factor;
}

void Server::schedule_update(Duration cost, std::function<void()> done) {
  if (cpu_factor_ != 1.0) cost = cost * cpu_factor_;
  if (!serialize_cpu_) {
    sim_.schedule_after(cost, std::move(done));
    return;
  }
  const TimePoint start = std::max(sim_.now(), cpu_free_);
  cpu_free_ = start + cost;
  sim_.schedule_at(cpu_free_, std::move(done));
}

std::size_t Server::version(std::size_t key) const {
  PROPHET_CHECK(key < keys_.size());
  return keys_[key].versions;
}

}  // namespace prophet::ps
