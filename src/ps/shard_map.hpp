// Deterministic key→shard assignment for the sharded parameter server.
//
// Keys are striped round-robin: key k lives on shard k % N. The map is pure
// arithmetic on the key index — no hashing, no RNG, no per-run state — so the
// assignment is identical across workers, across replays, and across
// processes, which the determinism contract (docs/DETERMINISM.md) and the
// per-shard rollback arithmetic both rely on. Striping (rather than
// contiguous ranges) also spreads the large early tensors of a model across
// shards, so per-shard push/pull byte totals stay balanced.
#pragma once

#include <cstddef>

#include "common/check.hpp"

namespace prophet::ps {

class ShardMap {
 public:
  explicit ShardMap(std::size_t num_shards = 1) : num_shards_{num_shards} {
    PROPHET_CHECK_MSG(num_shards_ > 0, "ShardMap: need at least one shard");
  }

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  [[nodiscard]] std::size_t shard_of(std::size_t key) const {
    return key % num_shards_;
  }

 private:
  std::size_t num_shards_;
};

}  // namespace prophet::ps
