// Exports a finished training run as a Chrome trace (chrome://tracing /
// Perfetto): one process per worker with GPU-compute, gradient-push and
// parameter-pull lanes. GPU gaps in the viewer are exactly the T_wait the
// paper's scheduling minimizes.
#pragma once

#include <string>

#include "ps/cluster.hpp"

namespace prophet::ps {

void export_chrome_trace(const ClusterResult& result, const std::string& path);

}  // namespace prophet::ps
