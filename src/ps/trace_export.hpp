// Exports a finished training run as a Chrome trace (chrome://tracing /
// Perfetto): one process per worker with GPU-compute, gradient-push and
// parameter-pull lanes. GPU gaps in the viewer are exactly the T_wait the
// paper's scheduling minimizes.
//
// Phases emitted per worker process:
//   GPU compute lane   — "compute" spans (ph "X"), gaps are parameter waits;
//   gradient push lane — one span per push transfer, sized by bytes;
//   parameter pull lane— one span per pull transfer;
//   faults lane        — instant markers (ph "i"): "retry" (a reliable-
//     transport attempt failed and backed off), "worker_crash" /
//     "worker_recover" (process loss and restart), "ps_crash" /
//     "ps_failover" (parameter-server loss and checkpoint restore).
#pragma once

#include <string>

#include "ps/cluster.hpp"

namespace prophet::ps {

void export_chrome_trace(const ClusterResult& result, const std::string& path);

}  // namespace prophet::ps
