#include "ps/cluster.hpp"

#include <utility>

#include "common/check.hpp"
#include "net/flow_network.hpp"
#include "net/topology.hpp"
#include "ps/job_runtime.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

double ClusterResult::mean_rate() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.rate_samples_per_sec;
  return total / static_cast<double>(workers.size());
}

double ClusterResult::mean_utilization() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.gpu_utilization;
  return total / static_cast<double>(workers.size());
}

Cluster::Cluster(ClusterConfig config) : config_{std::move(config)} {
  config_.validate();
}

ClusterResult Cluster::run(std::optional<std::size_t> measure_first) {
  const ClusterConfig& cfg = config_;
  sim::Simulator sim;
  const net::TcpCostModel cost{cfg.tcp};
  net::FlowNetwork network{sim, cost, cfg.rate_rebalance};
  network.set_verify_rates(cfg.verify_rates);
  net::BuiltTopology topology{network, cfg.resolved_topology()};

  JobRuntime job{sim, network, topology, cfg};
  job.start();

  // Run until every worker crossed its final iteration boundary (residual
  // pulls may still be in flight), bounded by the metrics horizon.
  const TimePoint horizon = TimePoint::origin() + cfg.metrics_horizon;
  while (!job.done() && sim.now() < horizon) {
    if (!sim.step()) break;
  }
  PROPHET_CHECK_MSG(job.done(), "training did not finish within the metrics horizon");
  job.recover_crashed();
  job.disarm_faults();
  job.finish_training(sim.now());
  // Drain residual network traffic (monitors are stopped, so this converges).
  sim.run_until(horizon);
  job.finish_audit();

  return job.collect(measure_first, sim.events_fired());
}

ClusterResult run_cluster(const ClusterConfig& config,
                          std::optional<std::size_t> measure_first) {
  Cluster cluster{config};
  return cluster.run(measure_first);
}

}  // namespace prophet::ps
