#include "ps/cluster.hpp"

#include <algorithm>
#include <memory>

#include "audit/bsp_auditor.hpp"
#include "common/check.hpp"
#include "net/flow_network.hpp"
#include "ps/server.hpp"
#include "ps/worker.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

double ClusterResult::mean_rate() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.rate_samples_per_sec;
  return total / static_cast<double>(workers.size());
}

double ClusterResult::mean_utilization() const {
  PROPHET_CHECK(!workers.empty());
  double total = 0.0;
  for (const auto& w : workers) total += w.gpu_utilization;
  return total / static_cast<double>(workers.size());
}

Cluster::Cluster(ClusterConfig config) : config_{std::move(config)} {
  config_.validate();
}

ClusterResult Cluster::run(std::optional<std::size_t> measure_first) {
  const ClusterConfig& cfg = config_;
  sim::Simulator sim;
  const net::TcpCostModel cost{cfg.tcp};
  net::FlowNetwork network{sim, cost};

  const net::NodeId ps_node =
      network.add_node("ps", cfg.ps_bandwidth, cfg.ps_bandwidth);
  std::vector<net::NodeId> worker_nodes;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const Bandwidth bw = cfg.bandwidth_of_worker(w);
    worker_nodes.push_back(
        network.add_node("worker" + std::to_string(w), bw, bw));
  }

  // Per-worker throughput series, attached before any traffic flows.
  std::vector<BinnedSeries> tx_series(cfg.num_workers,
                                      BinnedSeries{cfg.metrics_bin, cfg.metrics_horizon});
  std::vector<BinnedSeries> rx_series(cfg.num_workers,
                                      BinnedSeries{cfg.metrics_bin, cfg.metrics_horizon});
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    network.attach_tracker(worker_nodes[w], net::Direction::kTx, &tx_series[w]);
    network.attach_tracker(worker_nodes[w], net::Direction::kRx, &rx_series[w]);
  }

  const dnn::IterationModel iteration_model{cfg.model, cfg.gpu, cfg.batch,
                                            cfg.kvstore, cfg.jitter_sigma};

  // BSP invariant auditor: passive mirror of the push/pull/round protocol,
  // always on under BSP. Aborts with a diagnostic on the first violated
  // invariant (lost or double-counted gradient, broken barrier, ...).
  std::unique_ptr<audit::BspAuditor> auditor;
  if (cfg.sync == SyncMode::kBsp) {
    std::vector<Bytes> key_sizes;
    for (std::size_t k = 0; k < cfg.model.tensor_count(); ++k) {
      key_sizes.push_back(cfg.model.tensor(k).bytes);
    }
    auditor = std::make_unique<audit::BspAuditor>(cfg.num_workers,
                                                  std::move(key_sizes));
  }

  std::vector<std::unique_ptr<Worker>> workers;
  Server server{sim,
                cfg.model,
                cfg.num_workers,
                cfg.sync == SyncMode::kAsp,
                cfg.update_fixed,
                cfg.update_bytes_per_sec,
                [&workers](std::size_t w, std::size_t key) {
                  workers[w]->on_param_updated(key);
                },
                cfg.serialize_ps_cpu};
  server.set_auditor(auditor.get());
  if (cfg.dynamics.has_ps_crash()) server.enable_failover(cfg.checkpoint_period);

  Rng root{cfg.seed};
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    Worker::Params params;
    params.id = w;
    params.node = worker_nodes[w];
    params.ps_node = ps_node;
    params.iterations = cfg.iterations;
    params.iteration_model = &iteration_model;
    params.server = &server;
    params.strategy = cfg.strategy;
    params.cost = cost;
    params.monitor = cfg.monitor;
    params.metrics_bin = cfg.metrics_bin;
    params.metrics_horizon = cfg.metrics_horizon;
    params.batch = cfg.batch;
    params.reliability = cfg.reliability;
    params.auditor = auditor.get();
    workers.push_back(
        std::make_unique<Worker>(sim, network, params, root.fork(w)));
  }
  for (auto& worker : workers) worker->start();

  // Arm the dynamics plan: every event fires at its offset and mutates the
  // live network / workers / server. Bandwidth scales apply to the
  // *configured* rates, so repeated events never compound.
  auto node_of = [&](const net::DynamicsEvent& ev, std::size_t w) {
    return ev.target_ps ? ps_node : worker_nodes[w];
  };
  auto for_each_target = [&](const net::DynamicsEvent& ev, auto&& fn) {
    if (ev.target_ps) {
      fn(std::size_t{0});
    } else if (ev.worker.has_value()) {
      fn(*ev.worker);
    } else {
      for (std::size_t w = 0; w < cfg.num_workers; ++w) fn(w);
    }
  };
  // Fault events (crashes, recoveries, loss changes) only make sense while
  // training runs; stragglers of a plan that extends past the finish line
  // are dropped instead of perturbing drained state.
  bool faults_live = true;
  auto apply_event = [&, node_of, for_each_target](const net::DynamicsEvent& ev) {
    using Type = net::DynamicsEvent::Type;
    switch (ev.type) {
      case Type::kBandwidthScale:
      case Type::kBandwidthSet:
        for_each_target(ev, [&](std::size_t w) {
          const Bandwidth base =
              ev.target_ps ? cfg.ps_bandwidth : cfg.bandwidth_of_worker(w);
          const Bandwidth cap = ev.type == Type::kBandwidthSet
                                    ? ev.bandwidth
                                    : base * ev.factor;
          network.set_capacity(node_of(ev, w), net::Direction::kTx, cap);
          network.set_capacity(node_of(ev, w), net::Direction::kRx, cap);
        });
        break;
      case Type::kOutageStart:
      case Type::kOutageEnd:
        for_each_target(ev, [&](std::size_t w) {
          network.set_link_up(node_of(ev, w), ev.type == Type::kOutageEnd);
        });
        break;
      case Type::kComputeScale:
        for_each_target(ev, [&](std::size_t w) {
          workers[w]->set_compute_factor(ev.factor);
        });
        break;
      case Type::kPsComputeScale:
        server.set_cpu_factor(ev.factor);
        break;
      case Type::kWorkerCrash:
        if (faults_live) workers[*ev.worker]->crash();
        break;
      case Type::kWorkerRecover:
        if (faults_live) workers[*ev.worker]->recover();
        break;
      case Type::kPsCrash:
        if (faults_live) {
          server.crash();
          network.set_link_up(ps_node, false);
          for (auto& worker : workers) worker->on_ps_crash();
        }
        break;
      case Type::kPsRecover:
        if (faults_live) {
          network.set_link_up(ps_node, true);
          const std::vector<std::size_t> snapshot = server.recover();
          for (auto& worker : workers) worker->rollback(snapshot);
        }
        break;
      case Type::kLossRate:
        if (faults_live) {
          for (auto& worker : workers) worker->set_loss_rate(ev.factor);
        }
        break;
    }
  };
  for (const auto& ev : cfg.dynamics.events) {
    sim.schedule_at(TimePoint::origin() + ev.at,
                    [apply_event, ev] { apply_event(ev); });
  }

  // Run until every worker crossed its final iteration boundary (residual
  // pulls may still be in flight), bounded by the metrics horizon.
  const TimePoint horizon = TimePoint::origin() + cfg.metrics_horizon;
  auto all_done = [&] {
    return std::all_of(workers.begin(), workers.end(),
                       [](const auto& w) { return w->done(); });
  };
  while (!all_done() && sim.now() < horizon) {
    if (!sim.step()) break;
  }
  PROPHET_CHECK_MSG(all_done(), "training did not finish within the metrics horizon");
  // Training can finish while an already-done worker is still down (its
  // recover event lands past the finish line, where it will be dropped);
  // bring it back now so the audit sees a whole cluster.
  for (auto& worker : workers) {
    if (worker->crashed()) worker->recover();
  }
  faults_live = false;
  const Duration training_span = sim.now() - TimePoint::origin();
  for (auto& worker : workers) worker->finish();
  // Drain residual network traffic (monitors are stopped, so this converges).
  sim.run_until(horizon);
  if (auditor != nullptr) auditor->finish(cfg.iterations);

  // Default window: past Prophet's profiling phase so strategies compare at
  // steady state; the same window is applied to every strategy.
  std::size_t first = measure_first.value_or(0);
  if (!measure_first.has_value()) {
    std::size_t warmup = 3;
    if (cfg.strategy.kind == StrategyConfig::Kind::kProphet) {
      warmup = cfg.strategy.prophet_config.profile_iterations + 3;
    }
    PROPHET_CHECK_MSG(warmup + 1 < cfg.iterations,
                      "not enough iterations to measure past warmup");
    first = warmup;
  }
  const std::size_t last = cfg.iterations;

  ClusterResult result;
  result.measure_first = first;
  result.measure_last = last;
  result.simulated_time = training_span;
  result.events_fired = sim.events_fired();
  result.audit_checks = auditor != nullptr ? auditor->checks_run() : 0;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const Worker& worker = *workers[w];
    WorkerResult wr{.id = w,
                    .rate_samples_per_sec = 0.0,
                    .gpu_utilization = 0.0,
                    .iterations_completed = worker.current_iteration(),
                    .prophet_activated_at = worker.prophet_activated_at(),
                    .prophet_replans = worker.prophet_replans(),
                    .training = worker.training_metrics(),
                    .transfers = worker.transfers(),
                    .gpu_series = worker.gpu().series(),
                    .gpu_intervals = worker.gpu().intervals(),
                    .tx_series = tx_series[w],
                    .rx_series = rx_series[w]};
    const auto& tm = worker.training_metrics();
    wr.rate_samples_per_sec = tm.rate_samples_per_sec(first, last);
    wr.gpu_utilization =
        worker.gpu().utilization(tm.iteration_start(first), tm.iteration_start(last));
    result.workers.push_back(std::move(wr));
  }
  return result;
}

ClusterResult run_cluster(const ClusterConfig& config,
                          std::optional<std::size_t> measure_first) {
  Cluster cluster{config};
  return cluster.run(measure_first);
}

}  // namespace prophet::ps
