// The parameter server: aggregates each key's gradient pushes across
// workers, applies the update, and announces updated parameters.
//
// BSP: key k updates once every worker's push for the current round arrived;
// all workers are then notified (their pull schedulers can fetch it).
// ASP: each worker's push triggers an immediate update visible to that
// worker alone — the paper's future-work extension.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "dnn/tensor.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

class Server {
 public:
  // `on_updated(worker, key)` fires when `key`'s new value becomes pullable
  // by `worker`.
  using UpdateCallback = std::function<void(std::size_t worker, std::size_t key)>;

  // `serialize_cpu` models the PS's aggregation/optimizer work as a single
  // serialized resource (the classic CPU-bound parameter server): concurrent
  // key updates queue instead of proceeding in parallel.
  Server(sim::Simulator& sim, const dnn::ModelSpec& model, std::size_t num_workers,
         bool asp, Duration update_fixed, double update_bytes_per_sec,
         UpdateCallback on_updated, bool serialize_cpu = false);

  // All bytes of `key` from `worker` for the current round have arrived.
  void on_push_bytes(std::size_t worker, std::size_t key, Bytes bytes);

  // Number of completed update rounds for `key`.
  [[nodiscard]] std::size_t version(std::size_t key) const;

  // Dynamics hook: stretches every subsequent update's CPU cost by `factor`
  // (PS CPU degradation injection; factor > 1 slows the PS down).
  void set_cpu_factor(double factor);
  [[nodiscard]] double cpu_factor() const { return cpu_factor_; }

  // --- crash / checkpoint failover (BSP only) ------------------------------
  // Optional passive invariant checker; never perturbs the timeline.
  void set_auditor(audit::BspAuditor* auditor) { auditor_ = auditor; }

  // Arms checkpointing: recover() restores key versions to the state at the
  // last multiple of `period` before the crash. Purely passive — completed
  // rounds are logged as they happen; no snapshot events enter the timeline.
  void enable_failover(Duration period);

  // PS process dies: the open round's partial contributions are lost and
  // updates already in the CPU pipeline never announce.
  void crash();
  // Failover completes: restores the last checkpoint and returns the
  // per-key versions workers must roll back to. Requires enable_failover.
  std::vector<std::size_t> recover();
  [[nodiscard]] bool crashed() const { return crashed_; }

  // Worker `worker` died: its partial (incomplete) contributions to the open
  // round are discarded; fully delivered contributions stand.
  void on_worker_crash(std::size_t worker);

 private:
  void complete_round(std::size_t key);
  // Schedules an update of `cost`, honoring CPU serialization; `done` runs
  // at the update's completion instant.
  void schedule_update(Duration cost, std::function<void()> done);

  sim::Simulator& sim_;
  std::size_t num_workers_;
  bool asp_;
  Duration update_fixed_;
  double update_bytes_per_sec_;
  UpdateCallback on_updated_;
  bool serialize_cpu_;
  double cpu_factor_{1.0};
  TimePoint cpu_free_{};
  audit::BspAuditor* auditor_ = nullptr;
  bool crashed_ = false;
  // Fences update callbacks scheduled before a crash: they capture the epoch
  // and no-op if it moved (the pre-crash pipeline never announces).
  std::uint64_t epoch_ = 0;
  bool failover_enabled_ = false;
  Duration failover_period_{};
  TimePoint crash_time_{};
  // Passive checkpoint source: every completed round in order. recover()
  // counts entries up to the snapshot instant and truncates the rest.
  struct RoundEntry {
    TimePoint at;
    std::size_t key;
  };
  std::vector<RoundEntry> round_log_;

  struct KeyState {
    Bytes size;
    std::vector<std::int64_t> received;  // bytes received per worker this round
    std::size_t arrived = 0;             // workers fully received this round
    std::size_t versions = 0;
  };
  std::vector<KeyState> keys_;
};

}  // namespace prophet::ps
