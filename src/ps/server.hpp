// The parameter server: aggregates each key's gradient pushes across
// workers, applies the update, and announces updated parameters.
//
// BSP: key k updates once every worker's push for the current round arrived;
// all workers are then notified (their pull schedulers can fetch it).
// ASP: each worker's push triggers an immediate update visible to that
// worker alone — the paper's future-work extension.
//
// The key space may be striped across several PS shards (ShardMap): each
// shard is an independent failure domain with its own CPU pipeline, epoch
// fence, checkpoint log, and crash/recover lifecycle. One Server object
// still owns every key — the sharding shows up as per-shard state plus
// shard-scoped crash()/recover() arithmetic — while the fabric-level
// fan-out (one node and one reliable channel per shard) lives in
// JobRuntime/Worker. ps_shards=1 is bit-identical to the historical
// single-server behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "dnn/tensor.hpp"
#include "ps/shard_map.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

class Server {
 public:
  // `on_updated(worker, key)` fires when `key`'s new value becomes pullable
  // by `worker`.
  using UpdateCallback = std::function<void(std::size_t worker, std::size_t key)>;

  // `serialize_cpu` models the PS's aggregation/optimizer work as a single
  // serialized resource (the classic CPU-bound parameter server): concurrent
  // key updates queue instead of proceeding in parallel — per shard, since
  // each shard is its own process on its own host.
  Server(sim::Simulator& sim, const dnn::ModelSpec& model, std::size_t num_workers,
         bool asp, Duration update_fixed, double update_bytes_per_sec,
         UpdateCallback on_updated, bool serialize_cpu = false,
         std::size_t ps_shards = 1);

  // All bytes of `key` from `worker` for the current round have arrived.
  void on_push_bytes(std::size_t worker, std::size_t key, Bytes bytes);

  // Number of completed update rounds for `key`.
  [[nodiscard]] std::size_t version(std::size_t key) const;

  [[nodiscard]] const ShardMap& shard_map() const { return shard_map_; }
  [[nodiscard]] std::size_t num_shards() const { return shard_map_.num_shards(); }

  // Dynamics hooks: stretch every subsequent update's CPU cost by `factor`
  // (PS CPU degradation injection; factor > 1 slows the PS down) — on every
  // shard, or on one shard of a sharded tier.
  void set_cpu_factor(double factor);
  void set_shard_cpu_factor(std::size_t shard, double factor);
  [[nodiscard]] double cpu_factor() const { return shards_[0].cpu_factor; }

  // --- crash / checkpoint failover (BSP only) ------------------------------
  // Optional passive invariant checker; never perturbs the timeline.
  void set_auditor(audit::BspAuditor* auditor) { auditor_ = auditor; }

  // Arms checkpointing: recover() restores key versions to the state at the
  // last multiple of `period` before the crash. Purely passive — completed
  // rounds are logged as they happen; no snapshot events enter the timeline.
  void enable_failover(Duration period);

  // PS process dies: the open round's partial contributions are lost and
  // updates already in the CPU pipeline never announce. The whole-tier
  // spelling crashes every shard; the shard spelling is a single failure
  // domain — the surviving shards keep aggregating and announcing.
  void crash();
  void crash_shard(std::size_t shard);
  // Failover completes: restores the last checkpoint and returns the
  // per-key versions workers must roll back to. Requires enable_failover.
  // recover_shard restores only shard k's keys and returns the full-length
  // version vector (surviving keys carry their live versions), so callers —
  // and the auditor's version-fencing — always see whole-model context.
  std::vector<std::size_t> recover();
  [[nodiscard]] std::vector<std::size_t> recover_shard(std::size_t shard);
  [[nodiscard]] bool crashed() const;
  [[nodiscard]] bool shard_crashed(std::size_t shard) const;

  // The per-key versions a failover hitting each shard *right now* would
  // restore (the last checkpoint boundary at or before the current instant).
  // Status API: callers must consume the result — it is the only way to see
  // checkpoint progress without injecting a crash.
  [[nodiscard]] std::vector<std::size_t> checkpoint_versions() const;

  // Worker `worker` died: its partial (incomplete) contributions to the open
  // round are discarded; fully delivered contributions stand.
  void on_worker_crash(std::size_t worker);
  // Same wipe, shared with per-shard failover rollback: a worker whose
  // in-flight transfers were aborted discards its open partial pushes (on
  // every shard) and re-sends those rounds whole during replay.
  void discard_open_pushes(std::size_t worker);

 private:
  void complete_round(std::size_t key);
  // Schedules an update of `cost` on `shard`'s CPU, honoring serialization;
  // `done` runs at the update's completion instant.
  void schedule_update(std::size_t shard, Duration cost, std::function<void()> done);

  sim::Simulator& sim_;
  std::size_t num_workers_;
  bool asp_;
  Duration update_fixed_;
  double update_bytes_per_sec_;
  UpdateCallback on_updated_;
  bool serialize_cpu_;
  ShardMap shard_map_;
  audit::BspAuditor* auditor_ = nullptr;
  bool failover_enabled_ = false;
  Duration failover_period_{};

  // Passive checkpoint source: every completed round in order, per shard.
  // recover_shard() counts entries up to the snapshot instant and truncates
  // the rest.
  struct RoundEntry {
    TimePoint at;
    std::size_t key;
  };
  // One failure domain per shard: its own CPU queue, degrade factor, epoch
  // fence (updates scheduled before a crash capture the epoch and no-op if
  // it moved — the pre-crash pipeline never announces), and round log.
  struct ShardState {
    double cpu_factor = 1.0;
    TimePoint cpu_free{};
    bool crashed = false;
    std::uint64_t epoch = 0;
    TimePoint crash_time{};
    std::vector<RoundEntry> round_log;
  };
  std::vector<ShardState> shards_;

  struct KeyState {
    Bytes size;
    std::vector<std::int64_t> received;  // bytes received per worker this round
    std::size_t arrived = 0;             // workers fully received this round
    std::size_t versions = 0;
  };
  std::vector<KeyState> keys_;
};

}  // namespace prophet::ps
