#include "ps/strategy.hpp"

#include <utility>

#include "common/check.hpp"
#include "sched/fifo.hpp"
#include "sched/p3.hpp"
#include "sched/tictac.hpp"

namespace prophet::ps {

namespace {

// The single source of truth for string <-> strategy: canonical CLI name,
// paper-style display label, and the factory. Presentation order.
struct RegistryEntry {
  const char* name;
  const char* label;
  StrategyConfig (*make)();
};

constexpr RegistryEntry kRegistry[] = {
    {"fifo", "MXNet (FIFO)", [] { return StrategyConfig::fifo(); }},
    {"p3", "P3", [] { return StrategyConfig::p3(); }},
    {"tictac", "TicTac", [] { return StrategyConfig::tictac(); }},
    {"mg-wfbp", "MG-WFBP", [] { return StrategyConfig::mg_wfbp(); }},
    {"bytescheduler", "ByteScheduler",
     [] { return StrategyConfig::bytescheduler(); }},
    {"bytescheduler-autotune", "ByteScheduler (autotune)",
     [] { return StrategyConfig::bytescheduler(Bytes::mib(4), true); }},
    {"prophet", "Prophet", [] { return StrategyConfig::prophet(); }},
};

// Historical spellings from_name() still accepts (name() reports
// "mxnet-fifo" for Kind::kFifo, so the registry round-trips).
constexpr std::pair<const char*, const char*> kAliases[] = {
    {"mxnet-fifo", "fifo"},
};

const RegistryEntry* find_entry(std::string_view name) {
  for (const auto& [alias, canonical] : kAliases) {
    if (name == alias) name = canonical;
  }
  for (const auto& entry : kRegistry) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::string StrategyConfig::name() const {
  switch (kind) {
    case Kind::kFifo: return "mxnet-fifo";
    case Kind::kP3: return "p3";
    case Kind::kTicTac: return "tictac";
    case Kind::kMgWfbp: return "mg-wfbp";
    case Kind::kByteScheduler:
      return bytescheduler_config.autotune ? "bytescheduler-autotune"
                                           : "bytescheduler";
    case Kind::kProphet: return "prophet";
  }
  return "?";
}

StrategyConfig StrategyConfig::fifo() {
  StrategyConfig s;
  s.kind = Kind::kFifo;
  return s;
}

StrategyConfig StrategyConfig::p3(Bytes partition) {
  StrategyConfig s;
  s.kind = Kind::kP3;
  s.p3_partition = partition;
  return s;
}

StrategyConfig StrategyConfig::tictac() {
  StrategyConfig s;
  s.kind = Kind::kTicTac;
  return s;
}

StrategyConfig StrategyConfig::mg_wfbp(Bytes merge_bytes) {
  StrategyConfig s;
  s.kind = Kind::kMgWfbp;
  s.mg_wfbp_config.merge_bytes = merge_bytes;
  return s;
}

StrategyConfig StrategyConfig::bytescheduler(Bytes credit, bool autotune) {
  StrategyConfig s;
  s.kind = Kind::kByteScheduler;
  s.bytescheduler_config.credit_bytes = credit;
  s.bytescheduler_config.autotune = autotune;
  return s;
}

StrategyConfig StrategyConfig::prophet(core::ProphetConfig config) {
  StrategyConfig s;
  s.kind = Kind::kProphet;
  s.prophet_config = config;
  return s;
}

const std::vector<std::string>& StrategyConfig::known_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& entry : kRegistry) out.emplace_back(entry.name);
    return out;
  }();
  return names;
}

std::optional<StrategyConfig> StrategyConfig::from_name(std::string_view name) {
  const RegistryEntry* entry = find_entry(name);
  if (entry == nullptr) return std::nullopt;
  return entry->make();
}

std::string StrategyConfig::display_label(std::string_view name) {
  const RegistryEntry* entry = find_entry(name);
  PROPHET_CHECK_MSG(entry != nullptr, "display_label on unknown strategy name");
  return entry->label;
}

std::unique_ptr<sched::CommScheduler> make_scheduler(
    const StrategyConfig& strategy, sched::TaskKind kind, std::size_t gradient_count,
    core::ProphetScheduler::BandwidthFn bandwidth_fn, const net::TcpCostModel& cost) {
  switch (strategy.kind) {
    case StrategyConfig::Kind::kFifo:
      return std::make_unique<sched::FifoScheduler>(kind, strategy.blocking_ack);
    case StrategyConfig::Kind::kP3:
      return std::make_unique<sched::P3Scheduler>(kind, strategy.p3_partition,
                                                  strategy.blocking_ack);
    case StrategyConfig::Kind::kTicTac:
      return std::make_unique<sched::TicTacScheduler>(kind, strategy.blocking_ack);
    case StrategyConfig::Kind::kMgWfbp:
      return std::make_unique<sched::MgWfbpScheduler>(kind, strategy.mg_wfbp_config);
    case StrategyConfig::Kind::kByteScheduler:
      return std::make_unique<sched::ByteSchedulerScheduler>(
          kind, strategy.bytescheduler_config);
    case StrategyConfig::Kind::kProphet:
      return std::make_unique<core::ProphetScheduler>(
          kind, gradient_count, std::move(bandwidth_fn), cost,
          strategy.prophet_config);
  }
  PROPHET_CHECK_MSG(false, "unknown strategy kind");
  __builtin_unreachable();
}

}  // namespace prophet::ps
