#include "ps/strategy.hpp"

#include "common/check.hpp"
#include "sched/fifo.hpp"
#include "sched/p3.hpp"
#include "sched/tictac.hpp"

namespace prophet::ps {

std::string StrategyConfig::name() const {
  switch (kind) {
    case Kind::kFifo: return "mxnet-fifo";
    case Kind::kP3: return "p3";
    case Kind::kTicTac: return "tictac";
    case Kind::kMgWfbp: return "mg-wfbp";
    case Kind::kByteScheduler:
      return bytescheduler.autotune ? "bytescheduler-autotune" : "bytescheduler";
    case Kind::kProphet: return "prophet";
  }
  return "?";
}

StrategyConfig StrategyConfig::fifo() {
  StrategyConfig s;
  s.kind = Kind::kFifo;
  return s;
}

StrategyConfig StrategyConfig::p3(Bytes partition) {
  StrategyConfig s;
  s.kind = Kind::kP3;
  s.p3_partition = partition;
  return s;
}

StrategyConfig StrategyConfig::tictac() {
  StrategyConfig s;
  s.kind = Kind::kTicTac;
  return s;
}

StrategyConfig StrategyConfig::make_mg_wfbp(Bytes merge_bytes) {
  StrategyConfig s;
  s.kind = Kind::kMgWfbp;
  s.mg_wfbp.merge_bytes = merge_bytes;
  return s;
}

StrategyConfig StrategyConfig::make_bytescheduler(Bytes credit, bool autotune) {
  StrategyConfig s;
  s.kind = Kind::kByteScheduler;
  s.bytescheduler.credit_bytes = credit;
  s.bytescheduler.autotune = autotune;
  return s;
}

StrategyConfig StrategyConfig::make_prophet(core::ProphetConfig config) {
  StrategyConfig s;
  s.kind = Kind::kProphet;
  s.prophet = config;
  return s;
}

std::unique_ptr<sched::CommScheduler> make_scheduler(
    const StrategyConfig& strategy, sched::TaskKind kind, std::size_t gradient_count,
    core::ProphetScheduler::BandwidthFn bandwidth_fn, const net::TcpCostModel& cost) {
  switch (strategy.kind) {
    case StrategyConfig::Kind::kFifo:
      return std::make_unique<sched::FifoScheduler>(kind, strategy.blocking_ack);
    case StrategyConfig::Kind::kP3:
      return std::make_unique<sched::P3Scheduler>(kind, strategy.p3_partition,
                                                  strategy.blocking_ack);
    case StrategyConfig::Kind::kTicTac:
      return std::make_unique<sched::TicTacScheduler>(kind, strategy.blocking_ack);
    case StrategyConfig::Kind::kMgWfbp:
      return std::make_unique<sched::MgWfbpScheduler>(kind, strategy.mg_wfbp);
    case StrategyConfig::Kind::kByteScheduler:
      return std::make_unique<sched::ByteSchedulerScheduler>(kind,
                                                             strategy.bytescheduler);
    case StrategyConfig::Kind::kProphet:
      return std::make_unique<core::ProphetScheduler>(
          kind, gradient_count, std::move(bandwidth_fn), cost, strategy.prophet);
  }
  PROPHET_CHECK_MSG(false, "unknown strategy kind");
  __builtin_unreachable();
}

}  // namespace prophet::ps
