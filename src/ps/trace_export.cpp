#include "ps/trace_export.hpp"

#include <cstdio>

#include "metrics/chrome_trace.hpp"

namespace prophet::ps {

namespace {
constexpr int kGpuLane = 0;
constexpr int kPushLane = 1;
constexpr int kPullLane = 2;
constexpr int kFaultLane = 3;
}  // namespace

void export_chrome_trace(const ClusterResult& result, const std::string& path) {
  metrics::ChromeTraceWriter trace{path};
  for (const auto& worker : result.workers) {
    const int pid = static_cast<int>(worker.id);
    trace.name_process(pid, "worker" + std::to_string(worker.id));
    trace.name_thread(pid, kGpuLane, "GPU compute");
    trace.name_thread(pid, kPushLane, "gradient push");
    trace.name_thread(pid, kPullLane, "parameter pull");

    // GPU busy spans are exported whole; the viewer shows waits as gaps.
    for (const auto& [begin, end] : worker.gpu_intervals) {
      trace.add_span("compute", "gpu", pid, kGpuLane, begin, end - begin);
    }
    for (const auto& rec : worker.transfers.records()) {
      const int lane = rec.kind == sched::TaskKind::kPush ? kPushLane : kPullLane;
      char name[64];
      std::snprintf(name, sizeof name, "g%zu (%s)", rec.grad,
                    format_bytes(rec.bytes).c_str());
      trace.add_span(name, sched::to_string(rec.kind), pid, lane, rec.started,
                     rec.transfer());
    }
    if (!worker.transfers.faults().empty()) {
      trace.name_thread(pid, kFaultLane, "faults");
      for (const auto& fault : worker.transfers.faults()) {
        trace.add_instant(metrics::fault_name(fault.kind), "fault", pid,
                          kFaultLane, fault.at);
      }
    }
  }
  trace.close();
}

}  // namespace prophet::ps
