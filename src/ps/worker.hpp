// One training worker: runs the forward/backward compute loop, emits
// gradients through the KVStore stepwise model, and drives its push / pull
// NICs through the configured communication scheduler.
//
// Timeline per iteration k (the paper's Fig. 6):
//   forward k   — layer by layer; layer i of iteration k requires k completed
//                 pulls of key i (Eq. (3) dependency). Waiting here is the
//                 GPU idle time T_wait that Prophet minimizes.
//   backward k  — continuous GPU work; gradients become transferable at the
//                 KVStore flush instants (the stepwise pattern) and are
//                 handed to the push scheduler (WFBP overlap).
// The NIC pump keeps at most one task in flight per direction
// (Constraint (8)); every completed push feeds the PS, every completed pull
// unblocks forward layers.
//
// Sharded PS: the worker holds one reliable channel per PS shard. A task
// popped from a scheduler is partitioned by key shard into per-shard
// sub-flows launched at the same instant (ascending shard order); the task
// completes — and reports on_task_done — only when every item was delivered.
// Items addressed to a downed shard are dropped at send time (the failover
// rollback re-enqueues that shard's work), and a sub-flow killed by a shard
// crash finishes its task silently, exactly like a whole-tier abort. With
// ps_shards=1 a task is one sub-flow on channel 0 and the timeline is
// bit-identical to the historical single-channel worker.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "common/rng.hpp"
#include "dnn/iteration_model.hpp"
#include "metrics/gpu_tracker.hpp"
#include "metrics/training_metrics.hpp"
#include "metrics/transfer_log.hpp"
#include "net/flow_network.hpp"
#include "net/monitor.hpp"
#include "net/reliability.hpp"
#include "ps/server.hpp"
#include "ps/strategy.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

class Worker {
 public:
  struct Params {
    std::size_t id;
    net::NodeId node;
    // One endpoint per PS shard (ps_nodes[s] hosts shard s); a single-shard
    // tier is the one-element vector.
    std::vector<net::NodeId> ps_nodes;
    std::size_t iterations;
    const dnn::IterationModel* iteration_model;
    Server* server;
    StrategyConfig strategy;
    net::TcpCostModel cost;
    net::BandwidthMonitorConfig monitor;
    Duration metrics_bin;
    Duration metrics_horizon;
    int batch;
    // Reliable-transport knobs for this worker's channels to the PS shards.
    net::ReliabilityConfig reliability;
    // Optional passive BSP invariant checker (cluster-owned; may be null).
    audit::BspAuditor* auditor = nullptr;
  };

  Worker(sim::Simulator& sim, net::FlowNetwork& network, Params params, Rng rng);
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Kicks off iteration 0 at the current simulation time.
  void start();
  // PS callback: `key`'s updated value became pullable by this worker.
  void on_param_updated(std::size_t key);
  // Closes open metric intervals; call once after the simulation drains.
  void finish();

  // Dynamics hook: stretches this worker's compute times (forward, backward
  // and gradient-ready offsets) by `factor` from the next sampled iteration
  // on (straggler injection; factor > 1 slows this worker down).
  void set_compute_factor(double factor);

  // --- fault injection hooks (cluster driver) ------------------------------
  // Worker process dies: in-flight push/pull transfers abort, queued
  // scheduler work and partial server-side contributions are lost, compute
  // stops. The worker stays down until recover().
  void crash();
  // Worker restarts: re-claims any parameter updates it lost, drops stale
  // scheduler state (Prophet re-plans from the surviving profile) and
  // replays its current iteration from the top of forward.
  void recover();
  // The whole PS tier died: abort transfers against the dead endpoints and
  // stop pumping until rollback() delivers the recovered snapshot.
  void on_ps_crash();
  // One PS shard died: abort only that shard's channel, detach its sub-flows
  // from any active tasks, and keep serving the surviving shards. Compute is
  // NOT fenced — forward stalls only if (until) it needs a shard-k pull.
  void on_ps_shard_crash(std::size_t shard);
  // Whole-tier failover completed with checkpoint `versions`: roll per-key
  // push/pull progress back to the snapshot, force a re-pull of the snapshot
  // round and replay from the first un-aggregated iteration.
  void rollback(const std::vector<std::size_t>& versions);
  // Per-shard failover: `versions` is full-length but only shard-k entries
  // moved (the server's recover_shard contract). Only shard-k keys' progress
  // rolls back; in-flight work everywhere is restarted (partial pushes on
  // surviving shards are discarded server-side and re-sent whole during
  // replay), and schedulers get the shard-aware on_partial_recovery repair.
  void rollback_shard(std::size_t shard, const std::vector<std::size_t>& versions);
  // Transport loss probability from now on (dynamics `loss_rate` events);
  // applies to every shard's channel.
  void set_loss_rate(double rate);
  [[nodiscard]] bool crashed() const { return crashed_; }

  [[nodiscard]] std::size_t id() const { return params_.id; }
  [[nodiscard]] bool done() const { return iter_ >= params_.iterations; }
  [[nodiscard]] std::size_t current_iteration() const { return iter_; }

  // --- results ------------------------------------------------------------
  [[nodiscard]] const metrics::TrainingMetrics& training_metrics() const {
    return training_;
  }
  [[nodiscard]] const metrics::GpuTracker& gpu() const { return gpu_; }
  [[nodiscard]] const metrics::TransferLog& transfers() const { return transfer_log_; }
  [[nodiscard]] const net::BandwidthMonitor& uplink_monitor() const { return *tx_monitor_; }
  // Iteration at which Prophet's profile became active (nullopt: not Prophet
  // or still profiling).
  [[nodiscard]] std::optional<std::size_t> prophet_activated_at() const {
    return prophet_activated_at_;
  }
  // Drift-triggered bandwidth re-plans of the push-side Prophet scheduler
  // (zero for other strategies).
  [[nodiscard]] std::size_t prophet_replans() const;

 private:
  // One scheduler task in flight, fanned out as per-shard sub-flows.
  struct ActiveTask {
    sched::TransferTask task;
    TimePoint started{};
    std::size_t open_subflows = 0;
    // A sub-flow died (shard crash) or items were dropped at send time: the
    // task finishes silently, without on_task_done.
    bool lost_items = false;
    std::vector<std::uint8_t> live_on_shard;  // sub-flow in flight per shard
  };

  void begin_iteration();
  void advance_forward();
  void begin_backward();
  void end_backward();
  void pump(sched::TaskKind kind);
  void on_subflow_done(sched::TaskKind kind, std::size_t shard,
                       const std::vector<sched::TransferItem>& items,
                       TimePoint started, const net::SendOutcome& outcome);
  // A sub-flow's items have been processed (or the sub-flow died): closes the
  // task if this was its last open sub-flow.
  void close_subflow(sched::TaskKind kind);
  // Shard `shard` crashed: detach its in-flight sub-flows from the active
  // tasks (their aborted channel callbacks never fire).
  void detach_subflows(std::size_t shard);
  [[nodiscard]] bool forward_gate_open(std::size_t layer) const;
  [[nodiscard]] sched::CommScheduler& scheduler(sched::TaskKind kind);
  [[nodiscard]] std::size_t num_shards() const { return params_.ps_nodes.size(); }
  [[nodiscard]] std::size_t shard_of(std::size_t key) const {
    return key % params_.ps_nodes.size();
  }
  [[nodiscard]] bool all_ps_down() const;
  [[nodiscard]] bool any_ps_down() const;
  // Accepts the announced round of `key` into the pull pipeline.
  void claim_pull(std::size_t key);
  // Re-claims every announced round lost across a crash or rollback.
  void reclaim_missed_pulls();
  // Re-enqueues pushes the server is still owed from the previous backward
  // (WFBP overlap lets round-`iter_` pushes trail into forward `iter_`; a
  // crash there loses them without replay ever reaching that backward).
  void repush_owed_rounds();
  // Shared teardown of crash()/on_ps_crash()/rollback(): aborts transfers,
  // fences scheduled compute, closes the GPU interval.
  void halt_inflight();
  // Restarts the current iteration from the top of forward.
  void replay_iteration();

  sim::Simulator& sim_;
  net::FlowNetwork& network_;
  Params params_;
  Rng rng_;
  // One reliable channel per PS shard, each with its own RNG stream (shard 0
  // keeps the historical stream, so ps_shards=1 replays bit-identically).
  std::vector<std::unique_ptr<net::ReliableChannel>> channels_;

  std::unique_ptr<sched::CommScheduler> push_sched_;
  std::unique_ptr<sched::CommScheduler> pull_sched_;
  std::unique_ptr<net::BandwidthMonitor> tx_monitor_;
  std::unique_ptr<net::BandwidthMonitor> rx_monitor_;

  metrics::TrainingMetrics training_;
  metrics::GpuTracker gpu_;
  metrics::TransferLog transfer_log_;

  std::size_t iter_{0};
  std::size_t fwd_layer_{0};
  double compute_factor_{1.0};
  bool waiting_for_param_{false};
  dnn::IterationTiming timing_;
  // Completed pulls per key; forward layer i of iteration k needs
  // pulls_done_[i] >= k.
  std::vector<std::size_t> pulls_done_;
  std::vector<std::int64_t> pull_pending_bytes_;  // per key, current pull round
  // Announced rounds this worker accepted into its pull pipeline; lags the
  // server version exactly by the updates lost across a crash, which is what
  // recovery re-claims.
  std::vector<std::size_t> pull_rounds_claimed_;
  // Rounds fully delivered to the PS per key, plus the partial byte count of
  // the open round — a replayed iteration skips keys already aggregated.
  std::vector<std::size_t> push_rounds_done_;
  std::vector<std::int64_t> push_round_bytes_;
  bool crashed_{false};
  std::vector<std::uint8_t> ps_shard_down_;  // per-shard endpoint liveness
  // Fences scheduled compute callbacks (forward steps, gradient flushes,
  // backward end) across crash/rollback: each captures the incarnation it
  // was scheduled under and no-ops if it moved.
  std::uint64_t incarnation_{0};
  std::vector<TimePoint> enqueue_time_push_;
  std::vector<TimePoint> enqueue_time_pull_;
  std::vector<std::size_t> enqueue_iter_push_;
  std::optional<ActiveTask> push_active_;
  std::optional<ActiveTask> pull_active_;
  // Re-poll timers for schedulers that decline work now but hold pending
  // tensors whose release is time-driven (MG-WFBP age triggers, Prophet
  // interval waits under mispredicted profiles).
  sim::EventHandle push_poll_;
  sim::EventHandle pull_poll_;
  // NIC hold-off deadlines from blocking/credit acknowledgments: pumps
  // triggered inside the window (e.g. by an enqueue) must not start a task.
  TimePoint push_hold_{};
  TimePoint pull_hold_{};
  std::optional<std::size_t> prophet_activated_at_;
};

}  // namespace prophet::ps
