// Strategy selection: which communication scheduler a training run uses.
// Covers the paper's four contenders — default MXNet (FIFO), P3,
// ByteScheduler (fixed or auto-tuned credit) and Prophet — behind one
// uniform factory scheme plus a name registry (`from_name`/`known_names`)
// that CLIs and benches derive their strategy lists from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/prophet_scheduler.hpp"
#include "net/cost_model.hpp"
#include "sched/bytescheduler.hpp"
#include "sched/mg_wfbp.hpp"
#include "sched/scheduler.hpp"

namespace prophet::ps {

struct StrategyConfig {
  enum class Kind {
    kFifo,           // default MXNet
    kP3,             // Jayarajan et al., MLSys'19
    kTicTac,         // Hashemi et al., MLSys'19 (related work, Sec. 6.1)
    kMgWfbp,         // Shi et al., INFOCOM'19 (related work, Sec. 6.2)
    kByteScheduler,  // Peng et al., SOSP'19
    kProphet,        // this paper
  };

  Kind kind = Kind::kProphet;
  // P3 partition size (paper Sec. 5.1: 4 MB).
  Bytes p3_partition = Bytes::mib(4);
  // Blocking-call acknowledgment charged per task by the MXNet-FIFO and P3
  // baselines (server turnaround of their synchronous send paths).
  Duration blocking_ack = Duration::micros(1500);
  sched::ByteSchedulerConfig bytescheduler_config;
  sched::MgWfbpConfig mg_wfbp_config;
  core::ProphetConfig prophet_config;

  [[nodiscard]] std::string name() const;

  // --- factories (one per Kind, uniformly named after the strategy) -------
  static StrategyConfig fifo();
  static StrategyConfig p3(Bytes partition = Bytes::mib(4));
  static StrategyConfig tictac();
  static StrategyConfig mg_wfbp(Bytes merge_bytes = Bytes::mib(8));
  static StrategyConfig bytescheduler(Bytes credit = Bytes::mib(4),
                                      bool autotune = false);
  static StrategyConfig prophet(core::ProphetConfig config = {});

  // --- registry ------------------------------------------------------------
  // Canonical names, in presentation order, that from_name() accepts. CLIs
  // build their usage text and benches their strategy loops from this list.
  static const std::vector<std::string>& known_names();
  // Parses a canonical name or historical alias ("mxnet-fifo" == "fifo");
  // nullopt for unknown names. from_name(s.name()) round-trips every Kind.
  static std::optional<StrategyConfig> from_name(std::string_view name);
  // Paper-style display label for a canonical name ("prophet" -> "Prophet").
  static std::string display_label(std::string_view name);

  // --- deprecated aliases (pre-unification spellings) ----------------------
  [[deprecated("use StrategyConfig::mg_wfbp()")]]
  static StrategyConfig make_mg_wfbp(Bytes merge_bytes = Bytes::mib(8)) {
    return mg_wfbp(merge_bytes);
  }
  [[deprecated("use StrategyConfig::bytescheduler()")]]
  static StrategyConfig make_bytescheduler(Bytes credit = Bytes::mib(4),
                                           bool autotune = false) {
    return bytescheduler(credit, autotune);
  }
  [[deprecated("use StrategyConfig::prophet()")]]
  static StrategyConfig make_prophet(core::ProphetConfig config = {}) {
    return prophet(config);
  }
};

// Instantiates the scheduler for one worker direction. `bandwidth_fn` feeds
// Prophet's planner from the worker's bandwidth monitor; other strategies
// ignore it.
std::unique_ptr<sched::CommScheduler> make_scheduler(
    const StrategyConfig& strategy, sched::TaskKind kind, std::size_t gradient_count,
    core::ProphetScheduler::BandwidthFn bandwidth_fn, const net::TcpCostModel& cost);

}  // namespace prophet::ps
