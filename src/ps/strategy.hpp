// Strategy selection: which communication scheduler a training run uses.
// Covers the paper's four contenders — default MXNet (FIFO), P3,
// ByteScheduler (fixed or auto-tuned credit) and Prophet.
#pragma once

#include <memory>
#include <string>

#include "core/prophet_scheduler.hpp"
#include "net/cost_model.hpp"
#include "sched/bytescheduler.hpp"
#include "sched/mg_wfbp.hpp"
#include "sched/scheduler.hpp"

namespace prophet::ps {

struct StrategyConfig {
  enum class Kind {
    kFifo,           // default MXNet
    kP3,             // Jayarajan et al., MLSys'19
    kTicTac,         // Hashemi et al., MLSys'19 (related work, Sec. 6.1)
    kMgWfbp,         // Shi et al., INFOCOM'19 (related work, Sec. 6.2)
    kByteScheduler,  // Peng et al., SOSP'19
    kProphet,        // this paper
  };

  Kind kind = Kind::kProphet;
  // P3 partition size (paper Sec. 5.1: 4 MB).
  Bytes p3_partition = Bytes::mib(4);
  // Blocking-call acknowledgment charged per task by the MXNet-FIFO and P3
  // baselines (server turnaround of their synchronous send paths).
  Duration blocking_ack = Duration::micros(1500);
  sched::ByteSchedulerConfig bytescheduler;
  sched::MgWfbpConfig mg_wfbp;
  core::ProphetConfig prophet;

  [[nodiscard]] std::string name() const;

  static StrategyConfig fifo();
  static StrategyConfig p3(Bytes partition = Bytes::mib(4));
  static StrategyConfig tictac();
  static StrategyConfig make_mg_wfbp(Bytes merge_bytes = Bytes::mib(8));
  static StrategyConfig make_bytescheduler(Bytes credit = Bytes::mib(4),
                                            bool autotune = false);
  static StrategyConfig make_prophet(core::ProphetConfig config = {});
};

// Instantiates the scheduler for one worker direction. `bandwidth_fn` feeds
// Prophet's planner from the worker's bandwidth monitor; other strategies
// ignore it.
std::unique_ptr<sched::CommScheduler> make_scheduler(
    const StrategyConfig& strategy, sched::TaskKind kind, std::size_t gradient_count,
    core::ProphetScheduler::BandwidthFn bandwidth_fn, const net::TcpCostModel& cost);

}  // namespace prophet::ps
