#include "ps/job_runtime.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace prophet::ps {

JobRuntime::JobRuntime(sim::Simulator& sim, net::FlowNetwork& network,
                       net::BuiltTopology& topology, ClusterConfig config,
                       JobOptions options)
    : sim_{sim},
      network_{network},
      config_{std::move(config)},
      options_{std::move(options)},
      cost_{config_.tcp} {
  const ClusterConfig& cfg = config_;
  // Offset jobs still record metrics against the shared origin-based clock,
  // so their series horizon shifts with them.
  const Duration metrics_horizon = cfg.metrics_horizon + options_.start_offset;

  // One host per PS shard. The single-shard tier keeps the historical bare
  // "ps" name (and with it the historical topology and event order); a
  // sharded tier numbers its hosts ps0..psN-1.
  for (std::size_t s = 0; s < cfg.ps_shards; ++s) {
    const std::string name =
        cfg.ps_shards == 1 ? "ps" : "ps" + std::to_string(s);
    ps_nodes_.push_back(topology.add_host(options_.name_prefix + name,
                                          node_base_bandwidth(/*is_ps=*/true, 0),
                                          options_.ps_rack));
  }
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    std::optional<std::size_t> rack;
    if (w < options_.worker_racks.size()) rack = options_.worker_racks[w];
    worker_nodes_.push_back(
        topology.add_host(options_.name_prefix + "worker" + std::to_string(w),
                          cfg.bandwidth_of_worker(w), rack));
  }

  // Per-worker throughput series, attached before any traffic flows.
  tx_series_.assign(cfg.num_workers, BinnedSeries{cfg.metrics_bin, metrics_horizon});
  rx_series_.assign(cfg.num_workers, BinnedSeries{cfg.metrics_bin, metrics_horizon});
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    network_.attach_tracker(worker_nodes_[w], net::Direction::kTx, &tx_series_[w]);
    network_.attach_tracker(worker_nodes_[w], net::Direction::kRx, &rx_series_[w]);
  }

  iteration_model_ = std::make_unique<dnn::IterationModel>(
      cfg.model, cfg.gpu, cfg.batch, cfg.kvstore, cfg.jitter_sigma);

  // BSP invariant auditor: passive mirror of the push/pull/round protocol,
  // always on under BSP. Aborts with a diagnostic on the first violated
  // invariant (lost or double-counted gradient, broken barrier, ...).
  if (cfg.sync == SyncMode::kBsp) {
    std::vector<Bytes> key_sizes;
    for (std::size_t k = 0; k < cfg.model.tensor_count(); ++k) {
      key_sizes.push_back(cfg.model.tensor(k).bytes);
    }
    auditor_ = std::make_unique<audit::BspAuditor>(
        cfg.num_workers, std::move(key_sizes), cfg.ps_shards);
  }

  server_ = std::make_unique<Server>(
      sim_, cfg.model, cfg.num_workers, cfg.sync == SyncMode::kAsp,
      cfg.update_fixed, cfg.update_bytes_per_sec,
      [this](std::size_t w, std::size_t key) {
        workers_[w]->on_param_updated(key);
      },
      cfg.serialize_ps_cpu, cfg.ps_shards);
  server_->set_auditor(auditor_.get());
  if (cfg.dynamics.has_ps_crash()) server_->enable_failover(cfg.checkpoint_period);

  Rng root{cfg.seed};
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    Worker::Params params;
    params.id = w;
    params.node = worker_nodes_[w];
    params.ps_nodes = ps_nodes_;
    params.iterations = cfg.iterations;
    params.iteration_model = iteration_model_.get();
    params.server = server_.get();
    params.strategy = cfg.strategy;
    params.cost = cost_;
    params.monitor = cfg.monitor;
    params.metrics_bin = cfg.metrics_bin;
    params.metrics_horizon = metrics_horizon;
    params.batch = cfg.batch;
    params.reliability = cfg.reliability;
    params.auditor = auditor_.get();
    workers_.push_back(
        std::make_unique<Worker>(sim_, network_, params, root.fork(w)));
  }
}

Bandwidth JobRuntime::node_base_bandwidth(bool is_ps, std::size_t w) const {
  const net::TopologySpec spec = config_.resolved_topology();
  if (spec.kind == net::TopologySpec::Kind::kLeafSpine) return spec.host_bandwidth;
  return is_ps ? spec.ps_bandwidth : config_.bandwidth_of_worker(w);
}

void JobRuntime::start() {
  // Zero offset starts workers synchronously — no extra scheduled event, so
  // a solo job replays the pre-JobRuntime event sequence exactly.
  if (options_.start_offset == Duration::zero()) {
    for (auto& worker : workers_) worker->start();
  } else {
    sim_.schedule_at(start_time(), [this] {
      for (auto& worker : workers_) worker->start();
    });
  }

  // Arm the dynamics plan: every event fires at its offset (relative to the
  // job's start) and mutates the live network / workers / server. Bandwidth
  // scales apply to the *configured* rates, so repeated events never
  // compound; link-targeted events snapshot those rates here, at arm time.
  for (const auto& ev : config_.dynamics.events) {
    if (ev.targets_link()) {
      for (const net::LinkId id : net::resolve_link_target(network_, ev.link)) {
        link_base_caps_.emplace(id, network_.link_capacity(id));
      }
    }
    sim_.schedule_at(start_time() + ev.at, [this, ev] { apply_event(ev); });
  }
}

void JobRuntime::apply_event(const net::DynamicsEvent& ev) {
  using Type = net::DynamicsEvent::Type;
  const ClusterConfig& cfg = config_;
  // PS-targeted node events fan out to every shard's host, or to the single
  // shard the event names.
  auto for_each_ps_node = [&](auto&& fn) {
    if (ev.ps_shard.has_value()) {
      fn(ps_nodes_[*ev.ps_shard]);
    } else {
      for (const net::NodeId node : ps_nodes_) fn(node);
    }
  };
  auto for_each_node = [&](auto&& fn) {
    if (ev.target_ps) {
      for_each_ps_node(fn);
    } else if (ev.worker.has_value()) {
      fn(worker_nodes_[*ev.worker]);
    } else {
      for (const net::NodeId node : worker_nodes_) fn(node);
    }
  };
  auto for_each_worker = [&](auto&& fn) {
    if (ev.worker.has_value()) {
      fn(*ev.worker);
    } else {
      for (std::size_t w = 0; w < cfg.num_workers; ++w) fn(w);
    }
  };
  // A link-targeted bandwidth/outage event bypasses the per-node fan-out and
  // hits the named links directly (they may be shared rack uplinks).
  if (ev.targets_link()) {
    const std::vector<net::LinkId> links =
        net::resolve_link_target(network_, ev.link);
    PROPHET_CHECK_MSG(!links.empty(),
                      "dynamics event targets an unknown link name");
    for (const net::LinkId id : links) {
      switch (ev.type) {
        case Type::kBandwidthScale:
          network_.set_link_capacity(id, link_base_caps_.at(id) * ev.factor);
          break;
        case Type::kBandwidthSet:
          network_.set_link_capacity(id, ev.bandwidth);
          break;
        case Type::kOutageStart:
        case Type::kOutageEnd:
          network_.set_link_state(id, ev.type == Type::kOutageEnd);
          break;
        default:
          break;  // rejected by DynamicsPlan::validate()
      }
    }
    return;
  }
  switch (ev.type) {
    case Type::kBandwidthScale:
    case Type::kBandwidthSet:
      if (ev.target_ps) {
        const Bandwidth base = node_base_bandwidth(/*is_ps=*/true, 0);
        const Bandwidth cap =
            ev.type == Type::kBandwidthSet ? ev.bandwidth : base * ev.factor;
        for_each_ps_node([&](net::NodeId node) {
          network_.set_capacity(node, net::Direction::kTx, cap);
          network_.set_capacity(node, net::Direction::kRx, cap);
        });
      } else {
        for_each_worker([&](std::size_t w) {
          const Bandwidth base = node_base_bandwidth(/*is_ps=*/false, w);
          const Bandwidth cap =
              ev.type == Type::kBandwidthSet ? ev.bandwidth : base * ev.factor;
          network_.set_capacity(worker_nodes_[w], net::Direction::kTx, cap);
          network_.set_capacity(worker_nodes_[w], net::Direction::kRx, cap);
        });
      }
      break;
    case Type::kOutageStart:
    case Type::kOutageEnd:
      for_each_node([&](net::NodeId node) {
        network_.set_link_up(node, ev.type == Type::kOutageEnd);
      });
      break;
    case Type::kComputeScale:
      for_each_worker([&](std::size_t w) {
        workers_[w]->set_compute_factor(ev.factor);
      });
      break;
    case Type::kPsComputeScale:
      if (ev.ps_shard.has_value()) {
        server_->set_shard_cpu_factor(*ev.ps_shard, ev.factor);
      } else {
        server_->set_cpu_factor(ev.factor);
      }
      break;
    case Type::kWorkerCrash:
      if (faults_live_) workers_[*ev.worker]->crash();
      break;
    case Type::kWorkerRecover:
      if (faults_live_) workers_[*ev.worker]->recover();
      break;
    case Type::kPsCrash:
      if (!faults_live_) break;
      if (ev.ps_shard.has_value()) {
        // Single failure domain: only this shard's host drops off the fabric
        // and only its keys stop serving.
        server_->crash_shard(*ev.ps_shard);
        network_.set_link_up(ps_nodes_[*ev.ps_shard], false);
        for (auto& worker : workers_) worker->on_ps_shard_crash(*ev.ps_shard);
      } else {
        server_->crash();
        for (const net::NodeId node : ps_nodes_) network_.set_link_up(node, false);
        for (auto& worker : workers_) worker->on_ps_crash();
      }
      break;
    case Type::kPsRecover:
      if (!faults_live_) break;
      if (ev.ps_shard.has_value()) {
        network_.set_link_up(ps_nodes_[*ev.ps_shard], true);
        const std::vector<std::size_t> snapshot =
            server_->recover_shard(*ev.ps_shard);
        for (auto& worker : workers_) worker->rollback_shard(*ev.ps_shard, snapshot);
      } else {
        for (const net::NodeId node : ps_nodes_) network_.set_link_up(node, true);
        const std::vector<std::size_t> snapshot = server_->recover();
        for (auto& worker : workers_) worker->rollback(snapshot);
      }
      break;
    case Type::kLossRate:
      if (faults_live_) {
        for (auto& worker : workers_) worker->set_loss_rate(ev.factor);
      }
      break;
  }
}

bool JobRuntime::done() const {
  return std::all_of(workers_.begin(), workers_.end(),
                     [](const auto& w) { return w->done(); });
}

void JobRuntime::recover_crashed() {
  for (auto& worker : workers_) {
    if (worker->crashed()) worker->recover();
  }
}

void JobRuntime::finish_training(TimePoint now) {
  training_span_ = now - start_time();
  for (auto& worker : workers_) worker->finish();
}

void JobRuntime::finish_audit() {
  if (auditor_ != nullptr) auditor_->finish(config_.iterations);
}

ClusterResult JobRuntime::collect(std::optional<std::size_t> measure_first,
                                  std::uint64_t events_fired) const {
  const ClusterConfig& cfg = config_;
  // Default window: past Prophet's profiling phase so strategies compare at
  // steady state; the same window is applied to every strategy.
  std::size_t first = measure_first.value_or(0);
  if (!measure_first.has_value()) {
    std::size_t warmup = 3;
    if (cfg.strategy.kind == StrategyConfig::Kind::kProphet) {
      warmup = cfg.strategy.prophet_config.profile_iterations + 3;
    }
    PROPHET_CHECK_MSG(warmup + 1 < cfg.iterations,
                      "not enough iterations to measure past warmup");
    first = warmup;
  }
  const std::size_t last = cfg.iterations;

  ClusterResult result;
  result.measure_first = first;
  result.measure_last = last;
  result.simulated_time = training_span_;
  result.events_fired = events_fired;
  result.audit_checks = auditor_ != nullptr ? auditor_->checks_run() : 0;
  result.rebalance = network_.rebalance_stats();
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    const Worker& worker = *workers_[w];
    WorkerResult wr{.id = w,
                    .rate_samples_per_sec = 0.0,
                    .gpu_utilization = 0.0,
                    .iterations_completed = worker.current_iteration(),
                    .prophet_activated_at = worker.prophet_activated_at(),
                    .prophet_replans = worker.prophet_replans(),
                    .training = worker.training_metrics(),
                    .transfers = worker.transfers(),
                    .gpu_series = worker.gpu().series(),
                    .gpu_intervals = worker.gpu().intervals(),
                    .tx_series = tx_series_[w],
                    .rx_series = rx_series_[w]};
    const auto& tm = worker.training_metrics();
    wr.rate_samples_per_sec = tm.rate_samples_per_sec(first, last);
    wr.gpu_utilization =
        worker.gpu().utilization(tm.iteration_start(first), tm.iteration_start(last));
    result.workers.push_back(std::move(wr));
  }
  return result;
}

}  // namespace prophet::ps
