// One training job wired into a (possibly shared) simulator and network:
// the PS, its workers, the BSP auditor and the armed dynamics plan — i.e.
// everything Cluster::run used to build inline, extracted so several jobs
// can coexist in one event loop on one fabric.
//
// Lifecycle (the cluster driver owns the event loop):
//   construct      — places hosts on the topology, builds server/workers;
//   start()        — kicks off iteration 0 (immediately, or at the
//                    scheduler-chosen start offset) and arms dynamics;
//   ... sim steps ...
//   when done(): recover_crashed(); disarm_faults(); finish_training(now);
//   ... drain ...  finish_audit(); collect(...).
//
// A single job with default JobOptions on a star topology reproduces the
// original Cluster::run event sequence bit for bit: zero-offset start() calls
// Worker::start directly (no extra scheduled event) and dynamics arming
// happens in the same order at the same instants.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "common/rng.hpp"
#include "common/time_series.hpp"
#include "dnn/iteration_model.hpp"
#include "net/flow_network.hpp"
#include "net/topology.hpp"
#include "ps/cluster.hpp"
#include "ps/config.hpp"
#include "ps/server.hpp"
#include "ps/worker.hpp"
#include "sim/simulator.hpp"

namespace prophet::ps {

// Per-job placement and pacing decisions, made by the cluster scheduler.
struct JobOptions {
  // Prepended to node names so jobs sharing one network stay distinguishable
  // ("job0." -> "job0.ps", "job0.worker1").
  std::string name_prefix;
  // Delay before iteration 0 (CASSINI-style communication-phase
  // interleaving staggers jobs sharing an oversubscribed uplink).
  Duration start_offset{};
  // Leaf-spine placement: rack index for the PS / each worker. Unset entries
  // fall back to sequential first-fit; ignored on a star.
  std::optional<std::size_t> ps_rack;
  std::vector<std::size_t> worker_racks;
};

class JobRuntime {
 public:
  JobRuntime(sim::Simulator& sim, net::FlowNetwork& network,
             net::BuiltTopology& topology, ClusterConfig config,
             JobOptions options = {});
  // Scheduled dynamics callbacks capture `this`.
  JobRuntime(const JobRuntime&) = delete;
  JobRuntime& operator=(const JobRuntime&) = delete;

  // Starts every worker (synchronously for a zero offset) and arms the
  // job's dynamics plan, offset along with the job.
  void start();

  // Every worker crossed its final iteration boundary (residual pulls may
  // still be in flight).
  [[nodiscard]] bool done() const;

  // Training can finish while an already-done worker is still down (its
  // recover event lands past the finish line, where it will be dropped);
  // brings it back so the audit sees a whole cluster.
  void recover_crashed();
  // Stops crash/recovery/loss events of a plan that extends past the finish
  // line from perturbing drained state.
  void disarm_faults() { faults_live_ = false; }
  // Records the training span ending at `now` and closes worker metrics.
  void finish_training(TimePoint now);
  // Final BSP audit over the full run; call after the network drained.
  void finish_audit();

  [[nodiscard]] TimePoint start_time() const {
    return TimePoint::origin() + options_.start_offset;
  }
  [[nodiscard]] Duration training_span() const { return training_span_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  // First PS host (the whole tier when ps_shards == 1).
  [[nodiscard]] net::NodeId ps_node() const { return ps_nodes_.front(); }
  // One host per PS shard (ps_nodes()[s] serves shard s).
  [[nodiscard]] const std::vector<net::NodeId>& ps_nodes() const {
    return ps_nodes_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& worker_nodes() const {
    return worker_nodes_;
  }

  // Gathers per-worker results over [measure_first, iterations) — the same
  // warmup default Cluster::run always used. `events_fired` is the
  // simulator-wide count (jobs sharing a loop share it).
  [[nodiscard]] ClusterResult collect(std::optional<std::size_t> measure_first,
                                      std::uint64_t events_fired) const;

 private:
  void apply_event(const net::DynamicsEvent& ev);
  [[nodiscard]] Bandwidth node_base_bandwidth(bool is_ps, std::size_t w) const;

  sim::Simulator& sim_;
  net::FlowNetwork& network_;
  ClusterConfig config_;
  JobOptions options_;
  net::TcpCostModel cost_;
  std::vector<net::NodeId> ps_nodes_;
  std::vector<net::NodeId> worker_nodes_;
  std::vector<BinnedSeries> tx_series_;
  std::vector<BinnedSeries> rx_series_;
  std::unique_ptr<dnn::IterationModel> iteration_model_;
  std::unique_ptr<audit::BspAuditor> auditor_;
  std::unique_ptr<Server> server_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Configured capacities of link-targeted dynamics, snapshotted at arm time
  // so repeated scale events never compound.
  std::map<net::LinkId, Bandwidth> link_base_caps_;
  bool faults_live_ = true;
  Duration training_span_{};
};

}  // namespace prophet::ps
