#include "ps/config.hpp"

#include "common/check.hpp"

namespace prophet::ps {

void ClusterConfig::validate() const {
  PROPHET_CHECK_MSG(num_workers > 0, "ClusterConfig: num_workers must be > 0");
  PROPHET_CHECK_MSG(iterations >= 2, "ClusterConfig: need at least 2 iterations");
  PROPHET_CHECK_MSG(batch > 0, "ClusterConfig: batch must be > 0");
  PROPHET_CHECK_MSG(model.tensor_count() > 0, "ClusterConfig: model has no tensors");
  PROPHET_CHECK_MSG(jitter_sigma >= 0.0, "ClusterConfig: jitter_sigma must be >= 0");
  const net::TopologySpec topo = resolved_topology();
  topo.validate();
  if (topo.kind == net::TopologySpec::Kind::kStar) {
    PROPHET_CHECK_MSG(topo.worker_bandwidth_override.size() <= num_workers,
                      "ClusterConfig: worker_bandwidth_override longer than num_workers");
  } else {
    // An explicit non-star fabric has uniform host NICs; per-worker override
    // entries would silently lose against it, so the ambiguity is rejected.
    PROPHET_CHECK_MSG(worker_bandwidth_override.empty(),
                      "ClusterConfig: worker_bandwidth_override is ambiguous "
                      "with a non-star TopologySpec; set host_bandwidth on the "
                      "topology instead");
    // The fabric must seat every worker plus the PS.
    PROPHET_CHECK_MSG(topo.host_capacity() >= num_workers + 1,
                      "ClusterConfig: topology rack capacity cannot hold "
                      "num_workers + PS");
  }
  PROPHET_CHECK_MSG(update_bytes_per_sec > 0.0,
                    "ClusterConfig: update_bytes_per_sec must be > 0");
  PROPHET_CHECK_MSG(update_fixed >= Duration::zero(),
                    "ClusterConfig: update_fixed must be >= 0");
  PROPHET_CHECK_MSG(monitor.sample_period > Duration::zero(),
                    "ClusterConfig: monitor sample_period must be > 0");
  PROPHET_CHECK_MSG(metrics_bin > Duration::zero(),
                    "ClusterConfig: metrics_bin must be > 0");
  PROPHET_CHECK_MSG(metrics_horizon > metrics_bin,
                    "ClusterConfig: metrics_horizon must exceed metrics_bin");
  dynamics.validate(num_workers);
  reliability.validate();
  // A retry budget of zero cannot survive a single drop: the transfer fails
  // permanently and the BSP round never completes.
  PROPHET_CHECK_MSG(
      reliability.retry_budget > 0 ||
          (reliability.loss_rate == 0.0 && !dynamics.has_loss()),
      "ClusterConfig: transport loss enabled with retry_budget == 0 would "
      "hang the first dropped transfer forever");
  // Crash recovery replays BSP rounds; under ASP there is no round to roll
  // back to, so fault plans with crashes are rejected up front.
  PROPHET_CHECK_MSG(
      sync == SyncMode::kBsp ||
          (!dynamics.has_worker_crash() && !dynamics.has_ps_crash()),
      "ClusterConfig: crash/recovery faults require BSP (ASP has no round "
      "boundary to replay from)");
  PROPHET_CHECK_MSG(!dynamics.has_ps_crash() ||
                        checkpoint_period > Duration::zero(),
                    "ClusterConfig: ps_crash failover needs a positive "
                    "checkpoint_period to restore from");
}

}  // namespace prophet::ps
