#include "ps/config.hpp"

#include "common/check.hpp"

namespace prophet::ps {

void ClusterConfig::validate() const {
  PROPHET_CHECK_MSG(num_workers > 0, "ClusterConfig: num_workers must be > 0");
  PROPHET_CHECK_MSG(iterations >= 2, "ClusterConfig: need at least 2 iterations");
  PROPHET_CHECK_MSG(batch > 0, "ClusterConfig: batch must be > 0");
  PROPHET_CHECK_MSG(model.tensor_count() > 0, "ClusterConfig: model has no tensors");
  PROPHET_CHECK_MSG(ps_shards >= 1,
                    "ClusterConfig::ps_shards: must be >= 1 — zero shards "
                    "would leave every key unowned");
  PROPHET_CHECK_MSG(ps_shards <= model.tensor_count(),
                    "ClusterConfig::ps_shards: more PS shards than model "
                    "tensors — shards beyond tensor_count() would own no "
                    "keys; lower --ps-shards");
  PROPHET_CHECK_MSG(jitter_sigma >= 0.0, "ClusterConfig: jitter_sigma must be >= 0");
  const net::TopologySpec topo = resolved_topology();
  topo.validate();
  if (topo.kind == net::TopologySpec::Kind::kStar) {
    PROPHET_CHECK_MSG(topo.worker_bandwidth_override.size() <= num_workers,
                      "ClusterConfig: worker_bandwidth_override longer than num_workers");
  } else {
    // An explicit non-star fabric has uniform host NICs; per-worker override
    // entries would silently lose against it, so the ambiguity is rejected.
    PROPHET_CHECK_MSG(worker_bandwidth_override.empty(),
                      "ClusterConfig: worker_bandwidth_override is ambiguous "
                      "with a non-star TopologySpec; set host_bandwidth on the "
                      "topology instead");
    // The fabric must seat every worker plus one host per PS shard.
    PROPHET_CHECK_MSG(topo.host_capacity() >= num_workers + ps_shards,
                      "ClusterConfig: topology rack capacity cannot hold "
                      "num_workers + ps_shards PS hosts");
  }
  PROPHET_CHECK_MSG(update_bytes_per_sec > 0.0,
                    "ClusterConfig: update_bytes_per_sec must be > 0");
  PROPHET_CHECK_MSG(update_fixed >= Duration::zero(),
                    "ClusterConfig: update_fixed must be >= 0");
  PROPHET_CHECK_MSG(monitor.sample_period > Duration::zero(),
                    "ClusterConfig: monitor sample_period must be > 0");
  PROPHET_CHECK_MSG(metrics_bin > Duration::zero(),
                    "ClusterConfig: metrics_bin must be > 0");
  PROPHET_CHECK_MSG(metrics_horizon > metrics_bin,
                    "ClusterConfig: metrics_horizon must exceed metrics_bin");
  dynamics.validate(num_workers, ps_shards);
  reliability.validate();
  // A retry budget of zero cannot survive a single drop: the transfer fails
  // permanently and the BSP round never completes.
  PROPHET_CHECK_MSG(
      reliability.retry_budget > 0 ||
          (reliability.loss_rate == 0.0 && !dynamics.has_loss()),
      "ClusterConfig::reliability.retry_budget: transport loss is enabled "
      "(reliability.loss_rate > 0 or a dynamics loss_rate event) but "
      "retry_budget == 0, so the first dropped transfer would hang forever; "
      "give the channel a positive retry budget (see ROADMAP 'crash-recovery "
      "and reliable transport', docs/ROBUSTNESS.md)");
  // Crash recovery replays BSP rounds; under ASP there is no round to roll
  // back to, so fault plans with crashes are rejected up front.
  PROPHET_CHECK_MSG(
      sync == SyncMode::kBsp ||
          (!dynamics.has_worker_crash() && !dynamics.has_ps_crash()),
      "ClusterConfig::dynamics: crash/recovery faults require sync == "
      "SyncMode::kBsp — ASP has no BSP round boundary to replay from "
      "(lifting this is the ROADMAP item 'Async / stale-synchronous "
      "parallel mode')");
  PROPHET_CHECK_MSG(!dynamics.has_ps_crash() ||
                        checkpoint_period > Duration::zero(),
                    "ClusterConfig: ps_crash failover needs a positive "
                    "checkpoint_period to restore from");
}

}  // namespace prophet::ps
