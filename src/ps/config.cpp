#include "ps/config.hpp"

#include "common/check.hpp"

namespace prophet::ps {

void ClusterConfig::validate() const {
  PROPHET_CHECK_MSG(num_workers > 0, "ClusterConfig: num_workers must be > 0");
  PROPHET_CHECK_MSG(iterations >= 2, "ClusterConfig: need at least 2 iterations");
  PROPHET_CHECK_MSG(batch > 0, "ClusterConfig: batch must be > 0");
  PROPHET_CHECK_MSG(model.tensor_count() > 0, "ClusterConfig: model has no tensors");
  PROPHET_CHECK_MSG(jitter_sigma >= 0.0, "ClusterConfig: jitter_sigma must be >= 0");
  PROPHET_CHECK_MSG(!worker_bandwidth.is_zero(),
                    "ClusterConfig: worker_bandwidth must be > 0");
  PROPHET_CHECK_MSG(!ps_bandwidth.is_zero(), "ClusterConfig: ps_bandwidth must be > 0");
  PROPHET_CHECK_MSG(worker_bandwidth_override.size() <= num_workers,
                    "ClusterConfig: worker_bandwidth_override longer than num_workers");
  PROPHET_CHECK_MSG(update_bytes_per_sec > 0.0,
                    "ClusterConfig: update_bytes_per_sec must be > 0");
  PROPHET_CHECK_MSG(update_fixed >= Duration::zero(),
                    "ClusterConfig: update_fixed must be >= 0");
  PROPHET_CHECK_MSG(monitor.sample_period > Duration::zero(),
                    "ClusterConfig: monitor sample_period must be > 0");
  PROPHET_CHECK_MSG(metrics_bin > Duration::zero(),
                    "ClusterConfig: metrics_bin must be > 0");
  PROPHET_CHECK_MSG(metrics_horizon > metrics_bin,
                    "ClusterConfig: metrics_horizon must exceed metrics_bin");
  dynamics.validate(num_workers);
}

}  // namespace prophet::ps
