#include "metrics/chrome_trace.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace prophet::metrics {

ChromeTraceWriter::ChromeTraceWriter(const std::string& path) : out_{path} {
  out_ << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { close(); }

void ChromeTraceWriter::comma() {
  if (!first_) out_ << ",";
  first_ = false;
  out_ << "\n";
}

std::string ChromeTraceWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void ChromeTraceWriter::add_span(const std::string& name, const std::string& category,
                                 int pid, int tid, TimePoint start,
                                 Duration duration) {
  PROPHET_CHECK(!closed_);
  comma();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                escape(name).c_str(), escape(category).c_str(), pid, tid,
                start.to_seconds() * 1e6, duration.to_seconds() * 1e6);
  out_ << buf;
}

void ChromeTraceWriter::add_instant(const std::string& name,
                                    const std::string& category, int pid, int tid,
                                    TimePoint at) {
  PROPHET_CHECK(!closed_);
  comma();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"pid\":%d,\"tid\":%d,\"ts\":%.3f}",
                escape(name).c_str(), escape(category).c_str(), pid, tid,
                at.to_seconds() * 1e6);
  out_ << buf;
}

void ChromeTraceWriter::name_process(int pid, const std::string& name) {
  PROPHET_CHECK(!closed_);
  comma();
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << escape(name) << "\"}}";
}

void ChromeTraceWriter::name_thread(int pid, int tid, const std::string& name) {
  PROPHET_CHECK(!closed_);
  comma();
  out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << escape(name)
       << "\"}}";
}

void ChromeTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

}  // namespace prophet::metrics
