// GPU busy/idle accounting for one worker: the instrument behind the paper's
// utilization plots (Figs. 2, 9, 13) and average-utilization claims.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/time_series.hpp"

namespace prophet::metrics {

class GpuTracker {
 public:
  // `bin` / `horizon` size the utilization-over-time series.
  GpuTracker(Duration bin, Duration horizon);

  void busy_from(TimePoint start);
  void idle_from(TimePoint end);
  [[nodiscard]] bool is_busy() const { return busy_since_.has_value(); }

  // Closes any open busy interval at `now` for final accounting.
  void finish(TimePoint now);

  [[nodiscard]] Duration total_busy() const { return total_busy_; }
  // Busy fraction over [from, to].
  [[nodiscard]] double utilization(TimePoint from, TimePoint to) const;
  [[nodiscard]] const BinnedSeries& series() const { return series_; }
  // Raw busy intervals in chronological order (trace export).
  [[nodiscard]] const std::vector<std::pair<TimePoint, TimePoint>>& intervals() const {
    return intervals_;
  }

 private:
  BinnedSeries series_;
  std::optional<TimePoint> busy_since_;
  Duration total_busy_{};
  // Busy time accumulated before `t`, sampled at interval edges; enables
  // utilization() over arbitrary windows.
  std::vector<std::pair<TimePoint, Duration>> checkpoints_;
  std::vector<std::pair<TimePoint, TimePoint>> intervals_;
};

}  // namespace prophet::metrics
