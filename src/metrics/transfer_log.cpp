#include "metrics/transfer_log.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"

namespace prophet::metrics {

void TransferLog::mark_backward_start(std::size_t iteration, TimePoint at) {
  backward_starts_.emplace_back(iteration, at);
}

std::vector<GradientTransferSummary> TransferLog::per_gradient(
    std::size_t first_iter, std::size_t last_iter, sched::TaskKind kind) const {
  std::size_t max_grad = 0;
  for (const auto& rec : records_) max_grad = std::max(max_grad, rec.grad);
  std::vector<GradientTransferSummary> out(max_grad + 1);
  for (std::size_t g = 0; g <= max_grad; ++g) out[g].grad = g;

  auto backward_start_of = [this](std::size_t iter) -> std::optional<TimePoint> {
    for (const auto& [it, at] : backward_starts_) {
      if (it == iter) return at;
    }
    return std::nullopt;
  };

  for (const auto& rec : records_) {
    if (rec.kind != kind || rec.iteration < first_iter || rec.iteration >= last_iter) {
      continue;
    }
    auto& summary = out[rec.grad];
    summary.wait_ms.add(rec.wait().to_millis());
    summary.transfer_ms.add(rec.transfer().to_millis());
    if (const auto t0 = backward_start_of(rec.iteration)) {
      summary.start_offset_ms.add((rec.started - *t0).to_millis());
      summary.end_offset_ms.add((rec.finished - *t0).to_millis());
    }
  }
  return out;
}

TransferLog::Overall TransferLog::overall(std::size_t first_iter, std::size_t last_iter,
                                          sched::TaskKind kind) const {
  RunningStats wait;
  RunningStats transfer;
  for (const auto& rec : records_) {
    if (rec.kind != kind || rec.iteration < first_iter || rec.iteration >= last_iter) {
      continue;
    }
    wait.add(rec.wait().to_millis());
    transfer.add(rec.transfer().to_millis());
  }
  Overall out;
  out.count = wait.count();
  if (!wait.empty()) {
    out.mean_wait_ms = wait.mean();
    out.mean_transfer_ms = transfer.mean();
  }
  return out;
}

}  // namespace prophet::metrics
