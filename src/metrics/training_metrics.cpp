#include "metrics/training_metrics.hpp"

#include "common/check.hpp"

namespace prophet::metrics {

TrainingMetrics::TrainingMetrics(int batch_size) : batch_{batch_size} {
  PROPHET_CHECK(batch_size > 0);
}

void TrainingMetrics::mark_iteration_start(std::size_t iter, TimePoint at) {
  PROPHET_CHECK_MSG(iter == starts_.size(), "iterations must be marked in order");
  starts_.push_back(at);
}

void TrainingMetrics::finish(TimePoint at) { end_ = at; }

void TrainingMetrics::rewind_to(std::size_t iter) {
  PROPHET_CHECK_MSG(iter <= starts_.size(), "rewind past the recorded iterations");
  starts_.resize(iter);
}

TimePoint TrainingMetrics::iteration_start(std::size_t iter) const {
  PROPHET_CHECK(iter < starts_.size());
  return starts_[iter];
}

Duration TrainingMetrics::mean_iteration_time(std::size_t first, std::size_t last) const {
  PROPHET_CHECK(first < last);
  PROPHET_CHECK_MSG(last < starts_.size() || (last == starts_.size() && end_ > starts_.back()),
                    "window extends past recorded iterations");
  const TimePoint from = starts_[first];
  const TimePoint to = last < starts_.size() ? starts_[last] : end_;
  return (to - from) / static_cast<std::int64_t>(last - first);
}

double TrainingMetrics::rate_samples_per_sec(std::size_t first, std::size_t last) const {
  const Duration mean = mean_iteration_time(first, last);
  return static_cast<double>(batch_) / mean.to_seconds();
}

std::vector<double> TrainingMetrics::per_iteration_rates(std::size_t first,
                                                         std::size_t last) const {
  std::vector<double> rates;
  for (std::size_t i = first; i < last; ++i) {
    rates.push_back(rate_samples_per_sec(i, i + 1));
  }
  return rates;
}

}  // namespace prophet::metrics
