// Chrome trace-event exporter: training timelines viewable in
// chrome://tracing or https://ui.perfetto.dev. Each worker becomes a
// process with three lanes — GPU compute, gradient pushes, parameter pulls
// — turning a simulation run into a browsable Gantt chart.
#pragma once

#include <fstream>
#include <string>

#include "common/time.hpp"

namespace prophet::metrics {

class ChromeTraceWriter {
 public:
  // Opens (truncates) `path` and writes the JSON header.
  explicit ChromeTraceWriter(const std::string& path);
  ~ChromeTraceWriter();
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_.good(); }

  // Complete event ("ph":"X"): one box on lane (`pid`, `tid`).
  void add_span(const std::string& name, const std::string& category, int pid,
                int tid, TimePoint start, Duration duration);
  // Instant event ("ph":"i", thread scope): a zero-width marker on lane
  // (`pid`, `tid`) — used for point-in-time faults (retries, crashes).
  void add_instant(const std::string& name, const std::string& category, int pid,
                   int tid, TimePoint at);
  // Names a process/thread lane in the viewer.
  void name_process(int pid, const std::string& name);
  void name_thread(int pid, int tid, const std::string& name);

  // Writes the footer; further calls are invalid. Also invoked by the
  // destructor if still open.
  void close();

  static std::string escape(const std::string& text);

 private:
  void comma();

  std::ofstream out_;
  bool first_{true};
  bool closed_{false};
};

}  // namespace prophet::metrics
