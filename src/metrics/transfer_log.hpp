// Per-gradient transfer records: wait time (ready -> transfer start) and
// transmission time, per direction — the data behind Fig. 11 and the
// "average wait 26 ms vs 67 ms" comparisons of Sec. 5.2.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sched/task.hpp"

namespace prophet::metrics {

struct TransferRecord {
  std::size_t iteration;
  std::size_t grad;
  sched::TaskKind kind;
  Bytes bytes;           // bytes of this gradient in the task
  TimePoint enqueued;    // became transferable
  TimePoint started;     // task containing it left the NIC queue
  TimePoint finished;    // task completed
  // Transport attempts the carrying task took (1 = no retransmission).
  std::size_t attempts = 1;

  [[nodiscard]] Duration wait() const { return started - enqueued; }
  [[nodiscard]] Duration transfer() const { return finished - started; }
};

// Robustness events interleaved with the transfer timeline: transport
// retries, worker crash/recovery, PS crash and checkpoint failover.
enum class FaultKind {
  kTransportRetry,  // a reliable-transport attempt failed and backs off
  kWorkerCrash,
  kWorkerRecover,
  kPsCrash,
  kPsFailover,  // PS recovered to its last checkpoint; worker rolled back
};

[[nodiscard]] constexpr const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransportRetry: return "transport_retry";
    case FaultKind::kWorkerCrash: return "worker_crash";
    case FaultKind::kWorkerRecover: return "worker_recover";
    case FaultKind::kPsCrash: return "ps_crash";
    case FaultKind::kPsFailover: return "ps_failover";
  }
  return "?";
}

struct FaultRecord {
  FaultKind kind = FaultKind::kTransportRetry;
  TimePoint at{};
  // Failed attempt number for retries, zero otherwise.
  std::size_t attempt = 0;
};

struct GradientTransferSummary {
  std::size_t grad = 0;
  RunningStats wait_ms;
  RunningStats transfer_ms;
  RunningStats start_offset_ms;  // start relative to iteration backward start
  RunningStats end_offset_ms;
};

class TransferLog {
 public:
  void record(TransferRecord rec) { records_.push_back(rec); }
  // Marks backward start of `iteration` (reference point for Fig. 11).
  void mark_backward_start(std::size_t iteration, TimePoint at);
  void record_fault(FaultRecord rec) { faults_.push_back(rec); }

  [[nodiscard]] const std::vector<TransferRecord>& records() const { return records_; }
  [[nodiscard]] const std::vector<FaultRecord>& faults() const { return faults_; }

  // Aggregates per gradient over iterations [first, last), push direction
  // only (Fig. 11 plots gradient pushes).
  [[nodiscard]] std::vector<GradientTransferSummary> per_gradient(
      std::size_t first_iter, std::size_t last_iter, sched::TaskKind kind) const;

  // Mean wait / transfer across all records in the window.
  struct Overall {
    double mean_wait_ms = 0.0;
    double mean_transfer_ms = 0.0;
    std::size_t count = 0;
  };
  [[nodiscard]] Overall overall(std::size_t first_iter, std::size_t last_iter,
                                sched::TaskKind kind) const;

 private:
  std::vector<TransferRecord> records_;
  std::vector<FaultRecord> faults_;
  std::vector<std::pair<std::size_t, TimePoint>> backward_starts_;
};

}  // namespace prophet::metrics
