// Per-gradient transfer records: wait time (ready -> transfer start) and
// transmission time, per direction — the data behind Fig. 11 and the
// "average wait 26 ms vs 67 ms" comparisons of Sec. 5.2.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sched/task.hpp"

namespace prophet::metrics {

struct TransferRecord {
  std::size_t iteration;
  std::size_t grad;
  sched::TaskKind kind;
  Bytes bytes;           // bytes of this gradient in the task
  TimePoint enqueued;    // became transferable
  TimePoint started;     // task containing it left the NIC queue
  TimePoint finished;    // task completed

  [[nodiscard]] Duration wait() const { return started - enqueued; }
  [[nodiscard]] Duration transfer() const { return finished - started; }
};

struct GradientTransferSummary {
  std::size_t grad = 0;
  RunningStats wait_ms;
  RunningStats transfer_ms;
  RunningStats start_offset_ms;  // start relative to iteration backward start
  RunningStats end_offset_ms;
};

class TransferLog {
 public:
  void record(TransferRecord rec) { records_.push_back(rec); }
  // Marks backward start of `iteration` (reference point for Fig. 11).
  void mark_backward_start(std::size_t iteration, TimePoint at);

  [[nodiscard]] const std::vector<TransferRecord>& records() const { return records_; }

  // Aggregates per gradient over iterations [first, last), push direction
  // only (Fig. 11 plots gradient pushes).
  [[nodiscard]] std::vector<GradientTransferSummary> per_gradient(
      std::size_t first_iter, std::size_t last_iter, sched::TaskKind kind) const;

  // Mean wait / transfer across all records in the window.
  struct Overall {
    double mean_wait_ms = 0.0;
    double mean_transfer_ms = 0.0;
    std::size_t count = 0;
  };
  [[nodiscard]] Overall overall(std::size_t first_iter, std::size_t last_iter,
                                sched::TaskKind kind) const;

 private:
  std::vector<TransferRecord> records_;
  std::vector<std::pair<std::size_t, TimePoint>> backward_starts_;
};

}  // namespace prophet::metrics
