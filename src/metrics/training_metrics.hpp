// Iteration-level accounting: training rate in samples/second — the paper's
// headline metric (Figs. 8, 12; Tables 2, 3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace prophet::metrics {

class TrainingMetrics {
 public:
  explicit TrainingMetrics(int batch_size);

  // Iteration `iter` began (forward start) at `at`.
  void mark_iteration_start(std::size_t iter, TimePoint at);
  void finish(TimePoint at);
  // Crash recovery: discards recorded starts from `iter` on, so the replayed
  // iteration re-marks its own boundary (iteration times then include the
  // downtime and replay — the recovery cost the fault bench measures).
  void rewind_to(std::size_t iter);

  [[nodiscard]] std::size_t iterations_started() const { return starts_.size(); }

  // Mean iteration duration over iterations [first, last).
  [[nodiscard]] Duration mean_iteration_time(std::size_t first, std::size_t last) const;
  // Per-worker training rate over the same window.
  [[nodiscard]] double rate_samples_per_sec(std::size_t first, std::size_t last) const;
  // Start time of iteration `iter`.
  [[nodiscard]] TimePoint iteration_start(std::size_t iter) const;
  // Per-iteration rate series (samples/s for each single iteration), used by
  // the fluctuation plots (Fig. 3(b)).
  [[nodiscard]] std::vector<double> per_iteration_rates(std::size_t first,
                                                        std::size_t last) const;

 private:
  int batch_;
  std::vector<TimePoint> starts_;
  TimePoint end_{};
};

}  // namespace prophet::metrics
