// Parallel parameter-sweep runner: benches fan independent simulator
// configurations across hardware threads (each simulation is single-threaded
// and deterministic; sweeps are embarrassingly parallel).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace prophet::metrics {

// Applies `fn(index)` for every index in [0, count) using up to
// `max_threads` worker threads (0 = hardware concurrency). Results are
// written by `fn` into caller-owned, pre-sized storage; indices never
// overlap, so no synchronization is required inside `fn`.
void parallel_for_index(std::size_t count, const std::function<void(std::size_t)>& fn,
                        unsigned max_threads = 0);

// Convenience: maps configs -> results in parallel, preserving order.
template <typename Config, typename Result>
std::vector<Result> parallel_map(const std::vector<Config>& configs,
                                 const std::function<Result(const Config&)>& fn,
                                 unsigned max_threads = 0) {
  std::vector<Result> results(configs.size());
  parallel_for_index(
      configs.size(),
      [&](std::size_t i) { results[i] = fn(configs[i]); }, max_threads);
  return results;
}

}  // namespace prophet::metrics
