#include "metrics/gpu_tracker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prophet::metrics {

GpuTracker::GpuTracker(Duration bin, Duration horizon) : series_{bin, horizon} {}

void GpuTracker::busy_from(TimePoint start) {
  PROPHET_CHECK_MSG(!busy_since_.has_value(), "GPU already busy");
  busy_since_ = start;
}

void GpuTracker::idle_from(TimePoint end) {
  PROPHET_CHECK_MSG(busy_since_.has_value(), "GPU already idle");
  PROPHET_CHECK(end >= *busy_since_);
  series_.add_interval(*busy_since_, end);
  total_busy_ += end - *busy_since_;
  checkpoints_.emplace_back(end, total_busy_);
  // Merge with the previous interval when contiguous (adjacent forward
  // layers produce zero-length idle gaps).
  if (!intervals_.empty() && intervals_.back().second == *busy_since_) {
    intervals_.back().second = end;
  } else if (end > *busy_since_) {
    intervals_.emplace_back(*busy_since_, end);
  }
  busy_since_.reset();
}

void GpuTracker::finish(TimePoint now) {
  if (busy_since_.has_value()) idle_from(now);
}

double GpuTracker::utilization(TimePoint from, TimePoint to) const {
  PROPHET_CHECK(to > from);
  // Busy time before a point: last checkpoint at or before it, plus nothing
  // (idle) — interval-edge resolution is adequate for windows spanning many
  // iterations, which is how the paper reports utilization.
  auto busy_before = [this](TimePoint t) -> Duration {
    Duration best{};
    for (const auto& [at, busy] : checkpoints_) {
      if (at <= t) best = busy;
      else break;
    }
    return best;
  };
  const Duration busy = busy_before(to) - busy_before(from);
  return std::clamp(busy / (to - from), 0.0, 1.0);
}

}  // namespace prophet::metrics
