// BSP invariant auditor: an always-on, purely passive checker that mirrors
// the protocol state the PS layer claims to maintain and aborts with a
// diagnostic the moment the two disagree.
//
// The invariants it enforces are the correctness claims crash recovery and
// reliable transport must not break:
//   * exactly one gradient contribution per tensor per worker per round —
//     a round completes only when every worker delivered the key's full
//     byte count exactly once (retries and replayed iterations included);
//   * bytes are conserved: per-round delivered bytes never exceed the key
//     size, nothing is left partially delivered when training ends, and —
//     per PS shard — every byte ever pushed was either aggregated into a
//     completed round or explicitly discarded by a crash;
//   * simulation time is monotone across every audited event;
//   * the BSP barrier holds: no worker finishes forward propagation of
//     iteration k (= starts backward k) before it pulled round-k updates of
//     every key, and no round k+1 completes before round k. The barrier is
//     whole-model even under a sharded PS: sharding changes which rounds a
//     failover rolls back, never which rounds an iteration needs;
//   * version fencing: a rollback of PS shard k may move only shard-k keys'
//     versions — surviving shards' versions must pass through untouched.
//
// The auditor is fed by hooks in Server / Worker / the cluster driver; it
// never schedules events, draws random numbers, or mutates the simulation,
// so wiring it in cannot perturb a timeline (pay-for-use determinism). In
// ASP mode there is no barrier to audit and the cluster runs without one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet::audit {

class BspAuditor {
 public:
  // `key_sizes[k]` is the full byte count of tensor k; keys are striped
  // across `ps_shards` failure domains (key k on shard k % ps_shards, the
  // same ShardMap arithmetic the PS layer uses).
  BspAuditor(std::size_t num_workers, std::vector<Bytes> key_sizes,
             std::size_t ps_shards = 1);

  // --- server-side hooks ---------------------------------------------------
  // Worker `w` delivered `bytes` of `key` toward the currently open round.
  void on_push_delivered(std::size_t w, std::size_t key, Bytes bytes,
                         TimePoint now);
  // The server found `key`'s round complete (all workers fully delivered).
  void on_round_complete(std::size_t key, TimePoint now);
  // A worker crash wiped its partial (incomplete) contributions.
  void on_push_discarded(std::size_t w, std::size_t key, Bytes bytes,
                         TimePoint now);
  // PS shard `shard` died: its keys' open-round bytes are wiped (and counted
  // as discarded for the shard's byte-conservation ledger); other shards
  // keep serving.
  void on_ps_crash(std::size_t shard, TimePoint now);
  // PS shard `shard`'s failover restored the snapshot `versions` (full
  // length: surviving keys carry their live versions); every worker is
  // rolled back with it (partial deliveries are void, pulls must redo the
  // snapshot round for the shard's keys). Entries outside the shard are
  // version-fenced: they must match the mirror exactly.
  void on_rollback(std::size_t shard, const std::vector<std::size_t>& versions,
                   TimePoint now);

  // --- worker-side hooks ---------------------------------------------------
  // Worker `w` completed its pull of `key`, bringing it to `round` pulls.
  void on_pull_complete(std::size_t w, std::size_t key, std::size_t round,
                        TimePoint now);
  // Worker `w` started (forward of) iteration `iter`; fired for the final
  // boundary too (iter == total iterations).
  void on_iteration_start(std::size_t w, std::size_t iter, TimePoint now);
  // Worker `w` finished forward `iter` and starts backward — the instant the
  // per-worker side of the round-`iter` barrier must already hold.
  void on_backward_start(std::size_t w, std::size_t iter, TimePoint now);
  void on_worker_crash(std::size_t w, TimePoint now);
  void on_worker_recover(std::size_t w, TimePoint now);
  // A reliable-transport attempt failed and will be retried (counted so a
  // chaos run can assert faults actually happened).
  void on_transport_retry(std::size_t w, TimePoint now);

  // End-of-run audit: every key at version `expected_iterations`, every
  // worker across its final boundary, no node down, no partial bytes.
  void finish(std::size_t expected_iterations) const;

  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  [[nodiscard]] std::uint64_t retries_seen() const { return retries_; }
  [[nodiscard]] std::uint64_t crashes_seen() const { return crashes_; }

 private:
  // Advances the monotone clock (every hook routes through here).
  void tick(TimePoint now);
  void check(bool ok, const char* what) const;

  [[nodiscard]] std::size_t shard_of(std::size_t key) const {
    return key % ps_shards_;
  }

  std::size_t num_workers_;
  std::vector<Bytes> key_sizes_;
  std::size_t ps_shards_;
  // Mirror of the protocol state, indexed [worker][key] where 2-D.
  std::vector<std::vector<std::int64_t>> delivered_;   // bytes, open round
  std::vector<std::vector<std::size_t>> pushed_;       // completed push rounds
  std::vector<std::vector<std::size_t>> pulls_;        // completed pull rounds
  std::vector<std::size_t> versions_;                  // completed rounds per key
  std::vector<std::int64_t> worker_iter_;              // last started iteration
  std::vector<std::uint8_t> down_;
  std::vector<std::uint8_t> replay_ok_;  // recovery/rollback licenses a replay
  std::vector<std::uint8_t> ps_shard_down_;
  // Per-shard cumulative byte ledger: every delivered byte must end up
  // aggregated (a completed round consumed it) or discarded (a crash wiped
  // it) by the time training finishes.
  std::vector<std::int64_t> pushed_bytes_;
  std::vector<std::int64_t> aggregated_bytes_;
  std::vector<std::int64_t> discarded_bytes_;
  TimePoint last_event_{};
  mutable std::uint64_t checks_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace prophet::audit
