#include "audit/bsp_auditor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace prophet::audit {

BspAuditor::BspAuditor(std::size_t num_workers, std::vector<Bytes> key_sizes,
                       std::size_t ps_shards)
    : num_workers_{num_workers},
      key_sizes_{std::move(key_sizes)},
      ps_shards_{ps_shards} {
  PROPHET_CHECK(num_workers_ > 0);
  PROPHET_CHECK(!key_sizes_.empty());
  PROPHET_CHECK(ps_shards_ > 0 && ps_shards_ <= key_sizes_.size());
  const std::size_t keys = key_sizes_.size();
  delivered_.assign(num_workers_, std::vector<std::int64_t>(keys, 0));
  pushed_.assign(num_workers_, std::vector<std::size_t>(keys, 0));
  pulls_.assign(num_workers_, std::vector<std::size_t>(keys, 0));
  versions_.assign(keys, 0);
  worker_iter_.assign(num_workers_, -1);
  down_.assign(num_workers_, 0);
  replay_ok_.assign(num_workers_, 0);
  ps_shard_down_.assign(ps_shards_, 0);
  pushed_bytes_.assign(ps_shards_, 0);
  aggregated_bytes_.assign(ps_shards_, 0);
  discarded_bytes_.assign(ps_shards_, 0);
}

void BspAuditor::check(bool ok, const char* what) const {
  ++checks_;
  if (ok) return;
  std::fprintf(stderr, "BSP audit violation: %s\n", what);
  std::abort();
}

void BspAuditor::tick(TimePoint now) {
  check(now >= last_event_, "simulation time ran backwards across audited events");
  last_event_ = now;
}

void BspAuditor::on_push_delivered(std::size_t w, std::size_t key, Bytes bytes,
                                   TimePoint now) {
  tick(now);
  check(w < num_workers_ && key < key_sizes_.size(), "push outside the cluster");
  check(down_[w] == 0, "push delivered from a crashed worker");
  check(ps_shard_down_[shard_of(key)] == 0,
        "push delivered to a crashed parameter-server shard");
  pushed_bytes_[shard_of(key)] += bytes.count();
  delivered_[w][key] += bytes.count();
  check(delivered_[w][key] <= key_sizes_[key].count(),
        "worker delivered more bytes of a key than one round holds — a "
        "duplicate gradient or a retry that failed to conserve bytes");
  if (delivered_[w][key] == key_sizes_[key].count()) {
    ++pushed_[w][key];
    check(pushed_[w][key] <= versions_[key] + 1,
          "worker contributed to a round beyond the one currently open");
  }
}

void BspAuditor::on_round_complete(std::size_t key, TimePoint now) {
  tick(now);
  check(key < key_sizes_.size(), "round completion outside the model");
  check(ps_shard_down_[shard_of(key)] == 0,
        "round completed on a crashed parameter-server shard");
  aggregated_bytes_[shard_of(key)] +=
      key_sizes_[key].count() * static_cast<std::int64_t>(num_workers_);
  ++versions_[key];
  for (std::size_t w = 0; w < num_workers_; ++w) {
    check(delivered_[w][key] == key_sizes_[key].count(),
          "round completed without every worker's full contribution");
    check(pushed_[w][key] == versions_[key],
          "round completed with a worker's contribution count off by one — "
          "not exactly one gradient per tensor per worker per round");
    delivered_[w][key] = 0;
  }
}

void BspAuditor::on_push_discarded(std::size_t w, std::size_t key, Bytes bytes,
                                   TimePoint now) {
  tick(now);
  check(w < num_workers_ && key < key_sizes_.size(), "discard outside the cluster");
  check(delivered_[w][key] == bytes.count(),
        "crash wiped a different partial byte count than was delivered");
  check(bytes.count() < key_sizes_[key].count(),
        "crash wiped a full contribution (only partial rounds may be discarded)");
  discarded_bytes_[shard_of(key)] += bytes.count();
  delivered_[w][key] = 0;
}

void BspAuditor::on_pull_complete(std::size_t w, std::size_t key, std::size_t round,
                                  TimePoint now) {
  tick(now);
  check(w < num_workers_ && key < key_sizes_.size(), "pull outside the cluster");
  check(down_[w] == 0, "pull completed on a crashed worker");
  check(round == pulls_[w][key] + 1, "pull rounds must advance one at a time");
  check(round <= versions_[key], "worker pulled a round the PS has not completed");
  pulls_[w][key] = round;
}

void BspAuditor::on_iteration_start(std::size_t w, std::size_t iter, TimePoint now) {
  tick(now);
  check(w < num_workers_, "iteration start outside the cluster");
  check(down_[w] == 0, "iteration started on a crashed worker");
  const auto it = static_cast<std::int64_t>(iter);
  if (replay_ok_[w] != 0) {
    check(it <= worker_iter_[w] + 1, "recovery replay jumped an iteration forward");
    replay_ok_[w] = 0;
  } else {
    check(it == worker_iter_[w] + 1,
          "iteration started out of order without a recovery to license it");
  }
  worker_iter_[w] = it;
}

void BspAuditor::on_backward_start(std::size_t w, std::size_t iter, TimePoint now) {
  tick(now);
  check(w < num_workers_, "backward start outside the cluster");
  check(down_[w] == 0, "backward started on a crashed worker");
  check(static_cast<std::int64_t>(iter) == worker_iter_[w],
        "backward started for an iteration the worker is not in");
  if (iter == 0) return;
  for (std::size_t key = 0; key < key_sizes_.size(); ++key) {
    // The BSP barrier, per worker: finishing forward `iter` takes round-iter
    // parameters of every key, which in turn takes round `iter` complete.
    check(pulls_[w][key] >= iter,
          "worker crossed into backward before pulling every round-k update — "
          "the BSP barrier was breached");
  }
}

void BspAuditor::on_worker_crash(std::size_t w, TimePoint now) {
  tick(now);
  check(w < num_workers_, "crash outside the cluster");
  check(down_[w] == 0, "worker crashed while already down");
  down_[w] = 1;
  ++crashes_;
}

void BspAuditor::on_worker_recover(std::size_t w, TimePoint now) {
  tick(now);
  check(w < num_workers_, "recover outside the cluster");
  check(down_[w] != 0, "worker recovered without having crashed");
  for (std::size_t key = 0; key < key_sizes_.size(); ++key) {
    // The crash must have wiped partial contributions; full ones stand (the
    // worker may die having fully contributed to a round another worker has
    // not finished yet).
    check(delivered_[w][key] == 0 ||
              delivered_[w][key] == key_sizes_[key].count(),
          "worker recovered with partial push bytes still on the books");
  }
  down_[w] = 0;
  replay_ok_[w] = 1;
}

void BspAuditor::on_ps_crash(std::size_t shard, TimePoint now) {
  tick(now);
  check(shard < ps_shards_, "PS crash outside the shard set");
  check(ps_shard_down_[shard] == 0, "PS shard crashed while already down");
  ps_shard_down_[shard] = 1;
  ++crashes_;
  // The crash wipes the open round's state on this shard's keys server-side;
  // the wiped bytes (partial and full contributions alike) will never
  // aggregate, so they move to the shard's discarded ledger. Other shards'
  // keys are untouched — they keep serving.
  for (auto& per_worker : delivered_) {
    for (std::size_t key = shard; key < per_worker.size(); key += ps_shards_) {
      discarded_bytes_[shard] += per_worker[key];
      per_worker[key] = 0;
    }
  }
}

void BspAuditor::on_rollback(std::size_t shard,
                             const std::vector<std::size_t>& versions,
                             TimePoint now) {
  tick(now);
  check(shard < ps_shards_, "rollback outside the shard set");
  check(ps_shard_down_[shard] != 0, "rollback without a PS crash");
  check(versions.size() == key_sizes_.size(), "rollback snapshot shape mismatch");
  for (std::size_t key = 0; key < versions.size(); ++key) {
    if (shard_of(key) != shard) {
      // Version fencing: a shard failover must not move another shard's
      // versions — the whole-model snapshot it reports carries the survivors
      // through verbatim.
      check(versions[key] == versions_[key],
            "rollback of one PS shard moved a surviving shard's version");
      continue;
    }
    check(versions[key] <= versions_[key],
          "rollback restored a snapshot from the future");
    versions_[key] = versions[key];
    for (std::size_t w = 0; w < num_workers_; ++w) {
      pushed_[w][key] = std::min(pushed_[w][key], versions[key]);
      // Failover forces a re-pull of the snapshot round.
      pulls_[w][key] = versions[key] > 0 ? versions[key] - 1 : 0;
    }
  }
  for (std::size_t w = 0; w < num_workers_; ++w) replay_ok_[w] = 1;
  ps_shard_down_[shard] = 0;
}

void BspAuditor::on_transport_retry(std::size_t w, TimePoint now) {
  tick(now);
  check(w < num_workers_, "retry outside the cluster");
  ++retries_;
}

void BspAuditor::finish(std::size_t expected_iterations) const {
  for (std::size_t s = 0; s < ps_shards_; ++s) {
    check(ps_shard_down_[s] == 0, "training ended with a PS shard down");
    // Per-shard byte conservation: every byte ever pushed to the shard was
    // either aggregated into a completed round or discarded by a crash.
    check(pushed_bytes_[s] == aggregated_bytes_[s] + discarded_bytes_[s],
          "a PS shard's cumulative pushed bytes do not equal its aggregated "
          "plus discarded bytes — per-shard byte conservation broken");
  }
  for (std::size_t w = 0; w < num_workers_; ++w) {
    check(down_[w] == 0, "training ended with a worker down");
    check(worker_iter_[w] == static_cast<std::int64_t>(expected_iterations),
          "a worker never crossed its final iteration boundary");
  }
  for (std::size_t key = 0; key < key_sizes_.size(); ++key) {
    check(versions_[key] == expected_iterations,
          "a key's completed rounds do not match the iteration count — "
          "gradients were lost or double-counted across faults");
    for (std::size_t w = 0; w < num_workers_; ++w) {
      check(delivered_[w][key] == 0,
            "training ended with partially delivered bytes — bytes were not "
            "conserved across retries");
    }
  }
}

}  // namespace prophet::audit
