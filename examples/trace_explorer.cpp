// Export a per-gradient transfer trace of one training run as CSV (for
// wait-time analyses and Fig.-11-style plots) plus a Chrome trace
// (chrome://tracing / Perfetto) showing GPU compute and transfers per
// worker as a browsable Gantt chart.
//
//   ./build/examples/trace_explorer [strategy] [output.csv]
//   ./build/examples/trace_explorer prophet trace.csv
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "ps/cluster.hpp"
#include "ps/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace prophet;

  const std::string strategy_name = argc > 1 ? argv[1] : "prophet";
  const std::string out_path = argc > 2 ? argv[2] : "trace.csv";

  const auto strategy = ps::StrategyConfig::from_name(strategy_name);
  if (!strategy.has_value()) {
    std::string names;
    for (const auto& n : ps::StrategyConfig::known_names()) {
      if (!names.empty()) names += "|";
      names += n;
    }
    std::fprintf(stderr, "unknown strategy '%s' (want %s)\n",
                 strategy_name.c_str(), names.c_str());
    return 1;
  }

  ps::ClusterConfig cfg;
  cfg.model = dnn::resnet50();
  cfg.batch = 64;
  cfg.num_workers = 3;
  cfg.worker_bandwidth = Bandwidth::gbps(2);
  cfg.iterations = 24;
  cfg.strategy = *strategy;
  cfg.strategy.prophet_config.profile_iterations = 6;

  const auto result = ps::run_cluster(cfg);
  const auto& records = result.workers[0].transfers.records();

  CsvWriter csv{out_path,
                {"iteration", "grad", "direction", "bytes", "enqueued_s",
                 "started_s", "finished_s", "wait_ms", "transfer_ms"}};
  for (const auto& rec : records) {
    csv.write_row({std::to_string(rec.iteration), std::to_string(rec.grad),
                   sched::to_string(rec.kind), std::to_string(rec.bytes.count()),
                   std::to_string(rec.enqueued.to_seconds()),
                   std::to_string(rec.started.to_seconds()),
                   std::to_string(rec.finished.to_seconds()),
                   std::to_string(rec.wait().to_millis()),
                   std::to_string(rec.transfer().to_millis())});
  }
  std::printf("wrote %zu transfer records (%s, worker 0) to %s\n",
              records.size(), strategy_name.c_str(), out_path.c_str());
  std::printf("rate: %.1f samples/s/worker, GPU util %.1f%%\n",
              result.mean_rate(), 100.0 * result.mean_utilization());

  const std::string chrome_path =
      out_path.substr(0, out_path.find_last_of('.')) + ".trace.json";
  ps::export_chrome_trace(result, chrome_path);
  std::printf("wrote Chrome trace to %s (open in chrome://tracing or "
              "ui.perfetto.dev)\n",
              chrome_path.c_str());
  return 0;
}
