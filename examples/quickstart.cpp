// Quickstart: simulate distributed training of ResNet50 on a 1 PS +
// 3 worker cluster with Prophet's predictable communication scheduling,
// and print the headline numbers.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "ps/cluster.hpp"

int main() {
  using namespace prophet;

  // 1. Describe the training job: model, batch size, cluster shape.
  ps::ClusterConfig config;
  config.model = dnn::resnet50();
  config.batch = 64;
  config.num_workers = 3;
  config.worker_bandwidth = Bandwidth::gbps(3);
  config.ps_bandwidth = Bandwidth::gbps(10);
  config.iterations = 40;

  // 2. Pick the communication scheduling strategy. Prophet profiles the
  //    first iterations, then assembles gradient blocks sized to the
  //    stepwise generation pattern and the monitored bandwidth.
  config.strategy = ps::StrategyConfig::prophet();
  config.strategy.prophet_config.profile_iterations = 10;

  // 3. Run the simulation and read the results.
  const ps::ClusterResult result = ps::run_cluster(config);

  std::printf("Trained %zu iterations on %zu workers in %.2f simulated "
              "seconds\n",
              config.iterations, config.num_workers,
              result.simulated_time.to_seconds());
  std::printf("Training rate : %.1f samples/s per worker\n", result.mean_rate());
  std::printf("GPU utilization: %.1f%%\n", 100.0 * result.mean_utilization());
  const auto& worker0 = result.workers[0];
  if (worker0.prophet_activated_at.has_value()) {
    std::printf("Prophet's block assembler activated at iteration %zu (after "
                "profiling)\n",
                *worker0.prophet_activated_at);
  }
  const auto waits =
      worker0.transfers.overall(result.measure_first, result.measure_last,
                                sched::TaskKind::kPush);
  std::printf("Mean gradient wait before transfer: %.2f ms over %zu pushes\n",
              waits.mean_wait_ms, waits.count);
  return 0;
}
