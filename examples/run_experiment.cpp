// Unified experiment runner: any model x strategy x architecture x network
// configuration from the command line, with optional trace export and
// network-dynamics / fault injection.
//
//   ./build/examples/run_experiment --model resnet50 --batch 64
//       --workers 3 --gbps 2 --strategy prophet --arch ps --iterations 40
//   ./build/examples/run_experiment --arch allreduce --strategy mg-wfbp
//   ./build/examples/run_experiment --strategy prophet --trace run.trace.json
//   ./build/examples/run_experiment --dynamics fluctuate:0.4:2 --iterations 60
//   ./build/examples/run_experiment --outage 20:5:1 --straggler 0:1.5:30
//   ./build/examples/run_experiment --topology leaf-spine:2:4 --oversub 4
//       --jobs 2 --placement network-aware --interleave cassini
#include <cstdio>
#include <string>
#include <utility>

#include "allreduce/cluster.hpp"
#include "cluster/multi_job.hpp"
#include "common/flags.hpp"
#include "net/dynamics.hpp"
#include "net/topology.hpp"
#include "ps/cluster.hpp"
#include "ps/trace_export.hpp"

namespace {

std::string strategy_list() {
  std::string out;
  for (const auto& name : prophet::ps::StrategyConfig::known_names()) {
    if (!out.empty()) out += "|";
    out += name;
  }
  return out;
}

void usage() {
  std::printf(
      "run_experiment — simulate one DDNN training configuration\n"
      "\nmodel & training:\n"
      "  --model NAME       resnet18|resnet50|resnet152|inception_v3|vgg19|\n"
      "                     alexnet|mobilenet_v1|bert_base|toy_cnn (default resnet50)\n"
      "  --batch N          mini-batch per worker (default 64)\n"
      "  --workers N        worker count (default 3)\n"
      "  --iterations N     training iterations (default 40)\n"
      "  --seed N           simulation seed (default 42)\n"
      "  --asp              asynchronous parallel updates (PS only)\n"
      "\nstrategy & architecture:\n"
      "  --strategy NAME    %s\n"
      "                     (default prophet)\n"
      "  --arch NAME        ps|allreduce (default ps)\n"
      "  --profile-iters N  Prophet profiling length (default 10)\n"
      "  --trace PATH       write a Chrome trace of the run (PS only)\n"
      "\nnetwork & topology:\n"
      "  --gbps X           worker/host NIC rate in Gbit/s (default 3)\n"
      "  --ps-gbps X        PS NIC rate (default 10; star topology only)\n"
      "  --topology SPEC    star | leaf-spine[:RACKS[:HOSTS_PER_RACK]]\n"
      "                     (default star; leaf-spine defaults to 2 racks x 4)\n"
      "  --oversub X        leaf-spine oversubscription ratio (default 4)\n"
      "\nsharded parameter server (PS only):\n"
      "  --ps-shards N      stripe the key space over N PS hosts (key k on\n"
      "                     shard k%%N); each shard is an independent failure\n"
      "                     domain with its own checkpoints (default 1)\n"
      "\nmulti-job cluster scheduling (PS only):\n"
      "  --jobs N           run N copies of the configured job through one\n"
      "                     event loop on the shared fabric (default 1)\n"
      "  --placement NAME   fifo-stripe|network-aware (default network-aware)\n"
      "  --interleave NAME  none|cassini (default cassini)\n"
      "\nnetwork dynamics & fault injection (PS only):\n"
      "  --dynamics SPEC    none | fluctuate:AMP[:PERIOD_S] | step:T_S:FACTOR[:WORKER]\n"
      "                     | trace:PATH  — scripted/random bandwidth timeline\n"
      "  --outage SPEC      T_S:DUR_S[:WORKER]  — transient link outage\n"
      "                     (all workers when WORKER is omitted)\n"
      "  --straggler SPEC   WORKER:FACTOR[:T_S]  — slow one worker's compute\n"
      "  --ps-degrade SPEC  FACTOR[:T_S]  — scale the PS update CPU cost\n"
      "\ncrash & reliable-transport faults (PS only, BSP only):\n"
      "  --worker-crash SPEC T_S:DUR_S:WORKER  — kill one worker, restart it\n"
      "                     DUR_S later\n"
      "  --ps-crash SPEC    T_S:DUR_S[:shard:K]  — kill the PS (or only its\n"
      "                     shard K); failover restores the last checkpoint\n"
      "                     DUR_S later, rolling back only the crashed\n"
      "                     shard's keys while survivors keep serving\n"
      "  --checkpoint-s X   PS checkpoint period in seconds (default 2)\n"
      "  --loss SPEC        RATE[:T_S]  — transport loss probability per\n"
      "                     attempt, from T_S on (default from the start)\n"
      "  --retry-budget N   retries per transfer before aborting (default 16)\n",
      strategy_list().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prophet;

  const auto flags = Flags::parse(argc, argv);
  if (!flags.has_value() || flags->get("help", false)) {
    usage();
    return flags.has_value() ? 0 : 1;
  }

  const std::string strategy_name = flags->get("strategy", std::string{"prophet"});
  const auto strategy = ps::StrategyConfig::from_name(strategy_name);
  if (!strategy.has_value()) {
    std::fprintf(stderr, "unknown --strategy '%s' (want %s)\n\n",
                 strategy_name.c_str(), strategy_list().c_str());
    usage();
    return 1;
  }

  ps::ClusterConfig cfg;
  cfg.model = dnn::model_by_name(flags->get("model", std::string{"resnet50"}));
  cfg.batch = static_cast<int>(flags->get("batch", std::int64_t{64}));
  cfg.num_workers = static_cast<std::size_t>(flags->get("workers", std::int64_t{3}));
  cfg.worker_bandwidth = Bandwidth::gbps(flags->get("gbps", 3.0));
  cfg.ps_bandwidth = Bandwidth::gbps(flags->get("ps-gbps", 10.0));
  // --topology switches the config to the explicit TopologySpec API; without
  // it the legacy flat-bandwidth star shims stay in effect.
  if (flags->has("topology")) {
    std::string topo_error;
    auto spec = net::TopologySpec::from_cli(
        flags->get("topology", std::string{"star"}), &topo_error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "%s\n", topo_error.c_str());
      return 1;
    }
    if (spec->kind == net::TopologySpec::Kind::kStar) {
      *spec = net::TopologySpec::star(cfg.worker_bandwidth, cfg.ps_bandwidth);
    } else {
      spec->host_bandwidth = cfg.worker_bandwidth;
      spec->oversubscription = flags->get("oversub", 4.0);
    }
    cfg.topology = *spec;
  }
  cfg.ps_shards = static_cast<std::size_t>(flags->get("ps-shards", std::int64_t{1}));
  cfg.iterations = static_cast<std::size_t>(flags->get("iterations", std::int64_t{40}));
  cfg.seed = static_cast<std::uint64_t>(flags->get("seed", std::int64_t{42}));
  cfg.strategy = *strategy;
  cfg.strategy.prophet_config.profile_iterations =
      static_cast<std::size_t>(flags->get("profile-iters", std::int64_t{10}));
  if (flags->get("asp", false)) cfg.sync = ps::SyncMode::kAsp;

  // Dynamics timeline: --dynamics builds the base plan, the targeted fault
  // flags append to it, and the merged plan is re-sorted before the run.
  std::string dyn_error;
  auto plan = net::DynamicsPlan::from_spec(
      flags->get("dynamics", std::string{"none"}), cfg.seed, cfg.metrics_horizon,
      cfg.num_workers, &dyn_error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("outage") &&
      !plan->add_outage_spec(flags->get("outage", std::string{}), &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("straggler") &&
      !plan->add_straggler_spec(flags->get("straggler", std::string{}), &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("ps-degrade") &&
      !plan->add_ps_degrade_spec(flags->get("ps-degrade", std::string{}),
                                 &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("worker-crash") &&
      !plan->add_worker_crash_spec(flags->get("worker-crash", std::string{}),
                                   &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("ps-crash") &&
      !plan->add_ps_crash_spec(flags->get("ps-crash", std::string{}), &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  if (flags->has("loss") &&
      !plan->add_loss_spec(flags->get("loss", std::string{}), &dyn_error)) {
    std::fprintf(stderr, "%s\n", dyn_error.c_str());
    return 1;
  }
  plan->sort();
  cfg.dynamics = std::move(*plan);
  cfg.checkpoint_period = Duration::from_seconds(flags->get("checkpoint-s", 2.0));
  cfg.reliability.retry_budget =
      static_cast<std::size_t>(flags->get("retry-budget", std::int64_t{16}));

  const std::string arch = flags->get("arch", std::string{"ps"});
  std::printf("%s | %s | %zu workers | %s | batch %d | %zu iterations",
              arch.c_str(), cfg.model.name().c_str(), cfg.num_workers,
              format_bandwidth(cfg.worker_bandwidth).c_str(), cfg.batch,
              cfg.iterations);
  if (!cfg.dynamics.empty()) {
    std::printf(" | %zu dynamics events", cfg.dynamics.events.size());
  }
  std::printf("\n");

  if (arch == "allreduce") {
    if (!cfg.dynamics.empty()) {
      std::fprintf(stderr,
                   "warning: dynamics/fault flags only apply to --arch ps; "
                   "the allreduce ring ignores them\n");
    }
    const auto result = ar::run_allreduce(cfg);
    std::printf("[%s/ring] rate %.2f samples/s/worker, GPU utilization %.1f%%\n",
                strategy_name.c_str(), result.mean_rate(),
                100.0 * result.mean_utilization());
    return 0;
  }
  if (arch != "ps") {
    std::fprintf(stderr, "unknown --arch '%s' (want ps|allreduce)\n", arch.c_str());
    return 1;
  }

  const auto jobs = static_cast<std::size_t>(flags->get("jobs", std::int64_t{1}));
  if (jobs > 1) {
    const std::string placement_name =
        flags->get("placement", std::string{"network-aware"});
    const auto placement = cluster::placement_from_name(placement_name);
    if (!placement.has_value()) {
      std::fprintf(stderr,
                   "unknown --placement '%s' (want fifo-stripe|network-aware)\n",
                   placement_name.c_str());
      return 1;
    }
    const std::string interleave_name =
        flags->get("interleave", std::string{"cassini"});
    const auto interleave = cluster::interleave_from_name(interleave_name);
    if (!interleave.has_value()) {
      std::fprintf(stderr, "unknown --interleave '%s' (want none|cassini)\n",
                   interleave_name.c_str());
      return 1;
    }
    cluster::MultiJobConfig mcfg;
    mcfg.topology = cfg.resolved_topology();
    mcfg.placement = *placement;
    mcfg.interleave = *interleave;
    for (std::size_t j = 0; j < jobs; ++j) {
      cluster::JobSpec job;
      job.name = "job" + std::to_string(j);
      job.config = cfg;
      job.config.seed = cfg.seed + j;  // decorrelate per-job jitter
      mcfg.jobs.push_back(std::move(job));
    }
    const cluster::MultiJobResult mres = cluster::run_multi_job(mcfg);
    std::printf("[%s/ps x%zu jobs] %s placement, %s interleave\n",
                strategy_name.c_str(), jobs, cluster::placement_name(*placement),
                cluster::interleave_name(*interleave));
    for (const auto& job : mres.jobs) {
      std::printf(
          "  %s: start +%.1f ms, finished at %.1f ms, rate %.2f samples/s/worker\n",
          job.name.c_str(), job.start_offset.to_seconds() * 1e3,
          job.finish_time.to_seconds() * 1e3, job.result.mean_rate());
    }
    std::printf("makespan %.1f ms, spine traffic %.1f MiB\n",
                mres.makespan.to_seconds() * 1e3,
                static_cast<double>(mres.spine_bytes) / (1024.0 * 1024.0));
    return 0;
  }

  const auto result = ps::run_cluster(cfg);
  std::printf("[%s/ps] rate %.2f samples/s/worker, GPU utilization %.1f%%\n",
              strategy_name.c_str(), result.mean_rate(),
              100.0 * result.mean_utilization());
  const auto waits = result.workers[0].transfers.overall(
      result.measure_first, result.measure_last, sched::TaskKind::kPush);
  std::printf("mean gradient wait %.2f ms, mean transfer %.2f ms (%zu pushes)\n",
              waits.mean_wait_ms, waits.mean_transfer_ms, waits.count);
  if (result.workers[0].prophet_replans > 0) {
    std::printf("Prophet re-planned %zu times on monitored bandwidth drift\n",
                result.workers[0].prophet_replans);
  }
  std::size_t retries = 0;
  std::size_t crash_events = 0;
  for (const auto& w : result.workers) {
    for (const auto& fault : w.transfers.faults()) {
      if (fault.kind == metrics::FaultKind::kTransportRetry) {
        ++retries;
      } else {
        ++crash_events;
      }
    }
  }
  if (retries + crash_events > 0) {
    std::printf(
        "faults survived: %zu transport retries, %zu crash/recovery events "
        "(%zu BSP invariant checks clean)\n",
        retries, crash_events, result.audit_checks);
  }
  if (flags->has("trace")) {
    const std::string path = flags->get("trace", std::string{"run.trace.json"});
    ps::export_chrome_trace(result, path);
    std::printf("Chrome trace written to %s\n", path.c_str());
  }
  return 0;
}
