// Compare all four communication scheduling strategies on a configurable
// workload — the paper's core experiment, as a CLI.
//
//   ./build/examples/compare_schedulers [model] [batch] [workers] [gbps]
//   ./build/examples/compare_schedulers resnet50 64 3 3
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "exec/executor.hpp"
#include "ps/cluster.hpp"

int main(int argc, char** argv) {
  using namespace prophet;

  const std::string model_name = argc > 1 ? argv[1] : "resnet50";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::size_t workers = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 3;
  const double gbps = argc > 4 ? std::atof(argv[4]) : 3.0;

  struct Contender {
    std::string label;
    ps::StrategyConfig strategy;
  };
  const std::vector<Contender> contenders{
      {"mxnet-fifo", ps::StrategyConfig::fifo()},
      {"p3 (4 MB partitions)", ps::StrategyConfig::p3()},
      {"bytescheduler (autotuned credit)",
       ps::StrategyConfig::bytescheduler(Bytes::mib(4), true)},
      {"prophet", ps::StrategyConfig::prophet()},
  };

  std::vector<ps::ClusterConfig> configs;
  for (const auto& contender : contenders) {
    ps::ClusterConfig cfg;
    cfg.model = dnn::model_by_name(model_name);
    cfg.batch = batch;
    cfg.num_workers = workers;
    cfg.worker_bandwidth = Bandwidth::gbps(gbps);
    cfg.ps_bandwidth = Bandwidth::gbps(10);
    cfg.iterations = 40;
    cfg.strategy = contender.strategy;
    cfg.strategy.prophet_config.profile_iterations = 8;
    configs.push_back(std::move(cfg));
  }

  const std::function<ps::ClusterResult(const ps::ClusterConfig&)> runner =
      [](const ps::ClusterConfig& cfg) { return ps::run_cluster(cfg); };
  const auto results =
      exec::parallel_map<ps::ClusterConfig, ps::ClusterResult>(configs, runner);

  std::printf("%s, batch %d, %zu workers, %.1f Gbps worker NICs:\n",
              model_name.c_str(), batch, workers, gbps);
  TextTable table{{"strategy", "rate (samples/s)", "GPU util", "mean push wait (ms)"}};
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    const auto& r = results[i];
    const auto waits = r.workers[0].transfers.overall(
        r.measure_first, r.measure_last, sched::TaskKind::kPush);
    table.add_row({contenders[i].label, TextTable::num(r.mean_rate(), 4),
                   TextTable::pct(r.mean_utilization()),
                   TextTable::num(waits.mean_wait_ms, 3)});
  }
  table.print(std::cout);
  return 0;
}
