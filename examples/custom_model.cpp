// Define a custom DNN with the ModelBuilder API, inspect its stepwise
// gradient-generation pattern, and see the gradient blocks Algorithm 1
// assembles for it — the workflow a user follows to bring their own model.
//
//   ./build/examples/custom_model
#include <cstdio>

#include "core/block_planner.hpp"
#include "dnn/iteration_model.hpp"
#include "dnn/model_builder.hpp"
#include "dnn/stepwise.hpp"
#include "ps/cluster.hpp"

int main() {
  using namespace prophet;

  // A small VGG-ish network for 64x64 inputs: three conv stages + a head.
  dnn::ModelBuilder builder{"mini_vgg", 64, 3};
  builder.conv("stage0.conv0", 32, 3).conv("stage0.conv1", 32, 3).pool(2, 2);
  builder.begin_stage();
  builder.conv("stage1.conv0", 64, 3).conv("stage1.conv1", 64, 3).pool(2, 2);
  builder.begin_stage();
  builder.conv("stage2.conv0", 128, 3).conv("stage2.conv1", 128, 3).pool(2, 2);
  builder.begin_stage();
  builder.global_pool();
  builder.fc("head", 100);
  const dnn::ModelSpec model = std::move(builder).build();

  std::printf("%s: %.2f M parameters in %zu tensors, %.2f GFLOPs forward\n",
              model.name().c_str(),
              static_cast<double>(model.parameter_count()) / 1e6,
              model.tensor_count(), model.total_fwd_gflops());

  // The stepwise pattern this model produces on the calibrated GPU.
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 128};
  const auto timing = iteration.nominal();
  const auto blocks = dnn::detect_blocks(timing.ready_offset);
  std::printf("\nStepwise generation pattern (batch 128):\n");
  for (const auto& block : blocks) {
    std::printf("  gradients {%zu - %zu} ready at %.2f ms\n", block.first,
                block.last, block.ready.to_millis());
  }

  // The blocks Algorithm 1 would assemble at 1 Gbps.
  core::GradientProfile profile;
  profile.ready = timing.ready_offset;
  for (const auto& tensor : model.tensors()) profile.sizes.push_back(tensor.bytes);
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  const auto plan =
      core::BlockPlanner{net::TcpCostModel{}}.plan(profile, Bandwidth::gbps(1));
  std::printf("\nAlgorithm 1 plan at 1 Gbps (%zu transfer tasks):\n",
              plan.tasks.size());
  for (const auto& task : plan.tasks) {
    std::printf("  t=%7.2f ms  block of %zu gradient(s): ", task.start.to_millis(),
                task.grads.size());
    Bytes bytes{};
    for (std::size_t g : task.grads) bytes += profile.sizes[g];
    std::printf("g%zu..g%zu (%s)\n", task.grads.front(), task.grads.back(),
                format_bytes(bytes).c_str());
  }

  // And a full training simulation of the custom model with Prophet.
  ps::ClusterConfig cfg;
  cfg.model = model;
  cfg.batch = 128;
  cfg.num_workers = 2;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.iterations = 30;
  cfg.strategy = ps::StrategyConfig::prophet();
  cfg.strategy.prophet_config.profile_iterations = 6;
  const auto result = ps::run_cluster(cfg);
  std::printf("\nSimulated training: %.1f samples/s per worker at %.1f%% GPU "
              "utilization\n",
              result.mean_rate(), 100.0 * result.mean_utilization());
  return 0;
}
