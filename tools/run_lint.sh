#!/usr/bin/env bash
# Convenience wrapper around prophet_lint: builds the tool if needed, then
# runs it over the standard paths from the repo root.
#
#   tools/run_lint.sh                 # lint src tools bench tests examples
#   tools/run_lint.sh src/core        # lint a subset
#   BUILD_DIR=build-asan tools/run_lint.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-build}"
lint_bin="${repo_root}/${build_dir}/tools/prophet_lint"

if [[ ! -x "${lint_bin}" ]]; then
  if [[ ! -d "${repo_root}/${build_dir}" ]]; then
    echo "run_lint.sh: configuring ${build_dir}/" >&2
    cmake -S "${repo_root}" -B "${repo_root}/${build_dir}" >/dev/null
  fi
  echo "run_lint.sh: building prophet_lint" >&2
  cmake --build "${repo_root}/${build_dir}" --target prophet_lint >/dev/null
fi

paths=("$@")
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src tools bench tests examples)
fi

exec "${lint_bin}" --root "${repo_root}" "${paths[@]}"
