// Speedup ratchet for the engine-scaling bench (bench/scale.cpp).
//
// Compares a freshly produced BENCH_scale_smoke.json against the committed
// baseline (bench_results/BENCH_scale_smoke_baseline.json) and fails when any
// bench cell's full/incremental speedup drops below MIN_RATIO x its baseline
// value. The speedup is a wall-time *ratio of two arms run back-to-back on
// the same machine*, so it is paired against machine speed — a CI runner that
// is uniformly 3x slower reports the same ratio, while a regression that
// pushes the incremental engine off its rate-group fast path (speedup
// collapsing toward 1.0x) trips the gate regardless of the runner.
//
// Only cells carrying both "workers" and "speedup" participate: the "sweep"
// section's executor speedup depends on the runner's core count, and
// incremental-only cells (star_4096) have no full arm to ratio against. A
// baseline cell missing from the current run is a failure too — a silently
// dropped cell must not pass the gate.
//
// Usage: scale_ratchet BASELINE.json CURRENT.json [MIN_RATIO]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using prophet::bench::BenchJson;
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: scale_ratchet BASELINE.json CURRENT.json [MIN_RATIO]\n");
    return 2;
  }
  const std::string baseline_path = argv[1];
  const std::string current_path = argv[2];
  const double min_ratio = argc == 4 ? std::strtod(argv[3], nullptr) : 0.9;
  if (!(min_ratio > 0.0)) {
    std::fprintf(stderr, "scale_ratchet: bad MIN_RATIO\n");
    return 2;
  }

  const BenchJson baseline{baseline_path};
  const BenchJson current{current_path};

  bool ok = true;
  int cells = 0;
  std::printf("  %-16s %10s %10s %8s\n", "cell", "baseline", "current", "ratio");
  for (const std::string& cell : baseline.section_names()) {
    const double base = baseline.get(cell, "speedup");
    if (std::isnan(baseline.get(cell, "workers")) || std::isnan(base)) continue;
    ++cells;
    const double cur = current.get(cell, "speedup");
    if (std::isnan(cur)) {
      std::printf("  %-16s %9.2fx %10s %8s  FAIL (cell missing)\n",
                  cell.c_str(), base, "-", "-");
      ok = false;
      continue;
    }
    const double ratio = cur / base;
    const bool pass = ratio >= min_ratio;
    std::printf("  %-16s %9.2fx %9.2fx %7.2f  %s\n", cell.c_str(), base, cur,
                ratio, pass ? "ok" : "FAIL");
    if (!pass) ok = false;
  }
  if (cells == 0) {
    std::fprintf(stderr, "scale_ratchet: no ratchetable cells in %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "scale_ratchet: speedup regressed below %.2fx of the committed "
                 "baseline (%s)\n",
                 min_ratio, baseline_path.c_str());
  }
  return ok ? 0 : 1;
}
