// One-shot capture of pre-optimization engine outputs. Compiled ad hoc
// against the current build to produce the reference constants baked into
// tests/test_engine_perf_invariants.cpp. Not part of the build.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/block_planner.hpp"
#include "core/local_search.hpp"
#include "core/perf_model.hpp"
#include "dnn/iteration_model.hpp"
#include "dnn/model_zoo.hpp"
#include "dnn/stepwise.hpp"
#include "net/flow_network.hpp"
#include "ps/cluster.hpp"
#include "sim/simulator.hpp"

namespace prophet {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t hash_schedule(const core::Schedule& s) {
  std::uint64_t h = kFnvSeed;
  for (const auto& t : s.tasks) {
    h = fnv1a(h, static_cast<std::uint64_t>(t.start.count_nanos()));
    h = fnv1a(h, t.grads.size());
    for (std::size_t g : t.grads) h = fnv1a(h, g);
  }
  return h;
}

std::uint64_t hash_breakdown(const core::WaitTimeBreakdown& b) {
  std::uint64_t h = kFnvSeed;
  h = fnv1a(h, static_cast<std::uint64_t>(b.t_wait.count_nanos()));
  h = fnv1a(h, static_cast<std::uint64_t>(b.span.count_nanos()));
  for (auto d : b.update_done) h = fnv1a(h, static_cast<std::uint64_t>(d.count_nanos()));
  for (auto d : b.forward_done) h = fnv1a(h, static_cast<std::uint64_t>(d.count_nanos()));
  return h;
}

core::GradientProfile model_profile(const dnn::ModelSpec& model) {
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 64};
  const auto timing = iteration.nominal();
  core::GradientProfile profile;
  profile.ready = timing.ready_offset;
  for (const auto& tensor : iteration.model().tensors()) {
    profile.sizes.push_back(tensor.bytes);
  }
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  return profile;
}

void capture_planner(const char* name, const dnn::ModelSpec& model) {
  const auto profile = model_profile(model);
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 64};
  const auto timing = iteration.nominal();
  const core::PerfModel pm{profile, timing.fwd, Bandwidth::gbps(3), net::TcpCostModel{}};
  const auto greedy = core::BlockPlanner{net::TcpCostModel{}}.plan(profile, Bandwidth::gbps(3));
  std::printf("%s plan_tasks=%zu plan_hash=%lluull\n", name, greedy.tasks.size(),
              (unsigned long long)hash_schedule(greedy));
  const auto eval = pm.evaluate(core::LocalSearchPlanner::retime(greedy, pm));
  std::printf("%s greedy_twait=%lld greedy_span=%lld eval_hash=%lluull\n", name,
              (long long)eval.t_wait.count_nanos(), (long long)eval.span.count_nanos(),
              (unsigned long long)hash_breakdown(eval));
  const core::LocalSearchPlanner planner{8};
  const auto refined = planner.refine(greedy, pm);
  std::printf(
      "%s refined_twait=%lld refined_span=%lld applied=%zu evaluated=%zu "
      "sched_hash=%lluull bd_hash=%lluull tasks=%zu\n",
      name, (long long)refined.breakdown.t_wait.count_nanos(),
      (long long)refined.breakdown.span.count_nanos(), refined.moves_applied,
      refined.moves_evaluated, (unsigned long long)hash_schedule(refined.schedule),
      (unsigned long long)hash_breakdown(refined.breakdown), refined.schedule.tasks.size());
}

// Refinement from deliberately poor initial schedules, so the accept/commit
// path of refine() is exercised (BlockPlanner output is already optimal).
void capture_refine_hard(const char* name, const dnn::ModelSpec& model,
                         std::size_t chunk) {
  const auto profile = model_profile(model);
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 64};
  const auto timing = iteration.nominal();
  const core::PerfModel pm{profile, timing.fwd, Bandwidth::gbps(3), net::TcpCostModel{}};
  core::Schedule initial;
  const std::size_t n = profile.gradient_count();
  for (std::size_t g = 0; g < n; g += chunk) {
    core::ScheduledTask task;
    for (std::size_t k = g; k < std::min(n, g + chunk); ++k) task.grads.push_back(k);
    initial.tasks.push_back(std::move(task));
  }
  const core::LocalSearchPlanner planner{16};
  const auto refined = planner.refine(initial, pm);
  std::printf(
      "hard %s chunk=%zu twait=%lld span=%lld applied=%zu evaluated=%zu "
      "sched_hash=%lluull bd_hash=%lluull tasks=%zu\n",
      name, chunk, (long long)refined.breakdown.t_wait.count_nanos(),
      (long long)refined.breakdown.span.count_nanos(), refined.moves_applied,
      refined.moves_evaluated, (unsigned long long)hash_schedule(refined.schedule),
      (unsigned long long)hash_breakdown(refined.breakdown), refined.schedule.tasks.size());
}

// Random profiles through the same path, so odd ready/size patterns (ties,
// zero gaps) are pinned too.
void capture_refine_random(std::uint64_t seed, std::size_t n) {
  Rng rng{seed};
  std::vector<Duration> ready(n);
  std::vector<Bytes> sizes(n);
  Duration clock{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = n - 1 - step;
    if (step == 0 || rng.bernoulli(0.6)) clock += Duration::millis(rng.uniform_int(2, 25));
    ready[idx] = clock;
    sizes[idx] = Bytes::kib(rng.uniform_int(16, 4096));
  }
  core::GradientProfile profile;
  profile.ready = ready;
  profile.sizes = sizes;
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  std::vector<Duration> fwd(n, Duration::millis(2));
  const core::PerfModel pm{profile, fwd, Bandwidth::gbps(1), net::TcpCostModel{}};
  core::Schedule initial;
  for (std::size_t g = 0; g < n; ++g) {
    core::ScheduledTask task;
    task.grads.push_back(g);
    initial.tasks.push_back(std::move(task));
  }
  const core::LocalSearchPlanner planner{32};
  const auto refined = planner.refine(initial, pm);
  std::printf(
      "random seed=%llu n=%zu twait=%lld span=%lld applied=%zu evaluated=%zu "
      "sched_hash=%lluull bd_hash=%lluull tasks=%zu\n",
      (unsigned long long)seed, n, (long long)refined.breakdown.t_wait.count_nanos(),
      (long long)refined.breakdown.span.count_nanos(), refined.moves_applied,
      refined.moves_evaluated, (unsigned long long)hash_schedule(refined.schedule),
      (unsigned long long)hash_breakdown(refined.breakdown), refined.schedule.tasks.size());
}

void capture_sim() {
  sim::Simulator sim;
  Rng rng{12345};
  std::vector<sim::EventHandle> handles;
  std::uint64_t work = 0;
  for (int i = 0; i < 5000; ++i) {
    auto h = sim.schedule_after(Duration::micros(rng.uniform_int(0, 100000)),
                                [&work] { ++work; });
    if (rng.bernoulli(0.25)) handles.push_back(h);
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  sim::EventHandle periodic = sim.schedule_periodic(Duration::micros(700), [&](TimePoint) {
    ++work;
    if (work > 5500) periodic.cancel();
  });
  sim.schedule_after(Duration::millis(3), [&] {
    sim.schedule_after(Duration::millis(1), [&work] { work += 10; });
  });
  sim.run();
  std::printf("sim fired=%llu work=%llu now=%lld\n", (unsigned long long)sim.events_fired(),
              (unsigned long long)work, (long long)sim.now().count_nanos());
}

void capture_flows() {
  sim::Simulator sim;
  net::FlowNetwork net{sim, net::TcpCostModel{}};
  const auto ps = net.add_node("ps", Bandwidth::gbps(10), Bandwidth::gbps(10));
  std::vector<net::NodeId> workers;
  for (int i = 0; i < 4; ++i)
    workers.push_back(net.add_node("w", Bandwidth::gbps(5), Bandwidth::gbps(5)));
  std::uint64_t h = kFnvSeed;
  int done = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t w = 0; w < workers.size(); ++w) {
      net.start_flow(workers[w], ps, Bytes::mib(static_cast<std::int64_t>(1 + w)),
                     [&](net::FlowId id) {
                       ++done;
                       h = fnv1a(h, id);
                       h = fnv1a(h, static_cast<std::uint64_t>(sim.now().count_nanos()));
                     });
      net.start_flow(ps, workers[w], Bytes::kib(512), [&](net::FlowId id) {
        ++done;
        h = fnv1a(h, id);
        h = fnv1a(h, static_cast<std::uint64_t>(sim.now().count_nanos()));
      });
    }
    sim.schedule_after(Duration::millis(1),
                       [&] { net.set_capacity(ps, net::Direction::kRx, Bandwidth::gbps(8)); });
    sim.schedule_after(Duration::millis(2), [&] { net.set_link_up(workers[1], false); });
    sim.schedule_after(Duration::millis(4), [&] { net.set_link_up(workers[1], true); });
    sim.run();
    net.set_capacity(ps, net::Direction::kRx, Bandwidth::gbps(10));
  }
  std::printf("flows done=%d hash=%lluull fired=%llu now=%lld tb=%lld busy=%lld\n", done,
              (unsigned long long)h, (unsigned long long)sim.events_fired(),
              (long long)sim.now().count_nanos(),
              (long long)net.total_bytes(ps, net::Direction::kRx),
              (long long)net.busy_time(ps, net::Direction::kRx).count_nanos());
}

void capture_cluster(const char* name, const ps::StrategyConfig& strategy) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::resnet50();
  cfg.num_workers = 3;
  cfg.batch = 64;
  cfg.iterations = 10;
  cfg.worker_bandwidth = Bandwidth::gbps(3);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  const auto result = ps::run_cluster(cfg, 5);
  std::printf("cluster %s events=%llu sim_ns=%lld rate_centi=%lld\n", name,
              (unsigned long long)result.events_fired,
              (long long)result.simulated_time.count_nanos(),
              (long long)(result.mean_rate() * 100.0));
}

}  // namespace
}  // namespace prophet

int main() {
  prophet::capture_planner("resnet50", prophet::dnn::resnet50());
  prophet::capture_planner("resnet152", prophet::dnn::resnet152());
  prophet::capture_refine_hard("resnet50", prophet::dnn::resnet50(), 1);
  prophet::capture_refine_hard("resnet152", prophet::dnn::resnet152(), 4);
  prophet::capture_refine_random(7, 48);
  prophet::capture_refine_random(99, 64);
  prophet::capture_sim();
  prophet::capture_flows();
  prophet::capture_cluster("fifo", prophet::ps::StrategyConfig::fifo());
  prophet::capture_cluster("prophet", prophet::ps::StrategyConfig::prophet());
  return 0;
}
