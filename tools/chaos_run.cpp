// Deterministic chaos harness: runs every scheduling strategy under
// seed-derived randomized fault plans (transport loss, a worker crash, and
// periodically a PS failover) with the BSP invariant auditor always on, and
// replays each configuration to prove the fault timeline is bit-identical
// per seed.
//
// Exit status is the contract: 0 means every run finished all iterations,
// no BSP invariant tripped (the auditor aborts the process on violation),
// every run observed its injected faults, and every replay fingerprint
// matched. A second block of cells runs two jobs on one shared
// oversubscribed leaf-spine fabric and holds the combined run to the same
// replay-fingerprint bar. Wired into ctest under the `chaos` label.
//
// Every (strategy × seed) and multijob cell is independent, so the matrix
// fans out across cores through exec::parallel_for_index; each cell buffers
// its own output and the buffers are emitted in canonical cell order after
// the barrier, so stdout/stderr and the exit status are byte-identical at
// any --threads value. Unlike the old serial loop, a failing cell no longer
// short-circuits the matrix: every failure is reported.
//
// Usage: chaos_run [--seeds N] [--iterations N] [--threads N] [--verbose]
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/multi_job.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "dnn/model_zoo.hpp"
#include "exec/executor.hpp"
#include "metrics/transfer_log.hpp"
#include "ps/cluster.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

// Collapses a run into one value: simulation totals plus every per-worker
// iteration start, transfer record and fault event. Two runs of the same
// config must produce the same fingerprint or determinism is broken.
std::uint64_t fingerprint(const ps::ClusterResult& result) {
  std::uint64_t h = kFnvSeed;
  h = fnv1a(h, static_cast<std::uint64_t>(result.simulated_time.count_nanos()));
  h = fnv1a(h, result.events_fired);
  h = fnv1a(h, result.audit_checks);
  for (const auto& w : result.workers) {
    h = fnv1a(h, w.iterations_completed);
    for (std::size_t i = 0; i < w.training.iterations_started(); ++i) {
      h = fnv1a(h, static_cast<std::uint64_t>(
                       w.training.iteration_start(i).count_nanos()));
    }
    h = fnv1a(h, w.transfers.records().size());
    for (const auto& rec : w.transfers.records()) {
      h = fnv1a(h, static_cast<std::uint64_t>(rec.finished.count_nanos()));
      h = fnv1a(h, rec.attempts);
    }
    for (const auto& fault : w.transfers.faults()) {
      h = fnv1a(h, static_cast<std::uint64_t>(fault.kind));
      h = fnv1a(h, static_cast<std::uint64_t>(fault.at.count_nanos()));
    }
  }
  return h;
}

std::size_t total_faults(const ps::ClusterResult& result) {
  std::size_t n = 0;
  for (const auto& w : result.workers) n += w.transfers.faults().size();
  return n;
}

std::size_t total_retries(const ps::ClusterResult& result) {
  std::size_t n = 0;
  for (const auto& w : result.workers) {
    for (const auto& fault : w.transfers.faults()) {
      if (fault.kind == metrics::FaultKind::kTransportRetry) ++n;
    }
  }
  return n;
}

// printf into a std::string, appending.
void appendf(std::string& s, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& s, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) s.append(buf, static_cast<std::size_t>(n));
}

// One strategy x seed cell: a small 2-worker toy_cnn job with a fault plan
// drawn from the seed. All fault instants stay under ~200 ms so they land
// mid-training for every strategy (the fastest finishes in ~260 ms). The
// shard count also derives from the seed, so the matrix sweeps single-PS,
// 2-shard and 3-shard tiers; sharded cells lose one randomly chosen shard
// (partial rollback), single-PS cells periodically lose the whole tier.
ps::ClusterConfig chaos_config(const ps::StrategyConfig& strategy,
                               std::uint64_t seed, std::size_t iterations) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 2;
  cfg.batch = 32;
  cfg.iterations = iterations;
  cfg.seed = seed;
  cfg.ps_shards = 1 + seed % 3;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  cfg.reliability.retry_budget = 64;
  cfg.checkpoint_period = 40_ms;

  // The plan RNG is independent of the simulation seed stream on purpose:
  // the same seed must drive both the fault plan and the run.
  Rng plan{seed ^ 0xc4a05u};
  cfg.dynamics.loss_rate(Duration::millis(plan.uniform_int(5, 40)),
                         plan.uniform(0.02, 0.12));
  cfg.dynamics.worker_crash(
      Duration::millis(plan.uniform_int(50, 110)),
      Duration::millis(plan.uniform_int(10, 40)),
      static_cast<std::size_t>(plan.uniform_int(0, 1)));
  if (cfg.ps_shards == 1) {
    cfg.dynamics.ps_crash(Duration::millis(plan.uniform_int(160, 190)),
                          Duration::millis(plan.uniform_int(15, 35)));
  } else {
    cfg.dynamics.ps_shard_crash(
        Duration::millis(plan.uniform_int(160, 190)),
        Duration::millis(plan.uniform_int(15, 35)),
        static_cast<std::size_t>(
            plan.uniform_int(0, static_cast<std::int64_t>(cfg.ps_shards) - 1)));
  }
  return cfg;
}

// What one cell hands back to the merge step: buffered stdout/stderr text
// plus the aggregates the matrix-level checks need.
struct ChaosCell {
  std::string out;
  std::string err;
  bool ok = true;
  std::size_t retries = 0;
};

ChaosCell run_matrix_cell(const ps::StrategyConfig& strategy, std::uint64_t seed,
                          std::size_t iterations, bool verbose) {
  ChaosCell cell;
  const auto cfg = chaos_config(strategy, seed, iterations);
  const auto first = ps::run_cluster(cfg, 1);
  const auto replay = ps::run_cluster(cfg, 1);
  const std::uint64_t fp = fingerprint(first);
  if (fp != fingerprint(replay)) {
    appendf(cell.err, "chaos_run: REPLAY DIVERGED strategy=%s seed=%llu\n",
            strategy.name().c_str(), static_cast<unsigned long long>(seed));
    cell.ok = false;
    return cell;
  }
  for (const auto& w : first.workers) {
    if (w.iterations_completed != iterations) {
      appendf(cell.err,
              "chaos_run: INCOMPLETE strategy=%s seed=%llu worker=%zu "
              "finished %zu/%zu iterations\n",
              strategy.name().c_str(), static_cast<unsigned long long>(seed),
              w.id, w.iterations_completed, iterations);
      cell.ok = false;
      return cell;
    }
  }
  // Every plan contains at least a worker crash; a run that recorded no
  // fault means the injection silently missed the training window.
  if (total_faults(first) == 0) {
    appendf(cell.err, "chaos_run: NO FAULTS LANDED strategy=%s seed=%llu\n",
            strategy.name().c_str(), static_cast<unsigned long long>(seed));
    cell.ok = false;
    return cell;
  }
  if (cfg.dynamics.has_ps_crash()) {
    for (const auto& w : first.workers) {
      std::size_t failovers = 0;
      for (const auto& fault : w.transfers.faults()) {
        if (fault.kind == metrics::FaultKind::kPsFailover) ++failovers;
      }
      if (failovers != 1) {
        appendf(cell.err,
                "chaos_run: PS FAILOVER MISSED strategy=%s seed=%llu "
                "worker=%zu saw %zu failovers\n",
                strategy.name().c_str(), static_cast<unsigned long long>(seed),
                w.id, failovers);
        cell.ok = false;
        return cell;
      }
    }
  }
  cell.retries = total_retries(first);
  if (verbose) {
    appendf(cell.out,
            "%-14s seed=%-3llu time=%.3fs faults=%zu retries=%zu "
            "audit_checks=%zu fp=%016llx\n",
            strategy.name().c_str(), static_cast<unsigned long long>(seed),
            first.simulated_time.to_seconds(), total_faults(first),
            total_retries(first), first.audit_checks,
            static_cast<unsigned long long>(fp));
  }
  return cell;
}

// Multi-job cell: two toy_cnn jobs sharing one oversubscribed leaf-spine
// spine inside a single event loop, run twice per seed and fingerprint-
// compared — cross-job contention through the shared fabric must replay
// bit-identically just like the single-job faults above.
std::uint64_t multijob_fingerprint(const cluster::MultiJobResult& result) {
  std::uint64_t h = kFnvSeed;
  h = fnv1a(h, static_cast<std::uint64_t>(result.makespan.count_nanos()));
  h = fnv1a(h, result.events_fired);
  h = fnv1a(h, static_cast<std::uint64_t>(result.spine_bytes));
  for (const auto& job : result.jobs) {
    h = fnv1a(h, static_cast<std::uint64_t>(job.finish_time.count_nanos()));
    h = fnv1a(h, static_cast<std::uint64_t>(job.start_offset.count_nanos()));
    h = fnv1a(h, fingerprint(job.result));
  }
  return h;
}

ChaosCell run_multijob_cell(std::uint64_t seed, std::size_t iterations,
                            bool verbose) {
  ChaosCell cell;
  cluster::MultiJobConfig cfg;
  cfg.topology = net::TopologySpec::leaf_spine(
      /*racks=*/2, /*hosts_per_rack=*/2, Bandwidth::gbps(1),
      /*oversubscription=*/4.0);
  // FIFO striping forces both jobs across the 500 Mbps spine: the cell
  // exercises cross-job link contention, not placement quality.
  cfg.placement = cluster::PlacementPolicy::kFifoStripe;
  cfg.interleave = cluster::InterleavePolicy::kNone;
  for (std::size_t j = 0; j < 2; ++j) {
    cluster::JobSpec job;
    job.config.model = dnn::toy_cnn();
    job.config.num_workers = 1;
    job.config.batch = 32;
    job.config.iterations = iterations;
    job.config.seed = seed + j;
    job.config.strategy = ps::StrategyConfig::fifo();
    cfg.jobs.push_back(std::move(job));
  }
  const auto first = cluster::run_multi_job(cfg);
  const auto replay = cluster::run_multi_job(cfg);
  const std::uint64_t fp = multijob_fingerprint(first);
  if (fp != multijob_fingerprint(replay)) {
    appendf(cell.err, "chaos_run: MULTIJOB REPLAY DIVERGED seed=%llu\n",
            static_cast<unsigned long long>(seed));
    cell.ok = false;
    return cell;
  }
  if (first.spine_bytes == 0) {
    appendf(cell.err,
            "chaos_run: MULTIJOB cell put no traffic on the spine "
            "seed=%llu\n",
            static_cast<unsigned long long>(seed));
    cell.ok = false;
    return cell;
  }
  if (verbose) {
    appendf(cell.out,
            "multijob       seed=%-3llu makespan=%.3fs spine=%lld fp=%016llx\n",
            static_cast<unsigned long long>(seed), first.makespan.to_seconds(),
            static_cast<long long>(first.spine_bytes),
            static_cast<unsigned long long>(fp));
  }
  return cell;
}

int run_chaos(std::size_t seeds, std::size_t iterations, unsigned threads,
              bool verbose) {
  const std::vector<ps::StrategyConfig> strategies{
      ps::StrategyConfig::fifo(), ps::StrategyConfig::p3(),
      ps::StrategyConfig::bytescheduler(), ps::StrategyConfig::prophet()};

  // Canonical cell order (the serial-loop order): strategy-major matrix
  // cells, then the multijob block.
  const std::size_t matrix_cells = strategies.size() * seeds;
  const std::size_t n_cells = matrix_cells + seeds;
  std::vector<ChaosCell> cells(n_cells);
  exec::parallel_for_index(
      n_cells,
      [&](std::size_t i) {
        if (i < matrix_cells) {
          const auto& strategy = strategies[i / seeds];
          const std::uint64_t seed = 1 + i % seeds;
          cells[i] = run_matrix_cell(strategy, seed, iterations, verbose);
        } else {
          const std::uint64_t seed = 1 + (i - matrix_cells);
          cells[i] = run_multijob_cell(seed, iterations, verbose);
        }
      },
      threads);

  // Deterministic merge: emit buffered output in cell order, then the
  // matrix-level summaries, exactly as the serial loops printed them.
  std::size_t failures = 0;
  std::size_t retries_total = 0;
  for (std::size_t i = 0; i < n_cells; ++i) {
    const ChaosCell& cell = cells[i];
    if (!cell.out.empty()) std::fputs(cell.out.c_str(), stdout);
    if (!cell.err.empty()) std::fputs(cell.err.c_str(), stderr);
    if (!cell.ok) ++failures;
    if (i < matrix_cells) retries_total += cell.retries;
  }
  if (failures != 0) return 1;
  // Across the whole matrix the loss injection must have bitten somewhere;
  // zero retries overall means the loss model regressed to a no-op.
  if (retries_total == 0) {
    std::fprintf(stderr, "chaos_run: loss injection produced zero retries\n");
    return 1;
  }
  std::printf("chaos_run: %zu runs x2 replays clean (%zu transport retries)\n",
              matrix_cells, retries_total);
  std::printf("chaos_run: %zu multijob cells x2 replays clean\n", seeds);
  return 0;
}

}  // namespace
}  // namespace prophet

int main(int argc, char** argv) {
  std::string error;
  const auto flags = prophet::Flags::parse(argc, argv, &error);
  if (!flags) {
    std::fprintf(stderr, "chaos_run: %s\n", error.c_str());
    return 2;
  }
  const auto seeds = static_cast<std::size_t>(flags->get("seeds", std::int64_t{20}));
  const auto iterations =
      static_cast<std::size_t>(flags->get("iterations", std::int64_t{14}));
  const auto threads =
      static_cast<unsigned>(flags->get("threads", std::int64_t{0}));
  const bool verbose = flags->get("verbose", false);
  return prophet::run_chaos(seeds, iterations, threads, verbose);
}
