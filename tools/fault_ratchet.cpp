// Regression ratchet for the fault-recovery bench (bench/fault_recovery.cpp).
//
// Compares a freshly produced BENCH_fault_smoke.json against the committed
// baseline (bench_results/BENCH_fault_smoke_baseline.json). Unlike the scale
// ratchet's wall-clock ratios, every metric here is *simulated* milliseconds
// — bit-deterministic on any runner — so the tolerance only absorbs small
// intentional behavior shifts, not machine noise.
//
// Two gates per bench cell:
//   * every "*_overhead_ms" metric (per-strategy recovery cost beyond the
//     injected downtime) must not grow past baseline + TOL_MS;
//   * "repair_advantage_ms" (Prophet schedule repair vs naive re-enqueue)
//     must not shrink below baseline - TOL_MS.
// A baseline cell or metric missing from the current run fails too — a
// silently dropped cell must not pass the gate.
//
// Usage: fault_ratchet BASELINE.json CURRENT.json [TOL_MS]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using prophet::bench::BenchJson;
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: fault_ratchet BASELINE.json CURRENT.json [TOL_MS]\n");
    return 2;
  }
  const std::string baseline_path = argv[1];
  const std::string current_path = argv[2];
  const double tol_ms = argc == 4 ? std::strtod(argv[3], nullptr) : 5.0;
  if (!(tol_ms >= 0.0)) {
    std::fprintf(stderr, "fault_ratchet: bad TOL_MS\n");
    return 2;
  }

  const BenchJson baseline{baseline_path};
  const BenchJson current{current_path};

  // The metrics fault_recovery writes per bench cell. Overheads ratchet
  // upward-bounded, the advantage downward-bounded.
  const std::vector<std::string> overhead_keys = {
      "fifo_overhead_ms",          "p3_overhead_ms",
      "bytescheduler_overhead_ms", "prophet_naive_overhead_ms",
      "prophet_repair_overhead_ms"};
  const std::string advantage_key = "repair_advantage_ms";

  bool ok = true;
  int cells = 0;
  std::printf("  %-36s %-28s %10s %10s\n", "cell", "metric", "baseline",
              "current");
  const auto check = [&](const std::string& cell, const std::string& key,
                         double base, bool upper_bound) {
    const double cur = current.get(cell, key);
    if (std::isnan(cur)) {
      std::printf("  %-36s %-28s %10.3f %10s  FAIL (metric missing)\n",
                  cell.c_str(), key.c_str(), base, "-");
      ok = false;
      return;
    }
    const bool pass = upper_bound ? cur <= base + tol_ms : cur >= base - tol_ms;
    std::printf("  %-36s %-28s %10.3f %10.3f  %s\n", cell.c_str(), key.c_str(),
                base, cur, pass ? "ok" : "FAIL");
    if (!pass) ok = false;
  };
  for (const std::string& cell : baseline.section_names()) {
    // The "advantage" summary section carries only the cross-cell best; the
    // per-cell gates below already cover it.
    bool counted = false;
    for (const std::string& key : overhead_keys) {
      const double base = baseline.get(cell, key);
      if (std::isnan(base)) continue;
      if (!counted) {
        ++cells;
        counted = true;
      }
      check(cell, key, base, /*upper_bound=*/true);
    }
    const double base_adv = baseline.get(cell, advantage_key);
    if (!std::isnan(base_adv)) check(cell, advantage_key, base_adv,
                                     /*upper_bound=*/false);
  }
  if (cells == 0) {
    std::fprintf(stderr, "fault_ratchet: no ratchetable cells in %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "fault_ratchet: recovery cost regressed past %.1f ms of the "
                 "committed baseline (%s)\n",
                 tol_ms, baseline_path.c_str());
  }
  return ok ? 0 : 1;
}
