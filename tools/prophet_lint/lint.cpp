// Lint driver: config parsing, suppression handling, rule orchestration.
#include "prophet_lint/lint.hpp"

#include <algorithm>
#include <map>

#include "prophet_lint/internal.hpp"
#include "prophet_lint/tokenizer.hpp"

namespace prophet::lint {

namespace {

const std::set<std::string> kRuleIds = {"R1", "R2", "R3", "R4", "R5"};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

// Parsed suppression comments for one file, plus any misuse diagnostics.
struct FileSuppressions {
  // index into Result::suppressions keyed by the line the comment sits on
  std::map<int, std::vector<std::size_t>> by_line;
};

void parse_suppressions(const SourceFile& f, const TokenizedFile& tf, Result& result,
                        FileSuppressions& out) {
  static const std::string kMarker = "prophet-lint:";
  for (const Comment& c : tf.comments) {
    for (std::size_t pos = c.text.find(kMarker); pos != std::string::npos;
         pos = c.text.find(kMarker, pos + kMarker.size())) {
      // The directive must be the first thing in the comment (or on its line
      // within a block comment). Anything else — e.g. documentation QUOTING
      // the syntax — is not a directive.
      std::size_t bol = c.text.rfind('\n', pos);
      bol = bol == std::string::npos ? 0 : bol + 1;
      if (trim(c.text.substr(bol, pos - bol)) != "") continue;
      int line = c.line;
      for (std::size_t k = 0; k < pos; ++k) {
        if (c.text[k] == '\n') ++line;
      }
      std::size_t p = pos + kMarker.size();
      while (p < c.text.size() && (c.text[p] == ' ' || c.text[p] == '\t')) ++p;
      const std::string allow = "allow(";
      if (c.text.compare(p, allow.size(), allow) != 0) {
        result.diagnostics.push_back(
            Diagnostic{f.path, line, "lint",
                       "malformed prophet-lint directive; expected "
                       "'prophet-lint: allow(<rule>): <justification>'"});
        continue;
      }
      p += allow.size();
      const std::size_t close = c.text.find(')', p);
      if (close == std::string::npos) {
        result.diagnostics.push_back(Diagnostic{
            f.path, line, "lint", "unterminated allow(...) in prophet-lint directive"});
        continue;
      }
      const std::string rule = trim(c.text.substr(p, close - p));
      if (kRuleIds.count(rule) == 0) {
        result.diagnostics.push_back(
            Diagnostic{f.path, line, "lint",
                       "unknown rule '" + rule + "' in prophet-lint suppression"});
        continue;
      }
      std::size_t q = close + 1;
      while (q < c.text.size() && (c.text[q] == ' ' || c.text[q] == '\t')) ++q;
      std::string justification;
      if (q < c.text.size() && c.text[q] == ':') {
        const std::size_t eol = c.text.find('\n', q);
        justification = trim(c.text.substr(
            q + 1, eol == std::string::npos ? std::string::npos : eol - q - 1));
      }
      if (justification.empty()) {
        result.diagnostics.push_back(
            Diagnostic{f.path, line, "lint",
                       "suppression of " + rule +
                           " has no justification; write 'prophet-lint: allow(" + rule +
                           "): <why this is sound>'"});
      }
      result.suppressions.push_back(Suppression{f.path, line, rule, justification, 0});
      out.by_line[line].push_back(result.suppressions.size() - 1);
    }
  }
}

std::string stem_key(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return path;
  return path.substr(0, dot);
}

}  // namespace

std::optional<Config> parse_config(const std::string& text, std::string* error) {
  Config cfg;
  std::string section;
  bool r1_scope_seen = false;
  bool r2_scope_seen = false;
  bool r3_scope_seen = false;
  int lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string raw = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        if (error) *error = "line " + std::to_string(lineno) + ": unterminated section header";
        return std::nullopt;
      }
      section = line.substr(1, line.size() - 2);
      continue;
    }
    if (section == "r1-sanctioned") {
      cfg.r1_sanctioned.insert(line);
    } else if (section == "r3-sanctioned") {
      cfg.r3_sanctioned.insert(line);
    } else if (section == "r1-scope" || section == "r2-scope" || section == "r3-scope") {
      auto& scope = section == "r1-scope"   ? cfg.r1_scope
                    : section == "r2-scope" ? cfg.r2_scope
                                            : cfg.r3_scope;
      auto& seen = section == "r1-scope"   ? r1_scope_seen
                   : section == "r2-scope" ? r2_scope_seen
                                           : r3_scope_seen;
      if (!seen) {
        scope.clear();
        seen = true;
      }
      scope.push_back(line);
    } else if (section == "layering") {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) {
        if (error) {
          *error = "line " + std::to_string(lineno) + ": layering entry needs 'module: deps'";
        }
        return std::nullopt;
      }
      const std::string module = trim(line.substr(0, colon));
      auto& deps = cfg.layering[module];
      for (const std::string& d : split_ws(line.substr(colon + 1))) deps.insert(d);
      deps.insert(module);  // intra-module includes are always legal
    } else if (section == "sanctioned-edges") {
      const std::size_t arrow = line.find("->");
      if (arrow == std::string::npos) {
        if (error) {
          *error = "line " + std::to_string(lineno) + ": sanctioned edge needs 'from -> to'";
        }
        return std::nullopt;
      }
      cfg.sanctioned_edges.emplace(trim(line.substr(0, arrow)),
                                   trim(line.substr(arrow + 2)));
    } else {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": entry outside any known section";
      }
      return std::nullopt;
    }
  }
  return cfg;
}

Result run(const Config& cfg, const std::vector<SourceFile>& files) {
  Result result;

  std::vector<TokenizedFile> tokenized;
  tokenized.reserve(files.size());
  for (const SourceFile& f : files) tokenized.push_back(tokenize(f.content));

  std::vector<FileSuppressions> suppressions(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    parse_suppressions(files[i], tokenized[i], result, suppressions[i]);
  }

  // R2 needs declared-name visibility across a header/impl pair: member
  // containers are declared in foo.hpp but iterated in foo.cpp. Merge the
  // collected names per path stem.
  std::map<std::string, std::set<std::string>> names_by_stem;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!internal::path_in_scope(cfg.r2_scope, files[i].path)) continue;
    auto names = internal::collect_unordered_names(tokenized[i]);
    auto& merged = names_by_stem[stem_key(files[i].path)];
    merged.insert(names.begin(), names.end());
  }

  std::vector<Diagnostic> raw;
  for (std::size_t i = 0; i < files.size(); ++i) {
    internal::check_float_time(files[i], tokenized[i], cfg, raw);
    const auto stem = names_by_stem.find(stem_key(files[i].path));
    internal::check_unordered_iteration(
        files[i], tokenized[i], cfg,
        stem == names_by_stem.end() ? std::set<std::string>{} : stem->second, raw);
    internal::check_nondeterminism(files[i], tokenized[i], cfg, raw);
    internal::check_todo_tags(files[i], tokenized[i], raw);
  }
  internal::check_layering(files, tokenized, cfg, raw);

  // Apply suppressions: a comment on line L absorbs matching diagnostics on
  // L (trailing form) and L+1 (own-line form above the statement).
  std::map<std::string, std::size_t> file_index;
  for (std::size_t i = 0; i < files.size(); ++i) file_index.emplace(files[i].path, i);
  for (Diagnostic& d : raw) {
    bool absorbed = false;
    const auto fit = file_index.find(d.file);
    if (fit != file_index.end()) {
      const FileSuppressions& fs = suppressions[fit->second];
      for (const int line : {d.line, d.line - 1}) {
        const auto sit = fs.by_line.find(line);
        if (sit == fs.by_line.end()) continue;
        for (const std::size_t idx : sit->second) {
          if (result.suppressions[idx].rule == d.rule) {
            ++result.suppressions[idx].uses;
            absorbed = true;
            break;
          }
        }
        if (absorbed) break;
      }
    }
    if (!absorbed) result.diagnostics.push_back(std::move(d));
  }

  // A suppression that absorbs nothing is stale and must be deleted — dead
  // waivers are how invariants rot silently.
  for (const Suppression& s : result.suppressions) {
    if (s.uses == 0) {
      result.diagnostics.push_back(
          Diagnostic{s.file, s.line, "lint",
                     "unused suppression for " + s.rule + "; delete the stale waiver"});
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

}  // namespace prophet::lint
