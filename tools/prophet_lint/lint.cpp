// Lint driver: config parsing, suppression handling, rule orchestration.
//
// The scan dogfoods the repo's own deterministic executor: tokenization and
// the per-file rule passes fan out over exec::parallel_map, and the merge
// walks files in canonical path order — so diagnostics are byte-identical at
// any --threads value, the same discipline the sweep drivers follow.
#include "prophet_lint/lint.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "exec/executor.hpp"
#include "prophet_lint/index.hpp"
#include "prophet_lint/internal.hpp"
#include "prophet_lint/tokenizer.hpp"

namespace prophet::lint {

namespace {

const std::set<std::string> kRuleIds = {"R1", "R2", "R3", "R4", "R5",
                                        "R6", "R7", "R8", "R9"};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

// Everything one file's parallel scan produces; merged in file order.
struct FileScan {
  std::vector<Diagnostic> diags;
  std::vector<Suppression> sups;
  std::map<int, std::vector<std::size_t>> sups_by_line;  // line -> index in sups
};

void parse_suppressions(const SourceFile& f, const TokenizedFile& tf, FileScan& out) {
  static const std::string kMarker = "prophet-lint:";
  for (const Comment& c : tf.comments) {
    for (std::size_t pos = c.text.find(kMarker); pos != std::string::npos;
         pos = c.text.find(kMarker, pos + kMarker.size())) {
      // The directive must be the first thing in the comment (or on its line
      // within a block comment). Anything else — e.g. documentation QUOTING
      // the syntax — is not a directive.
      std::size_t bol = c.text.rfind('\n', pos);
      bol = bol == std::string::npos ? 0 : bol + 1;
      if (trim(c.text.substr(bol, pos - bol)) != "") continue;
      int line = c.line;
      for (std::size_t k = 0; k < pos; ++k) {
        if (c.text[k] == '\n') ++line;
      }
      std::size_t p = pos + kMarker.size();
      while (p < c.text.size() && (c.text[p] == ' ' || c.text[p] == '\t')) ++p;
      const std::string allow = "allow(";
      if (c.text.compare(p, allow.size(), allow) != 0) {
        out.diags.push_back(
            Diagnostic{f.path, line, "lint",
                       "malformed prophet-lint directive; expected "
                       "'prophet-lint: allow(<rule>): <justification>'"});
        continue;
      }
      p += allow.size();
      const std::size_t close = c.text.find(')', p);
      if (close == std::string::npos) {
        out.diags.push_back(Diagnostic{
            f.path, line, "lint", "unterminated allow(...) in prophet-lint directive"});
        continue;
      }
      const std::string rule = trim(c.text.substr(p, close - p));
      if (kRuleIds.count(rule) == 0) {
        out.diags.push_back(
            Diagnostic{f.path, line, "lint",
                       "unknown rule '" + rule + "' in prophet-lint suppression"});
        continue;
      }
      std::size_t q = close + 1;
      while (q < c.text.size() && (c.text[q] == ' ' || c.text[q] == '\t')) ++q;
      std::string justification;
      if (q < c.text.size() && c.text[q] == ':') {
        const std::size_t eol = c.text.find('\n', q);
        justification = trim(c.text.substr(
            q + 1, eol == std::string::npos ? std::string::npos : eol - q - 1));
      }
      if (justification.empty()) {
        out.diags.push_back(
            Diagnostic{f.path, line, "lint",
                       "suppression of " + rule +
                           " has no justification; write 'prophet-lint: allow(" + rule +
                           "): <why this is sound>'"});
      }
      out.sups.push_back(Suppression{f.path, line, rule, justification, 0});
      out.sups_by_line[line].push_back(out.sups.size() - 1);
    }
  }
}

std::string stem_key(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return path;
  return path.substr(0, dot);
}

bool diag_order(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

}  // namespace

std::optional<Config> parse_config(const std::string& text, std::string* error) {
  Config cfg;
  std::string section;
  // Scope sections replace the built-in default on first entry, then append.
  std::map<std::string, std::pair<std::vector<std::string>*, bool>> scopes = {
      {"r1-scope", {&cfg.r1_scope, false}}, {"r2-scope", {&cfg.r2_scope, false}},
      {"r3-scope", {&cfg.r3_scope, false}}, {"r6-scope", {&cfg.r6_scope, false}},
      {"r7-scope", {&cfg.r7_scope, false}}, {"r8-scope", {&cfg.r8_scope, false}},
      {"r9-scope", {&cfg.r9_scope, false}}};
  const std::map<std::string, std::set<std::string>*> sets = {
      {"r1-sanctioned", &cfg.r1_sanctioned}, {"r3-sanctioned", &cfg.r3_sanctioned},
      {"r6-sanctioned", &cfg.r6_sanctioned}, {"r7-sanctioned", &cfg.r7_sanctioned},
      {"r8-sanctioned", &cfg.r8_sanctioned}, {"r9-sanctioned", &cfg.r9_sanctioned},
      {"r7-handle-types", &cfg.r7_handle_types}, {"r9-must-use", &cfg.r9_must_use}};
  int lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string raw = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        if (error) *error = "line " + std::to_string(lineno) + ": unterminated section header";
        return std::nullopt;
      }
      section = line.substr(1, line.size() - 2);
      continue;
    }
    if (const auto set_it = sets.find(section); set_it != sets.end()) {
      set_it->second->insert(line);
    } else if (const auto scope_it = scopes.find(section); scope_it != scopes.end()) {
      auto& [scope, seen] = scope_it->second;
      if (!seen) {
        scope->clear();
        seen = true;
      }
      scope->push_back(line);
    } else if (section == "layering") {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) {
        if (error) {
          *error = "line " + std::to_string(lineno) + ": layering entry needs 'module: deps'";
        }
        return std::nullopt;
      }
      const std::string module = trim(line.substr(0, colon));
      auto& deps = cfg.layering[module];
      for (const std::string& d : split_ws(line.substr(colon + 1))) deps.insert(d);
      deps.insert(module);  // intra-module includes are always legal
    } else if (section == "sanctioned-edges") {
      const std::size_t arrow = line.find("->");
      if (arrow == std::string::npos) {
        if (error) {
          *error = "line " + std::to_string(lineno) + ": sanctioned edge needs 'from -> to'";
        }
        return std::nullopt;
      }
      cfg.sanctioned_edges.emplace(trim(line.substr(0, arrow)),
                                   trim(line.substr(arrow + 2)));
    } else {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": entry outside any known section";
      }
      return std::nullopt;
    }
  }
  return cfg;
}

Result run(const Config& cfg, const std::vector<SourceFile>& files) {
  return run(cfg, files, RunOptions{});
}

Result run(const Config& cfg, const std::vector<SourceFile>& files,
           const RunOptions& options) {
  Result result;
  const unsigned threads = options.threads;

  // Pass 1a: tokenize (parallel; each index writes only its own slot).
  std::vector<TokenizedFile> tokenized(files.size());
  exec::parallel_for_index(
      files.size(), [&](std::size_t i) { tokenized[i] = tokenize(files[i].content); },
      threads);

  // Pass 1b: the project-wide index and the R2 header/impl name merge —
  // member containers are declared in foo.hpp but iterated in foo.cpp.
  const internal::ProjectIndex index = internal::build_index(cfg, files, tokenized);
  std::map<std::string, std::set<std::string>> names_by_stem;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!internal::path_in_scope(cfg.r2_scope, files[i].path)) continue;
    auto names = internal::collect_unordered_names(tokenized[i]);
    auto& merged = names_by_stem[stem_key(files[i].path)];
    merged.insert(names.begin(), names.end());
  }

  // Pass 2a: per-file rules, fanned out over the sweep executor. Each file's
  // scan is independent; the merge below walks canonical file order, so the
  // result is byte-identical at any thread count.
  std::vector<std::size_t> order(files.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::vector<FileScan> scans = exec::parallel_map<std::size_t, FileScan>(
      order,
      [&](const std::size_t& i) {
        FileScan scan;
        parse_suppressions(files[i], tokenized[i], scan);
        internal::check_float_time(files[i], tokenized[i], cfg, scan.diags);
        const auto stem = names_by_stem.find(stem_key(files[i].path));
        internal::check_unordered_iteration(
            files[i], tokenized[i], cfg,
            stem == names_by_stem.end() ? std::set<std::string>{} : stem->second,
            scan.diags);
        internal::check_nondeterminism(files[i], tokenized[i], cfg, scan.diags);
        internal::check_todo_tags(files[i], tokenized[i], scan.diags);
        internal::check_threading_primitives(files[i], tokenized[i], cfg, scan.diags);
        internal::check_handle_lifetime(files[i], tokenized[i], cfg, index, scan.diags);
        internal::check_unit_safety(files[i], tokenized[i], cfg, index, scan.diags);
        internal::check_check_discipline(files[i], tokenized[i], cfg, scan.diags);
        internal::check_layering_edges(files[i], i, cfg, index, scan.diags);
        return scan;
      },
      threads);

  // Pass 2b: whole-project rules (cycles, sweep-reachable globals).
  std::vector<Diagnostic> raw;
  for (std::size_t i = 0; i < files.size(); ++i) {
    raw.insert(raw.end(), scans[i].diags.begin(), scans[i].diags.end());
  }
  internal::check_include_cycles(files, index, raw);
  internal::check_sweep_shared_state(files, cfg, index, raw);

  // Deduplicate by (file, line, rule): a header reached through several
  // include paths or sweep callers reports each finding once. Sorting first
  // keeps the surviving message deterministic.
  std::sort(raw.begin(), raw.end(), diag_order);
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return std::tie(a.file, a.line, a.rule) ==
                                 std::tie(b.file, b.line, b.rule);
                        }),
            raw.end());

  // Merge suppressions in file order and apply them: a comment on line L
  // absorbs matching diagnostics on L (trailing form) and L+1 (own-line form
  // above the statement).
  std::map<std::string, std::size_t> file_index;
  for (std::size_t i = 0; i < files.size(); ++i) file_index.emplace(files[i].path, i);
  std::vector<std::size_t> sup_base(files.size(), 0);
  for (std::size_t i = 0; i < files.size(); ++i) {
    sup_base[i] = result.suppressions.size();
    result.suppressions.insert(result.suppressions.end(), scans[i].sups.begin(),
                               scans[i].sups.end());
  }
  for (Diagnostic& d : raw) {
    bool absorbed = false;
    const auto fit = file_index.find(d.file);
    if (fit != file_index.end()) {
      const FileScan& fs = scans[fit->second];
      for (const int line : {d.line, d.line - 1}) {
        const auto sit = fs.sups_by_line.find(line);
        if (sit == fs.sups_by_line.end()) continue;
        for (const std::size_t idx : sit->second) {
          Suppression& s = result.suppressions[sup_base[fit->second] + idx];
          if (s.rule == d.rule) {
            ++s.uses;
            absorbed = true;
            break;
          }
        }
        if (absorbed) break;
      }
    }
    if (!absorbed) result.diagnostics.push_back(std::move(d));
  }

  // A suppression that absorbs nothing is stale and must be deleted — dead
  // waivers are how invariants rot silently.
  for (const Suppression& s : result.suppressions) {
    if (s.uses == 0) {
      result.diagnostics.push_back(
          Diagnostic{s.file, s.line, "lint",
                     "unused suppression for " + s.rule + "; delete the stale waiver"});
    }
  }

  // Diff-aware mode: emit only findings in the changed files and in files
  // whose translation units reach them (reverse include closure). The rules
  // above still saw the whole tree, so cross-file findings stay accurate.
  if (options.changed.has_value()) {
    std::set<std::size_t> seeds;
    for (const std::string& path : *options.changed) {
      const auto it = file_index.find(path);
      if (it != file_index.end()) seeds.insert(it->second);
    }
    std::set<std::string> emit;
    for (const std::size_t i : internal::reverse_include_closure(index, seeds)) {
      emit.insert(files[i].path);
    }
    const auto outside = [&](const std::string& path) { return emit.count(path) == 0; };
    result.diagnostics.erase(
        std::remove_if(result.diagnostics.begin(), result.diagnostics.end(),
                       [&](const Diagnostic& d) { return outside(d.file); }),
        result.diagnostics.end());
    result.suppressions.erase(
        std::remove_if(result.suppressions.begin(), result.suppressions.end(),
                       [&](const Suppression& s) { return outside(s.file); }),
        result.suppressions.end());
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(), diag_order);
  return result;
}

// --- baseline ----------------------------------------------------------------

std::optional<std::vector<BaselineEntry>> parse_baseline(const std::string& text,
                                                         std::string* error) {
  std::vector<BaselineEntry> out;
  int lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string raw = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    if (trim(raw).empty()) continue;
    const std::size_t t1 = raw.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? std::string::npos
                                                   : raw.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      if (error) {
        *error = "line " + std::to_string(lineno) +
                 ": baseline entry needs '<file>\\t<rule>\\t<count>'";
      }
      return std::nullopt;
    }
    BaselineEntry e;
    e.file = trim(raw.substr(0, t1));
    e.rule = trim(raw.substr(t1 + 1, t2 - t1 - 1));
    const std::string count = trim(raw.substr(t2 + 1));
    e.count = 0;
    for (const char c : count) {
      if (c < '0' || c > '9') {
        if (error) {
          *error = "line " + std::to_string(lineno) + ": baseline count must be a number";
        }
        return std::nullopt;
      }
      e.count = e.count * 10 + (c - '0');
    }
    if (e.file.empty() || (kRuleIds.count(e.rule) == 0 && e.rule != "lint")) {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": unknown rule '" + e.rule +
                 "' in baseline";
      }
      return std::nullopt;
    }
    out.push_back(std::move(e));
  }
  return out;
}

void apply_baseline(Result& result, const std::vector<BaselineEntry>& baseline,
                    bool check_stale) {
  std::map<std::pair<std::string, std::string>, int> budget;
  for (const BaselineEntry& e : baseline) budget[{e.file, e.rule}] += e.count;

  std::vector<Diagnostic> kept;
  kept.reserve(result.diagnostics.size());
  for (Diagnostic& d : result.diagnostics) {
    const auto it = budget.find({d.file, d.rule});
    if (it != budget.end() && it->second > 0) {
      --it->second;
    } else {
      kept.push_back(std::move(d));
    }
  }
  result.diagnostics = std::move(kept);

  if (check_stale) {
    for (const auto& [key, remaining] : budget) {
      if (remaining > 0) {
        result.diagnostics.push_back(Diagnostic{
            key.first, 0, "lint",
            "stale baseline entry: " + std::to_string(remaining) + " budgeted " +
                key.second + " finding(s) no longer fire; shrink the baseline so "
                "the debt keeps ratcheting down"});
      }
    }
    std::sort(result.diagnostics.begin(), result.diagnostics.end(), diag_order);
  }
}

std::string format_baseline(const Result& result) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Diagnostic& d : result.diagnostics) ++counts[{d.file, d.rule}];
  std::string out =
      "# prophet_lint baseline — counted known findings, granted per (file, rule).\n"
      "# Regenerate with --write-baseline; entries must only ever shrink.\n";
  for (const auto& [key, count] : counts) {
    out += key.first + "\t" + key.second + "\t" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace prophet::lint
