// SARIF 2.1.0 serialization for GitHub code scanning.
//
// Hand-rolled writer: the subset of SARIF we emit is small and fixed, and the
// output must be deterministic (golden-snapshot tested), so a full JSON
// library would buy nothing. Every container iterated here is already sorted.
#include <string>
#include <vector>

#include "prophet_lint/lint.hpp"

namespace prophet::lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"R1", "FloatTime",
       "float/double arithmetic on time values outside the sanctioned boundary files"},
      {"R2", "UnorderedIteration",
       "range-iteration over an unordered container in a scheduling/simulation path"},
      {"R3", "Nondeterminism",
       "wall-clock, rand(), random_device or pointer-value ordering outside common/rng"},
      {"R4", "Layering",
       "include edge not in the module allowlist, or a cycle in the include graph"},
      {"R5", "UntrackedTodo", "to-do marker without an issue tag like (#42)"},
      {"R6", "ThreadingDiscipline",
       "threading primitive outside the executor, or mutable namespace-scope state "
       "reachable from a parallel sweep's cell closures"},
      {"R7", "HandleLifetime",
       "slab handle narrowed to a raw slot, compared across pools, or reused after "
       "cancel in the same scope"},
      {"R8", "UnitSafety",
       "mixed _ns/_us/_ms/_s/_bytes/_bps units in arithmetic, comparison, assignment "
       "or a call-site argument"},
      {"R9", "CheckDiscipline",
       "side effect inside PROPHET_CHECK, or a discarded must-use status/optional "
       "return"},
      {"lint", "LintMeta",
       "malformed or stale suppression, or stale baseline entry"},
  };
  return kCatalog;
}

std::string to_sarif(const Result& result) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
         "master/Schemata/sarif-schema-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"prophet_lint\",\n";
  out += "          \"informationUri\": \"docs/LINT.md\",\n";
  out += "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RuleInfo& r = catalog[i];
    out += "            {\"id\": \"";
    out += r.id;
    out += "\", \"name\": \"";
    out += r.name;
    out += "\", \"shortDescription\": {\"text\": \"";
    out += json_escape(r.short_desc);
    out += "\"}}";
    out += i + 1 < catalog.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(d.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(d.message) + "\"},\n";
    out += "          \"locations\": [{\"physicalLocation\": {"
           "\"artifactLocation\": {\"uri\": \"" + json_escape(d.file) +
           "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": " +
           // SARIF requires startLine >= 1; baseline staleness reports carry
           // line 0 because they have no anchor in the file.
           std::to_string(d.line > 0 ? d.line : 1) + "}}}]\n";
    out += i + 1 < result.diagnostics.size() ? "        },\n" : "        }\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace prophet::lint
