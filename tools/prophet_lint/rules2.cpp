// Rule implementations R6–R9: the cross-file families introduced with the
// two-pass analyzer. Like R1–R5 these are token-stream heuristics, not a type
// checker — each pattern is tuned so a hit is either a real violation of the
// threading/lifetime/unit/check disciplines or worth a written justification.
#include <algorithm>
#include <map>

#include "prophet_lint/internal.hpp"

namespace prophet::lint::internal {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Ident && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

void diag(std::vector<Diagnostic>& out, const SourceFile& f, int line, const char* rule,
          std::string message) {
  out.push_back(Diagnostic{f.path, line, rule, std::move(message)});
}

// Last component of a member path: "foo.bar_ms" use sites tokenize as
// `foo` `.` `bar_ms`, so rules that key on the identifier already see the
// component; this strips a stray "this->" style prefix in joined names.
bool statement_boundary(const Token& t) {
  return t.kind == TokKind::Punct &&
         (t.text == ";" || t.text == "{" || t.text == "}");
}

// Joins consecutive single-char punct tokens starting at `i` into one
// operator spelling ("==", "+=", "<=", ...) and reports how many tokens it
// consumed. The tokenizer emits single characters (only "::"/"->" fused), so
// operator classification has to re-fuse here.
std::string join_operator(const std::vector<Token>& toks, std::size_t i,
                          std::size_t* consumed) {
  static const std::set<std::string> kOps = {
      "=", "==", "!=", "<", "<=", ">", ">=", "+", "-", "+=", "-=", "*",
      "/",  "*=", "/=", "%", "%=", "&&", "||"};
  std::string best;
  std::string cur;
  std::size_t best_len = 0;
  for (std::size_t k = 0; k < 3 && i + k < toks.size(); ++k) {
    const Token& t = toks[i + k];
    if (t.kind != TokKind::Punct || t.text.size() != 1) break;
    cur += t.text;
    if (kOps.count(cur) != 0) {
      best = cur;
      best_len = k + 1;
    }
  }
  *consumed = best_len;
  return best;
}

}  // namespace

// --- R6 (per-file half): threading primitives outside the executor ----------

void check_threading_primitives(const SourceFile& f, const TokenizedFile& tf,
                                const Config& cfg, std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r6_scope, f.path)) return;
  if (path_sanctioned(cfg.r6_sanctioned, f.path)) return;

  static const std::set<std::string> kHeaders = {
      "thread", "mutex", "shared_mutex", "atomic", "condition_variable",
      "future", "stop_token", "semaphore", "latch", "barrier"};
  for (const IncludeDirective& inc : tf.includes) {
    if (inc.angled && kHeaders.count(inc.target) != 0) {
      diag(out, f, inc.line, "R6",
           "threading header <" + inc.target +
               "> included outside the sanctioned executor files; all parallelism "
               "routes through src/exec (see [r6-sanctioned])");
    }
  }

  static const std::set<std::string> kPrimitives = {
      "thread",        "jthread",       "mutex",          "timed_mutex",
      "recursive_mutex", "shared_mutex", "atomic",        "atomic_flag",
      "condition_variable", "condition_variable_any", "future", "shared_future",
      "promise",       "async",         "lock_guard",    "unique_lock",
      "scoped_lock",   "shared_lock",   "call_once",     "once_flag",
      "counting_semaphore", "binary_semaphore", "latch", "barrier"};
  const auto& toks = tf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;
    if (t.text == "thread_local") {
      diag(out, f, t.line, "R6",
           "thread_local storage outside the sanctioned executor files; sweep "
           "cells must carry their state explicitly so results replay identically "
           "on any thread assignment");
      continue;
    }
    const bool std_qualified =
        i >= 2 && is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "std");
    if (std_qualified && kPrimitives.count(t.text) != 0) {
      diag(out, f, t.line, "R6",
           "threading primitive std::" + t.text +
               " outside the sanctioned executor files; the exec/ sweep executor "
               "is the only sanctioned parallelism in this tree");
    }
  }
}

// --- R6 (cross-file half): mutable globals reachable from sweep cells -------

void check_sweep_shared_state(const std::vector<SourceFile>& files, const Config& cfg,
                              const ProjectIndex& index,
                              std::vector<Diagnostic>& out) {
  for (std::size_t caller = 0; caller < files.size(); ++caller) {
    if (!index.calls_sweep[caller]) continue;
    for (const std::size_t j : forward_include_closure(index, caller)) {
      const SourceFile& f = files[j];
      if (!path_in_scope(cfg.r6_scope, f.path)) continue;
      if (path_sanctioned(cfg.r6_sanctioned, f.path)) continue;
      for (const GlobalVar& g : index.globals[j]) {
        // The driver dedupes by (file, line, rule), so a global seen through
        // several sweep callers or include paths is reported exactly once.
        diag(out, f, g.line, "R6",
             "mutable namespace-scope state '" + g.name +
                 "' is reachable from a parallel sweep (this file is in the "
                 "include closure of a run_sweep/parallel_map caller); cells run "
                 "concurrently and must not share mutable globals");
      }
    }
  }
}

// --- R7: slab {slot, generation} handle lifetime -----------------------------

void check_handle_lifetime(const SourceFile& f, const TokenizedFile& tf,
                           const Config& cfg, const ProjectIndex& index,
                           std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r7_scope, f.path)) return;
  if (path_sanctioned(cfg.r7_sanctioned, f.path)) return;
  const auto& toks = tf.tokens;
  // Handle-typed names declared in THIS file; an `id` declared as FlowId in
  // some other translation unit must not taint this one.
  static const std::set<std::string> kNoHandles;
  const auto self = index.by_path.find(f.path);
  const std::set<std::string>& handles =
      self != index.by_path.end() ? index.handle_names[self->second] : kNoHandles;

  static const std::set<std::string> kNarrowTypes = {
      "uint32_t", "int32_t", "uint16_t", "int16_t", "int", "unsigned", "short"};
  static const std::set<std::string> kPoolFactories = {
      "start_flow", "schedule_at", "schedule_after", "schedule_periodic"};

  // name -> pool object it was produced from ("" unknown): `x = net.start_flow(`.
  std::map<std::string, std::string> provenance;
  // name -> brace depth at which it was cancelled (for use-after-cancel).
  struct Cancelled {
    int depth;
    int line;
  };
  std::map<std::string, Cancelled> cancelled;
  int depth = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        for (auto it = cancelled.begin(); it != cancelled.end();) {
          it = it->second.depth > depth ? cancelled.erase(it) : std::next(it);
        }
      }
      continue;
    }
    if (t.kind != TokKind::Ident) continue;

    // (a) Narrowing a handle discards the generation tag.
    if (t.text == "static_cast" && i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
      // Collect the target-type idents up to '>' and the cast operand up to
      // the matching ')'.
      std::size_t j = i + 2;
      bool narrow = false;
      while (j < toks.size() && !is_punct(toks[j], ">")) {
        if (toks[j].kind == TokKind::Ident && kNarrowTypes.count(toks[j].text) != 0) {
          narrow = true;
        }
        ++j;
      }
      if (narrow && j + 1 < toks.size() && is_punct(toks[j + 1], "(")) {
        int pd = 0;
        for (std::size_t k = j + 1; k < toks.size(); ++k) {
          if (is_punct(toks[k], "(")) ++pd;
          if (is_punct(toks[k], ")") && --pd == 0) break;
          if (toks[k].kind == TokKind::Ident &&
              handles.count(toks[k].text) != 0) {
            diag(out, f, t.line, "R7",
                 "narrowing the {slot, generation} handle '" + toks[k].text +
                     "' to a raw slot discards the generation tag and resurrects "
                     "recycled slots (ABA); store and pass the full handle");
            break;
          }
        }
      }
      continue;
    }

    // Provenance: `x = obj.start_flow(` or `FlowId x = obj.schedule_at(`.
    if (i + 5 < toks.size() && is_punct(toks[i + 1], "=") &&
        toks[i + 2].kind == TokKind::Ident &&
        (is_punct(toks[i + 3], ".") || is_punct(toks[i + 3], "->")) &&
        toks[i + 4].kind == TokKind::Ident &&
        kPoolFactories.count(toks[i + 4].text) != 0 && is_punct(toks[i + 5], "(")) {
      provenance[t.text] = toks[i + 2].text;
      cancelled.erase(t.text);
      continue;
    }

    // (b) Comparing handles from different pools: slot/generation values are
    // only meaningful within the pool that issued them.
    if (provenance.count(t.text) != 0 && i + 2 < toks.size()) {
      std::size_t consumed = 0;
      const std::string op = join_operator(toks, i + 1, &consumed);
      if ((op == "==" || op == "!=") && i + 1 + consumed < toks.size()) {
        const Token& rhs = toks[i + 1 + consumed];
        if (rhs.kind == TokKind::Ident && provenance.count(rhs.text) != 0 &&
            provenance[t.text] != provenance[rhs.text]) {
          diag(out, f, t.line, "R7",
               "comparing handles '" + t.text + "' (from " + provenance[t.text] +
                   ") and '" + rhs.text + "' (from " + provenance[rhs.text] +
                   "): handles from different pools are never comparable");
          continue;
        }
      }
    }

    // (c) Use after cancel, same scope. Track `h.cancel()` at statement start
    // and `cancel_flow(h)`; any later use of the name before reassignment or
    // scope exit is a stale-handle access.
    const bool stmt_start = i == 0 || statement_boundary(toks[i - 1]);
    if (stmt_start && i + 3 < toks.size() &&
        (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
        is_ident(toks[i + 2], "cancel") && is_punct(toks[i + 3], "(")) {
      cancelled[t.text] = Cancelled{depth, t.line};
      i += 3;
      continue;
    }
    if (t.text == "cancel_flow" && i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
        toks[i + 2].kind == TokKind::Ident && i + 3 < toks.size() &&
        is_punct(toks[i + 3], ")")) {
      cancelled[toks[i + 2].text] = Cancelled{depth, toks[i + 2].line};
      i += 3;
      continue;
    }
    const auto dead = cancelled.find(t.text);
    if (dead != cancelled.end()) {
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "=") &&
          !(i + 2 < toks.size() && is_punct(toks[i + 2], "="))) {
        cancelled.erase(dead);  // reassigned: the handle is live again
      } else {
        diag(out, f, t.line, "R7",
             "'" + t.text + "' is used after cancel (cancelled at line " +
                 std::to_string(dead->second.line) +
                 " in the same scope); the slot may already be recycled — "
                 "re-acquire the handle or hoist the use above the cancel");
        cancelled.erase(dead);  // one report per kill site, not a cascade
      }
    }
  }
}

// --- R8: unit safety ---------------------------------------------------------

void check_unit_safety(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                       const ProjectIndex& index, std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r8_scope, f.path)) return;
  if (path_sanctioned(cfg.r8_sanctioned, f.path)) return;
  const auto& toks = tf.tokens;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;
    const std::string lhs_unit = unit_of(t.text);

    // Cross-unit binary op / assignment between two tagged identifiers.
    // '*' and '/' are deliberately exempt: dividing bytes by seconds IS how
    // rates are formed; it is +, -, comparison and assignment that silently
    // mix magnitudes.
    if (!lhs_unit.empty() && i + 2 < toks.size()) {
      std::size_t consumed = 0;
      const std::string op = join_operator(toks, i + 1, &consumed);
      static const std::set<std::string> kMixOps = {"+",  "-",  "+=", "-=", "=",
                                                    "==", "!=", "<",  "<=", ">",
                                                    ">="};
      if (consumed != 0 && kMixOps.count(op) != 0 && i + 1 + consumed < toks.size()) {
        const Token& rhs = toks[i + 1 + consumed];
        if (rhs.kind == TokKind::Ident) {
          const std::string rhs_unit = unit_of(rhs.text);
          if (!rhs_unit.empty() && rhs_unit != lhs_unit) {
            diag(out, f, t.line, "R8",
                 "unit mismatch: '" + t.text + "' (" + lhs_unit + ") " + op + " '" +
                     rhs.text + "' (" + rhs_unit +
                     "); convert explicitly through the common/time.hpp helpers "
                     "instead of mixing magnitudes");
            i += consumed;  // don't re-report the same operator from the rhs
            continue;
          }
        }
      }
    }

    // Call-site check against the cross-file signature index: a bare tagged
    // identifier passed where the declared parameter carries a different tag.
    const auto sig = index.functions.find(t.text);
    if (sig != index.functions.end() && !sig->second.ambiguous &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        !(sig->second.file == f.path && sig->second.line == t.line)) {
      int depth = 0;
      std::size_t arg = 0;
      std::size_t arg_first = 0;  // token index of the arg's only ident so far
      std::size_t arg_tokens = 0;
      const auto flush_arg = [&](int line) {
        if (arg_tokens == 1 && arg < sig->second.params.size()) {
          const std::string& param = sig->second.params[arg];
          const std::string want = unit_of(param);
          const std::string got = unit_of(toks[arg_first].text);
          if (!want.empty() && !got.empty() && want != got) {
            diag(out, f, line, "R8",
                 "argument '" + toks[arg_first].text + "' (" + got +
                     ") passed to parameter '" + param + "' (" + want + ") of " +
                     t.text + "() declared at " + sig->second.file + ":" +
                     std::to_string(sig->second.line) +
                     "; convert to the declared unit first");
          }
        }
      };
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        const Token& a = toks[k];
        if (a.kind == TokKind::Punct && a.text == "(") {
          if (++depth == 1) {
            arg = 0;
            arg_tokens = 0;
          }
          continue;
        }
        if (a.kind == TokKind::Punct && a.text == ")") {
          if (--depth == 0) {
            flush_arg(a.line);
            break;
          }
          continue;
        }
        if (depth == 1 && a.kind == TokKind::Punct && a.text == ",") {
          flush_arg(a.line);
          ++arg;
          arg_tokens = 0;
          continue;
        }
        if (depth >= 1) {
          if (depth == 1 && a.kind == TokKind::Ident) arg_first = k;
          ++arg_tokens;
        }
      }
    }
  }
}

// --- R9: check discipline ----------------------------------------------------

void check_check_discipline(const SourceFile& f, const TokenizedFile& tf,
                            const Config& cfg, std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r9_scope, f.path)) return;
  if (path_sanctioned(cfg.r9_sanctioned, f.path)) return;
  const auto& toks = tf.tokens;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;

    // Side effects inside PROPHET_CHECK: the checks stay enabled in release
    // builds, so a mutation in the condition runs in production and differs
    // from what a reader skipping "assertions" expects.
    if ((t.text == "PROPHET_CHECK" || t.text == "PROPHET_CHECK_MSG") &&
        is_punct(toks[i + 1], "(")) {
      int depth = 0;
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        const Token& a = toks[k];
        if (a.kind != TokKind::Punct) continue;
        if (a.text == "(") ++depth;
        if (a.text == ")" && --depth == 0) break;
        bool effect = false;
        if ((a.text == "+" || a.text == "-") && k + 1 < toks.size() &&
            toks[k + 1].kind == TokKind::Punct && toks[k + 1].text == a.text) {
          effect = true;  // ++ / --
        } else if (a.text == "=") {
          const Token* prev = k > 0 ? &toks[k - 1] : nullptr;
          const Token* next = k + 1 < toks.size() ? &toks[k + 1] : nullptr;
          const auto is_cmp_part = [](const Token* p) {
            return p != nullptr && p->kind == TokKind::Punct &&
                   (p->text == "=" || p->text == "!" || p->text == "<" ||
                    p->text == ">");
          };
          const bool compound =
              prev != nullptr && prev->kind == TokKind::Punct &&
              (prev->text == "+" || prev->text == "-" || prev->text == "*" ||
               prev->text == "/" || prev->text == "%" || prev->text == "&" ||
               prev->text == "|" || prev->text == "^");
          const bool lambda_capture =
              prev != nullptr && prev->kind == TokKind::Punct && prev->text == "[";
          if (compound || (!is_cmp_part(prev) && !is_cmp_part(next) && !lambda_capture)) {
            effect = true;  // plain or compound assignment
          }
        }
        if (effect) {
          diag(out, f, t.line, "R9",
               "side-effecting expression inside " + t.text +
                   "(...); checks must be pure — they run in release builds and "
                   "the mutation hides from readers who skim past assertions");
          // One report per macro invocation.
          while (k < toks.size() && !(is_punct(toks[k], ")") && depth == 1)) ++k;
          break;
        }
      }
      continue;
    }

    // Discarded must-use return: the whole statement is `chain.f(...);` for a
    // status/optional-returning API in [r9-must-use].
    if (cfg.r9_must_use.count(t.text) != 0 && is_punct(toks[i + 1], "(")) {
      // Walk back over a member/qualifier chain to the statement head.
      std::size_t head = i;
      while (head >= 2 && toks[head - 1].kind == TokKind::Punct &&
             (toks[head - 1].text == "." || toks[head - 1].text == "->" ||
              toks[head - 1].text == "::") &&
             toks[head - 2].kind == TokKind::Ident) {
        head -= 2;
      }
      const bool at_stmt_start = head == 0 || statement_boundary(toks[head - 1]);
      if (!at_stmt_start) continue;
      int depth = 0;
      std::size_t close = 0;
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        if (is_punct(toks[k], "(")) ++depth;
        if (is_punct(toks[k], ")") && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close != 0 && close + 1 < toks.size() && is_punct(toks[close + 1], ";")) {
        diag(out, f, t.line, "R9",
             "discarded result of " + t.text +
                 "() — it reports failure through its return value; check it, or "
                 "cast to void with a comment if failure is truly irrelevant");
      }
    }
  }
}

}  // namespace prophet::lint::internal
