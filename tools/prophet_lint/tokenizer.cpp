#include "prophet_lint/tokenizer.hpp"

#include <cctype>

namespace prophet::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

TokenizedFile tokenize(const std::string& src) {
  TokenizedFile out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // nothing but whitespace seen since the last newline

  const auto push = [&](TokKind kind, std::string text, int at) {
    out.tokens.push_back(Token{kind, std::move(text), at});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back(Comment{line, src.substr(i + 2, j - i - 2)});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(Comment{start_line, src.substr(i + 2, j - (i + 2))});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Preprocessor directive: capture #include targets; the directive name is
    // swallowed, the remainder of the line is tokenized normally so macro
    // bodies are still visible to the rules.
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && is_ident_char(src[k])) ++k;
      const std::string directive = src.substr(j, k - j);
      if (directive == "include") {
        std::size_t p = k;
        while (p < n && (src[p] == ' ' || src[p] == '\t')) ++p;
        if (p < n && (src[p] == '"' || src[p] == '<')) {
          const char close = src[p] == '"' ? '"' : '>';
          std::size_t q = p + 1;
          while (q < n && src[q] != close && src[q] != '\n') ++q;
          out.includes.push_back(IncludeDirective{line, src.substr(p + 1, q - p - 1),
                                                  close == '>'});
          i = (q < n && src[q] == close) ? q + 1 : q;
          at_line_start = false;
          continue;
        }
      }
      i = k;
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // Raw string literal (only the bare R"..." prefix form; prefixed raw
    // strings like u8R"()" are rare enough not to matter for lint rules).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (out.tokens.empty() || i == 0 || !is_ident_char(src[i - 1]))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && src[p] != '\n') {
        delim += src[p];
        ++p;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t q = src.find(closer, p);
      const int start_line = line;
      const std::size_t end = (q == std::string::npos) ? n : q + closer.size();
      for (std::size_t t = i; t < end; ++t) {
        if (src[t] == '\n') ++line;
      }
      push(TokKind::Str, "", start_line);
      i = end;
      continue;
    }

    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      push(TokKind::Ident, src.substr(i, j - i), line);
      i = j;
      continue;
    }

    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      // pp-number-ish: digits, identifier chars (hex/suffixes), '.', digit
      // separators, and exponent signs.
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i &&
            (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
             src[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      push(TokKind::Number, src.substr(i, j - i), line);
      i = j;
      continue;
    }

    if (c == '"') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(TokKind::Str, "", start_line);
      i = (j < n) ? j + 1 : n;
      continue;
    }

    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::CharLit, "", line);
      i = (j < n && src[j] == '\'') ? j + 1 : j;
      continue;
    }

    // Punctuation. "::" and "->" are fused because the rules key on them.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(TokKind::Punct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::Punct, "->", line);
      i += 2;
      continue;
    }
    push(TokKind::Punct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace prophet::lint
