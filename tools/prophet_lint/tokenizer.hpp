// Minimal C++ lexer for prophet_lint.
//
// This is deliberately NOT a full C++ front end: the lint rules only need a
// token stream with line numbers, the comment list (for suppressions and
// work-item tag scanning), and the #include directives (for the layering graph).
// Strings, character literals and raw strings are lexed as opaque tokens so
// rule patterns can never match inside literal text.
#pragma once

#include <string>
#include <vector>

namespace prophet::lint {

enum class TokKind { Ident, Number, Str, CharLit, Punct };

struct Token {
  TokKind kind;
  std::string text;  // empty for Str/CharLit (contents are irrelevant to rules)
  int line;
};

struct Comment {
  int line;  // line the comment starts on
  std::string text;
};

struct IncludeDirective {
  int line;
  std::string target;
  bool angled;  // <...> (system) vs "..." (project)
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

TokenizedFile tokenize(const std::string& content);

}  // namespace prophet::lint
