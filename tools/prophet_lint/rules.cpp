// Rule implementations R1–R5. Each pass is a linear scan over the token
// stream; none of them try to be a type checker — the heuristics are tuned so
// that every hit is either a real invariant violation or something worth a
// written justification (see docs/DETERMINISM.md).
#include <algorithm>
#include <cctype>
#include <map>

#include "prophet_lint/internal.hpp"

namespace prophet::lint::internal {

namespace {

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Ident && t.text == text;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Heuristic: does a float-typed variable name look like it holds a time value?
// Rates (bytes/sec, samples/sec, Hz) are doubles by design and are excluded.
bool looks_like_time_name(const std::string& raw) {
  const std::string name = lower(raw);
  for (const char* rate : {"per_sec", "per_second", "rate", "bps", "hz", "freq"}) {
    if (name.find(rate) != std::string::npos) return false;
  }
  for (const char* suffix : {"_s", "_ms", "_us", "_ns", "_sec", "_secs", "_seconds",
                             "_millis", "_micros", "_nanos"}) {
    if (ends_with(name, suffix)) return true;
  }
  for (const char* word : {"time", "latency", "elapsed", "deadline", "duration", "timeout"}) {
    if (name.find(word) != std::string::npos) return true;
  }
  return false;
}

// Index just past a balanced <...> starting at `open` (which must be '<').
// Returns `open` if the angle brackets never balance.
std::size_t skip_angle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Punct) continue;
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">") {
      --depth;
      if (depth == 0) return i + 1;
    }
    // A ';' inside template args means we mis-parsed an operator< expression.
    if (toks[i].text == ";") return open;
  }
  return open;
}

void diag(std::vector<Diagnostic>& out, const SourceFile& f, int line, const char* rule,
          std::string message) {
  out.push_back(Diagnostic{f.path, line, rule, std::move(message)});
}

}  // namespace

bool path_in_scope(const std::vector<std::string>& prefixes, const std::string& path) {
  for (const auto& p : prefixes) {
    if (path.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

bool path_sanctioned(const std::set<std::string>& entries, const std::string& path) {
  for (const auto& e : entries) {
    if (e == path) return true;
    if (!e.empty() && e.back() == '/' && path.compare(0, e.size(), e) == 0) return true;
  }
  return false;
}

// --- R1: float arithmetic on time values ------------------------------------

void check_float_time(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                      std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r1_scope, f.path)) return;
  if (path_sanctioned(cfg.r1_sanctioned, f.path)) return;
  const auto& toks = tf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;

    const bool has_next_paren =
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct && toks[i + 1].text == "(";
    const bool member_call = i > 0 && toks[i - 1].kind == TokKind::Punct &&
                             (toks[i - 1].text == "." || toks[i - 1].text == "->");

    if (has_next_paren && member_call &&
        (t.text == "to_seconds" || t.text == "to_millis" || t.text == "to_micros")) {
      diag(out, f, t.line, "R1",
           "time value converted to floating point via " + t.text +
               "(); keep time arithmetic in integer nanoseconds outside sanctioned "
               "boundary files");
      continue;
    }
    if (has_next_paren && (t.text == "from_seconds" || t.text == "from_millis")) {
      diag(out, f, t.line, "R1",
           "Duration constructed from floating point via " + t.text +
               "(); only sanctioned conversion points may round floats into time");
      continue;
    }

    // float/double declaration whose name reads like a time quantity.
    if (t.text == "double" || t.text == "float") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             ((toks[j].kind == TokKind::Punct &&
               (toks[j].text == "&" || toks[j].text == "*")) ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::Ident &&
          looks_like_time_name(toks[j].text) && j + 1 < toks.size() &&
          toks[j + 1].kind == TokKind::Punct &&
          (toks[j + 1].text == "=" || toks[j + 1].text == ";" || toks[j + 1].text == "," ||
           toks[j + 1].text == ")" || toks[j + 1].text == "{")) {
        diag(out, f, toks[j].line, "R1",
             "float-typed variable '" + toks[j].text +
                 "' looks like a time value; use prophet::Duration / TimePoint");
      }
      continue;
    }

    // static_cast<double>(... count_nanos() ...)
    if (t.text == "static_cast" && i + 4 < toks.size() && toks[i + 1].text == "<" &&
        (is_ident(toks[i + 2], "double") || is_ident(toks[i + 2], "float")) &&
        toks[i + 3].text == ">" && toks[i + 4].text == "(") {
      int depth = 0;
      for (std::size_t j = i + 4; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::Punct) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
        }
        if (toks[j].kind == TokKind::Ident && toks[j].text == "count_nanos") {
          diag(out, f, t.line, "R1",
               "nanosecond count cast to floating point; keep time arithmetic integral");
          break;
        }
      }
    }
  }
}

// --- R2: hash-order iteration -----------------------------------------------

std::set<std::string> collect_unordered_names(const TokenizedFile& tf) {
  const auto& toks = tf.tokens;
  // Pass 1: local aliases of unordered types (`using FlowTable = unordered_map<..>;`).
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "using") || toks[i + 1].kind != TokKind::Ident ||
        toks[i + 2].text != "=") {
      continue;
    }
    for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].kind == TokKind::Ident && kUnorderedTypes.count(toks[j].text) != 0) {
        aliases.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: names declared with an unordered type or one of its aliases.
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const bool is_container = kUnorderedTypes.count(toks[i].text) != 0;
    const bool is_alias = aliases.count(toks[i].text) != 0;
    if (!is_container && !is_alias) continue;
    std::size_t j = i + 1;
    if (is_container && j < toks.size() && toks[j].text == "<") {
      const std::size_t after = skip_angle(toks, j);
      if (after == j) continue;  // operator< mis-parse; bail on this site
      j = after;
    }
    while (j < toks.size() && ((toks[j].kind == TokKind::Punct &&
                                (toks[j].text == "&" || toks[j].text == "*")) ||
                               is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j + 1 < toks.size() && toks[j].kind == TokKind::Ident &&
        toks[j + 1].kind == TokKind::Punct &&
        (toks[j + 1].text == ";" || toks[j + 1].text == "=" || toks[j + 1].text == "{" ||
         toks[j + 1].text == "," || toks[j + 1].text == ")")) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

void check_unordered_iteration(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                               const std::set<std::string>& unordered_names,
                               std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r2_scope, f.path)) return;
  const auto& toks = tf.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || toks[i + 1].text != "(") continue;
    // Find the range-for ':' at paren depth 1, then scan the range expression.
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::Punct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::Ident) continue;
      const bool is_type = kUnorderedTypes.count(toks[j].text) != 0;
      if (is_type || unordered_names.count(toks[j].text) != 0) {
        diag(out, f, toks[i].line, "R2",
             "range-for over unordered container '" + toks[j].text +
                 "': iteration order is hash-dependent and breaks bit-reproducible "
                 "schedules; use an ordered container or iterate sorted keys");
        break;
      }
    }
  }
}

// --- R3: wall clock / ambient randomness / pointer ordering ------------------

void check_nondeterminism(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                          std::vector<Diagnostic>& out) {
  if (!path_in_scope(cfg.r3_scope, f.path)) return;
  if (path_sanctioned(cfg.r3_sanctioned, f.path)) return;
  const auto& toks = tf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Ident) continue;
    const bool member = i > 0 && toks[i - 1].kind == TokKind::Punct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool next_paren =
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::Punct && toks[i + 1].text == "(";
    const bool std_qualified = i >= 2 && toks[i - 1].text == "::" &&
                               (is_ident(toks[i - 2], "std") || is_ident(toks[i - 2], "chrono"));

    if ((t.text == "rand" || t.text == "srand") && next_paren && !member) {
      diag(out, f, t.line, "R3",
           "call to " + t.text + "(); all randomness must route through common/rng");
      continue;
    }
    if (t.text == "random_device") {
      diag(out, f, t.line, "R3",
           "std::random_device is nondeterministic; seed a prophet::Rng stream instead");
      continue;
    }
    if (t.text == "system_clock" || t.text == "steady_clock" ||
        t.text == "high_resolution_clock" || t.text == "gettimeofday" ||
        t.text == "clock_gettime") {
      diag(out, f, t.line, "R3",
           "wall-clock access (" + t.text +
               ") in simulator code; simulation time comes from sim::Simulator only");
      continue;
    }
    if (t.text == "time" && next_paren && !member) {
      const bool bare_or_std = std_qualified || (i == 0 || toks[i - 1].text != "::");
      const bool libc_arg =
          i + 2 < toks.size() &&
          (toks[i + 2].text == "nullptr" || toks[i + 2].text == "0" ||
           toks[i + 2].text == "NULL" || toks[i + 2].text == "&");
      if (bare_or_std && libc_arg) {
        diag(out, f, t.line, "R3", "call to time(); wall clocks are banned in src/");
        continue;
      }
    }
    if (t.text == "clock" && next_paren && !member && i + 2 < toks.size() &&
        toks[i + 2].text == ")") {
      diag(out, f, t.line, "R3", "call to clock(); wall clocks are banned in src/");
      continue;
    }
    if ((t.text == "less" || t.text == "greater") && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      const std::size_t after = skip_angle(toks, i + 1);
      for (std::size_t j = i + 1; j < after; ++j) {
        if (toks[j].kind == TokKind::Punct && toks[j].text == "*") {
          diag(out, f, t.line, "R3",
               "std::" + t.text +
                   "<T*> orders by pointer value, which varies run to run; key on a "
                   "stable id instead");
          break;
        }
      }
      continue;
    }
    if (t.text == "uintptr_t" || t.text == "intptr_t") {
      diag(out, f, t.line, "R3",
           t.text + " converts pointer values to integers; ordering or hashing on them "
                    "is nondeterministic across runs");
    }
  }
}

// --- R5: work-item issue tags -----------------------------------------------

void check_todo_tags(const SourceFile& f, const TokenizedFile& tf,
                     std::vector<Diagnostic>& out) {
  for (const Comment& c : tf.comments) {
    for (const char* marker : {"TODO", "FIXME"}) {
      const std::string m = marker;
      for (std::size_t pos = c.text.find(m); pos != std::string::npos;
           pos = c.text.find(m, pos + m.size())) {
        const bool boundary_before =
            pos == 0 || (std::isalnum(static_cast<unsigned char>(c.text[pos - 1])) == 0 &&
                         c.text[pos - 1] != '_');
        const std::size_t after = pos + m.size();
        if (!boundary_before) continue;
        int line = c.line;
        for (std::size_t k = 0; k < pos; ++k) {
          if (c.text[k] == '\n') ++line;
        }
        const std::size_t close =
            (after < c.text.size() && c.text[after] == '(') ? c.text.find(')', after) : std::string::npos;
        bool tagged = false;
        if (close != std::string::npos) {
          const std::string tag = c.text.substr(after + 1, close - after - 1);
          const std::size_t hash = tag.find('#');
          tagged = hash != std::string::npos && hash + 1 < tag.size() &&
                   std::isdigit(static_cast<unsigned char>(tag[hash + 1])) != 0;
        }
        if (!tagged) {
          diag(out, f, line, "R5",
               m + " without an issue tag; write " + m + "(#123): ... so stale work "
                   "items stay traceable");
        }
      }
    }
  }
}

// --- R4: layering + include cycles ------------------------------------------

namespace {

// Module of a repo path under src/, or "" if not a src file.
std::string src_module(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

}  // namespace

void check_layering_edges(const SourceFile& f, std::size_t file_index,
                          const Config& cfg, const ProjectIndex& index,
                          std::vector<Diagnostic>& out) {
  if (cfg.layering.empty()) return;
  const std::string from_module = src_module(f.path);
  if (from_module.empty()) return;
  for (const ResolvedInclude& inc : index.includes[file_index]) {
    if (inc.angled) continue;
    const std::string to_module = src_module(inc.resolved);
    if (to_module.empty() || to_module == from_module) continue;
    if (cfg.sanctioned_edges.count({f.path, inc.resolved}) != 0) continue;
    const auto allowed = cfg.layering.find(from_module);
    if (allowed == cfg.layering.end()) {
      out.push_back(Diagnostic{f.path, inc.line, "R4",
                               "module 'src/" + from_module +
                                   "' is not registered in the layering table "
                                   "(tools/prophet_lint/prophet_lint.conf)"});
    } else if (allowed->second.count(to_module) == 0) {
      out.push_back(Diagnostic{f.path, inc.line, "R4",
                               "layering violation: src/" + from_module +
                                   " may not include src/" + to_module + " (" +
                                   inc.target + "); add a sanctioned edge to the "
                                   "allowlist only with a design justification"});
    }
  }
}

void check_include_cycles(const std::vector<SourceFile>& files,
                          const ProjectIndex& index, std::vector<Diagnostic>& out) {
  // Iterative DFS, 3-color, over the resolved in-set include graph.
  const auto& edges = index.include_edges;
  enum class Color { White, Grey, Black };
  std::vector<Color> color(files.size(), Color::White);
  std::vector<std::size_t> stack_path;
  std::set<std::string> reported;

  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  for (std::size_t root = 0; root < files.size(); ++root) {
    if (color[root] != Color::White) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = Color::Grey;
    stack_path.push_back(root);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.next_edge < edges[fr.node].size()) {
        const std::size_t next = edges[fr.node][fr.next_edge++];
        if (color[next] == Color::White) {
          color[next] = Color::Grey;
          stack.push_back(Frame{next, 0});
          stack_path.push_back(next);
        } else if (color[next] == Color::Grey) {
          // Found a cycle: slice stack_path from `next` to the top.
          std::string chain;
          bool in_cycle = false;
          for (const std::size_t idx : stack_path) {
            if (idx == next) in_cycle = true;
            if (in_cycle) chain += files[idx].path + " -> ";
          }
          chain += files[next].path;
          if (reported.insert(chain).second) {
            int line = 1;
            for (const ResolvedInclude& inc : index.includes[fr.node]) {
              if (!inc.angled && inc.resolved == files[next].path) {
                line = inc.line;
                break;
              }
            }
            out.push_back(Diagnostic{files[fr.node].path, line, "R4",
                                     "include cycle: " + chain});
          }
        }
      } else {
        color[fr.node] = Color::Black;
        stack.pop_back();
        stack_path.pop_back();
      }
    }
  }
}

}  // namespace prophet::lint::internal
