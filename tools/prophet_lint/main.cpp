// prophet_lint CLI.
//
//   prophet_lint [--root DIR] [--config FILE] [--quiet] [--threads N]
//                [--sarif FILE] [--diff-base REF]
//                [--baseline FILE | --no-baseline] [--write-baseline FILE]
//                <path>...
//
// Paths are files or directories, repo-relative (run from the repo root, or
// pass --root). Directories are walked recursively for C++ sources; fixture
// and build trees are skipped unless a file is named explicitly.
//
// --diff-base REF scans the full tree (cross-file rules need it) but emits
// only diagnostics in files changed since merge-base(REF, HEAD), plus every
// file whose include closure reaches one of them. --sarif also writes the
// findings as a SARIF 2.1.0 document for code-scanning upload. The checked-in
// baseline (tools/prophet_lint/baseline.txt) is applied automatically when it
// exists. Exit status is non-zero iff any diagnostic survives.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "prophet_lint/lint.hpp"

namespace fs = std::filesystem;
using prophet::lint::Config;
using prophet::lint::SourceFile;

namespace {

const char* kDefaultConfig = "tools/prophet_lint/prophet_lint.conf";
const char* kDefaultBaseline = "tools/prophet_lint/baseline.txt";

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  for (const char* e : {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx", ".ipp"}) {
    if (ext == e) return true;
  }
  return false;
}

bool skip_directory(const std::string& name) {
  return name == "lint_fixtures" || name == ".git" || name == "third_party" ||
         name == "external" || name.rfind("build", 0) == 0;
}

std::string read_file(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

// Runs a git command, captures stdout. Returns false on spawn/exit failure.
bool run_git(const std::string& args, const std::string& root, std::string* out) {
  const std::string cmd = "git -C " + shell_quote(root) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  out->clear();
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) out->append(buf, n);
  return pclose(pipe) == 0;
}

// Changed files (committed and working-tree) relative to merge-base(ref, HEAD).
bool changed_since(const std::string& ref, const std::string& root,
                   std::set<std::string>* out) {
  std::string base;
  if (!run_git("merge-base " + shell_quote(ref) + " HEAD", root, &base)) return false;
  while (!base.empty() && (base.back() == '\n' || base.back() == '\r')) base.pop_back();
  std::string names;
  if (!run_git("diff --name-only " + shell_quote(base), root, &names)) return false;
  std::size_t start = 0;
  while (start < names.size()) {
    std::size_t nl = names.find('\n', start);
    if (nl == std::string::npos) nl = names.size();
    if (nl > start) out->insert(names.substr(start, nl - start));
    start = nl + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string sarif_path;
  std::string diff_base;
  std::string baseline_path;
  std::string write_baseline_path;
  bool no_baseline = false;
  bool quiet = false;
  unsigned threads = 1;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--diff-base" && i + 1 < argc) {
      diff_base = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: prophet_lint [--root DIR] [--config FILE] [--quiet] [--threads N]\n"
          "                    [--sarif FILE] [--diff-base REF]\n"
          "                    [--baseline FILE | --no-baseline]\n"
          "                    [--write-baseline FILE] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prophet_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "prophet_lint: no input paths (try --help)\n");
    return 2;
  }

  const fs::path root_path{root};
  Config cfg;
  {
    const fs::path conf =
        config_path.empty() ? root_path / kDefaultConfig : fs::path{config_path};
    bool ok = false;
    const std::string text = read_file(conf, &ok);
    if (ok) {
      std::string error;
      const auto parsed = prophet::lint::parse_config(text, &error);
      if (!parsed) {
        std::fprintf(stderr, "prophet_lint: %s: %s\n", conf.string().c_str(),
                     error.c_str());
        return 2;
      }
      cfg = *parsed;
    } else if (!config_path.empty()) {
      std::fprintf(stderr, "prophet_lint: cannot read config %s\n",
                   config_path.c_str());
      return 2;
    }
    // With no config file at all, run with built-in defaults (no sanctioned
    // files, no layering table).
  }

  // Collect sources. std::map keys keep the scan order stable across
  // filesystems, so diagnostics are deterministic too.
  std::map<std::string, fs::path> sources;
  for (const std::string& input : inputs) {
    const fs::path abs = root_path / input;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      sources.emplace(fs::path(input).generic_string(), abs);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      std::fprintf(stderr, "prophet_lint: no such file or directory: %s\n",
                   input.c_str());
      return 2;
    }
    fs::recursive_directory_iterator it(abs, fs::directory_options::skip_permission_denied,
                                        ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && skip_directory(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !has_source_extension(it->path())) continue;
      const fs::path rel = fs::relative(it->path(), root_path, ec);
      sources.emplace((ec ? it->path() : rel).generic_string(), it->path());
    }
  }

  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [rel, abs] : sources) {
    bool ok = false;
    std::string content = read_file(abs, &ok);
    if (!ok) {
      std::fprintf(stderr, "prophet_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    files.push_back(SourceFile{rel, std::move(content)});
  }

  prophet::lint::RunOptions options;
  options.threads = threads;
  if (!diff_base.empty()) {
    std::set<std::string> changed;
    if (!changed_since(diff_base, root, &changed)) {
      std::fprintf(stderr, "prophet_lint: git diff against '%s' failed\n",
                   diff_base.c_str());
      return 2;
    }
    options.changed = std::move(changed);
  }

  auto result = prophet::lint::run(cfg, files, options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << prophet::lint::format_baseline(result);
    if (!out) {
      std::fprintf(stderr, "prophet_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("prophet_lint: wrote baseline for %zu diagnostic(s) to %s\n",
                result.diagnostics.size(), write_baseline_path.c_str());
    return 0;
  }

  if (!no_baseline) {
    const fs::path bl = baseline_path.empty() ? root_path / kDefaultBaseline
                                              : fs::path{baseline_path};
    bool ok = false;
    const std::string text = read_file(bl, &ok);
    if (ok) {
      std::string error;
      const auto parsed = prophet::lint::parse_baseline(text, &error);
      if (!parsed) {
        std::fprintf(stderr, "prophet_lint: %s: %s\n", bl.string().c_str(),
                     error.c_str());
        return 2;
      }
      // Stale-entry enforcement only makes sense when the whole tree was
      // visible — in diff-aware mode an unused budget usually just means the
      // file wasn't in the diff.
      prophet::lint::apply_baseline(result, *parsed, !options.changed.has_value());
    } else if (!baseline_path.empty()) {
      std::fprintf(stderr, "prophet_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    out << prophet::lint::to_sarif(result);
    if (!out) {
      std::fprintf(stderr, "prophet_lint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
  }

  for (const auto& d : result.diagnostics) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!quiet) {
    for (const auto& s : result.suppressions) {
      std::printf("note: %s:%d: allow(%s) used %dx — %s\n", s.file.c_str(), s.line,
                  s.rule.c_str(), s.uses,
                  s.justification.empty() ? "(no justification)" : s.justification.c_str());
    }
    std::printf("prophet_lint: %zu file(s), %zu diagnostic(s), %zu suppression(s)\n",
                files.size(), result.diagnostics.size(), result.suppressions.size());
  }
  return result.diagnostics.empty() ? 0 : 1;
}
