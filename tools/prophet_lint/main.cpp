// prophet_lint CLI.
//
//   prophet_lint [--root DIR] [--config FILE] [--quiet] <path>...
//
// Paths are files or directories, repo-relative (run from the repo root, or
// pass --root). Directories are walked recursively for C++ sources; fixture
// and build trees are skipped unless a file is named explicitly. Exit status
// is non-zero iff any diagnostic fires.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "prophet_lint/lint.hpp"

namespace fs = std::filesystem;
using prophet::lint::Config;
using prophet::lint::SourceFile;

namespace {

const char* kDefaultConfig = "tools/prophet_lint/prophet_lint.conf";

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  for (const char* e : {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx", ".ipp"}) {
    if (ext == e) return true;
  }
  return false;
}

bool skip_directory(const std::string& name) {
  return name == "lint_fixtures" || name == ".git" || name == "third_party" ||
         name == "external" || name.rfind("build", 0) == 0;
}

std::string read_file(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  bool quiet = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: prophet_lint [--root DIR] [--config FILE] [--quiet] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prophet_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "prophet_lint: no input paths (try --help)\n");
    return 2;
  }

  const fs::path root_path{root};
  Config cfg;
  {
    const fs::path conf =
        config_path.empty() ? root_path / kDefaultConfig : fs::path{config_path};
    bool ok = false;
    const std::string text = read_file(conf, &ok);
    if (ok) {
      std::string error;
      const auto parsed = prophet::lint::parse_config(text, &error);
      if (!parsed) {
        std::fprintf(stderr, "prophet_lint: %s: %s\n", conf.string().c_str(),
                     error.c_str());
        return 2;
      }
      cfg = *parsed;
    } else if (!config_path.empty()) {
      std::fprintf(stderr, "prophet_lint: cannot read config %s\n",
                   config_path.c_str());
      return 2;
    }
    // With no config file at all, run with built-in defaults (no sanctioned
    // files, no layering table).
  }

  // Collect sources. std::map keys keep the scan order stable across
  // filesystems, so diagnostics are deterministic too.
  std::map<std::string, fs::path> sources;
  for (const std::string& input : inputs) {
    const fs::path abs = root_path / input;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      sources.emplace(fs::path(input).generic_string(), abs);
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      std::fprintf(stderr, "prophet_lint: no such file or directory: %s\n",
                   input.c_str());
      return 2;
    }
    fs::recursive_directory_iterator it(abs, fs::directory_options::skip_permission_denied,
                                        ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && skip_directory(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !has_source_extension(it->path())) continue;
      const fs::path rel = fs::relative(it->path(), root_path, ec);
      sources.emplace((ec ? it->path() : rel).generic_string(), it->path());
    }
  }

  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [rel, abs] : sources) {
    bool ok = false;
    std::string content = read_file(abs, &ok);
    if (!ok) {
      std::fprintf(stderr, "prophet_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    files.push_back(SourceFile{rel, std::move(content)});
  }

  const auto result = prophet::lint::run(cfg, files);

  for (const auto& d : result.diagnostics) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!quiet) {
    for (const auto& s : result.suppressions) {
      std::printf("note: %s:%d: allow(%s) used %dx — %s\n", s.file.c_str(), s.line,
                  s.rule.c_str(), s.uses,
                  s.justification.empty() ? "(no justification)" : s.justification.c_str());
    }
    std::printf("prophet_lint: %zu file(s), %zu diagnostic(s), %zu suppression(s)\n",
                files.size(), result.diagnostics.size(), result.suppressions.size());
  }
  return result.diagnostics.empty() ? 0 : 1;
}
