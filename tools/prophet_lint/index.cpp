#include "prophet_lint/index.hpp"

#include <algorithm>
#include <cctype>

namespace prophet::lint::internal {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Ident && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

// Lexically normalize "a/b/../c" and "a/./b".
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::string part = path.substr(
        start, slash == std::string::npos ? std::string::npos : slash - start);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

std::string src_module(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

bool all_caps_macro(const std::string& s) {
  if (s.size() < 2) return false;
  bool letter = false;
  for (const char c : s) {
    if (c >= 'A' && c <= 'Z') {
      letter = true;
    } else if (c != '_' && (c < '0' || c > '9')) {
      return false;
    }
  }
  return letter;
}

// Namespace-scope mutable variables. Brace contexts are classified by the
// statement that opens them: a '{' whose statement starts with `namespace`
// keeps us at namespace scope, anything else (functions, classes, enums,
// initializer braces) does not. Within namespace scope, a statement is a
// mutable variable declaration when it has no parentheses (functions), no
// const/constexpr, does not start with a type-introducing or alias keyword,
// and ends with a plain identifier declarator.
void collect_globals(const TokenizedFile& tf, std::vector<GlobalVar>& out) {
  const auto& toks = tf.tokens;
  static const std::set<std::string> kSkipFirst = {
      "namespace", "using", "typedef", "struct", "class",  "enum",
      "union",     "extern", "friend", "template", "static_assert",
      "public",    "private", "protected", "operator"};

  std::vector<bool> ns_stack;  // true = namespace brace
  std::size_t stmt_start = 0;

  const auto at_namespace_scope = [&] {
    return std::all_of(ns_stack.begin(), ns_stack.end(), [](bool b) { return b; });
  };

  const auto eval_span = [&](std::size_t lo, std::size_t hi) {
    if (hi <= lo) return;
    if (toks[lo].kind == TokKind::Ident && kSkipFirst.count(toks[lo].text) != 0) return;
    std::size_t end = hi;  // stop at the first '=' (the initializer is irrelevant)
    for (std::size_t k = lo; k < hi; ++k) {
      if (is_punct(toks[k], "=")) {
        end = k;
        break;
      }
    }
    if (end - lo < 2) return;
    for (std::size_t k = lo; k < end; ++k) {
      if (toks[k].kind == TokKind::Ident &&
          (toks[k].text == "const" || toks[k].text == "constexpr" ||
           toks[k].text == "constinit" || toks[k].text == "operator")) {
        return;
      }
      if (toks[k].kind == TokKind::Punct &&
          (toks[k].text == "(" || toks[k].text == ")" || toks[k].text == "[")) {
        return;
      }
    }
    const Token& name = toks[end - 1];
    if (name.kind != TokKind::Ident || all_caps_macro(name.text)) return;
    out.push_back(GlobalVar{name.text, name.line});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Punct) continue;
    const std::string& p = toks[i].text;
    if (p == ";") {
      if (at_namespace_scope()) eval_span(stmt_start, i);
      stmt_start = i + 1;
    } else if (p == "{") {
      // Classified by CONTAINING the `namespace` keyword, not starting with
      // it: swallowed preprocessor directives (`#pragma once` leaves an
      // `once` token) can precede it in the statement span. A `namespace`
      // token followed by `{` in the same statement is always a definition —
      // alias (`namespace a = b;`) and using-directives end in ';'.
      bool ns = false;
      for (std::size_t k = stmt_start; k < i; ++k) {
        if (is_ident(toks[k], "namespace")) {
          ns = true;
          break;
        }
      }
      if (at_namespace_scope() && !ns) eval_span(stmt_start, i);
      ns_stack.push_back(ns);
      stmt_start = i + 1;
    } else if (p == "}") {
      if (!ns_stack.empty()) ns_stack.pop_back();
      stmt_start = i + 1;
    }
  }
}

// Unit-tagged function signature collection. A declaration site looks like
//   <ret-tokens> name ( T1 p1_ms, T2 p2, ... ) <;|{|const|noexcept|override|->>
// Call sites are rejected structurally: every recorded parameter must be a
// multi-token type+name sequence made of plain type syntax (no operators or
// literals), and the token before `name` must be part of a declarator, not a
// statement boundary or member access.
void collect_functions(const std::string& path, const TokenizedFile& tf,
                       std::map<std::string, FunctionSig>& out) {
  const auto& toks = tf.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || !is_punct(toks[i + 1], "(")) continue;
    if (all_caps_macro(toks[i].text)) continue;
    if (i == 0) continue;
    const Token& prev = toks[i - 1];
    const bool declarator_ctx =
        prev.kind == TokKind::Ident
            ? (prev.text != "return" && prev.text != "if" && prev.text != "while" &&
               prev.text != "switch" && prev.text != "for" && prev.text != "case" &&
               prev.text != "new" && prev.text != "delete" && prev.text != "co_return")
            : (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&") ||
               is_punct(prev, "::"));
    if (!declarator_ctx) continue;

    // Parse the parameter list at depth 1.
    int depth = 0;
    std::size_t close = 0;
    std::vector<std::pair<std::size_t, std::size_t>> params;  // token spans
    std::size_t param_start = i + 2;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::Punct) continue;
      const std::string& p = toks[j].text;
      if (p == "(") {
        ++depth;
      } else if (p == ")") {
        if (--depth == 0) {
          if (j > param_start) params.emplace_back(param_start, j);
          close = j;
          break;
        }
      } else if (p == "," && depth == 1) {
        if (j > param_start) params.emplace_back(param_start, j);
        param_start = j + 1;
      } else if (p == ";" && depth == 1) {
        break;  // mis-parse (operator< or a statement); bail
      }
    }
    if (close == 0 || close + 1 >= toks.size()) continue;
    const Token& after = toks[close + 1];
    const bool decl_tail =
        is_punct(after, ";") || is_punct(after, "{") || is_punct(after, "->") ||
        is_ident(after, "const") || is_ident(after, "noexcept") ||
        is_ident(after, "override") || is_ident(after, "final");
    if (!decl_tail) continue;

    // Validate parameters and extract declared names.
    std::vector<std::string> names;
    bool tagged = false;
    bool shaped = !params.empty();
    for (const auto& [lo, hi_raw] : params) {
      std::size_t hi = hi_raw;  // ignore default arguments
      for (std::size_t k = lo; k < hi_raw; ++k) {
        if (is_punct(toks[k], "=")) {
          hi = k;
          break;
        }
      }
      bool plain = true;
      for (std::size_t k = lo; k < hi; ++k) {
        const Token& t = toks[k];
        if (t.kind == TokKind::Number || t.kind == TokKind::Str ||
            t.kind == TokKind::CharLit) {
          plain = false;
          break;
        }
        if (t.kind == TokKind::Punct && t.text != "*" && t.text != "&" &&
            t.text != "::" && t.text != "<" && t.text != ">" && t.text != "," &&
            t.text != "." && t.text != "(" && t.text != ")") {
          plain = false;
          break;
        }
        if (t.kind == TokKind::Punct && (t.text == "(" || t.text == ")")) {
          plain = false;  // function-pointer params are out of scope
          break;
        }
      }
      if (!plain || hi - lo < 2 || toks[hi - 1].kind != TokKind::Ident) {
        shaped = false;
        break;
      }
      const std::string& name = toks[hi - 1].text;
      names.push_back(name);
      if (!unit_of(name).empty()) tagged = true;
    }
    if (!shaped || !tagged) continue;

    auto [it, inserted] =
        out.emplace(toks[i].text, FunctionSig{path, toks[i].line, names, false});
    if (!inserted && it->second.params != names) it->second.ambiguous = true;
  }
}

}  // namespace

std::string unit_of(const std::string& ident) {
  // Use only the last member-path component ("foo.deadline_ms" -> "deadline_ms").
  static const std::vector<std::pair<std::string, std::string>> kSuffixes = {
      {"_seconds", "s"}, {"_nanos", "ns"}, {"_micros", "us"}, {"_millis", "ms"},
      {"_bytes", "bytes"}, {"_secs", "s"}, {"_gbps", "gbps"}, {"_mbps", "mbps"},
      {"_kbps", "kbps"}, {"_sec", "s"},   {"_bps", "bps"},   {"_ns", "ns"},
      {"_us", "us"},     {"_ms", "ms"},   {"_s", "s"}};
  for (const auto& [suffix, unit] : kSuffixes) {
    if (ident.size() > suffix.size() &&
        ident.compare(ident.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return unit;
    }
  }
  return {};
}

ProjectIndex build_index(const Config& cfg, const std::vector<SourceFile>& files,
                         const std::vector<TokenizedFile>& tokenized) {
  ProjectIndex index;
  const std::size_t n = files.size();
  index.includes.resize(n);
  index.include_edges.resize(n);
  index.included_by.resize(n);
  index.globals.resize(n);
  index.calls_sweep.assign(n, false);
  index.handle_names.resize(n);

  // Known module names (layering table keys plus whatever is on disk) let a
  // quote-include like "net/topology.hpp" resolve to src/net/topology.hpp.
  std::set<std::string> modules;
  for (const auto& [m, deps] : cfg.layering) {
    modules.insert(m);
    modules.insert(deps.begin(), deps.end());
  }
  for (const auto& f : files) {
    const std::string m = src_module(f.path);
    if (!m.empty()) modules.insert(m);
  }
  for (std::size_t i = 0; i < n; ++i) index.by_path.emplace(files[i].path, i);
  const auto& by_path = index.by_path;

  for (std::size_t i = 0; i < n; ++i) {
    for (const IncludeDirective& inc : tokenized[i].includes) {
      ResolvedInclude ri;
      ri.line = inc.line;
      ri.target = inc.target;
      ri.angled = inc.angled;
      if (!inc.angled) {
        const std::size_t slash = inc.target.find('/');
        if (slash != std::string::npos &&
            modules.count(inc.target.substr(0, slash)) != 0) {
          ri.resolved = normalize_path("src/" + inc.target);
        } else {
          const std::string dir = dirname_of(files[i].path);
          ri.resolved = normalize_path(dir.empty() ? inc.target : dir + "/" + inc.target);
        }
        const auto it = by_path.find(ri.resolved);
        if (it != by_path.end()) {
          ri.file_index = static_cast<int>(it->second);
          index.include_edges[i].push_back(it->second);
          index.included_by[it->second].push_back(i);
        }
      }
      index.includes[i].push_back(std::move(ri));
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto& toks = tokenized[i].tokens;
    collect_globals(tokenized[i], index.globals[i]);
    collect_functions(files[i].path, tokenized[i], index.functions);
    for (std::size_t j = 0; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::Ident) continue;
      const bool next_call =
          j + 1 < toks.size() && toks[j + 1].kind == TokKind::Punct &&
          (toks[j + 1].text == "(" || toks[j + 1].text == "<");
      if (next_call && (t.text == "run_sweep" || t.text == "parallel_map" ||
                        t.text == "parallel_for_index")) {
        index.calls_sweep[i] = true;
      }
      if (next_call && toks[j + 1].text == "(" && all_caps_macro(t.text)) {
        ++index.macro_uses[t.text];
      }
      // `FlowId x` / `EventHandle h(...)`: remember every name declared with a
      // handle type (locals, fields, params, handle-returning functions).
      if (cfg.r7_handle_types.count(t.text) != 0 && j + 2 < toks.size() &&
          toks[j + 1].kind == TokKind::Ident && toks[j + 2].kind == TokKind::Punct) {
        const std::string& after = toks[j + 2].text;
        if (after == ";" || after == "=" || after == "{" || after == "," ||
            after == ")" || after == "(") {
          index.handle_names[i].insert(toks[j + 1].text);
        }
      }
    }
  }
  return index;
}

std::set<std::size_t> reverse_include_closure(const ProjectIndex& index,
                                              const std::set<std::size_t>& changed) {
  std::set<std::size_t> out = changed;
  std::vector<std::size_t> queue(changed.begin(), changed.end());
  while (!queue.empty()) {
    const std::size_t cur = queue.back();
    queue.pop_back();
    for (const std::size_t parent : index.included_by[cur]) {
      if (out.insert(parent).second) queue.push_back(parent);
    }
  }
  return out;
}

std::set<std::size_t> forward_include_closure(const ProjectIndex& index,
                                              std::size_t root) {
  std::set<std::size_t> out{root};
  std::vector<std::size_t> queue{root};
  while (!queue.empty()) {
    const std::size_t cur = queue.back();
    queue.pop_back();
    for (const std::size_t child : index.include_edges[cur]) {
      if (out.insert(child).second) queue.push_back(child);
    }
  }
  return out;
}

}  // namespace prophet::lint::internal
