# Smoke-checks the SARIF artifact prophet_lint emits for code scanning:
# run the linter over src/, then assert the document has the 2.1.0 shape
# GitHub's upload action requires. Invoked by the lint_sarif_smoke ctest.
if(NOT DEFINED LINT_BIN OR NOT DEFINED REPO_ROOT OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "sarif_smoke.cmake needs -DLINT_BIN, -DREPO_ROOT, -DOUT_DIR")
endif()

set(sarif "${OUT_DIR}/lint_smoke.sarif")
execute_process(
  COMMAND "${LINT_BIN}" --quiet --sarif "${sarif}" src
  WORKING_DIRECTORY "${REPO_ROOT}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "prophet_lint exited ${rc} on src/ — tree must lint clean")
endif()

file(READ "${sarif}" doc)
foreach(needle
    "\"version\": \"2.1.0\""
    "sarif-schema-2.1.0.json"
    "\"name\": \"prophet_lint\""
    "\"runs\""
    "\"results\""
    "\"id\": \"R1\"" "\"id\": \"R2\"" "\"id\": \"R3\"" "\"id\": \"R4\""
    "\"id\": \"R5\"" "\"id\": \"R6\"" "\"id\": \"R7\"" "\"id\": \"R8\""
    "\"id\": \"R9\"")
  string(FIND "${doc}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "SARIF smoke: missing ${needle} in ${sarif}")
  endif()
endforeach()
message(STATUS "SARIF smoke OK: ${sarif}")
