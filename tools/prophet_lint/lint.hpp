// prophet_lint — determinism & layering static analysis for the Prophet tree.
//
// The golden suite pins schedules and event traces to exact integer-nanosecond
// values; that only stays true if a handful of coding invariants hold across
// the whole simulator. This tool makes them machine-checkable:
//
//   R1  no float/double arithmetic on time values outside the sanctioned
//       boundary files (common/time.hpp and the cost model's conversion points)
//   R2  no range-iteration over std::unordered_map/unordered_set in the
//       scheduling/simulation paths (hash-order nondeterminism)
//   R3  no wall-clock, rand(), std::random_device, or pointer-value ordering
//       in src/ — all randomness routes through common/rng
//   R4  layering: module include edges must match the checked-in allowlist,
//       and the include graph must be acyclic
//   R5  every to-do marker carries an issue tag, e.g. "(#42)"
//   R6  threading discipline: std::thread/mutex/atomic/condition_variable and
//       thread_local are forbidden outside the sanctioned executor files, and
//       mutable namespace-scope state must not be reachable from a parallel
//       sweep's cell closures
//   R7  handle lifetime: slab {slot, generation} handles (sim::EventHandle,
//       net::FlowId) must not be narrowed to a raw slot, compared across
//       pools, or reused after cancel in the same scope
//   R8  unit safety: identifiers tagged _ns/_us/_ms/_s/_bytes/_bps must not
//       mix units in arithmetic, comparison or assignment, and call-site
//       argument units must match the declared parameter's tag
//   R9  check discipline: no side-effecting expressions inside PROPHET_CHECK,
//       and no silently discarded status/optional returns from the
//       config/parse APIs listed in [r9-must-use]
//
// The analyzer is two-pass: pass 1 tokenizes every file (in parallel — see
// RunOptions::threads) and builds a project-wide index (include closure,
// handle-typed names, unit-tagged signatures, namespace-scope state); pass 2
// runs the per-file and cross-file rules over it. Diagnostics are
// `file:line: [rule] message`, deduplicated by (file, line, rule) so a header
// reached through several include paths reports each finding once, and are
// byte-identical at any thread count.
//
// A finding can be waived with a comment that starts with "prophet-lint:"
// followed by allow(<rule>), a colon and a written justification, on the same
// line or the line directly above. Suppressions without a justification, and
// suppressions that no longer fire, are themselves errors (rule id "lint").
// For gradual adoption of new rules there is also a checked-in baseline
// (tools/prophet_lint/baseline.txt) of counted known findings; see
// docs/LINT.md for the full contract and worked examples.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace prophet::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated; drives rule scoping
  std::string content;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R9" or "lint" for suppression/baseline misuse
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string justification;
  int uses = 0;  // number of diagnostics this suppression absorbed
};

struct Config {
  // Path prefixes each rule applies to ("src/" style, '/'-terminated).
  std::vector<std::string> r1_scope{"src/"};
  std::vector<std::string> r2_scope{"src/core/", "src/sched/", "src/net/", "src/sim/"};
  std::vector<std::string> r3_scope{"src/"};
  std::vector<std::string> r6_scope{"src/"};
  std::vector<std::string> r7_scope{"src/"};
  std::vector<std::string> r8_scope{"src/"};
  std::vector<std::string> r9_scope{"src/"};

  // Sanctioned locations: exact paths, or directory prefixes ending '/'.
  std::set<std::string> r1_sanctioned;
  std::set<std::string> r3_sanctioned;
  std::set<std::string> r6_sanctioned{"src/exec/"};  // the executor IS the threading layer
  std::set<std::string> r7_sanctioned;
  std::set<std::string> r8_sanctioned;
  std::set<std::string> r9_sanctioned;

  // R7: type names treated as slab {slot, generation} handles.
  std::set<std::string> r7_handle_types{"EventHandle", "FlowId"};
  // R9: functions whose status/optional return must not be discarded.
  std::set<std::string> r9_must_use;

  // R4: module -> set of modules it may include (modules are the directory
  // names directly under src/). Empty map disables the layering check.
  std::map<std::string, std::set<std::string>> layering;
  // Sanctioned file-level edges that bypass the module table.
  std::set<std::pair<std::string, std::string>> sanctioned_edges;
};

// Parses the prophet_lint.conf format (see tools/prophet_lint/prophet_lint.conf).
// Returns std::nullopt and fills *error on malformed input.
std::optional<Config> parse_config(const std::string& text, std::string* error);

struct Result {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  std::vector<Suppression> suppressions;
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

struct RunOptions {
  // Worker threads for the scan (0 = hardware concurrency). Files are scanned
  // with exec::parallel_map and diagnostics merged in canonical path order,
  // so output is byte-identical at any thread count.
  unsigned threads = 1;
  // Diff-aware mode: when set, only diagnostics for these files — plus every
  // file whose translation unit reaches one of them (reverse include
  // closure) — are emitted. The index is still built over the full file set,
  // so cross-file rules see the whole tree.
  std::optional<std::set<std::string>> changed;
};

Result run(const Config& config, const std::vector<SourceFile>& files);
Result run(const Config& config, const std::vector<SourceFile>& files,
           const RunOptions& options);

// --- baseline (gradual rule adoption) ---------------------------------------
//
// A baseline entry grants a file a counted budget of known findings for one
// rule. Diagnostics beyond the budget still fail; a budget that is no longer
// fully used is itself reported (rule id "lint") so the baseline ratchets
// down. File format: one `<file><TAB><rule><TAB><count>` per line, '#'
// comments allowed.

struct BaselineEntry {
  std::string file;
  std::string rule;
  int count = 0;
};

std::optional<std::vector<BaselineEntry>> parse_baseline(const std::string& text,
                                                         std::string* error);
// Removes up to `count` matching diagnostics per entry from `result`. When
// `check_stale` (full-tree runs, not diff-aware ones), under-used entries
// append a "lint" diagnostic telling the author to shrink the baseline.
void apply_baseline(Result& result, const std::vector<BaselineEntry>& baseline,
                    bool check_stale);
// Serializes the remaining diagnostics as a baseline file.
std::string format_baseline(const Result& result);

// --- SARIF ------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* name;        // short PascalCase rule name
  const char* short_desc;  // one-line description
};
// R1..R9 plus the "lint" meta-rule, in stable order.
const std::vector<RuleInfo>& rule_catalog();

// SARIF 2.1.0 document for GitHub code scanning upload. Deterministic:
// depends only on `result` (which is sorted), never on the environment.
std::string to_sarif(const Result& result);

}  // namespace prophet::lint
