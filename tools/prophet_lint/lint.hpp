// prophet_lint — determinism & layering static analysis for the Prophet tree.
//
// The golden suite pins schedules and event traces to exact integer-nanosecond
// values; that only stays true if a handful of coding invariants hold across
// the whole simulator. This tool makes them machine-checkable:
//
//   R1  no float/double arithmetic on time values outside the sanctioned
//       boundary files (common/time.hpp and the cost model's conversion points)
//   R2  no range-iteration over std::unordered_map/unordered_set in the
//       scheduling/simulation paths (hash-order nondeterminism)
//   R3  no wall-clock, rand(), std::random_device, or pointer-value ordering
//       in src/ — all randomness routes through common/rng
//   R4  layering: module include edges must match the checked-in allowlist,
//       and the include graph must be acyclic
//   R5  every to-do marker carries an issue tag, e.g. "(#42)"
//
// Diagnostics are `file:line: [rule] message`. A finding can be waived with a
// comment that starts with "prophet-lint:" followed by allow(<rule>), a colon
// and a written justification, on the same line or the line directly above.
// Suppressions without a justification, and suppressions that no longer fire,
// are themselves errors (rule id "lint"). docs/DETERMINISM.md has the full
// contract and worked examples.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace prophet::lint {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated; drives rule scoping
  std::string content;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;  // "R1".."R5" or "lint" for suppression misuse
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string justification;
  int uses = 0;  // number of diagnostics this suppression absorbed
};

struct Config {
  // Path prefixes each rule applies to ("src/" style, '/'-terminated).
  std::vector<std::string> r1_scope{"src/"};
  std::vector<std::string> r2_scope{"src/core/", "src/sched/", "src/net/", "src/sim/"};
  std::vector<std::string> r3_scope{"src/"};

  // R1/R3 sanctioned locations: exact paths, or directory prefixes ending '/'.
  std::set<std::string> r1_sanctioned;
  std::set<std::string> r3_sanctioned;

  // R4: module -> set of modules it may include (modules are the directory
  // names directly under src/). Empty map disables the layering check.
  std::map<std::string, std::set<std::string>> layering;
  // Sanctioned file-level edges that bypass the module table.
  std::set<std::pair<std::string, std::string>> sanctioned_edges;
};

// Parses the prophet_lint.conf format (see tools/prophet_lint/prophet_lint.conf).
// Returns std::nullopt and fills *error on malformed input.
std::optional<Config> parse_config(const std::string& text, std::string* error);

struct Result {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  std::vector<Suppression> suppressions;
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

Result run(const Config& config, const std::vector<SourceFile>& files);

}  // namespace prophet::lint
