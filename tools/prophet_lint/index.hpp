// Pass 1 of the two-pass analyzer: a project-wide symbol/field index built
// from the token streams alone (no libclang). Pass 2 rules (R4, R6–R8) read
// it to reason across files: the resolved include graph and its closures,
// names declared with slab-handle types anywhere in the tree, unit-tagged
// function signatures for call-site checking, namespace-scope mutable state,
// and which files hand cells to the parallel sweep executor.
//
// Internal to the linter; not part of the public API.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prophet_lint/lint.hpp"
#include "prophet_lint/tokenizer.hpp"

namespace prophet::lint::internal {

// A quote-include resolved to a repo-relative path (and, when the target is
// part of the scanned set, its file index).
struct ResolvedInclude {
  int line = 0;
  std::string target;    // as written in the directive
  std::string resolved;  // normalized repo-relative path
  int file_index = -1;   // index into the scanned file list, -1 if absent
  bool angled = false;
};

struct GlobalVar {
  std::string name;
  int line = 0;
};

// Declared parameter list of a free/member function, recorded only when at
// least one parameter name carries a unit suffix (see unit_of). Ambiguous
// names (two declarations with different unit signatures) are kept but
// marked, so the call-site check skips them instead of guessing.
struct FunctionSig {
  std::string file;
  int line = 0;
  std::vector<std::string> params;  // declared names; "" for unnamed
  bool ambiguous = false;
};

struct ProjectIndex {
  // Per scanned file, in file order.
  std::vector<std::vector<ResolvedInclude>> includes;
  std::vector<std::vector<std::size_t>> include_edges;  // in-set forward edges
  std::vector<std::vector<std::size_t>> included_by;    // reverse edges
  std::vector<std::vector<GlobalVar>> globals;  // namespace-scope mutable state
  std::vector<bool> calls_sweep;  // uses run_sweep / parallel_map / parallel_for_index
  // Names declared with an R7 handle type in THIS file. Deliberately not
  // unioned across the tree: `FlowId id` in flow_network must not taint an
  // unrelated `worker.id` elsewhere.
  std::vector<std::set<std::string>> handle_names;

  // Project-wide.
  std::map<std::string, std::size_t> by_path;    // path -> file index
  std::map<std::string, FunctionSig> functions;  // unit-tagged signatures
  std::map<std::string, int> macro_uses;  // ALL_CAPS invocation counts
};

ProjectIndex build_index(const Config& cfg, const std::vector<SourceFile>& files,
                         const std::vector<TokenizedFile>& tokenized);

// Canonical unit tag of an identifier ("" when untagged): "ns", "us", "ms",
// "s", "bytes", "bps"/"mbps"/"gbps". Member accesses should pass the last
// path component only.
std::string unit_of(const std::string& ident);

// Files whose translation units see any file in `changed` (the changed files
// themselves plus everything that transitively includes one of them).
std::set<std::size_t> reverse_include_closure(const ProjectIndex& index,
                                              const std::set<std::size_t>& changed);

// Files a sweep-calling file's translation unit pulls in (itself included).
std::set<std::size_t> forward_include_closure(const ProjectIndex& index, std::size_t root);

}  // namespace prophet::lint::internal
