// Internal interfaces between the lint driver (lint.cpp) and the rule
// implementations (rules.cpp / rules2.cpp). Not part of the public API.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "prophet_lint/index.hpp"
#include "prophet_lint/lint.hpp"
#include "prophet_lint/tokenizer.hpp"

namespace prophet::lint::internal {

// True when `path` starts with one of the '/'-terminated prefixes.
bool path_in_scope(const std::vector<std::string>& prefixes, const std::string& path);
// True when `path` equals an entry, or starts with an entry ending in '/'.
bool path_sanctioned(const std::set<std::string>& entries, const std::string& path);

// Names declared (in this file) with an unordered container type, including
// names declared via a local `using X = std::unordered_map<...>` alias.
std::set<std::string> collect_unordered_names(const TokenizedFile& tf);

// --- per-file rules (safe to run in parallel, one file per call) ------------
void check_float_time(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                      std::vector<Diagnostic>& out);
void check_unordered_iteration(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                               const std::set<std::string>& unordered_names,
                               std::vector<Diagnostic>& out);
void check_nondeterminism(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                          std::vector<Diagnostic>& out);
void check_todo_tags(const SourceFile& f, const TokenizedFile& tf,
                     std::vector<Diagnostic>& out);
// R6 (first half): threading primitives/headers outside the sanctioned files.
void check_threading_primitives(const SourceFile& f, const TokenizedFile& tf,
                                const Config& cfg, std::vector<Diagnostic>& out);
// R7: handle narrowing, cross-pool comparison, use-after-cancel.
void check_handle_lifetime(const SourceFile& f, const TokenizedFile& tf,
                           const Config& cfg, const ProjectIndex& index,
                           std::vector<Diagnostic>& out);
// R8: cross-unit arithmetic/assignment plus call-site unit mismatches.
void check_unit_safety(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                       const ProjectIndex& index, std::vector<Diagnostic>& out);
// R9: side effects inside PROPHET_CHECK, discarded must-use returns.
void check_check_discipline(const SourceFile& f, const TokenizedFile& tf,
                            const Config& cfg, std::vector<Diagnostic>& out);
// R4 (module-edge half): layering violations for this file's includes.
void check_layering_edges(const SourceFile& f, std::size_t file_index,
                          const Config& cfg, const ProjectIndex& index,
                          std::vector<Diagnostic>& out);

// --- whole-project rules (single-threaded, need every file) -----------------
// R4 (cycle half): include-graph cycles over the scanned set.
void check_include_cycles(const std::vector<SourceFile>& files,
                          const ProjectIndex& index, std::vector<Diagnostic>& out);
// R6 (second half): mutable namespace-scope state in the include closure of
// any file that hands cells to the sweep executor.
void check_sweep_shared_state(const std::vector<SourceFile>& files, const Config& cfg,
                              const ProjectIndex& index,
                              std::vector<Diagnostic>& out);

}  // namespace prophet::lint::internal
