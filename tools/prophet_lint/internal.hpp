// Internal interfaces between the lint driver (lint.cpp) and the rule
// implementations (rules.cpp). Not part of the public API.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "prophet_lint/lint.hpp"
#include "prophet_lint/tokenizer.hpp"

namespace prophet::lint::internal {

// True when `path` starts with one of the '/'-terminated prefixes.
bool path_in_scope(const std::vector<std::string>& prefixes, const std::string& path);
// True when `path` equals an entry, or starts with an entry ending in '/'.
bool path_sanctioned(const std::set<std::string>& entries, const std::string& path);

// Names declared (in this file) with an unordered container type, including
// names declared via a local `using X = std::unordered_map<...>` alias.
std::set<std::string> collect_unordered_names(const TokenizedFile& tf);

void check_float_time(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                      std::vector<Diagnostic>& out);
void check_unordered_iteration(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                               const std::set<std::string>& unordered_names,
                               std::vector<Diagnostic>& out);
void check_nondeterminism(const SourceFile& f, const TokenizedFile& tf, const Config& cfg,
                          std::vector<Diagnostic>& out);
void check_todo_tags(const SourceFile& f, const TokenizedFile& tf,
                     std::vector<Diagnostic>& out);
void check_layering(const std::vector<SourceFile>& files,
                    const std::vector<TokenizedFile>& tokenized, const Config& cfg,
                    std::vector<Diagnostic>& out);

}  // namespace prophet::lint::internal
