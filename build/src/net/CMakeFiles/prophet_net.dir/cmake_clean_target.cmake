file(REMOVE_RECURSE
  "libprophet_net.a"
)
