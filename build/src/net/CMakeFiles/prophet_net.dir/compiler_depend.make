# Empty compiler generated dependencies file for prophet_net.
# This may be replaced when dependencies are built.
