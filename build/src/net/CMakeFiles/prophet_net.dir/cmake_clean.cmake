file(REMOVE_RECURSE
  "CMakeFiles/prophet_net.dir/cost_model.cpp.o"
  "CMakeFiles/prophet_net.dir/cost_model.cpp.o.d"
  "CMakeFiles/prophet_net.dir/flow_network.cpp.o"
  "CMakeFiles/prophet_net.dir/flow_network.cpp.o.d"
  "CMakeFiles/prophet_net.dir/monitor.cpp.o"
  "CMakeFiles/prophet_net.dir/monitor.cpp.o.d"
  "libprophet_net.a"
  "libprophet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
