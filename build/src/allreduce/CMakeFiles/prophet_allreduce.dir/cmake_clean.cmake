file(REMOVE_RECURSE
  "CMakeFiles/prophet_allreduce.dir/cluster.cpp.o"
  "CMakeFiles/prophet_allreduce.dir/cluster.cpp.o.d"
  "CMakeFiles/prophet_allreduce.dir/coordinator.cpp.o"
  "CMakeFiles/prophet_allreduce.dir/coordinator.cpp.o.d"
  "CMakeFiles/prophet_allreduce.dir/ring.cpp.o"
  "CMakeFiles/prophet_allreduce.dir/ring.cpp.o.d"
  "CMakeFiles/prophet_allreduce.dir/worker.cpp.o"
  "CMakeFiles/prophet_allreduce.dir/worker.cpp.o.d"
  "libprophet_allreduce.a"
  "libprophet_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
