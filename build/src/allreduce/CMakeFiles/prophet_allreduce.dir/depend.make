# Empty dependencies file for prophet_allreduce.
# This may be replaced when dependencies are built.
