file(REMOVE_RECURSE
  "libprophet_allreduce.a"
)
