file(REMOVE_RECURSE
  "libprophet_core.a"
)
