
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_planner.cpp" "src/core/CMakeFiles/prophet_core.dir/block_planner.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/block_planner.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/prophet_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/prophet_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/core/CMakeFiles/prophet_core.dir/perf_model.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/prophet_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/prophet_scheduler.cpp" "src/core/CMakeFiles/prophet_core.dir/prophet_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/prophet_core.dir/prophet_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prophet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prophet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/prophet_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/prophet_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prophet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
