# Empty compiler generated dependencies file for prophet_core.
# This may be replaced when dependencies are built.
