file(REMOVE_RECURSE
  "CMakeFiles/prophet_core.dir/block_planner.cpp.o"
  "CMakeFiles/prophet_core.dir/block_planner.cpp.o.d"
  "CMakeFiles/prophet_core.dir/local_search.cpp.o"
  "CMakeFiles/prophet_core.dir/local_search.cpp.o.d"
  "CMakeFiles/prophet_core.dir/oracle.cpp.o"
  "CMakeFiles/prophet_core.dir/oracle.cpp.o.d"
  "CMakeFiles/prophet_core.dir/perf_model.cpp.o"
  "CMakeFiles/prophet_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/prophet_core.dir/profile.cpp.o"
  "CMakeFiles/prophet_core.dir/profile.cpp.o.d"
  "CMakeFiles/prophet_core.dir/prophet_scheduler.cpp.o"
  "CMakeFiles/prophet_core.dir/prophet_scheduler.cpp.o.d"
  "libprophet_core.a"
  "libprophet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
