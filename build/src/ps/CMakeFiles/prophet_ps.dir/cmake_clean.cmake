file(REMOVE_RECURSE
  "CMakeFiles/prophet_ps.dir/cluster.cpp.o"
  "CMakeFiles/prophet_ps.dir/cluster.cpp.o.d"
  "CMakeFiles/prophet_ps.dir/server.cpp.o"
  "CMakeFiles/prophet_ps.dir/server.cpp.o.d"
  "CMakeFiles/prophet_ps.dir/strategy.cpp.o"
  "CMakeFiles/prophet_ps.dir/strategy.cpp.o.d"
  "CMakeFiles/prophet_ps.dir/trace_export.cpp.o"
  "CMakeFiles/prophet_ps.dir/trace_export.cpp.o.d"
  "CMakeFiles/prophet_ps.dir/worker.cpp.o"
  "CMakeFiles/prophet_ps.dir/worker.cpp.o.d"
  "libprophet_ps.a"
  "libprophet_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
