file(REMOVE_RECURSE
  "libprophet_ps.a"
)
