# Empty dependencies file for prophet_ps.
# This may be replaced when dependencies are built.
