# Empty compiler generated dependencies file for prophet_dnn.
# This may be replaced when dependencies are built.
