file(REMOVE_RECURSE
  "libprophet_dnn.a"
)
