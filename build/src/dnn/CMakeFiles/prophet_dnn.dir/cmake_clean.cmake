file(REMOVE_RECURSE
  "CMakeFiles/prophet_dnn.dir/gpu.cpp.o"
  "CMakeFiles/prophet_dnn.dir/gpu.cpp.o.d"
  "CMakeFiles/prophet_dnn.dir/iteration_model.cpp.o"
  "CMakeFiles/prophet_dnn.dir/iteration_model.cpp.o.d"
  "CMakeFiles/prophet_dnn.dir/model_builder.cpp.o"
  "CMakeFiles/prophet_dnn.dir/model_builder.cpp.o.d"
  "CMakeFiles/prophet_dnn.dir/model_zoo.cpp.o"
  "CMakeFiles/prophet_dnn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/prophet_dnn.dir/stepwise.cpp.o"
  "CMakeFiles/prophet_dnn.dir/stepwise.cpp.o.d"
  "libprophet_dnn.a"
  "libprophet_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
