
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/gpu.cpp" "src/dnn/CMakeFiles/prophet_dnn.dir/gpu.cpp.o" "gcc" "src/dnn/CMakeFiles/prophet_dnn.dir/gpu.cpp.o.d"
  "/root/repo/src/dnn/iteration_model.cpp" "src/dnn/CMakeFiles/prophet_dnn.dir/iteration_model.cpp.o" "gcc" "src/dnn/CMakeFiles/prophet_dnn.dir/iteration_model.cpp.o.d"
  "/root/repo/src/dnn/model_builder.cpp" "src/dnn/CMakeFiles/prophet_dnn.dir/model_builder.cpp.o" "gcc" "src/dnn/CMakeFiles/prophet_dnn.dir/model_builder.cpp.o.d"
  "/root/repo/src/dnn/model_zoo.cpp" "src/dnn/CMakeFiles/prophet_dnn.dir/model_zoo.cpp.o" "gcc" "src/dnn/CMakeFiles/prophet_dnn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/dnn/stepwise.cpp" "src/dnn/CMakeFiles/prophet_dnn.dir/stepwise.cpp.o" "gcc" "src/dnn/CMakeFiles/prophet_dnn.dir/stepwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prophet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
