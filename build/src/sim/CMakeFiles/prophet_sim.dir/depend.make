# Empty dependencies file for prophet_sim.
# This may be replaced when dependencies are built.
