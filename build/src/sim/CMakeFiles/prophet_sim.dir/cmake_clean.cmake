file(REMOVE_RECURSE
  "CMakeFiles/prophet_sim.dir/simulator.cpp.o"
  "CMakeFiles/prophet_sim.dir/simulator.cpp.o.d"
  "libprophet_sim.a"
  "libprophet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
