file(REMOVE_RECURSE
  "libprophet_sim.a"
)
