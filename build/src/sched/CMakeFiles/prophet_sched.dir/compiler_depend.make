# Empty compiler generated dependencies file for prophet_sched.
# This may be replaced when dependencies are built.
