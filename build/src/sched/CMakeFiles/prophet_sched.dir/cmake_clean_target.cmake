file(REMOVE_RECURSE
  "libprophet_sched.a"
)
