
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bayesopt.cpp" "src/sched/CMakeFiles/prophet_sched.dir/bayesopt.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/bayesopt.cpp.o.d"
  "/root/repo/src/sched/bytescheduler.cpp" "src/sched/CMakeFiles/prophet_sched.dir/bytescheduler.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/bytescheduler.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/prophet_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/mg_wfbp.cpp" "src/sched/CMakeFiles/prophet_sched.dir/mg_wfbp.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/mg_wfbp.cpp.o.d"
  "/root/repo/src/sched/p3.cpp" "src/sched/CMakeFiles/prophet_sched.dir/p3.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/p3.cpp.o.d"
  "/root/repo/src/sched/partition_queue.cpp" "src/sched/CMakeFiles/prophet_sched.dir/partition_queue.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/partition_queue.cpp.o.d"
  "/root/repo/src/sched/task.cpp" "src/sched/CMakeFiles/prophet_sched.dir/task.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/task.cpp.o.d"
  "/root/repo/src/sched/tictac.cpp" "src/sched/CMakeFiles/prophet_sched.dir/tictac.cpp.o" "gcc" "src/sched/CMakeFiles/prophet_sched.dir/tictac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prophet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
