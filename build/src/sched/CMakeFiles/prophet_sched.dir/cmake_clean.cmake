file(REMOVE_RECURSE
  "CMakeFiles/prophet_sched.dir/bayesopt.cpp.o"
  "CMakeFiles/prophet_sched.dir/bayesopt.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/bytescheduler.cpp.o"
  "CMakeFiles/prophet_sched.dir/bytescheduler.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/fifo.cpp.o"
  "CMakeFiles/prophet_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/mg_wfbp.cpp.o"
  "CMakeFiles/prophet_sched.dir/mg_wfbp.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/p3.cpp.o"
  "CMakeFiles/prophet_sched.dir/p3.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/partition_queue.cpp.o"
  "CMakeFiles/prophet_sched.dir/partition_queue.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/task.cpp.o"
  "CMakeFiles/prophet_sched.dir/task.cpp.o.d"
  "CMakeFiles/prophet_sched.dir/tictac.cpp.o"
  "CMakeFiles/prophet_sched.dir/tictac.cpp.o.d"
  "libprophet_sched.a"
  "libprophet_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
