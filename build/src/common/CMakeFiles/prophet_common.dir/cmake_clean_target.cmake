file(REMOVE_RECURSE
  "libprophet_common.a"
)
