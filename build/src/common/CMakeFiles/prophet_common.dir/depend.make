# Empty dependencies file for prophet_common.
# This may be replaced when dependencies are built.
