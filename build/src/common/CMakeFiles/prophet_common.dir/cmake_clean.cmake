file(REMOVE_RECURSE
  "CMakeFiles/prophet_common.dir/csv.cpp.o"
  "CMakeFiles/prophet_common.dir/csv.cpp.o.d"
  "CMakeFiles/prophet_common.dir/flags.cpp.o"
  "CMakeFiles/prophet_common.dir/flags.cpp.o.d"
  "CMakeFiles/prophet_common.dir/log.cpp.o"
  "CMakeFiles/prophet_common.dir/log.cpp.o.d"
  "CMakeFiles/prophet_common.dir/rng.cpp.o"
  "CMakeFiles/prophet_common.dir/rng.cpp.o.d"
  "CMakeFiles/prophet_common.dir/stats.cpp.o"
  "CMakeFiles/prophet_common.dir/stats.cpp.o.d"
  "CMakeFiles/prophet_common.dir/table.cpp.o"
  "CMakeFiles/prophet_common.dir/table.cpp.o.d"
  "CMakeFiles/prophet_common.dir/time_series.cpp.o"
  "CMakeFiles/prophet_common.dir/time_series.cpp.o.d"
  "libprophet_common.a"
  "libprophet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
