
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/chrome_trace.cpp" "src/metrics/CMakeFiles/prophet_metrics.dir/chrome_trace.cpp.o" "gcc" "src/metrics/CMakeFiles/prophet_metrics.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/metrics/gpu_tracker.cpp" "src/metrics/CMakeFiles/prophet_metrics.dir/gpu_tracker.cpp.o" "gcc" "src/metrics/CMakeFiles/prophet_metrics.dir/gpu_tracker.cpp.o.d"
  "/root/repo/src/metrics/sweep.cpp" "src/metrics/CMakeFiles/prophet_metrics.dir/sweep.cpp.o" "gcc" "src/metrics/CMakeFiles/prophet_metrics.dir/sweep.cpp.o.d"
  "/root/repo/src/metrics/training_metrics.cpp" "src/metrics/CMakeFiles/prophet_metrics.dir/training_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/prophet_metrics.dir/training_metrics.cpp.o.d"
  "/root/repo/src/metrics/transfer_log.cpp" "src/metrics/CMakeFiles/prophet_metrics.dir/transfer_log.cpp.o" "gcc" "src/metrics/CMakeFiles/prophet_metrics.dir/transfer_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prophet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/prophet_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
