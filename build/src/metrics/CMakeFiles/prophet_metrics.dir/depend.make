# Empty dependencies file for prophet_metrics.
# This may be replaced when dependencies are built.
