file(REMOVE_RECURSE
  "libprophet_metrics.a"
)
