file(REMOVE_RECURSE
  "CMakeFiles/prophet_metrics.dir/chrome_trace.cpp.o"
  "CMakeFiles/prophet_metrics.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/prophet_metrics.dir/gpu_tracker.cpp.o"
  "CMakeFiles/prophet_metrics.dir/gpu_tracker.cpp.o.d"
  "CMakeFiles/prophet_metrics.dir/sweep.cpp.o"
  "CMakeFiles/prophet_metrics.dir/sweep.cpp.o.d"
  "CMakeFiles/prophet_metrics.dir/training_metrics.cpp.o"
  "CMakeFiles/prophet_metrics.dir/training_metrics.cpp.o.d"
  "CMakeFiles/prophet_metrics.dir/transfer_log.cpp.o"
  "CMakeFiles/prophet_metrics.dir/transfer_log.cpp.o.d"
  "libprophet_metrics.a"
  "libprophet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
