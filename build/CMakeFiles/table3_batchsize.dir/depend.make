# Empty dependencies file for table3_batchsize.
# This may be replaced when dependencies are built.
