file(REMOVE_RECURSE
  "CMakeFiles/table3_batchsize.dir/bench/table3_batchsize.cpp.o"
  "CMakeFiles/table3_batchsize.dir/bench/table3_batchsize.cpp.o.d"
  "bench/table3_batchsize"
  "bench/table3_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
