file(REMOVE_RECURSE
  "CMakeFiles/fig13_runtime_overhead.dir/bench/fig13_runtime_overhead.cpp.o"
  "CMakeFiles/fig13_runtime_overhead.dir/bench/fig13_runtime_overhead.cpp.o.d"
  "bench/fig13_runtime_overhead"
  "bench/fig13_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
