# Empty dependencies file for fig13_runtime_overhead.
# This may be replaced when dependencies are built.
