# Empty dependencies file for fig11_transfer_times.
# This may be replaced when dependencies are built.
