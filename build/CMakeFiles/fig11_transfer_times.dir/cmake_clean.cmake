file(REMOVE_RECURSE
  "CMakeFiles/fig11_transfer_times.dir/bench/fig11_transfer_times.cpp.o"
  "CMakeFiles/fig11_transfer_times.dir/bench/fig11_transfer_times.cpp.o.d"
  "bench/fig11_transfer_times"
  "bench/fig11_transfer_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_transfer_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
