file(REMOVE_RECURSE
  "CMakeFiles/fig08_training_rate.dir/bench/fig08_training_rate.cpp.o"
  "CMakeFiles/fig08_training_rate.dir/bench/fig08_training_rate.cpp.o.d"
  "bench/fig08_training_rate"
  "bench/fig08_training_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_training_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
