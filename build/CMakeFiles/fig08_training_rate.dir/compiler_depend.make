# Empty compiler generated dependencies file for fig08_training_rate.
# This may be replaced when dependencies are built.
