# Empty compiler generated dependencies file for prophet_bench_common.
# This may be replaced when dependencies are built.
