file(REMOVE_RECURSE
  "CMakeFiles/prophet_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/prophet_bench_common.dir/bench/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prophet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
