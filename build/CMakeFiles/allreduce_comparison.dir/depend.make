# Empty dependencies file for allreduce_comparison.
# This may be replaced when dependencies are built.
