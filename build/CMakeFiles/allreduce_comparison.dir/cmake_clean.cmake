file(REMOVE_RECURSE
  "CMakeFiles/allreduce_comparison.dir/bench/allreduce_comparison.cpp.o"
  "CMakeFiles/allreduce_comparison.dir/bench/allreduce_comparison.cpp.o.d"
  "bench/allreduce_comparison"
  "bench/allreduce_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
