file(REMOVE_RECURSE
  "CMakeFiles/fig04_stepwise.dir/bench/fig04_stepwise.cpp.o"
  "CMakeFiles/fig04_stepwise.dir/bench/fig04_stepwise.cpp.o.d"
  "bench/fig04_stepwise"
  "bench/fig04_stepwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stepwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
