# Empty compiler generated dependencies file for fig04_stepwise.
# This may be replaced when dependencies are built.
