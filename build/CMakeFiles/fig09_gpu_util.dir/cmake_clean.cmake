file(REMOVE_RECURSE
  "CMakeFiles/fig09_gpu_util.dir/bench/fig09_gpu_util.cpp.o"
  "CMakeFiles/fig09_gpu_util.dir/bench/fig09_gpu_util.cpp.o.d"
  "bench/fig09_gpu_util"
  "bench/fig09_gpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
