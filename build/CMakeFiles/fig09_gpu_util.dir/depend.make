# Empty dependencies file for fig09_gpu_util.
# This may be replaced when dependencies are built.
