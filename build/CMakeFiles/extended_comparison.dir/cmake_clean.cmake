file(REMOVE_RECURSE
  "CMakeFiles/extended_comparison.dir/bench/extended_comparison.cpp.o"
  "CMakeFiles/extended_comparison.dir/bench/extended_comparison.cpp.o.d"
  "bench/extended_comparison"
  "bench/extended_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
