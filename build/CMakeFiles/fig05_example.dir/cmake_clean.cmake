file(REMOVE_RECURSE
  "CMakeFiles/fig05_example.dir/bench/fig05_example.cpp.o"
  "CMakeFiles/fig05_example.dir/bench/fig05_example.cpp.o.d"
  "bench/fig05_example"
  "bench/fig05_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
