file(REMOVE_RECURSE
  "CMakeFiles/test_chrome_trace.dir/test_chrome_trace.cpp.o"
  "CMakeFiles/test_chrome_trace.dir/test_chrome_trace.cpp.o.d"
  "test_chrome_trace"
  "test_chrome_trace.pdb"
  "test_chrome_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrome_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
