# Empty compiler generated dependencies file for test_chrome_trace.
# This may be replaced when dependencies are built.
