file(REMOVE_RECURSE
  "CMakeFiles/test_partition_queue.dir/test_partition_queue.cpp.o"
  "CMakeFiles/test_partition_queue.dir/test_partition_queue.cpp.o.d"
  "test_partition_queue"
  "test_partition_queue.pdb"
  "test_partition_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
