# Empty dependencies file for test_partition_queue.
# This may be replaced when dependencies are built.
