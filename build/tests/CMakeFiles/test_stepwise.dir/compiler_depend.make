# Empty compiler generated dependencies file for test_stepwise.
# This may be replaced when dependencies are built.
