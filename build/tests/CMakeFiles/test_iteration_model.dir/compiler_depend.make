# Empty compiler generated dependencies file for test_iteration_model.
# This may be replaced when dependencies are built.
