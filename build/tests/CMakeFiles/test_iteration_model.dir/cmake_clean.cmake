file(REMOVE_RECURSE
  "CMakeFiles/test_iteration_model.dir/test_iteration_model.cpp.o"
  "CMakeFiles/test_iteration_model.dir/test_iteration_model.cpp.o.d"
  "test_iteration_model"
  "test_iteration_model.pdb"
  "test_iteration_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iteration_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
