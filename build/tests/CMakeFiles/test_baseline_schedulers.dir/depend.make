# Empty dependencies file for test_baseline_schedulers.
# This may be replaced when dependencies are built.
