file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_schedulers.dir/test_baseline_schedulers.cpp.o"
  "CMakeFiles/test_baseline_schedulers.dir/test_baseline_schedulers.cpp.o.d"
  "test_baseline_schedulers"
  "test_baseline_schedulers.pdb"
  "test_baseline_schedulers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
