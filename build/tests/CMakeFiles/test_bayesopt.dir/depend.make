# Empty dependencies file for test_bayesopt.
# This may be replaced when dependencies are built.
