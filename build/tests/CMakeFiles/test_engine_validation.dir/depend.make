# Empty dependencies file for test_engine_validation.
# This may be replaced when dependencies are built.
