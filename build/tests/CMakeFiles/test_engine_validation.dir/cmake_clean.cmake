file(REMOVE_RECURSE
  "CMakeFiles/test_engine_validation.dir/test_engine_validation.cpp.o"
  "CMakeFiles/test_engine_validation.dir/test_engine_validation.cpp.o.d"
  "test_engine_validation"
  "test_engine_validation.pdb"
  "test_engine_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
