file(REMOVE_RECURSE
  "CMakeFiles/test_block_planner.dir/test_block_planner.cpp.o"
  "CMakeFiles/test_block_planner.dir/test_block_planner.cpp.o.d"
  "test_block_planner"
  "test_block_planner.pdb"
  "test_block_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
