# Empty dependencies file for test_block_planner.
# This may be replaced when dependencies are built.
