
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_planner.cpp" "tests/CMakeFiles/test_block_planner.dir/test_block_planner.cpp.o" "gcc" "tests/CMakeFiles/test_block_planner.dir/test_block_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/allreduce/CMakeFiles/prophet_allreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/prophet_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prophet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/prophet_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/prophet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/prophet_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prophet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prophet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prophet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
