# Empty compiler generated dependencies file for test_prophet_scheduler.
# This may be replaced when dependencies are built.
