file(REMOVE_RECURSE
  "CMakeFiles/test_prophet_scheduler.dir/test_prophet_scheduler.cpp.o"
  "CMakeFiles/test_prophet_scheduler.dir/test_prophet_scheduler.cpp.o.d"
  "test_prophet_scheduler"
  "test_prophet_scheduler.pdb"
  "test_prophet_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prophet_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
