// Sharded parameter server: key striping across PS shards, per-shard
// checkpoint/failover with partial rollback, and the validate() rejections
// sharding adds.
//
// The load-bearing invariants:
//   * fault-free runs are bit-deterministic at every shard count, and
//     ps_shards=1 is the historical single-PS timeline;
//   * a crash of shard k rolls back only shard k's keys — surviving shards'
//     versions pass through the failover verbatim and keep serving during
//     the outage;
//   * the always-on BSP auditor (per-shard byte conservation, version
//     fencing, whole-model barrier) holds across every sharded fault run.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "metrics/transfer_log.hpp"
#include "net/dynamics.hpp"
#include "net/topology.hpp"
#include "ps/cluster.hpp"
#include "ps/server.hpp"
#include "ps/shard_map.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

ps::ClusterConfig small_config(ps::StrategyConfig strategy) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();  // 14 tensors: shards up to 4 stay non-empty
  cfg.num_workers = 2;
  cfg.batch = 32;
  cfg.iterations = 12;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  return cfg;
}

std::size_t fault_count(const ps::WorkerResult& worker, metrics::FaultKind kind) {
  std::size_t count = 0;
  for (const auto& fault : worker.transfers.faults()) {
    if (fault.kind == kind) ++count;
  }
  return count;
}

void expect_identical(const ps::ClusterResult& a, const ps::ClusterResult& b) {
  EXPECT_EQ(a.simulated_time.count_nanos(), b.simulated_time.count_nanos());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.audit_checks, b.audit_checks);
  EXPECT_DOUBLE_EQ(a.mean_rate(), b.mean_rate());
  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t w = 0; w < a.workers.size(); ++w) {
    EXPECT_EQ(a.workers[w].transfers.records().size(),
              b.workers[w].transfers.records().size());
    EXPECT_EQ(a.workers[w].transfers.faults().size(),
              b.workers[w].transfers.faults().size());
  }
}

TEST(ShardMapTest, StripesKeysRoundRobin) {
  const ps::ShardMap map{3};
  EXPECT_EQ(map.num_shards(), 3u);
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(1), 1u);
  EXPECT_EQ(map.shard_of(2), 2u);
  EXPECT_EQ(map.shard_of(3), 0u);
  const ps::ShardMap solo{};
  EXPECT_EQ(solo.num_shards(), 1u);
  EXPECT_EQ(solo.shard_of(7), 0u);
}

TEST(ShardedPs, FaultFreeRunsAreBitDeterministicPerShardCount) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto cfg = small_config(ps::StrategyConfig::prophet());
    cfg.ps_shards = shards;
    const auto a = run_cluster(cfg, 1);
    const auto b = run_cluster(cfg, 1);
    SCOPED_TRACE("ps_shards=" + std::to_string(shards));
    expect_identical(a, b);
    for (const auto& w : a.workers) {
      EXPECT_EQ(w.iterations_completed, 12u);
    }
    EXPECT_GT(a.audit_checks, 0u);
  }
}

TEST(ShardedServer, CrashShardWipesOnlyItsKeysAndRestoresItsCheckpoint) {
  sim::Simulator sim;
  const dnn::ModelSpec model = dnn::toy_cnn();
  const std::size_t n = model.tensor_count();  // shard0 = even keys, shard1 = odd
  ps::Server server{
      sim,  model, /*num_workers=*/1, /*asp=*/false, 1_ms, 1e9,
      [](std::size_t, std::size_t) {}, /*serialize_cpu=*/false, /*ps_shards=*/2};
  server.enable_failover(50_ms);
  EXPECT_EQ(server.num_shards(), 2u);

  auto push_all = [&] {
    for (std::size_t k = 0; k < n; ++k) {
      server.on_push_bytes(0, k, model.tensor(k).bytes);
    }
  };
  // Round 1 completes just after t=0; round 2 just after t=60ms — so the
  // last checkpoint boundary (50ms) separates the two.
  push_all();
  sim.run();
  sim.schedule_at(TimePoint::origin() + Duration{60_ms}, push_all);
  sim.run();
  for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(server.version(k), 2u);

  // The consumable checkpoint status: a failover right now restores round 1
  // on every shard (round 2 completed past the 50ms boundary).
  const std::vector<std::size_t> would_restore = server.checkpoint_versions();
  ASSERT_EQ(would_restore.size(), n);
  for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(would_restore[k], 1u);

  server.crash_shard(0);
  EXPECT_TRUE(server.crashed());
  EXPECT_TRUE(server.shard_crashed(0));
  EXPECT_FALSE(server.shard_crashed(1));

  // The surviving shard keeps aggregating while shard 0 is down.
  server.on_push_bytes(0, 1, model.tensor(1).bytes);
  sim.run();
  EXPECT_EQ(server.version(1), 3u);

  const std::vector<std::size_t> restored = server.recover_shard(0);
  EXPECT_FALSE(server.crashed());
  ASSERT_EQ(restored.size(), n);
  // Shard-0 keys roll back to the 50ms checkpoint (round 1)...
  EXPECT_EQ(restored[0], 1u);
  EXPECT_EQ(restored[2], 1u);
  EXPECT_EQ(restored[4], 1u);
  // ...while the survivors' live versions pass through verbatim.
  EXPECT_EQ(restored[1], 3u);
  EXPECT_EQ(restored[3], 2u);
  for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(server.version(k), restored[k]);
}

TEST(ShardedPs, ShardCrashRollsBackOnlyThatShardAndFinishes) {
  auto cfg = small_config(ps::StrategyConfig::bytescheduler());
  cfg.ps_shards = 2;
  cfg.checkpoint_period = 50_ms;
  const auto baseline = run_cluster(cfg, 1);
  cfg.dynamics.ps_shard_crash(120_ms, 80_ms, 1);
  const auto faulted = run_cluster(cfg, 1);
  for (const auto& w : faulted.workers) {
    EXPECT_EQ(w.iterations_completed, 12u);
    EXPECT_EQ(fault_count(w, metrics::FaultKind::kPsCrash), 1u);
    EXPECT_EQ(fault_count(w, metrics::FaultKind::kPsFailover), 1u);
  }
  // The failover costs real time, and the whole run stays audit-clean
  // (per-shard byte conservation + version fencing + whole-model barrier).
  EXPECT_GT(faulted.simulated_time.count_nanos(),
            baseline.simulated_time.count_nanos());
  EXPECT_GT(faulted.audit_checks, 0u);
  // Deterministic replay, faults included.
  expect_identical(faulted, run_cluster(cfg, 1));
}

TEST(ShardedPs, ShardFailoverCostsNoMoreThanWholeTierFailover) {
  // Same crash instant, same downtime: losing one of two shards must not
  // cost more than losing the whole tier — the survivors kept serving and
  // only half the key space re-pulls and replays.
  auto shard_cfg = small_config(ps::StrategyConfig::bytescheduler());
  shard_cfg.ps_shards = 2;
  shard_cfg.checkpoint_period = 50_ms;
  shard_cfg.dynamics.ps_shard_crash(120_ms, 80_ms, 0);
  const auto shard_run = run_cluster(shard_cfg, 1);

  auto whole_cfg = small_config(ps::StrategyConfig::bytescheduler());
  whole_cfg.ps_shards = 2;
  whole_cfg.checkpoint_period = 50_ms;
  whole_cfg.dynamics.ps_crash(120_ms, 80_ms);
  const auto whole_run = run_cluster(whole_cfg, 1);

  EXPECT_LE(shard_run.simulated_time.count_nanos(),
            whole_run.simulated_time.count_nanos());
}

TEST(ShardedPs, PsCrashSpecRoundTripsShardTarget) {
  net::DynamicsPlan plan;
  std::string error;
  ASSERT_TRUE(plan.add_ps_crash_spec("1:0.5:shard:1", &error)) << error;
  ASSERT_EQ(plan.events.size(), 2u);
  for (const auto& ev : plan.events) {
    EXPECT_TRUE(ev.target_ps);
    ASSERT_TRUE(ev.ps_shard.has_value());
    EXPECT_EQ(*ev.ps_shard, 1u);
  }
  net::DynamicsPlan bad;
  EXPECT_FALSE(bad.add_ps_crash_spec("1:0.5:shard:x", &error));
  EXPECT_NE(error.find("--ps-crash"), std::string::npos);
  EXPECT_FALSE(bad.add_ps_crash_spec("1:0.5:rack:1", &error));
}

TEST(ShardedPsDeathTest, ConfigRejectsBadShardPlans) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    // Zero shards would leave every key unowned.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.ps_shards = 0;
    EXPECT_DEATH(ps::Cluster{cfg}, "ps_shards");
  }
  {
    // More shards than tensors: trailing shards would own no keys.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.ps_shards = 64;  // toy_cnn has 14 tensors
    EXPECT_DEATH(ps::Cluster{cfg}, "tensor");
  }
  {
    // Leaf-spine must still seat every worker plus one host per shard.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.topology = net::TopologySpec::leaf_spine(2, 2, Bandwidth::gbps(10), 4.0);
    cfg.ps_shards = 4;  // 2 workers + 4 PS hosts > 4 seats
    EXPECT_DEATH(ps::Cluster{cfg}, "cannot hold");
  }
  {
    // A shard fault must name a shard that exists.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.ps_shards = 2;
    cfg.checkpoint_period = 50_ms;
    cfg.dynamics.ps_shard_crash(1_s, 100_ms, 5);
    EXPECT_DEATH(ps::Cluster{cfg}, "shard index");
  }
  {
    // A shard crash while the whole tier is already down has no well-defined
    // rollback arithmetic.
    net::DynamicsPlan plan;
    plan.ps_crash(1_s, 1_s);
    plan.ps_shard_crash(1500_ms, 100_ms, 0);
    plan.sort();
    EXPECT_DEATH(plan.validate(2, 2), "already down");
  }
}

TEST(ShardedPsDeathTest, ValidateDiagnosticsNameTheOffendingField) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    // Static loss with no retries is caught by the transport config itself;
    // the message still names the field to fix.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.reliability.loss_rate = 0.1;
    cfg.reliability.retry_budget = 0;
    EXPECT_DEATH(ps::Cluster{cfg}, "retry_budget");
  }
  {
    // Loss that only arrives via a dynamics event passes the transport's own
    // check (loss is disabled at t=0) — the ClusterConfig cross-check names
    // the exact field and where the requirement comes from.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.reliability.retry_budget = 0;
    cfg.dynamics.loss_rate(1_s, 0.1);
    EXPECT_DEATH(ps::Cluster{cfg}, "reliability.retry_budget");
  }
  {
    // The ASP-crash rejection points at the ROADMAP item that would lift it.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.sync = ps::SyncMode::kAsp;
    cfg.dynamics.worker_crash(1_s, 100_ms, 0);
    EXPECT_DEATH(ps::Cluster{cfg}, "stale-synchronous parallel mode");
  }
}

}  // namespace
}  // namespace prophet
