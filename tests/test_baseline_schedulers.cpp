#include <gtest/gtest.h>

#include "sched/bytescheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/p3.hpp"

namespace prophet::sched {
namespace {

using namespace prophet::literals;

TimePoint at(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

TEST(Fifo, TransfersWholeTensorsInArrivalOrder) {
  FifoScheduler fifo{TaskKind::kPush};
  fifo.enqueue(7, Bytes::mib(2), at(0));
  fifo.enqueue(3, Bytes::mib(1), at(1));
  fifo.enqueue(0, Bytes::kib(4), at(2));

  auto t1 = fifo.next_task(at(3));
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->items.size(), 1u);
  EXPECT_EQ(t1->items[0].grad, 7u);  // arrival order, NOT priority
  EXPECT_EQ(t1->total_bytes(), Bytes::mib(2));
  EXPECT_TRUE(t1->items[0].last_slice);

  EXPECT_EQ(fifo.next_task(at(3))->items[0].grad, 3u);
  EXPECT_EQ(fifo.next_task(at(3))->items[0].grad, 0u);
  EXPECT_FALSE(fifo.next_task(at(3)).has_value());
  EXPECT_FALSE(fifo.has_pending());
}

TEST(Fifo, BlockingAckAppliedToTasks) {
  FifoScheduler fifo{TaskKind::kPush, 2_ms};
  fifo.enqueue(1, Bytes::mib(1), at(0));
  EXPECT_EQ(fifo.next_task(at(0))->post_delay, 2_ms);
}

TEST(Fifo, KindPropagates) {
  FifoScheduler pull{TaskKind::kPull};
  pull.enqueue(1, Bytes::mib(1), at(0));
  EXPECT_EQ(pull.next_task(at(0))->kind, TaskKind::kPull);
}

TEST(P3, OnePartitionPerTask) {
  P3Scheduler p3{TaskKind::kPush, Bytes::mib(4)};
  p3.enqueue(2, Bytes::mib(10), at(0));
  auto t1 = p3.next_task(at(0));
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->items.size(), 1u);
  EXPECT_EQ(t1->total_bytes(), Bytes::mib(4));
  auto t2 = p3.next_task(at(0));
  EXPECT_EQ(t2->items[0].offset, Bytes::mib(4));
  auto t3 = p3.next_task(at(0));
  EXPECT_EQ(t3->total_bytes(), Bytes::mib(2));
  EXPECT_TRUE(t3->items[0].last_slice);
  EXPECT_FALSE(p3.next_task(at(0)).has_value());
}

TEST(P3, StrictPriorityPreemption) {
  P3Scheduler p3{TaskKind::kPush, Bytes::mib(4)};
  p3.enqueue(5, Bytes::mib(12), at(0));
  (void)p3.next_task(at(0));          // one partition of gradient 5 sent
  p3.enqueue(1, Bytes::mib(4), at(1));  // higher priority arrives
  EXPECT_EQ(p3.next_task(at(1))->items[0].grad, 1u);
  EXPECT_EQ(p3.next_task(at(1))->items[0].grad, 5u);
}

TEST(ByteScheduler, GroupsUpToCreditAcrossTensors) {
  ByteSchedulerConfig cfg;
  cfg.partition_bytes = Bytes::mib(1);
  cfg.credit_bytes = Bytes::mib(3);
  ByteSchedulerScheduler bs{TaskKind::kPush, cfg};
  bs.enqueue(4, Bytes::mib(2), at(0));
  bs.enqueue(9, Bytes::mib(2), at(0));
  auto t1 = bs.next_task(at(0));
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->total_bytes(), Bytes::mib(3));
  EXPECT_EQ(t1->items.size(), 3u);
  EXPECT_EQ(t1->items[0].grad, 4u);
  EXPECT_EQ(t1->items[2].grad, 9u);  // crosses tensors in priority order
  auto t2 = bs.next_task(at(0));
  EXPECT_EQ(t2->total_bytes(), Bytes::mib(1));
  EXPECT_FALSE(bs.next_task(at(0)).has_value());
}

TEST(ByteScheduler, CreditAckDelayOnTasks) {
  ByteSchedulerConfig cfg;
  cfg.credit_ack_delay = 700_us;
  ByteSchedulerScheduler bs{TaskKind::kPush, cfg};
  bs.enqueue(0, Bytes::mib(1), at(0));
  EXPECT_EQ(bs.next_task(at(0))->post_delay, 700_us);
}

TEST(ByteScheduler, FixedCreditWithoutAutotune) {
  ByteSchedulerScheduler bs{TaskKind::kPush, {}};
  const Bytes before = bs.credit_bytes();
  for (std::size_t i = 0; i < 30; ++i) {
    bs.on_iteration_end(i, at(static_cast<std::int64_t>(100 * i)));
  }
  EXPECT_EQ(bs.credit_bytes(), before);
}

TEST(ByteScheduler, AutotuneAdjustsCreditAcrossEpisodes) {
  ByteSchedulerConfig cfg;
  cfg.autotune = true;
  cfg.tune_interval_iters = 2;
  ByteSchedulerScheduler bs{TaskKind::kPush, cfg};
  const Bytes initial = bs.credit_bytes();
  bool changed = false;
  for (std::size_t i = 0; i < 20; ++i) {
    bs.on_iteration_end(i, at(static_cast<std::int64_t>(100 * (i + 1))));
    if (bs.credit_bytes() != initial) changed = true;
  }
  EXPECT_TRUE(changed);
  EXPECT_GE(bs.credit_bytes(), cfg.partition_bytes);
  EXPECT_LE(bs.credit_bytes().count(), cfg.credit_max.count());
}

TEST(ByteScheduler, PreemptionWithinCreditGranularity) {
  ByteSchedulerConfig cfg;
  cfg.partition_bytes = Bytes::mib(1);
  cfg.credit_bytes = Bytes::mib(2);
  ByteSchedulerScheduler bs{TaskKind::kPush, cfg};
  bs.enqueue(8, Bytes::mib(6), at(0));
  (void)bs.next_task(at(0));  // 2 MiB of gradient 8 in flight
  bs.enqueue(0, Bytes::mib(1), at(1));
  const auto next = bs.next_task(at(1));
  // Gradient 0 leads the next credit group.
  EXPECT_EQ(next->items[0].grad, 0u);
  EXPECT_EQ(next->items[1].grad, 8u);
}

}  // namespace
}  // namespace prophet::sched
