// Network-dynamics & fault-injection subsystem: plan construction and
// validation, flow-network outage semantics, monitor tracking of scripted
// bandwidth changes, full-cluster determinism under dynamics, and the
// strategy-name registry the CLI flags are built on.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "net/dynamics.hpp"
#include "net/flow_network.hpp"
#include "net/monitor.hpp"
#include "ps/cluster.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

net::TcpCostModel plain_model() {
  net::TcpCostParams params;
  params.per_task_overhead = 0_ns;
  params.slow_start = false;
  return net::TcpCostModel{params};
}

// --- flow-network outage semantics ----------------------------------------

TEST(Outage, FlowStallsAndResumesAcrossLinkDowntime) {
  sim::Simulator sim;
  net::FlowNetwork network{sim, plain_model()};
  const net::NodeId a = network.add_node("a", Bandwidth::gbps(1), Bandwidth::gbps(1));
  const net::NodeId b = network.add_node("b", Bandwidth::gbps(1), Bandwidth::gbps(1));
  // 125 MB at 1 Gbps = 1 s of drain time; a [0.25 s, 0.75 s) outage freezes
  // the transfer without losing progress, so it finishes at 1.5 s.
  bool done = false;
  network.start_flow(a, b, Bytes::of(125'000'000), [&](net::FlowId) {
    done = true;
    EXPECT_NEAR(sim.now().to_seconds(), 1.5, 1e-6);
  });
  sim.schedule_at(TimePoint::origin() + 250_ms,
                  [&] { network.set_link_up(a, false); });
  sim.schedule_at(TimePoint::origin() + 750_ms,
                  [&] { network.set_link_up(a, true); });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Outage, DownLinkStallsBothDirections) {
  sim::Simulator sim;
  net::FlowNetwork network{sim, plain_model()};
  const net::NodeId a = network.add_node("a", Bandwidth::gbps(1), Bandwidth::gbps(1));
  const net::NodeId b = network.add_node("b", Bandwidth::gbps(1), Bandwidth::gbps(1));
  EXPECT_TRUE(network.link_up(b));
  bool done = false;
  // Flow towards the downed receiver: stalls just the same.
  network.start_flow(a, b, Bytes::of(125'000'000), [&](net::FlowId) {
    done = true;
    EXPECT_NEAR(sim.now().to_seconds(), 1.2, 1e-6);
  });
  sim.schedule_at(TimePoint::origin() + 500_ms,
                  [&] { network.set_link_up(b, false); });
  sim.schedule_at(TimePoint::origin() + 700_ms,
                  [&] { network.set_link_up(b, true); });
  sim.run();
  EXPECT_TRUE(done);
}

// --- monitor tracks scripted bandwidth changes ----------------------------

TEST(Dynamics, MonitorTracksScriptedBandwidthStep) {
  sim::Simulator sim;
  net::FlowNetwork network{sim, plain_model()};
  const net::NodeId a = network.add_node("a", Bandwidth::gbps(1), Bandwidth::gbps(1));
  const net::NodeId b = network.add_node("b", Bandwidth::gbps(1), Bandwidth::gbps(1));
  net::BandwidthMonitorConfig cfg;
  cfg.sample_period = 1_s;
  net::BandwidthMonitor monitor{sim, network, a, net::Direction::kTx, cfg};
  // Saturating flow; the link halves at t = 4 s. The monitor's estimate must
  // converge towards the new 62.5 MB/s goodput after the step.
  network.start_flow(a, b, Bytes::of(1'000'000'000), [](net::FlowId) {});
  sim.schedule_at(TimePoint::origin() + 4_s, [&] {
    network.set_capacity(a, net::Direction::kTx, Bandwidth::gbps(0.5));
  });
  sim.run_until(TimePoint::origin() + 4_s);
  const double before = monitor.estimate().bytes_per_second();
  EXPECT_NEAR(before, 125e6, 5e6);
  sim.run_until(TimePoint::origin() + 12_s);
  const double after = monitor.estimate().bytes_per_second();
  EXPECT_LT(after, 95e6);
  EXPECT_GT(after, 55e6);
  monitor.stop();
}

// --- plan construction & validation ---------------------------------------

TEST(DynamicsPlan, FluctuationIsSeededAndBounded) {
  const auto horizon = Duration::seconds(10);
  const auto a = net::DynamicsPlan::fluctuation(7, 0.4, 2_s, horizon, 3);
  const auto b = net::DynamicsPlan::fluctuation(7, 0.4, 2_s, horizon, 3);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events.size(), 5u * 3u);  // 5 periods x 3 workers
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at.count_nanos(), b.events[i].at.count_nanos());
    EXPECT_DOUBLE_EQ(a.events[i].factor, b.events[i].factor);
    EXPECT_GE(a.events[i].factor, 0.6);
    EXPECT_LE(a.events[i].factor, 1.0);
  }
  const auto c = net::DynamicsPlan::fluctuation(8, 0.4, 2_s, horizon, 3);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    any_differs = any_differs || a.events[i].factor != c.events[i].factor;
  }
  EXPECT_TRUE(any_differs);
  a.validate(3);
}

TEST(DynamicsPlan, SpecParsingRoundTrips) {
  std::string error;
  const auto fluct = net::DynamicsPlan::from_spec("fluctuate:0.3", 1, 4_s, 2, &error);
  ASSERT_TRUE(fluct.has_value()) << error;
  EXPECT_EQ(fluct->events.size(), 2u * 2u);  // periods at 2 s and 4 s, 2 workers

  const auto step = net::DynamicsPlan::from_spec("step:1.5:0.5:1", 1, 4_s, 2, &error);
  ASSERT_TRUE(step.has_value()) << error;
  ASSERT_EQ(step->events.size(), 1u);
  EXPECT_EQ(step->events[0].at.count_nanos(), Duration::from_seconds(1.5).count_nanos());
  EXPECT_DOUBLE_EQ(step->events[0].factor, 0.5);
  ASSERT_TRUE(step->events[0].worker.has_value());
  EXPECT_EQ(*step->events[0].worker, 1u);

  EXPECT_TRUE(net::DynamicsPlan::from_spec("none", 1, 4_s, 2, &error)->empty());
  EXPECT_FALSE(net::DynamicsPlan::from_spec("bogus:1", 1, 4_s, 2, &error).has_value());
  EXPECT_FALSE(error.empty());

  net::DynamicsPlan plan;
  EXPECT_TRUE(plan.add_outage_spec("2:0.5:1", &error));
  EXPECT_TRUE(plan.add_straggler_spec("0:1.5:3", &error));
  EXPECT_TRUE(plan.add_ps_degrade_spec("2.0:4", &error));
  EXPECT_FALSE(plan.add_outage_spec("nope", &error));
  plan.sort();
  plan.validate(2);
  EXPECT_EQ(plan.events.size(), 4u);
}

TEST(DynamicsPlan, CrashSpecParsingAndErrorPaths) {
  std::string error;
  net::DynamicsPlan plan;
  EXPECT_TRUE(plan.add_worker_crash_spec("1.5:0.5:1", &error));
  EXPECT_TRUE(plan.add_ps_crash_spec("3:0.25", &error));
  EXPECT_TRUE(plan.add_loss_spec("0.05:2", &error));
  plan.sort();
  plan.validate(2);
  // crash + recover pairs plus the loss event.
  EXPECT_EQ(plan.events.size(), 5u);
  EXPECT_TRUE(plan.has_worker_crash());
  EXPECT_TRUE(plan.has_ps_crash());
  EXPECT_TRUE(plan.has_loss());

  net::DynamicsPlan bad;
  // Missing worker index, zero downtime, negative time, junk.
  EXPECT_FALSE(bad.add_worker_crash_spec("1.5:0.5", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(bad.add_worker_crash_spec("1.5:0:1", &error));
  EXPECT_FALSE(bad.add_worker_crash_spec("-1:0.5:1", &error));
  EXPECT_FALSE(bad.add_ps_crash_spec("3", &error));
  EXPECT_FALSE(bad.add_ps_crash_spec("3:0", &error));
  EXPECT_FALSE(bad.add_loss_spec("1.0", &error));  // rate must stay below 1
  EXPECT_FALSE(bad.add_loss_spec("-0.1", &error));
  EXPECT_FALSE(bad.add_loss_spec("0.1:-2", &error));
  EXPECT_TRUE(bad.empty());
}

TEST(DynamicsPlan, TraceCsvRoundTripsFaultEvents) {
  const std::string path = ::testing::TempDir() + "/fault_trace.csv";
  {
    std::ofstream out{path};
    out << "time_s,event,target,value\n"
        << "# crash worker 1, then the PS\n"
        << "0.5,worker_crash,1,0\n"
        << "0.7,worker_recover,1,0\n"
        << "1.0,loss_rate,*,0.02\n"
        << "2.0,ps_crash,ps,0\n"
        << "2.5,ps_recover,ps,0\n";
  }
  std::string error;
  const auto plan = net::DynamicsPlan::from_trace_csv(path, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 5u);
  plan->validate(2);
  EXPECT_EQ(plan->events[0].type, net::DynamicsEvent::Type::kWorkerCrash);
  ASSERT_TRUE(plan->events[0].worker.has_value());
  EXPECT_EQ(*plan->events[0].worker, 1u);
  EXPECT_EQ(plan->events[2].type, net::DynamicsEvent::Type::kLossRate);
  EXPECT_DOUBLE_EQ(plan->events[2].factor, 0.02);
  EXPECT_TRUE(plan->events[3].target_ps);
}

TEST(DynamicsPlan, TraceCsvErrorPaths) {
  std::string error;
  EXPECT_FALSE(
      net::DynamicsPlan::from_trace_csv("/no/such/trace.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string path = ::testing::TempDir() + "/bad_trace.csv";
  auto write_and_parse = [&](const std::string& row) {
    std::ofstream out{path};
    out << "time_s,event,target,value\n" << row << "\n";
    out.close();
    error.clear();
    return net::DynamicsPlan::from_trace_csv(path, &error);
  };
  EXPECT_FALSE(write_and_parse("0.5,worker_crash,1").has_value());  // 3 fields
  EXPECT_NE(error.find("4 fields"), std::string::npos);
  EXPECT_FALSE(write_and_parse("-1,worker_crash,1,0").has_value());
  EXPECT_NE(error.find("bad time"), std::string::npos);
  EXPECT_FALSE(write_and_parse("0.5,melted,1,0").has_value());
  EXPECT_NE(error.find("unknown event"), std::string::npos);
  EXPECT_FALSE(write_and_parse("0.5,loss_rate,*,oops").has_value());
  EXPECT_NE(error.find("bad value"), std::string::npos);
  EXPECT_FALSE(write_and_parse("0.5,worker_crash,q,0").has_value());
  EXPECT_NE(error.find("bad target"), std::string::npos);
}

TEST(DynamicsPlanDeathTest, ValidateRejectsMalformedFaultPlans) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    // Crashing a worker that is already down.
    net::DynamicsPlan plan;
    plan.worker_crash(1_s, 2_s, 0).worker_crash(1500_ms, 2_s, 0);
    plan.sort();
    EXPECT_DEATH(plan.validate(2), "already down");
  }
  {
    // Recover without a crash.
    net::DynamicsPlan plan;
    plan.worker_crash(1_s, 1_s, 0);
    plan.events.erase(plan.events.begin());  // keep only the recover
    EXPECT_DEATH(plan.validate(2), "matching");
  }
  {
    // Crash whose recover never comes.
    net::DynamicsPlan plan;
    plan.ps_crash(1_s, 1_s);
    plan.events.pop_back();
    EXPECT_DEATH(plan.validate(2), "without a matching recover");
  }
  {
    // A cluster-wide worker crash (no index) is not recoverable.
    net::DynamicsPlan plan;
    plan.worker_crash(1_s, 1_s, 0);
    plan.events[0].worker.reset();
    plan.events[1].worker.reset();
    EXPECT_DEATH(plan.validate(2), "concrete");
  }
  {
    // Loss probability of 1 can never deliver.
    net::DynamicsPlan plan;
    plan.loss_rate(1_s, 1.0);
    EXPECT_DEATH(plan.validate(2), "loss_rate");
  }
}

TEST(DynamicsPlanDeathTest, ValidateRejectsMalformedPlans) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    net::DynamicsPlan plan;
    plan.straggler(1_s, 5, 1.5);
    EXPECT_DEATH(plan.validate(2), "worker index");
  }
  {
    net::DynamicsPlan plan;
    plan.bandwidth_scale(2_s, 0, 0.5).bandwidth_scale(1_s, 0, 2.0);
    EXPECT_DEATH(plan.validate(2), "time-sorted");
  }
  {
    net::DynamicsPlan plan;
    plan.bandwidth_scale(1_s, 0, -0.5);
    EXPECT_DEATH(plan.validate(2), "positive");
  }
  {
    net::DynamicsPlan plan;
    plan.outage(1_s, 1_s, 0);
    plan.events.pop_back();  // strip the matching outage_end
    EXPECT_DEATH(plan.validate(2), "outage");
  }
}

TEST(ClusterConfigDeathTest, ValidateRejectsBadConfigs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    ps::ClusterConfig cfg;
    cfg.num_workers = 0;
    EXPECT_DEATH(ps::Cluster{cfg}, "num_workers");
  }
  {
    ps::ClusterConfig cfg;
    cfg.worker_bandwidth = Bandwidth::zero();
    EXPECT_DEATH(ps::Cluster{cfg}, "worker_bandwidth");
  }
  {
    ps::ClusterConfig cfg;
    cfg.worker_bandwidth_override.assign(cfg.num_workers + 1, Bandwidth::gbps(1));
    EXPECT_DEATH(ps::Cluster{cfg}, "override");
  }
}

// --- strategy registry ----------------------------------------------------

TEST(StrategyRegistry, RoundTripsEveryKnownName) {
  for (const auto& name : ps::StrategyConfig::known_names()) {
    const auto strategy = ps::StrategyConfig::from_name(name);
    ASSERT_TRUE(strategy.has_value()) << name;
    const auto again = ps::StrategyConfig::from_name(strategy->name());
    ASSERT_TRUE(again.has_value()) << strategy->name();
    EXPECT_EQ(again->kind, strategy->kind) << name;
    EXPECT_FALSE(ps::StrategyConfig::display_label(name).empty());
  }
}

TEST(StrategyRegistry, AcceptsHistoricalAliasAndRejectsUnknown) {
  const auto fifo = ps::StrategyConfig::from_name("mxnet-fifo");
  ASSERT_TRUE(fifo.has_value());
  EXPECT_EQ(fifo->kind, ps::StrategyConfig::Kind::kFifo);
  EXPECT_EQ(fifo->name(), "mxnet-fifo");
  EXPECT_FALSE(ps::StrategyConfig::from_name("definitely-not-a-strategy").has_value());
}

TEST(StrategyRegistry, AutotuneSpellingSelectsAutotune) {
  const auto bs = ps::StrategyConfig::from_name("bytescheduler-autotune");
  ASSERT_TRUE(bs.has_value());
  EXPECT_EQ(bs->kind, ps::StrategyConfig::Kind::kByteScheduler);
  EXPECT_TRUE(bs->bytescheduler_config.autotune);
}

// --- full-cluster behavior under dynamics ---------------------------------

ps::ClusterConfig small_config(ps::StrategyConfig strategy) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 2;
  cfg.batch = 32;
  cfg.iterations = 12;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  return cfg;
}

TEST(ClusterDynamics, SameSeedSamePlanIsBitDeterministic) {
  auto cfg = small_config(ps::StrategyConfig::prophet());
  cfg.dynamics = net::DynamicsPlan::fluctuation(11, 0.5, 100_ms,
                                                Duration::seconds(30), 2);
  const auto a = run_cluster(cfg, 6);
  const auto b = run_cluster(cfg, 6);
  EXPECT_EQ(a.simulated_time.count_nanos(), b.simulated_time.count_nanos());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_DOUBLE_EQ(a.mean_rate(), b.mean_rate());
}

TEST(ClusterDynamics, OutageSlowsTraining) {
  auto cfg = small_config(ps::StrategyConfig::bytescheduler());
  const auto baseline = run_cluster(cfg, 6);
  // A 300 ms all-worker blackout early in the run: training stalls for its
  // duration and finishes correspondingly later.
  cfg.dynamics.outage(100_ms, 300_ms, std::nullopt);
  const auto faulted = run_cluster(cfg, 6);
  EXPECT_GE(faulted.simulated_time.count_nanos(),
            baseline.simulated_time.count_nanos() +
                Duration{250_ms}.count_nanos());
  for (const auto& w : faulted.workers) {
    EXPECT_EQ(w.iterations_completed, 12u);  // nothing was lost, only delayed
  }
}

TEST(ClusterDynamics, StragglerSlowsTheWholeBspCluster) {
  auto cfg = small_config(ps::StrategyConfig::bytescheduler());
  const auto baseline = run_cluster(cfg, 6);
  cfg.dynamics.straggler(Duration::zero(), 0, 2.0);
  const auto straggled = run_cluster(cfg, 6);
  // BSP: one 2x-slower worker drags every worker's rate down.
  EXPECT_LT(straggled.mean_rate(), 0.8 * baseline.mean_rate());
}

TEST(ClusterDynamics, BandwidthDriftTriggersProphetReplan) {
  auto cfg = small_config(ps::StrategyConfig::prophet());
  cfg.iterations = 24;
  cfg.monitor.sample_period = 20_ms;
  // Quarter every worker NIC after profiling has finished; the monitored
  // bandwidth drifts far past the 10% re-plan threshold.
  cfg.dynamics.bandwidth_scale(150_ms, std::nullopt, 0.25);
  const auto result = run_cluster(cfg, 6);
  std::size_t replans = 0;
  for (const auto& w : result.workers) replans += w.prophet_replans;
  EXPECT_GE(replans, 1u);
}

TEST(ClusterDynamics, StaticNetworkYieldsNoReplans) {
  auto cfg = small_config(ps::StrategyConfig::prophet());
  const auto result = run_cluster(cfg, 6);
  for (const auto& w : result.workers) EXPECT_EQ(w.prophet_replans, 0u);
}

}  // namespace
}  // namespace prophet
