// Differential tests for incremental max-min recomputation: with
// set_verify_rates(true), FlowNetwork re-runs the retained full progressive
// filling after EVERY component rebalance and PROPHET_CHECKs each draining
// flow's rate bit-identical to it — so simply driving churn and dynamics
// scenarios to completion under verify mode IS the proof. The scenarios
// cover random flow churn, capacity scale/set, outages (park + resume) and
// trace-CSV-driven cluster dynamics, on star and oversubscribed leaf-spine
// fabrics, plus chaos-style fault cells (crash/loss) at cluster level.
//
// Cross-mode runs (kIncremental vs kFull) are compared on conserved
// quantities only: the two modes assign bit-identical *rates*, but may order
// same-nanosecond completion events differently (kFull reschedules every
// completion on every change, re-rounding ETAs network-wide), so full event
// streams are not comparable — the golden exceptions in
// test_engine_perf_invariants.cpp document this.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "cluster/multi_job.hpp"
#include "common/rng.hpp"
#include "dnn/model_zoo.hpp"
#include "net/flow_network.hpp"
#include "ps/cluster.hpp"

namespace prophet::net {
namespace {

using namespace prophet::literals;

TcpCostModel small_overhead_model() {
  TcpCostParams params;
  params.per_task_overhead = Duration::micros(50);
  params.slow_start = false;
  return TcpCostModel{params};
}

struct Fixture {
  sim::Simulator sim;
  FlowNetwork net;
  explicit Fixture(RebalanceMode mode = RebalanceMode::kIncremental)
      : net{sim, small_overhead_model(), mode} {}
};

// Random churn: `flows` transfers between random node pairs at random start
// times, a third of them cancelled mid-flight. Returns completed count.
int drive_churn(Fixture& f, const std::vector<NodeId>& nodes,
                std::uint64_t seed, int flows) {
  Rng rng{seed};
  int completed = 0;
  std::vector<FlowId> started;
  started.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    auto dst = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    if (dst == src) dst = (dst + 1) % nodes.size();
    const Bytes size = Bytes::kib(rng.uniform_int(64, 4096));
    const Duration at = Duration::millis(rng.uniform_int(0, 40));
    f.sim.schedule_after(at, [&f, &nodes, &completed, &started, src, dst, size] {
      started.push_back(f.net.start_flow(nodes[src], nodes[dst], size,
                                         [&completed](FlowId) { ++completed; }));
    });
    if (i % 3 == 0) {
      // Cancel a previously started flow (if any) mid-run; stale ids no-op.
      const Duration cancel_at = at + Duration::millis(rng.uniform_int(1, 15));
      f.sim.schedule_after(cancel_at, [&f, &started, i] {
        if (!started.empty()) {
          f.net.cancel_flow(started[static_cast<std::size_t>(i) % started.size()]);
        }
      });
    }
  }
  f.sim.run();
  return completed;
}

TEST(IncrementalRates, StarChurnBitIdenticalToFull) {
  Fixture f;
  f.net.set_verify_rates(true);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(f.net.add_node("n" + std::to_string(i),
                                   Bandwidth::mbps(800), Bandwidth::mbps(600)));
  }
  const int completed = drive_churn(f, nodes, 0xfeed, 50);
  EXPECT_GT(completed, 0);
}

TEST(IncrementalRates, StarChurnWithCapacityDynamics) {
  Fixture f;
  f.net.set_verify_rates(true);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(f.net.add_node("n" + std::to_string(i), Bandwidth::gbps(1),
                                   Bandwidth::gbps(1)));
  }
  // Capacity scale/set + a full outage landing mid-churn on several NICs.
  f.sim.schedule_after(5_ms, [&f, &nodes] {
    f.net.set_capacity(nodes[0], Direction::kTx, Bandwidth::mbps(250));
  });
  f.sim.schedule_after(9_ms, [&f, &nodes] {
    f.net.set_capacity(nodes[1], Direction::kRx, Bandwidth::mbps(120));
  });
  f.sim.schedule_after(12_ms, [&f, &nodes] { f.net.set_link_up(nodes[2], false); });
  f.sim.schedule_after(20_ms, [&f, &nodes] { f.net.set_link_up(nodes[2], true); });
  f.sim.schedule_after(26_ms, [&f, &nodes] {
    f.net.set_capacity(nodes[0], Direction::kTx, Bandwidth::gbps(1));
  });
  const int completed = drive_churn(f, nodes, 0xbeef, 40);
  EXPECT_GT(completed, 0);
}

TEST(IncrementalRates, LeafSpineOversubscribedChurn) {
  Fixture f;
  f.net.set_verify_rates(true);
  // Two racks of three hosts behind 4:1-oversubscribed uplinks: cross-rack
  // flows contend on the shared rack links, so components span racks.
  const RackId r0 = f.net.add_rack("r0", Bandwidth::mbps(750), Bandwidth::mbps(750));
  const RackId r1 = f.net.add_rack("r1", Bandwidth::mbps(750), Bandwidth::mbps(750));
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    const NodeId n = f.net.add_node("h" + std::to_string(i), Bandwidth::gbps(1),
                                    Bandwidth::gbps(1));
    f.net.assign_rack(n, i < 3 ? r0 : r1);
    nodes.push_back(n);
  }
  // Rack-uplink dynamics: scale, outage (flows park at zero and resume), set.
  const LinkId up0 = f.net.rack_link(r0, Direction::kTx);
  f.sim.schedule_after(6_ms, [&f, up0] {
    f.net.set_link_capacity(up0, Bandwidth::mbps(300));
  });
  f.sim.schedule_after(11_ms, [&f, up0] { f.net.set_link_state(up0, false); });
  f.sim.schedule_after(18_ms, [&f, up0] { f.net.set_link_state(up0, true); });
  f.sim.schedule_after(24_ms, [&f, up0] {
    f.net.set_link_capacity(up0, Bandwidth::mbps(750));
  });
  const int completed = drive_churn(f, nodes, 0xabcd, 60);
  EXPECT_GT(completed, 0);
}

TEST(IncrementalRates, OutageParksFlowsAtZeroAndVerifies) {
  Fixture f;
  f.net.set_verify_rates(true);
  const NodeId a = f.net.add_node("a", Bandwidth::gbps(1), Bandwidth::gbps(1));
  const NodeId b = f.net.add_node("b", Bandwidth::gbps(1), Bandwidth::gbps(1));
  bool done = false;
  const FlowId id = f.net.start_flow(a, b, Bytes::of(125'000'000),
                                     [&done](FlowId) { done = true; });
  f.sim.schedule_after(200_ms, [&f, a] { f.net.set_link_up(a, false); });
  f.sim.schedule_after(500_ms, [&f, id] {
    // Parked at rate zero: remaining bytes frozen, flow still live.
    EXPECT_TRUE(f.net.flow_active(id));
    EXPECT_EQ(f.net.flow_rate(id).bytes_per_second(), 0.0);
  });
  f.sim.schedule_after(700_ms, [&f, a] { f.net.set_link_up(a, true); });
  f.sim.run();
  EXPECT_TRUE(done);
  // 1 s of draining at line rate + 0.5 s parked.
  EXPECT_NEAR(f.sim.now().to_seconds(), 1.5, 1e-3);
}

// The two modes must agree on conserved quantities: every flow completes,
// and each access link carries the same byte total (settlement chunking
// differs, so totals agree to sub-byte floating-point residue per flow).
TEST(IncrementalRates, CrossModeByteConservation) {
  std::vector<std::int64_t> totals[2];
  int completed[2] = {0, 0};
  const RebalanceMode modes[2] = {RebalanceMode::kIncremental,
                                  RebalanceMode::kFull};
  for (int m = 0; m < 2; ++m) {
    Fixture f{modes[m]};
    std::vector<NodeId> nodes;
    for (int i = 0; i < 5; ++i) {
      nodes.push_back(f.net.add_node("n" + std::to_string(i),
                                     Bandwidth::mbps(900), Bandwidth::mbps(700)));
    }
    f.sim.schedule_after(7_ms, [&f, &nodes] {
      f.net.set_capacity(nodes[3], Direction::kRx, Bandwidth::mbps(200));
    });
    completed[m] = drive_churn(f, nodes, 0x5eed, 45);
    for (const NodeId n : nodes) {
      totals[m].push_back(f.net.total_bytes(n, Direction::kTx));
      totals[m].push_back(f.net.total_bytes(n, Direction::kRx));
    }
  }
  EXPECT_EQ(completed[0], completed[1]);
  ASSERT_EQ(totals[0].size(), totals[1].size());
  for (std::size_t i = 0; i < totals[0].size(); ++i) {
    EXPECT_NEAR(static_cast<double>(totals[0][i]),
                static_cast<double>(totals[1][i]), 64.0)
        << "link index " << i;
  }
}

// Swap-and-pop removal must not disturb the admission-order tie-break:
// equal flows started in order still freeze in admission order after
// unrelated cancellations shuffle the active slab.
TEST(IncrementalRates, CancellationPreservesAdmissionOrdering) {
  Fixture f;
  f.net.set_verify_rates(true);
  const NodeId ps = f.net.add_node("ps", Bandwidth::gbps(1), Bandwidth::gbps(1));
  std::vector<NodeId> workers;
  for (int i = 0; i < 8; ++i) {
    workers.push_back(f.net.add_node("w" + std::to_string(i),
                                     Bandwidth::gbps(1), Bandwidth::gbps(1)));
  }
  std::vector<FlowId> ids;
  int completed = 0;
  for (const NodeId w : workers) {
    ids.push_back(f.net.start_flow(w, ps, Bytes::of(10'000'000),
                                   [&completed](FlowId) { ++completed; }));
  }
  // Cancel from the middle and the front: each removal swap-and-pops the
  // active list, then the next rebalance must still walk by admission.
  f.sim.schedule_after(10_ms, [&f, &ids] { f.net.cancel_flow(ids[3]); });
  f.sim.schedule_after(12_ms, [&f, &ids] { f.net.cancel_flow(ids[0]); });
  f.sim.schedule_after(14_ms, [&f, &ids] { f.net.cancel_flow(ids[5]); });
  f.sim.run();
  EXPECT_EQ(completed, 5);
}

// Replay determinism at cluster level: two incremental runs of the same
// config produce identical simulations.
TEST(IncrementalRates, IncrementalClusterReplaysIdentically) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 3;
  cfg.batch = 32;
  cfg.iterations = 6;
  cfg.seed = 7;
  cfg.strategy = ps::StrategyConfig::fifo();
  const auto first = ps::run_cluster(cfg, 1);
  const auto replay = ps::run_cluster(cfg, 1);
  EXPECT_EQ(first.events_fired, replay.events_fired);
  EXPECT_EQ(first.simulated_time.count_nanos(), replay.simulated_time.count_nanos());
}

// Cluster-level differential check under a trace-CSV dynamics plan
// (bandwidth scale + set + outages on named links): every rebalance across
// the whole training run is verified against the full recompute.
TEST(IncrementalRates, ClusterDynamicsTraceVerified) {
  const std::string path = ::testing::TempDir() + "/incr_rates_trace.csv";
  {
    std::ofstream out{path};
    out << "time_s,event,target,value\n"
        << "0.02,bandwidth_scale,0,0.4\n"
        << "0.05,bandwidth_gbps,1,0.5\n"
        << "0.08,outage_start,0,0\n"
        << "0.11,outage_end,0,0\n"
        << "0.15,bandwidth_scale,*,0.7\n";
  }
  std::string error;
  const auto plan = net::DynamicsPlan::from_trace_csv(path, &error);
  ASSERT_TRUE(plan.has_value()) << error;

  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 3;
  cfg.batch = 32;
  cfg.iterations = 8;
  cfg.seed = 11;
  cfg.strategy = ps::StrategyConfig::prophet();
  cfg.strategy.prophet_config.profile_iterations = 3;
  cfg.dynamics = *plan;
  cfg.verify_rates = true;
  const auto result = ps::run_cluster(cfg, 1);
  for (const auto& w : result.workers) {
    EXPECT_EQ(w.iterations_completed, cfg.iterations);
  }
}

// Chaos-style fault cell (transport loss + worker crash + PS failover) with
// verification on: crash-driven flow cancellations and recovery re-pushes
// must keep incremental rates bit-identical throughout.
TEST(IncrementalRates, ClusterFaultPlanVerified) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 2;
  cfg.batch = 32;
  cfg.iterations = 10;
  cfg.seed = 3;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = ps::StrategyConfig::fifo();
  cfg.reliability.retry_budget = 64;
  cfg.checkpoint_period = 40_ms;
  cfg.dynamics.loss_rate(10_ms, 0.05);
  cfg.dynamics.worker_crash(60_ms, 25_ms, 1);
  cfg.dynamics.ps_crash(170_ms, 20_ms);
  cfg.verify_rates = true;
  const auto result = ps::run_cluster(cfg, 1);
  for (const auto& w : result.workers) {
    EXPECT_EQ(w.iterations_completed, cfg.iterations);
  }
}

// --- Rate-group cells -------------------------------------------------------
// Bottleneck-homogeneous incasts (>= kMinGroupFlows flows at one common rate
// over one common bottleneck) are promoted to rate groups and complete via
// the O(log n) lane fast path. Verify mode still re-runs the full progressive
// filling at every group boundary (form/admit/remove/capacity change), so
// finishing under set_verify_rates proves the fast path bit-identical.

// Staggered admissions into one PS NIC: the group forms at the 8th flow,
// later arrivals join through the O(log n) admit path, and completions pop
// off the group heap without a component rebalance.
TEST(RateGroups, StaggeredIncastFormsGroupAndVerifies) {
  Fixture f;
  f.net.set_verify_rates(true);
  const NodeId ps = f.net.add_node("ps", Bandwidth::gbps(1), Bandwidth::gbps(1));
  int completed = 0;
  bool saw_group = false;
  for (int i = 0; i < 12; ++i) {
    const NodeId w = f.net.add_node("w" + std::to_string(i), Bandwidth::gbps(1),
                                    Bandwidth::gbps(1));
    f.sim.schedule_after(Duration::millis(i), [&f, &completed, w, ps] {
      f.net.start_flow(w, ps, Bytes::of(8'000'000),
                       [&completed](FlowId) { ++completed; });
    });
  }
  f.sim.schedule_after(30_ms, [&f, &saw_group] {
    saw_group = f.net.rate_group_count() > 0;
  });
  f.sim.run();
  EXPECT_EQ(completed, 12);
  EXPECT_TRUE(saw_group);
  const RebalanceStats& stats = f.net.rebalance_stats();
  EXPECT_GE(stats.group_forms, 1u);
  EXPECT_GT(stats.group_fast_events, 0u);
  EXPECT_GT(stats.verify_checks, 0u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
}

// Mid-incast dynamics on the bottleneck itself: capacity scale down and up
// re-rates the group in place (one boundary, no rebalance); an outage parks
// the whole incast at zero (slow path dissolves the group) and recovery
// re-forms it. All of it bit-checked against the full recompute.
TEST(RateGroups, MidIncastBottleneckDynamicsVerified) {
  Fixture f;
  f.net.set_verify_rates(true);
  const NodeId ps = f.net.add_node("ps", Bandwidth::gbps(1), Bandwidth::gbps(1));
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    const NodeId w = f.net.add_node("w" + std::to_string(i), Bandwidth::gbps(1),
                                    Bandwidth::gbps(1));
    f.net.start_flow(w, ps, Bytes::of(16'000'000),
                     [&completed](FlowId) { ++completed; });
  }
  f.sim.schedule_after(100_ms, [&f, ps] {
    f.net.set_capacity(ps, Direction::kRx, Bandwidth::mbps(400));
  });
  f.sim.schedule_after(250_ms, [&f, ps] {
    f.net.set_capacity(ps, Direction::kRx, Bandwidth::gbps(1));
  });
  f.sim.schedule_after(400_ms, [&f, ps] { f.net.set_link_up(ps, false); });
  f.sim.schedule_after(550_ms, [&f, ps] {
    // Parked: the outage dissolved the group and froze every flow at zero.
    EXPECT_EQ(f.net.rate_group_count(), 0u);
    f.net.set_link_up(ps, true);
  });
  f.sim.run();
  EXPECT_EQ(completed, 12);
  const RebalanceStats& stats = f.net.rebalance_stats();
  EXPECT_GE(stats.group_forms, 2u);  // re-formed after the outage cleared
  EXPECT_GE(stats.group_dissolves, 1u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
}

// Fault-style mass abort: half the group's flows are cancelled mid-incast
// (what a worker crash's abort_all does), each removal re-rating the
// surviving group members without dissolving the group.
TEST(RateGroups, AbortingHalfTheGroupKeepsRatesVerified) {
  Fixture f;
  f.net.set_verify_rates(true);
  const NodeId ps = f.net.add_node("ps", Bandwidth::gbps(1), Bandwidth::gbps(1));
  std::vector<FlowId> ids;
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    const NodeId w = f.net.add_node("w" + std::to_string(i), Bandwidth::gbps(1),
                                    Bandwidth::gbps(1));
    ids.push_back(f.net.start_flow(w, ps, Bytes::of(16'000'000),
                                   [&completed](FlowId) { ++completed; }));
  }
  f.sim.schedule_after(50_ms, [&f, &ids] {
    ASSERT_GT(f.net.rate_group_count(), 0u);
    for (std::size_t i = 0; i < ids.size(); i += 2) f.net.cancel_flow(ids[i]);
  });
  f.sim.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(f.net.rebalance_stats().verify_mismatches, 0u);
}

// Cluster-level crash plan on an 8-worker incast: the crashes abort the
// crashed workers' in-flight push flows out of live rate groups, recovery
// re-pushes, and every rebalance across the run is verified bit-identical.
TEST(RateGroups, ClusterCrashPlanAbortsGroupedFlowsVerified) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 8;
  cfg.batch = 32;
  cfg.iterations = 6;
  cfg.seed = 13;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = ps::StrategyConfig::fifo();
  cfg.reliability.retry_budget = 64;
  for (std::size_t w = 0; w < 4; ++w) {
    cfg.dynamics.worker_crash(
        Duration::millis(static_cast<std::int64_t>(40 + 5 * w)), 20_ms, w);
  }
  cfg.dynamics.sort();  // crash/recover pairs interleave across workers
  cfg.verify_rates = true;
  const auto result = ps::run_cluster(cfg, 1);
  for (const auto& w : result.workers) {
    EXPECT_EQ(w.iterations_completed, cfg.iterations);
  }
  EXPECT_EQ(result.rebalance.verify_mismatches, 0u);
}

// Two jobs contending across a shared oversubscribed spine, verified: job
// arrivals/departures dirty only their own component unless the spine
// couples them, and either way the rates must match the full recompute.
TEST(IncrementalRates, MultiJobLeafSpineVerified) {
  cluster::MultiJobConfig cfg;
  cfg.topology = net::TopologySpec::leaf_spine(
      /*racks=*/2, /*hosts_per_rack=*/2, Bandwidth::gbps(1),
      /*oversubscription=*/4.0);
  cfg.placement = cluster::PlacementPolicy::kFifoStripe;
  cfg.interleave = cluster::InterleavePolicy::kNone;
  cfg.verify_rates = true;
  for (std::size_t j = 0; j < 2; ++j) {
    cluster::JobSpec job;
    job.config.model = dnn::toy_cnn();
    job.config.num_workers = 1;
    job.config.batch = 32;
    job.config.iterations = 6;
    job.config.seed = 20 + j;
    job.config.strategy = ps::StrategyConfig::fifo();
    cfg.jobs.push_back(std::move(job));
  }
  const auto result = cluster::run_multi_job(cfg);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_GT(result.spine_bytes, 0);
}

}  // namespace
}  // namespace prophet::net
