// Property-style tests asserting the paper's qualitative claims across
// seeds, bandwidths and models — the reproduction's guard rails.
#include <gtest/gtest.h>

#include "ps/cluster.hpp"

namespace prophet::ps {
namespace {

ClusterConfig base_config(StrategyConfig strategy, double gbps,
                          std::uint64_t seed = 42) {
  ClusterConfig cfg;
  cfg.model = dnn::resnet50();
  cfg.num_workers = 3;
  cfg.batch = 64;
  cfg.iterations = 26;
  cfg.seed = seed;
  cfg.worker_bandwidth = Bandwidth::gbps(gbps);
  cfg.ps_bandwidth = Bandwidth::gbps(10);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 6;
  return cfg;
}

double rate(StrategyConfig strategy, double gbps, std::uint64_t seed = 42) {
  return run_cluster(base_config(strategy, gbps, seed), 8).mean_rate();
}

class AcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcrossSeeds, ProphetBeatsFifoUnderConstrainedBandwidth) {
  // Sec. 5.3: at 3 Gbps Prophet outperforms default MXNet by ~39%.
  const std::uint64_t seed = GetParam();
  const double prophet = rate(StrategyConfig::prophet(), 2.0, seed);
  const double fifo = rate(StrategyConfig::fifo(), 2.0, seed);
  EXPECT_GT(prophet, 1.15 * fifo);
}

TEST_P(AcrossSeeds, ProphetAtLeastMatchesP3Everywhere) {
  const std::uint64_t seed = GetParam();
  for (double gbps : {1.0, 3.0, 10.0}) {
    EXPECT_GE(rate(StrategyConfig::prophet(), gbps, seed),
              0.98 * rate(StrategyConfig::p3(), gbps, seed))
        << "bandwidth " << gbps;
  }
}

TEST_P(AcrossSeeds, ProphetAtLeastMatchesByteSchedulerEverywhere) {
  // Sec. 5.3: 6.9-36.4% better in poor networks, comparable in good ones.
  const std::uint64_t seed = GetParam();
  for (double gbps : {1.0, 2.0, 10.0}) {
    EXPECT_GE(rate(StrategyConfig::prophet(), gbps, seed),
              0.98 * rate(StrategyConfig::bytescheduler(), gbps, seed))
        << "bandwidth " << gbps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcrossSeeds, ::testing::Values(42u, 7u, 1234u));

TEST(PaperClaims, HighBandwidthEqualizesPriorityStrategies) {
  // Sec. 5.3: at 10 Gbps the optimization space is marginal — P3,
  // ByteScheduler and Prophet converge.
  const double prophet = rate(StrategyConfig::prophet(), 10.0);
  const double p3 = rate(StrategyConfig::p3(), 10.0);
  const double bs = rate(StrategyConfig::bytescheduler(), 10.0);
  // P3 keeps a slightly larger residual (its per-partition blocking acks
  // never fully amortize); the paper likewise reports "comparable" rather
  // than identical rates at 10 Gbps.
  EXPECT_NEAR(p3, prophet, 0.08 * prophet);
  EXPECT_NEAR(bs, prophet, 0.06 * prophet);
}

TEST(PaperClaims, RateDegradesGracefullyWithBandwidth) {
  // Table 2 shape: monotone-ish growth, saturation at high bandwidth.
  double prev = 0.0;
  for (double gbps : {1.0, 2.0, 4.0, 10.0}) {
    const double r = rate(StrategyConfig::prophet(), gbps);
    EXPECT_GT(r, prev * 0.99) << "bandwidth " << gbps;
    prev = r;
  }
}

TEST(PaperClaims, LargerBatchWidensProphetAdvantageOverByteScheduler) {
  // Table 3: bigger mini-batches lengthen the block intervals, giving
  // Prophet more room against ByteScheduler; tiny batches are
  // communication-bound for both priority schedulers.
  // Robust core of the claim: Prophet never loses to ByteScheduler at any
  // batch size. (The paper's monotone-in-batch improvement trend does not
  // reproduce in this substrate — see EXPERIMENTS.md, Table 3 notes.)
  auto improvement = [&](int batch) {
    auto prophet_cfg = base_config(StrategyConfig::prophet(), 2.0);
    auto bs_cfg = base_config(StrategyConfig::bytescheduler(), 2.0);
    prophet_cfg.batch = batch;
    bs_cfg.batch = batch;
    return run_cluster(prophet_cfg, 8).mean_rate() /
           run_cluster(bs_cfg, 8).mean_rate();
  };
  for (int batch : {16, 32, 64}) {
    EXPECT_GE(improvement(batch), 0.99) << "batch " << batch;
  }
}

TEST(PaperClaims, GpuUtilizationOrderingMatchesRates) {
  // Fig. 9: Prophet's higher rate comes from higher GPU utilization.
  const auto prophet = run_cluster(base_config(StrategyConfig::prophet(), 2.0), 8);
  const auto fifo = run_cluster(base_config(StrategyConfig::fifo(), 2.0), 8);
  EXPECT_GT(prophet.mean_utilization(), fifo.mean_utilization());
  EXPECT_GT(prophet.mean_utilization(), 0.85);
}

TEST(PaperClaims, ProphetReducesMeanGradientWait) {
  // Fig. 11: Prophet's mean per-gradient wait is well below FIFO's.
  const auto prophet = run_cluster(base_config(StrategyConfig::prophet(), 2.0), 8);
  const auto fifo = run_cluster(base_config(StrategyConfig::fifo(), 2.0), 8);
  const auto pw = prophet.workers[0].transfers.overall(8, 26, sched::TaskKind::kPush);
  const auto fw = fifo.workers[0].transfers.overall(8, 26, sched::TaskKind::kPush);
  ASSERT_GT(pw.count, 0u);
  ASSERT_GT(fw.count, 0u);
  EXPECT_LT(pw.mean_wait_ms, fw.mean_wait_ms);
}

TEST(PaperClaims, ScalingWorkersKeepsPerWorkerRateRoughlyFlat) {
  // Fig. 12: per-worker rate decays only slightly from 2 to 8 workers
  // (PS capacity scaled with the cluster as in BytePS deployments).
  std::vector<double> rates;
  for (std::size_t workers : {2u, 4u, 8u}) {
    auto cfg = base_config(StrategyConfig::prophet(), 10.0);
    cfg.num_workers = workers;
    cfg.ps_bandwidth = Bandwidth::gbps(10.0 * static_cast<double>(workers) / 2.0);
    rates.push_back(run_cluster(cfg, 8).mean_rate());
  }
  EXPECT_GT(rates[2], 0.9 * rates[0]);
}

TEST(PaperClaims, ProfilingPhaseThenImproves) {
  // Fig. 13: during profiling Prophet runs the engine default (priority +
  // fixed credit groups); once the block assembler activates, iterations
  // never get slower and typically get faster.
  auto cfg = base_config(StrategyConfig::prophet(), 2.0);
  cfg.strategy.prophet_config.profile_iterations = 10;
  cfg.iterations = 30;
  const auto result = run_cluster(cfg, 12);
  const auto& training = result.workers[0].training;
  const double early = training.rate_samples_per_sec(2, 9);
  const double late = training.rate_samples_per_sec(12, 30);
  EXPECT_GE(late, 0.995 * early);
  // And the activation is observable.
  ASSERT_TRUE(result.workers[0].prophet_activated_at.has_value());
  EXPECT_EQ(*result.workers[0].prophet_activated_at, 10u);
}

}  // namespace
}  // namespace prophet::ps
