#include <gtest/gtest.h>

#include "core/prophet_scheduler.hpp"
#include "testing_profiles.hpp"

namespace prophet::core {
namespace {

using namespace prophet::literals;
using sched::TaskKind;
using testing::fig5_profile;
using testing::make_profile;
using testing::simple_cost;

TimePoint at(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

constexpr double kMiBps100 = 1024.0 * 1024.0 * 100;

ProphetScheduler make_push(std::size_t grads, GradientProfile profile,
                           ProphetConfig config = {},
                           Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100)) {
  ProphetScheduler sched{TaskKind::kPush, grads, [bw] { return bw; },
                         simple_cost(), config};
  sched.set_profile(std::move(profile));
  return sched;
}

TEST(ProphetScheduler, RunsEngineDefaultWhileProfiling) {
  // Before the profile exists Prophet behaves like the underlying BytePS
  // engine: priority order, credit-sized groups.
  ProphetConfig config;
  config.partition_bytes = Bytes::mib(1);
  config.min_block = Bytes::mib(2);
  ProphetScheduler sched{TaskKind::kPush, 3,
                         [] { return Bandwidth::gbps(1); }, simple_cost(), config};
  EXPECT_FALSE(sched.profile_ready());
  sched.on_iteration_start(0, at(0));
  sched.enqueue(2, Bytes::mib(2), at(1));
  sched.enqueue(1, Bytes::mib(1), at(2));
  sched.enqueue(0, Bytes::kib(4), at(3));
  const auto first = sched.next_task(at(3));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->items[0].grad, 0u);  // most urgent first
  EXPECT_EQ(first->items[1].grad, 1u);  // grouped up to the credit
  const auto second = sched.next_task(at(3));
  EXPECT_EQ(second->items[0].grad, 2u);
  EXPECT_FALSE(sched.next_task(at(3)).has_value());
  EXPECT_FALSE(sched.has_pending());
}

TEST(ProphetScheduler, ProfileBuildsAfterConfiguredIterations) {
  ProphetConfig config;
  config.profile_iterations = 2;
  ProphetScheduler sched{TaskKind::kPush, 2,
                         [] { return Bandwidth::gbps(1); }, simple_cost(), config};
  for (std::size_t iter = 0; iter < 3; ++iter) {
    sched.on_iteration_start(iter, at(static_cast<std::int64_t>(100 * iter)));
    if (sched.profile_ready()) break;
    sched.enqueue(1, Bytes::mib(1), at(static_cast<std::int64_t>(100 * iter + 10)));
    sched.enqueue(0, Bytes::mib(1), at(static_cast<std::int64_t>(100 * iter + 30)));
    while (sched.next_task(at(static_cast<std::int64_t>(100 * iter + 30)))) {
    }
  }
  EXPECT_TRUE(sched.profile_ready());
  EXPECT_NEAR(sched.profile().ready[1].to_millis(), 10.0, 1e-9);
  EXPECT_NEAR(sched.profile().ready[0].to_millis(), 30.0, 1e-9);
  EXPECT_EQ(sched.profile().iterations_profiled, 2u);
}

TEST(ProphetScheduler, AssemblesBlockWithinPredictedInterval) {
  // Gradients 1 and 2 generated at t=0; gradient 0 predicted at 30 ms.
  auto sched = make_push(
      3, make_profile({30_ms, 0_ms, 0_ms},
                      {Bytes::mib(1), Bytes::mib(1), Bytes::mib(1)}));
  sched.on_iteration_start(0, at(0));
  sched.enqueue(2, Bytes::mib(1), at(0));
  sched.enqueue(1, Bytes::mib(1), at(0));
  const auto task = sched.next_task(at(0));
  ASSERT_TRUE(task.has_value());
  // Both fit: 1 ms + 20 ms < 28.5 ms budget; one block, priority order.
  EXPECT_EQ(task->total_bytes(), Bytes::mib(2));
  EXPECT_EQ(task->items.front().grad, 1u);
  EXPECT_EQ(task->priority(), 1u);
  EXPECT_EQ(task->post_delay, Duration::zero());  // Prophet streams
}

TEST(ProphetScheduler, Fig5PartialGradientBeforeGradientZero) {
  // The paper's illustrative example: only two of gradient 1's three
  // 1 MiB partitions fit before gradient 0 is generated.
  ProphetConfig config;
  config.partition_bytes = Bytes::mib(1);
  config.budget_margin = 0.0;
  config.min_block = Bytes::of(1);
  config.forward_group_max = Bytes::mib(1);  // isolate per-gradient drain tasks
  auto sched = make_push(3, fig5_profile(), config);
  sched.on_iteration_start(0, at(0));
  sched.enqueue(2, Bytes::mib(1), at(0));
  // Gradient 2 goes out as its own block (fits before 10 ms: 1 + 10 = 11 >
  // 10!? no: budget to gradient 1's generation is 10 ms, one partition is
  // 11 ms -> does not fit, but the no-starvation floor sends it anyway).
  const auto first = sched.next_task(at(0));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->items[0].grad, 2u);

  // At 11 ms gradient 1 (3 MiB) is ready; gradient 0 predicted at 30 ms.
  sched.enqueue(1, Bytes::mib(3), at(11));
  const auto second = sched.next_task(at(11));
  ASSERT_TRUE(second.has_value());
  // Budget 19 ms -> 1 ms overhead + 18 ms serialization ~= 1.8 MiB -> one
  // 1 MiB partition... with min_block=1 B the fit is computed exactly:
  // 2 partitions need 1 + 20.5 ms > 19; 1 partition needs 11 ms < 19.
  EXPECT_EQ(second->items.size(), 1u);
  EXPECT_EQ(second->items[0].grad, 1u);
  EXPECT_FALSE(second->items[0].last_slice);

  // Gradient 0 arrives; remaining work drains priority-first.
  sched.enqueue(0, Bytes::mib(1), at(30));
  const auto third = sched.next_task(at(30));
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->items[0].grad, 0u);
  // Then the rest of gradient 1.
  const auto fourth = sched.next_task(at(45));
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(fourth->items[0].grad, 1u);
  EXPECT_EQ(fourth->items[0].offset, Bytes::mib(1));
}

TEST(ProphetScheduler, NeverIdlesWithBackloggedQueue) {
  // Predicted event already overdue: the scheduler must still emit work
  // (min_block floor) instead of starving the NIC.
  auto sched = make_push(
      3, make_profile({5_ms, 0_ms, 0_ms},
                      {Bytes::mib(1), Bytes::mib(8), Bytes::mib(8)}));
  sched.on_iteration_start(0, at(0));
  sched.enqueue(2, Bytes::mib(8), at(0));
  sched.enqueue(1, Bytes::mib(8), at(0));
  const auto task = sched.next_task(at(20));  // gradient 0 late
  ASSERT_TRUE(task.has_value());
  EXPECT_GE(task->total_bytes(), Bytes::mib(4));  // assembly floor
}

TEST(ProphetScheduler, DrainModeGroupsUpToCap) {
  ProphetConfig config;
  config.forward_group_max = Bytes::mib(2);
  auto sched = make_push(
      4, make_profile({10_ms, 10_ms, 0_ms, 0_ms},
                      std::vector<Bytes>(4, Bytes::mib(1))), config);
  sched.on_iteration_start(0, at(0));
  sched.enqueue(3, Bytes::mib(1), at(0));
  sched.enqueue(2, Bytes::mib(1), at(0));
  sched.enqueue(1, Bytes::mib(1), at(10));
  sched.enqueue(0, Bytes::mib(1), at(10));  // backward over -> drain mode
  const auto first = sched.next_task(at(10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->total_bytes(), Bytes::mib(2));
  EXPECT_EQ(first->items[0].grad, 0u);
  EXPECT_EQ(first->items[1].grad, 1u);
  const auto second = sched.next_task(at(40));
  EXPECT_EQ(second->items[0].grad, 2u);
}

TEST(ProphetScheduler, PullSideGroupsReadyParamsByPriority) {
  ProphetConfig config;
  config.forward_group_max = Bytes::mib(4);
  ProphetScheduler pull{TaskKind::kPull, 5,
                        [] { return Bandwidth::gbps(1); }, simple_cost(), config};
  pull.set_profile(make_profile(
      {40_ms, 30_ms, 20_ms, 10_ms, 0_ms}, std::vector<Bytes>(5, Bytes::mib(2))));
  pull.enqueue(4, Bytes::mib(2), at(0));
  pull.enqueue(2, Bytes::mib(2), at(1));
  pull.enqueue(3, Bytes::mib(2), at(1));
  const auto task = pull.next_task(at(2));
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->total_bytes(), Bytes::mib(4));
  EXPECT_EQ(task->items.front().grad, 2u);
  EXPECT_EQ(task->kind, TaskKind::kPull);
}

TEST(ProphetScheduler, ReplansEachIteration) {
  auto sched = make_push(
      2, make_profile({10_ms, 0_ms}, {Bytes::mib(1), Bytes::mib(1)}));
  for (std::int64_t iter = 0; iter < 3; ++iter) {
    const std::int64_t base = 100 * iter;
    sched.on_iteration_start(static_cast<std::size_t>(iter), at(base));
    sched.enqueue(1, Bytes::mib(1), at(base));
    const auto t1 = sched.next_task(at(base));
    ASSERT_TRUE(t1.has_value()) << "iteration " << iter;
    sched.enqueue(0, Bytes::mib(1), at(base + 10));
    const auto t2 = sched.next_task(at(base + 12));
    ASSERT_TRUE(t2.has_value());
    EXPECT_EQ(t2->items[0].grad, 0u);
    EXPECT_FALSE(sched.has_pending());
  }
}

TEST(ProphetSchedulerDeath, ProfileAccessBeforeReadyAborts) {
  ProphetScheduler sched{TaskKind::kPush, 2,
                         [] { return Bandwidth::gbps(1); }, simple_cost(), {}};
  EXPECT_DEATH((void)sched.profile(), "profile not ready");
}

}  // namespace
}  // namespace prophet::core
