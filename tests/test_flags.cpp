#include <gtest/gtest.h>

#include "common/flags.hpp"

namespace prophet {
namespace {

Flags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  const auto flags = Flags::parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.has_value());
  return *flags;
}

TEST(Flags, SpaceSeparatedValues) {
  const Flags f = parse({"--model", "resnet50", "--batch", "64"});
  EXPECT_EQ(f.get("model", std::string{}), "resnet50");
  EXPECT_EQ(f.get("batch", std::int64_t{0}), 64);
}

TEST(Flags, EqualsSeparatedValues) {
  const Flags f = parse({"--gbps=2.5", "--strategy=prophet"});
  EXPECT_DOUBLE_EQ(f.get("gbps", 0.0), 2.5);
  EXPECT_EQ(f.get("strategy", std::string{}), "prophet");
}

TEST(Flags, BooleanForms) {
  const Flags f = parse({"--asp", "--trace", "out.json", "--verbose=yes"});
  EXPECT_TRUE(f.get("asp", false));
  EXPECT_TRUE(f.get("verbose", false));
  EXPECT_EQ(f.get("trace", std::string{}), "out.json");
  EXPECT_FALSE(f.get("absent", false));
  EXPECT_TRUE(f.get("absent", true));
}

TEST(Flags, TrailingBooleanFlag) {
  const Flags f = parse({"--workers", "4", "--asp"});
  EXPECT_EQ(f.get("workers", std::int64_t{0}), 4);
  EXPECT_TRUE(f.get("asp", false));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"first", "--x", "1", "second"});
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("model", std::string{"fallback"}), "fallback");
  EXPECT_DOUBLE_EQ(f.get("gbps", 3.5), 3.5);
  EXPECT_EQ(f.get("n", std::int64_t{7}), 7);
  EXPECT_FALSE(f.has("model"));
}

TEST(Flags, NamesLists) {
  const Flags f = parse({"--b", "2", "--a=1"});
  EXPECT_EQ(f.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Flags, BareDashDashIsError) {
  std::vector<const char*> args{"prog", "--"};
  std::string error;
  const auto flags =
      Flags::parse(static_cast<int>(args.size()), args.data(), &error);
  EXPECT_FALSE(flags.has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace prophet
