#include <gtest/gtest.h>

#include "core/block_planner.hpp"
#include "testing_profiles.hpp"

namespace prophet::core {
namespace {

using namespace prophet::literals;
using testing::fig5_profile;
using testing::make_profile;
using testing::simple_cost;

constexpr double kMiBps100 = 1024.0 * 1024.0 * 100;  // 100 MiB/s

TEST(BlockPlanner, PlansAreAlwaysConstraintFeasible) {
  const auto profile = make_profile(
      {40_ms, 40_ms, 25_ms, 25_ms, 10_ms, 10_ms},
      {Bytes::mib(1), Bytes::kib(64), Bytes::mib(2), Bytes::kib(8), Bytes::mib(1),
       Bytes::kib(512)});
  const Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100);
  const BlockPlanner planner{simple_cost()};
  const Schedule schedule = planner.plan(profile, bw);
  const PerfModel model{profile, std::vector<Duration>(6, 2_ms), bw, simple_cost()};
  EXPECT_TRUE(model.check_constraints(schedule).empty());
}

TEST(BlockPlanner, AssemblesBlocksWithinIntervals) {
  // Two gradients generated at 0 ms, next event at 50 ms: both fit in one
  // block at 100 MiB/s (1 + 10 + 10 ms < 47.5 ms budget).
  const auto profile = make_profile({50_ms, 0_ms, 0_ms},
                                    {Bytes::mib(1), Bytes::mib(1), Bytes::mib(1)});
  const BlockPlanner planner{simple_cost()};
  const Schedule schedule =
      planner.plan(profile, Bandwidth::bytes_per_sec(kMiBps100));
  ASSERT_GE(schedule.tasks.size(), 2u);
  EXPECT_EQ(schedule.tasks[0].grads, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(schedule.tasks[0].start, 0_ms);
  // Gradient 0 transfers at its generation time (Alg. 1 line 17).
  EXPECT_EQ(schedule.tasks.back().grads, (std::vector<std::size_t>{0}));
  EXPECT_EQ(schedule.tasks.back().start, 50_ms);
}

TEST(BlockPlanner, DefersGradientsThatDoNotFit) {
  // Tight interval: only the small gradient fits before the next event.
  const auto profile = make_profile({12_ms, 0_ms, 0_ms},
                                    {Bytes::mib(1), Bytes::mib(4), Bytes::kib(512)});
  const BlockPlanner planner{simple_cost(), {.budget_margin = 0.0}};
  const Schedule schedule =
      planner.plan(profile, Bandwidth::bytes_per_sec(kMiBps100));
  // Priority order within the ready set: gradient 1 (4 MiB, 41 ms) does NOT
  // fit in 12 ms and blocks gradient 2 from jumping ahead (strict priority).
  ASSERT_FALSE(schedule.tasks.empty());
  // Forward phase then drains 0, 1, 2 in priority order.
  std::vector<std::size_t> forward_order;
  for (const auto& task : schedule.tasks) {
    if (task.start >= 12_ms) {
      for (std::size_t g : task.grads) forward_order.push_back(g);
    }
  }
  EXPECT_EQ(forward_order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BlockPlanner, Fig5OnlyPartOfGradient1BeforeGradient0) {
  // At ~100 MiB/s gradient 1 (3 MiB ~ 31 ms) cannot finish inside the 20 ms
  // gap before gradient 0 is generated; the offline whole-gradient planner
  // therefore defers it, and gradient 0 preempts (the runtime scheduler
  // sends the two fitting partitions instead — covered in
  // test_prophet_scheduler).
  const BlockPlanner planner{simple_cost()};
  const Schedule schedule =
      planner.plan(fig5_profile(), Bandwidth::bytes_per_sec(kMiBps100));
  // Gradient 0's task must start at its generation time (not delayed by 1).
  for (const auto& task : schedule.tasks) {
    if (task.grads == std::vector<std::size_t>{0}) {
      EXPECT_EQ(task.start, 30_ms);
      return;
    }
  }
  FAIL() << "gradient 0 not scheduled alone";
}

TEST(BlockPlanner, HighBandwidthMergesEverythingPerEvent) {
  const auto profile = make_profile(
      {30_ms, 20_ms, 20_ms, 10_ms, 10_ms},
      std::vector<Bytes>(5, Bytes::kib(64)));
  const BlockPlanner planner{simple_cost(100_us)};
  const Schedule schedule = planner.plan(profile, Bandwidth::gbps(10));
  // Three generation events -> one block per non-final event + gradient 0.
  ASSERT_EQ(schedule.tasks.size(), 3u);
  EXPECT_EQ(schedule.tasks[0].grads, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(schedule.tasks[1].grads, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(schedule.tasks[2].grads, (std::vector<std::size_t>{0}));
}

TEST(BlockPlanner, EveryGradientScheduledExactlyOnce) {
  const auto profile = make_profile(
      {50_ms, 40_ms, 40_ms, 25_ms, 25_ms, 10_ms, 10_ms, 10_ms},
      std::vector<Bytes>(8, Bytes::mib(1)));
  const BlockPlanner planner{simple_cost()};
  const Schedule schedule =
      planner.plan(profile, Bandwidth::bytes_per_sec(kMiBps100));
  std::vector<int> seen(8, 0);
  for (const auto& task : schedule.tasks) {
    for (std::size_t g : task.grads) ++seen[g];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(BlockPlanner, SingleGradientModel) {
  const auto profile = make_profile({5_ms}, {Bytes::mib(2)});
  const BlockPlanner planner{simple_cost()};
  const Schedule schedule = planner.plan(profile, Bandwidth::gbps(1));
  ASSERT_EQ(schedule.tasks.size(), 1u);
  EXPECT_EQ(schedule.tasks[0].grads, (std::vector<std::size_t>{0}));
  EXPECT_EQ(schedule.tasks[0].start, 5_ms);
}

TEST(BlockPlanner, BudgetMarginShrinksBlocks) {
  // With a huge margin nothing fits inside intervals; everything drains in
  // the forward phase in priority order.
  const auto profile = make_profile({20_ms, 0_ms, 0_ms},
                                    {Bytes::mib(1), Bytes::mib(1), Bytes::mib(1)});
  const BlockPlanner tight{simple_cost(), {.budget_margin = 0.99}};
  const Schedule schedule =
      tight.plan(profile, Bandwidth::bytes_per_sec(kMiBps100));
  EXPECT_EQ(schedule.tasks.size(), 3u);
  for (const auto& task : schedule.tasks) EXPECT_GE(task.start, 20_ms);
  EXPECT_EQ(schedule.tasks[0].grads[0], 0u);
}

}  // namespace
}  // namespace prophet::core
