#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/chrome_trace.hpp"
#include "ps/trace_export.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ChromeTraceTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "prophet_trace_test.json";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(ChromeTraceTest, EmitsWellFormedSpans) {
  {
    metrics::ChromeTraceWriter trace{path_};
    ASSERT_TRUE(trace.ok());
    trace.name_process(0, "worker0");
    trace.name_thread(0, 1, "gradient push");
    trace.add_span("g3", "push", 0, 1, TimePoint::origin() + 2_ms, 5_ms);
    trace.close();
  }
  const std::string out = read_file(path_);
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"g3\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\":2000.000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":5000.000"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"worker0\""), std::string::npos);
  // Balanced JSON delimiters (cheap well-formedness check).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST_F(ChromeTraceTest, EscapesSpecialCharacters) {
  EXPECT_EQ(metrics::ChromeTraceWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST_F(ChromeTraceTest, DestructorClosesFile) {
  { metrics::ChromeTraceWriter trace{path_}; }
  const std::string out = read_file(path_);
  EXPECT_EQ(out, "{\"traceEvents\":[\n]}\n");
}

TEST_F(ChromeTraceTest, ExportsFullClusterRun) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 2;
  cfg.batch = 16;
  cfg.iterations = 6;
  cfg.strategy = ps::StrategyConfig::prophet();
  cfg.strategy.prophet_config.profile_iterations = 2;
  const auto result = ps::run_cluster(cfg, 2);
  ps::export_chrome_trace(result, path_);

  const std::string out = read_file(path_);
  EXPECT_NE(out.find("\"name\":\"worker0\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"worker1\""), std::string::npos);
  EXPECT_NE(out.find("GPU compute"), std::string::npos);
  EXPECT_NE(out.find("gradient push"), std::string::npos);
  EXPECT_NE(out.find("parameter pull"), std::string::npos);
  // Every transfer record appears as a span; workers also emit compute.
  std::size_t spans = 0;
  for (std::size_t pos = out.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = out.find("\"ph\":\"X\"", pos + 1)) {
    ++spans;
  }
  std::size_t expected = 0;
  for (const auto& w : result.workers) {
    expected += w.transfers.records().size() + w.gpu_intervals.size();
  }
  EXPECT_EQ(spans, expected);
}

}  // namespace
}  // namespace prophet
