#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/block_planner.hpp"
#include "core/local_search.hpp"
#include "core/oracle.hpp"
#include "testing_profiles.hpp"

namespace prophet::core {
namespace {

using namespace prophet::literals;
using testing::make_profile;
using testing::simple_cost;

constexpr double kMiBps100 = 1024.0 * 1024.0 * 100;

GradientProfile random_profile(Rng& rng, std::size_t n) {
  std::vector<Duration> ready(n);
  std::vector<Bytes> sizes(n);
  Duration clock{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = n - 1 - step;
    if (step == 0 || rng.bernoulli(0.6)) clock += Duration::millis(rng.uniform_int(2, 25));
    ready[idx] = clock;
    sizes[idx] = Bytes::kib(rng.uniform_int(16, 4096));
  }
  return make_profile(std::move(ready), std::move(sizes));
}

TEST(LocalSearch, RetimeRespectsReadinessAndSerialization) {
  const auto profile = make_profile({20_ms, 10_ms, 0_ms},
                                    std::vector<Bytes>(3, Bytes::mib(1)));
  const PerfModel model{profile, std::vector<Duration>(3, 2_ms),
                        Bandwidth::bytes_per_sec(kMiBps100), simple_cost()};
  Schedule raw;
  raw.tasks.push_back({{2}, 0_ms});
  raw.tasks.push_back({{1}, 0_ms});  // bogus start; retime must fix it
  raw.tasks.push_back({{0}, 0_ms});
  const Schedule timed = LocalSearchPlanner::retime(raw, model);
  EXPECT_EQ(timed.tasks[0].start, 0_ms);
  EXPECT_EQ(timed.tasks[1].start, 11_ms);  // NIC busy until 11
  EXPECT_EQ(timed.tasks[2].start, 22_ms);
  // Constraints (7) and (8) hold after retiming.
  for (const auto& violation : model.check_constraints(timed)) {
    EXPECT_EQ(violation.find("constraint (7)"), std::string::npos) << violation;
    EXPECT_EQ(violation.find("constraint (8)"), std::string::npos) << violation;
  }
}

TEST(LocalSearch, NeverWorseThanItsStartingPoint) {
  Rng rng{99};
  const Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100);
  for (int trial = 0; trial < 20; ++trial) {
    const auto profile = random_profile(rng, 10);
    const PerfModel model{profile, std::vector<Duration>(10, 2_ms), bw,
                          simple_cost()};
    const Schedule planned = BlockPlanner{simple_cost()}.plan(profile, bw);
    const auto refined = LocalSearchPlanner{}.refine(planned, model);
    const auto base = model.evaluate(LocalSearchPlanner::retime(planned, model));
    EXPECT_LE(refined.breakdown.t_wait.count_nanos(),
              base.t_wait.count_nanos())
        << "trial " << trial;
  }
}

TEST(LocalSearch, FindsMergeWhenOverheadDominates) {
  // Three tiny simultaneous gradients with a huge per-task setup: merging
  // into one task is clearly better, and local search must find it.
  const auto profile = make_profile({0_ms, 0_ms, 0_ms},
                                    std::vector<Bytes>(3, Bytes::kib(16)));
  const PerfModel model{profile, std::vector<Duration>(3, 1_ms),
                        Bandwidth::gbps(10), simple_cost(10_ms)};
  Schedule singletons;
  singletons.tasks.push_back({{2}, 0_ms});
  singletons.tasks.push_back({{1}, 0_ms});
  singletons.tasks.push_back({{0}, 0_ms});
  const auto refined = LocalSearchPlanner{}.refine(singletons, model);
  EXPECT_EQ(refined.schedule.tasks.size(), 1u);
  EXPECT_GT(refined.moves_applied, 0u);
}

TEST(LocalSearch, FindsSplitWhenBlockDelaysUrgentGradient) {
  // One merged task containing gradient 0 and a big low-priority tensor:
  // splitting lets gradient 0's update finish earlier.
  const auto profile = make_profile({10_ms, 0_ms},
                                    {Bytes::kib(64), Bytes::mib(8)});
  const PerfModel model{profile, {1_ms, 1_ms},
                        Bandwidth::bytes_per_sec(kMiBps100), simple_cost(100_us)};
  Schedule merged;
  merged.tasks.push_back({{1, 0}, 10_ms});
  const auto refined = LocalSearchPlanner{}.refine(merged, model);
  EXPECT_GE(refined.schedule.tasks.size(), 2u);
  EXPECT_LT(refined.breakdown.t_wait,
            model.evaluate(LocalSearchPlanner::retime(merged, model)).t_wait);
}

TEST(LocalSearch, StaysNearTheExhaustiveOracle) {
  // The oracle exhaustively searches contiguous generation-order groupings
  // (ignoring the paper's runtime Constraint (9)); local search explores a
  // different neighborhood (order-preserving moves + adjacent swaps). On
  // random backlogged instances it must stay within a small factor of the
  // oracle, and occasionally beat it by leaving the contiguous space.
  Rng rng{2024};
  const Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100);
  int beat_oracle = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const auto profile = random_profile(rng, 8);
    const PerfModel model{profile, std::vector<Duration>(8, 2_ms), bw,
                          simple_cost()};
    const Schedule planned = BlockPlanner{simple_cost()}.plan(profile, bw);
    const auto refined = LocalSearchPlanner{}.refine(planned, model);
    const auto oracle = OracleScheduler{}.solve(model);
    EXPECT_LE(refined.breakdown.t_wait.to_seconds(),
              1.6 * oracle.breakdown.t_wait.to_seconds())
        << "trial " << trial;
    if (refined.breakdown.t_wait < oracle.breakdown.t_wait) ++beat_oracle;
  }
  EXPECT_GE(beat_oracle, 1);
}

}  // namespace
}  // namespace prophet::core
