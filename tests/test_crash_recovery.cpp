// Crash/recovery subsystem: worker crashes (lost in-flight state, replayed
// iterations), PS checkpoint failover (global rollback), transport loss
// under the reliable channel, schedule repair across strategies, and the
// fault-plan rejections ClusterConfig::validate() must make.
//
// Every cluster run here executes under the always-on BSP auditor, so
// passing is a statement that no fault lost or double-counted a gradient.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "audit/bsp_auditor.hpp"
#include "metrics/transfer_log.hpp"
#include "net/dynamics.hpp"
#include "ps/cluster.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

ps::ClusterConfig small_config(ps::StrategyConfig strategy) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 2;
  cfg.batch = 32;
  cfg.iterations = 12;
  cfg.worker_bandwidth = Bandwidth::gbps(1);
  cfg.ps_bandwidth = Bandwidth::gbps(1);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  return cfg;
}

std::size_t fault_count(const ps::WorkerResult& worker, metrics::FaultKind kind) {
  std::size_t count = 0;
  for (const auto& fault : worker.transfers.faults()) {
    if (fault.kind == kind) ++count;
  }
  return count;
}

TEST(CrashRecovery, WorkerCrashReplaysAndFinishesEveryStrategy) {
  for (const auto& strategy :
       {ps::StrategyConfig::fifo(), ps::StrategyConfig::p3(),
        ps::StrategyConfig::bytescheduler(), ps::StrategyConfig::prophet()}) {
    auto cfg = small_config(strategy);
    const auto baseline = run_cluster(cfg, 1);
    // Early enough to land mid-training for every strategy (the fastest
    // finishes the 12 iterations in ~220 ms).
    cfg.dynamics.worker_crash(100_ms, 50_ms, 0);
    const auto faulted = run_cluster(cfg, 1);
    for (const auto& w : faulted.workers) {
      EXPECT_EQ(w.iterations_completed, 12u) << strategy.name();
    }
    // The crash cost at least its downtime plus the replayed work.
    EXPECT_GT(faulted.simulated_time.count_nanos(),
              baseline.simulated_time.count_nanos())
        << strategy.name();
    EXPECT_EQ(fault_count(faulted.workers[0], metrics::FaultKind::kWorkerCrash), 1u)
        << strategy.name();
    EXPECT_EQ(fault_count(faulted.workers[0], metrics::FaultKind::kWorkerRecover),
              1u)
        << strategy.name();
    EXPECT_GT(faulted.audit_checks, 0u) << strategy.name();
  }
}

TEST(CrashRecovery, WorkerCrashRunIsBitDeterministic) {
  auto cfg = small_config(ps::StrategyConfig::prophet());
  cfg.dynamics.worker_crash(100_ms, 50_ms, 1);
  const auto a = run_cluster(cfg, 1);
  const auto b = run_cluster(cfg, 1);
  EXPECT_EQ(a.simulated_time.count_nanos(), b.simulated_time.count_nanos());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.audit_checks, b.audit_checks);
  EXPECT_DOUBLE_EQ(a.mean_rate(), b.mean_rate());
  for (std::size_t w = 0; w < a.workers.size(); ++w) {
    EXPECT_EQ(a.workers[w].transfers.faults().size(),
              b.workers[w].transfers.faults().size());
    EXPECT_EQ(a.workers[w].transfers.records().size(),
              b.workers[w].transfers.records().size());
  }
}

TEST(CrashRecovery, PsCrashRestoresCheckpointAndFinishes) {
  auto cfg = small_config(ps::StrategyConfig::bytescheduler());
  const auto baseline = run_cluster(cfg, 1);
  cfg.checkpoint_period = 50_ms;
  cfg.dynamics.ps_crash(120_ms, 80_ms);
  const auto faulted = run_cluster(cfg, 1);
  for (const auto& w : faulted.workers) {
    EXPECT_EQ(w.iterations_completed, 12u);
    // Every worker observed the crash and the failover rollback.
    EXPECT_EQ(fault_count(w, metrics::FaultKind::kPsCrash), 1u);
    EXPECT_EQ(fault_count(w, metrics::FaultKind::kPsFailover), 1u);
  }
  // Failover costs its downtime plus the rounds rolled back and redone.
  EXPECT_GT(faulted.simulated_time.count_nanos(),
            baseline.simulated_time.count_nanos() + Duration{80_ms}.count_nanos());
  EXPECT_GT(faulted.audit_checks, 0u);
}

TEST(CrashRecovery, ProphetRepairsItsPlanAfterACrash) {
  // Crash Prophet's worker well after profiling finished: recovery must not
  // restart profiling, it re-plans from the surviving profile.
  auto cfg = small_config(ps::StrategyConfig::prophet());
  cfg.iterations = 16;
  cfg.dynamics.worker_crash(150_ms, 60_ms, 0);
  const auto result = run_cluster(cfg, 1);
  EXPECT_EQ(result.workers[0].iterations_completed, 16u);
  ASSERT_TRUE(result.workers[0].prophet_activated_at.has_value());
  // The forced post-recovery re-plan is counted alongside drift re-plans.
  EXPECT_GE(result.workers[0].prophet_replans, 1u);
}

TEST(CrashRecovery, TransportLossRetriesAndStillConverges) {
  auto cfg = small_config(ps::StrategyConfig::p3());
  const auto baseline = run_cluster(cfg, 1);
  cfg.reliability.loss_rate = 0.05;
  cfg.reliability.retry_budget = 64;
  const auto lossy = run_cluster(cfg, 1);
  std::size_t retries = 0;
  std::size_t multi_attempt_records = 0;
  for (const auto& w : lossy.workers) {
    retries += fault_count(w, metrics::FaultKind::kTransportRetry);
    EXPECT_EQ(w.iterations_completed, 12u);
    for (const auto& rec : w.transfers.records()) {
      if (rec.attempts > 1) ++multi_attempt_records;
    }
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(multi_attempt_records, 0u);
  // Retries only cost time; they never lose bytes (the run still finishes
  // with every round accounted — enforced by the auditor).
  EXPECT_GT(lossy.simulated_time.count_nanos(),
            baseline.simulated_time.count_nanos());
}

TEST(CrashRecovery, DynamicsPlanTogglesLossMidRun) {
  auto cfg = small_config(ps::StrategyConfig::fifo());
  cfg.reliability.retry_budget = 64;
  cfg.dynamics.loss_rate(200_ms, 0.2);
  const auto result = run_cluster(cfg, 1);
  TimePoint first_retry = TimePoint::origin() + cfg.metrics_horizon;
  std::size_t retries = 0;
  for (const auto& w : result.workers) {
    for (const auto& fault : w.transfers.faults()) {
      if (fault.kind != metrics::FaultKind::kTransportRetry) continue;
      ++retries;
      first_retry = std::min(first_retry, fault.at);
    }
  }
  EXPECT_GT(retries, 0u);
  // Loss was off until the plan turned it on.
  EXPECT_GE(first_retry, TimePoint::origin() + Duration{200_ms});
}

TEST(CrashRecoveryDeathTest, ConfigRejectsIllFormedFaultPlans) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    // Loss with a zero retry budget hangs on the first drop.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.reliability.loss_rate = 0.1;
    cfg.reliability.retry_budget = 0;
    EXPECT_DEATH(ps::Cluster{cfg}, "retry");
  }
  {
    // Same rejection when the loss arrives via the dynamics plan.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.reliability.retry_budget = 0;
    cfg.dynamics.loss_rate(1_s, 0.1);
    EXPECT_DEATH(ps::Cluster{cfg}, "retry");
  }
  {
    // Crash faults need a BSP round to roll back to.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.sync = ps::SyncMode::kAsp;
    cfg.dynamics.worker_crash(1_s, 100_ms, 0);
    EXPECT_DEATH(ps::Cluster{cfg}, "BSP");
  }
  {
    // PS failover needs a checkpoint to restore.
    auto cfg = small_config(ps::StrategyConfig::fifo());
    cfg.checkpoint_period = Duration::zero();
    cfg.dynamics.ps_crash(1_s, 100_ms);
    EXPECT_DEATH(ps::Cluster{cfg}, "checkpoint_period");
  }
}

TEST(BspAuditorDeathTest, CatchesProtocolViolations) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<Bytes> keys{Bytes::of(1000)};
  {
    // A duplicate gradient push overfills the round.
    audit::BspAuditor auditor{1, keys};
    auditor.on_push_delivered(0, 0, Bytes::of(1000), TimePoint::origin());
    EXPECT_DEATH(
        auditor.on_push_delivered(0, 0, Bytes::of(1000), TimePoint::origin()),
        "BSP audit violation");
  }
  {
    // A round completing without every worker's contribution.
    audit::BspAuditor auditor{2, keys};
    auditor.on_push_delivered(0, 0, Bytes::of(1000), TimePoint::origin());
    EXPECT_DEATH(auditor.on_round_complete(0, TimePoint::origin()),
                 "BSP audit violation");
  }
  {
    // Backward starting before the barrier's pulls are in.
    audit::BspAuditor auditor{1, keys};
    auditor.on_iteration_start(0, 0, TimePoint::origin());
    auditor.on_backward_start(0, 0, TimePoint::origin());
    auditor.on_push_delivered(0, 0, Bytes::of(1000), TimePoint::origin());
    auditor.on_round_complete(0, TimePoint::origin());
    auditor.on_iteration_start(0, 1, TimePoint::origin());
    EXPECT_DEATH(auditor.on_backward_start(0, 1, TimePoint::origin()),
                 "BSP audit violation");
  }
  {
    // Ending the run with a worker short of the target iteration.
    audit::BspAuditor auditor{1, keys};
    auditor.on_iteration_start(0, 0, TimePoint::origin());
    EXPECT_DEATH(auditor.finish(5), "BSP audit violation");
  }
}

}  // namespace
}  // namespace prophet
