#include <gtest/gtest.h>

#include "sched/partition_queue.hpp"

namespace prophet::sched {
namespace {

TEST(PartitionQueue, SlicesTensorIntoPartitions) {
  PartitionQueue q{Bytes::mib(1)};
  q.add(3, Bytes::mib(2) + Bytes::kib(512));
  EXPECT_EQ(q.partition_count(), 3u);
  const auto items = q.pop(Bytes::mib(100));
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].offset.count(), 0);
  EXPECT_EQ(items[0].bytes, Bytes::mib(1));
  EXPECT_FALSE(items[0].last_slice);
  EXPECT_EQ(items[1].offset, Bytes::mib(1));
  EXPECT_EQ(items[2].offset, Bytes::mib(2));
  EXPECT_EQ(items[2].bytes, Bytes::kib(512));
  EXPECT_TRUE(items[2].last_slice);
}

TEST(PartitionQueue, SmallTensorIsSinglePartition) {
  PartitionQueue q{Bytes::mib(4)};
  q.add(0, Bytes::kib(1));
  const auto items = q.pop(Bytes::of(1));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].last_slice);
  EXPECT_TRUE(q.empty());
}

TEST(PartitionQueue, PopsInPriorityThenOffsetOrder) {
  PartitionQueue q{Bytes::mib(1)};
  q.add(5, Bytes::mib(2));
  q.add(2, Bytes::mib(2));
  q.add(9, Bytes::mib(1));
  const auto items = q.pop(Bytes::mib(100));
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].grad, 2u);
  EXPECT_EQ(items[1].grad, 2u);
  EXPECT_LT(items[0].offset, items[1].offset);
  EXPECT_EQ(items[2].grad, 5u);
  EXPECT_EQ(items[4].grad, 9u);
}

TEST(PartitionQueue, BudgetLimitsPop) {
  PartitionQueue q{Bytes::mib(1)};
  q.add(0, Bytes::mib(5));
  const auto first = q.pop(Bytes::mib(2));
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(q.partition_count(), 3u);
  const auto rest = q.pop(Bytes::mib(100));
  EXPECT_EQ(rest.size(), 3u);
  EXPECT_TRUE(rest.back().last_slice);
}

TEST(PartitionQueue, AlwaysPopsAtLeastOne) {
  PartitionQueue q{Bytes::mib(4)};
  q.add(1, Bytes::mib(4));
  const auto items = q.pop(Bytes::of(1));
  EXPECT_EQ(items.size(), 1u);
}

TEST(PartitionQueue, HigherPriorityArrivalPreemptsQueuedWork) {
  PartitionQueue q{Bytes::mib(1)};
  q.add(10, Bytes::mib(3));
  (void)q.pop(Bytes::mib(1));  // one partition of 10 in flight
  q.add(0, Bytes::mib(1));     // urgent tensor arrives
  const auto items = q.pop(Bytes::mib(1));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].grad, 0u);
}

TEST(PartitionQueue, PeekBytes) {
  PartitionQueue q{Bytes::mib(1)};
  EXPECT_FALSE(q.peek_bytes().has_value());
  q.add(4, Bytes::kib(700));
  ASSERT_TRUE(q.peek_bytes().has_value());
  EXPECT_EQ(q.peek_bytes()->count(), Bytes::kib(700).count());
}

TEST(PartitionQueueDeath, DoubleEnqueueAborts) {
  PartitionQueue q{Bytes::mib(1)};
  q.add(1, Bytes::mib(1));
  EXPECT_DEATH(q.add(1, Bytes::mib(1)), "tensor enqueued twice");
}

}  // namespace
}  // namespace prophet::sched
