// Shared helpers for core-module tests: hand-built gradient profiles and a
// cost model with easily hand-computable numbers.
#pragma once

#include <vector>

#include "core/profile.hpp"
#include "dnn/stepwise.hpp"
#include "net/cost_model.hpp"

namespace prophet::core::testing {

// Cost model with no slow start and a fixed 1 ms per-task overhead: a task
// of N bytes at bandwidth B takes exactly 1 ms + N/B.
inline net::TcpCostModel simple_cost(Duration overhead = Duration::millis(1)) {
  net::TcpCostParams params;
  params.per_task_overhead = overhead;
  params.slow_start = false;
  return net::TcpCostModel{params};
}

// Builds a profile from (ready-offset, size) pairs ordered by gradient index.
inline GradientProfile make_profile(std::vector<Duration> ready,
                                    std::vector<Bytes> sizes) {
  GradientProfile profile;
  profile.ready = std::move(ready);
  profile.sizes = std::move(sizes);
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  return profile;
}

// The paper's Fig. 5 shape: gradient 2 early, gradient 1 at 10 ms (3 units
// of payload), gradient 0 at 30 ms — at 1 MiB per 10 ms serialization only
// two thirds of gradient 1 fit before gradient 0 appears.
inline GradientProfile fig5_profile() {
  using prophet::Duration;
  return make_profile(
      {Duration::millis(30), Duration::millis(10), Duration::millis(0)},
      {Bytes::mib(1), Bytes::mib(3), Bytes::mib(1)});
}

}  // namespace prophet::core::testing
