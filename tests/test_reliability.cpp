// ReliableChannel: loss injection, watchdog, backoff, retry budget and the
// pay-for-use guarantee (a loss-free channel adds no events and no RNG
// draws, so timelines with and without it are identical).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/flow_network.hpp"
#include "net/reliability.hpp"

namespace prophet::net {
namespace {

using namespace prophet::literals;

TcpCostModel no_overhead_model() {
  TcpCostParams params;
  params.per_task_overhead = 0_ns;
  params.slow_start = false;
  return TcpCostModel{params};
}

struct Fixture {
  sim::Simulator sim;
  FlowNetwork net;
  NodeId a;
  NodeId b;
  explicit Fixture(Bandwidth bw = Bandwidth::gbps(1))
      : net{sim, no_overhead_model()},
        a{net.add_node("a", bw, bw)},
        b{net.add_node("b", bw, bw)} {}
};

TEST(Reliability, LossFreeSendIsOneAttemptAtLineRate) {
  Fixture f;
  ReliableChannel channel{f.sim, f.net, ReliabilityConfig{}, Rng{7}};
  bool done = false;
  channel.send(f.a, f.b, Bytes::of(125'000'000), [&](const SendOutcome& out) {
    done = true;
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.retransmitted.count(), 0);
    EXPECT_NEAR(f.sim.now().to_seconds(), 1.0, 1e-6);
  });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(channel.inflight(), 0u);
}

TEST(Reliability, LossFreeChannelAddsNoEventsOverBareFlow) {
  // Pay-for-use: the exact event count of a bare start_flow run.
  std::uint64_t bare_events = 0;
  {
    Fixture f;
    f.net.start_flow(f.a, f.b, Bytes::mib(64), [](FlowId) {});
    f.sim.run();
    bare_events = f.sim.events_fired();
  }
  Fixture f;
  ReliableChannel channel{f.sim, f.net, ReliabilityConfig{}, Rng{7}};
  channel.send(f.a, f.b, Bytes::mib(64), [](const SendOutcome&) {});
  f.sim.run();
  EXPECT_EQ(f.sim.events_fired(), bare_events);
}

TEST(Reliability, LossyTransferRetriesUntilDelivered) {
  Fixture f;
  ReliabilityConfig config;
  config.loss_rate = 0.7;
  config.retry_budget = 64;
  ReliableChannel channel{f.sim, f.net, config, Rng{3}};
  std::vector<ChannelFault> faults;
  channel.set_fault_handler(
      [&](const ChannelFault& fault) { faults.push_back(fault); });
  bool done = false;
  SendOutcome outcome;
  channel.send(f.a, f.b, Bytes::of(125'000'000), [&](const SendOutcome& out) {
    done = true;
    outcome = out;
  });
  f.sim.run();
  ASSERT_TRUE(done);
  // With p=0.7 and this seed at least one attempt is lost; the completion
  // reports every attempt and the fault handler saw each failed one.
  EXPECT_GT(outcome.attempts, 1u);
  EXPECT_EQ(faults.size(), outcome.attempts - 1);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(faults[i].attempt, i + 1);
    EXPECT_GT(faults[i].backoff.count_nanos(), 0);
  }
  // Resume mode: nothing goes over the wire twice.
  EXPECT_EQ(outcome.retransmitted.count(), 0);
  // The transfer still cannot beat line rate.
  EXPECT_GT(f.sim.now().to_seconds(), 1.0);
}

TEST(Reliability, RestartModeRetransmitsDrainedBytes) {
  Fixture f;
  ReliabilityConfig config;
  config.loss_rate = 0.7;
  config.retry_budget = 64;
  config.resume_partial = false;
  ReliableChannel channel{f.sim, f.net, config, Rng{3}};
  bool done = false;
  SendOutcome outcome;
  channel.send(f.a, f.b, Bytes::of(125'000'000), [&](const SendOutcome& out) {
    done = true;
    outcome = out;
  });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_GT(outcome.attempts, 1u);
  // The same seed loses the same attempts; restarts pay for the lost bytes.
  EXPECT_GT(outcome.retransmitted.count(), 0);
}

TEST(Reliability, SameSeedReplaysTheIdenticalFaultTimeline) {
  auto run = [](std::uint64_t seed) {
    Fixture f;
    ReliabilityConfig config;
    config.loss_rate = 0.5;
    config.retry_budget = 64;
    ReliableChannel channel{f.sim, f.net, config, Rng{seed}};
    std::size_t attempts = 0;
    channel.send(f.a, f.b, Bytes::mib(32), [&](const SendOutcome& out) {
      attempts = out.attempts;
    });
    f.sim.run();
    return std::pair{attempts, f.sim.now()};
  };
  const auto first = run(11);
  const auto second = run(11);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  const auto other = run(12);
  // Different seed, different timeline (with overwhelming probability).
  EXPECT_TRUE(other.first != first.first || other.second != first.second);
}

TEST(Reliability, WatchdogRecoversFlowParkedBehindOutage) {
  Fixture f;
  ReliabilityConfig config;
  config.loss_rate = 1e-9;  // enabled, but effectively never drops on its own
  config.stall_timeout = Duration::millis(50);
  config.retry_budget = 64;
  ReliableChannel channel{f.sim, f.net, config, Rng{5}};
  std::size_t timeouts = 0;
  channel.set_fault_handler([&](const ChannelFault& fault) {
    if (fault.kind == ChannelFault::Kind::kTimeout) ++timeouts;
  });
  bool done = false;
  channel.send(f.a, f.b, Bytes::mib(8), [&](const SendOutcome&) { done = true; });
  // Take the destination link down immediately and bring it back later: the
  // parked flow makes no progress, the watchdog declares it lost, and a
  // retry after the outage delivers.
  f.net.set_link_up(f.b, false);
  f.sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                    [&] { f.net.set_link_up(f.b, true); });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(timeouts, 1u);
}

TEST(Reliability, AbortAllSuppressesCompletionCallbacks) {
  Fixture f;
  ReliableChannel channel{f.sim, f.net, ReliabilityConfig{}, Rng{7}};
  bool fired = false;
  channel.send(f.a, f.b, Bytes::mib(64), [&](const SendOutcome&) { fired = true; });
  f.sim.schedule_at(TimePoint::origin() + Duration::millis(1),
                    [&] { channel.abort_all(); });
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(channel.inflight(), 0u);
}

TEST(Reliability, ExhaustedRetryBudgetAbortsLoudly) {
  Fixture f;
  ReliabilityConfig config;
  config.loss_rate = 0.999;  // every attempt is practically doomed
  // Drops land inside the first 20ms, well before the ~64ms the transfer
  // needs, so a doomed attempt can never sneak through.
  config.stall_timeout = Duration::millis(20);
  config.retry_budget = 2;
  ReliableChannel channel{f.sim, f.net, config, Rng{9}};
  channel.send(f.a, f.b, Bytes::mib(8), [](const SendOutcome&) {});
  EXPECT_DEATH(f.sim.run(), "retry budget");
}

TEST(Reliability, ValidateRejectsIllFormedConfigs) {
  {
    ReliabilityConfig config;
    config.loss_rate = -0.1;
    EXPECT_DEATH(config.validate(), "loss_rate");
  }
  {
    ReliabilityConfig config;
    config.loss_rate = 1.0;
    EXPECT_DEATH(config.validate(), "loss_rate");
  }
  {
    ReliabilityConfig config;
    config.loss_rate = 0.1;
    config.retry_budget = 0;
    EXPECT_DEATH(config.validate(), "retry_budget");
  }
  {
    ReliabilityConfig config;
    config.backoff_cap = Duration::nanos(1);
    EXPECT_DEATH(config.validate(), "backoff_cap");
  }
  {
    ReliabilityConfig config;
    config.backoff_jitter = 1.5;
    EXPECT_DEATH(config.validate(), "backoff_jitter");
  }
}

}  // namespace
}  // namespace prophet::net
