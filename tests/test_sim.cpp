#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace prophet::sim {
namespace {

using namespace prophet::literals;

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(30_ms, [&] { order.push_back(3); });
  sim.schedule_after(10_ms, [&] { order.push_back(1); });
  sim.schedule_after(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_millis(), 30.0);
}

TEST(Simulator, StableOrderForSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(1_ms, chain);
  };
  sim.schedule_after(1_ms, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now().to_millis(), 5.0);
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator sim;
  bool inner = false;
  sim.schedule_after(2_ms, [&] {
    sim.schedule_after(0_ms, [&] {
      inner = true;
      EXPECT_DOUBLE_EQ(sim.now().to_millis(), 2.0);
    });
  });
  sim.run();
  EXPECT_TRUE(inner);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.schedule_after(5_ms, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle handle = sim.schedule_after(1_ms, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(10_ms, [&] { order.push_back(1); });
  sim.schedule_after(20_ms, [&] { order.push_back(2); });
  sim.schedule_after(30_ms, [&] { order.push_back(3); });
  sim.run_until(TimePoint::origin() + 20_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // event at exactly the deadline fires
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(1_ms, [&] { ++count; });
  sim.schedule_after(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PeriodicFiresUntilCancelled) {
  Simulator sim;
  std::vector<double> times;
  EventHandle handle = sim.schedule_periodic(10_ms, [&](TimePoint now) {
    times.push_back(now.to_millis());
    if (times.size() == 3) handle.cancel();
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, PeriodicCancelFromOutside) {
  Simulator sim;
  int ticks = 0;
  EventHandle periodic = sim.schedule_periodic(5_ms, [&](TimePoint) { ++ticks; });
  sim.schedule_after(17_ms, [&] { periodic.cancel(); });
  sim.run();
  EXPECT_EQ(ticks, 3);  // 5, 10, 15
}

TEST(Simulator, CountsLiveEvents) {
  Simulator sim;
  auto h1 = sim.schedule_after(1_ms, [] {});
  auto h2 = sim.schedule_after(2_ms, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  (void)h2;
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.events_fired(), 1u);
}

TEST(SimulatorLanes, FiresAtAimedTime) {
  Simulator sim;
  std::vector<double> fired_at;
  const LaneId lane = sim.lane_create([&] { fired_at.push_back(sim.now().to_millis()); });
  EXPECT_EQ(sim.lane_count(), 1u);
  EXPECT_FALSE(sim.lane_armed(lane));
  sim.lane_aim(lane, TimePoint::origin() + 7_ms);
  EXPECT_TRUE(sim.lane_armed(lane));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired_at, (std::vector<double>{7.0}));
  EXPECT_FALSE(sim.lane_armed(lane));
  EXPECT_TRUE(sim.empty());
  sim.lane_destroy(lane);
  EXPECT_EQ(sim.lane_count(), 0u);
}

TEST(SimulatorLanes, ReaimSupersedesEarlierAim) {
  // A lane holds ONE live aim: re-aiming abandons the stale heap record
  // (lazy deletion by sequence number), so the callback runs exactly once,
  // at the latest target — even when the new aim is earlier than the old.
  Simulator sim;
  int fires = 0;
  const LaneId lane = sim.lane_create([&] {
    ++fires;
    EXPECT_DOUBLE_EQ(sim.now().to_millis(), 5.0);
  });
  sim.lane_aim(lane, TimePoint::origin() + 20_ms);
  sim.lane_aim(lane, TimePoint::origin() + 5_ms);
  sim.run();
  EXPECT_EQ(fires, 1);
  sim.lane_destroy(lane);
}

TEST(SimulatorLanes, DisarmPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const LaneId lane = sim.lane_create([&] { fired = true; });
  sim.lane_aim(lane, TimePoint::origin() + 3_ms);
  sim.lane_disarm(lane);
  EXPECT_FALSE(sim.lane_armed(lane));
  EXPECT_TRUE(sim.empty());
  sim.run();
  EXPECT_FALSE(fired);
  sim.lane_destroy(lane);
}

TEST(SimulatorLanes, CallbackMayReaimItself) {
  Simulator sim;
  std::vector<double> ticks;
  LaneId lane = kNoLane;
  lane = sim.lane_create([&] {
    ticks.push_back(sim.now().to_millis());
    if (ticks.size() < 3) sim.lane_aim(lane, sim.now() + 10_ms);
  });
  sim.lane_aim(lane, TimePoint::origin() + 10_ms);
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{10.0, 20.0, 30.0}));
  sim.lane_destroy(lane);
}

TEST(SimulatorLanes, CallbackMayDestroyItsOwnLane) {
  // The dispatcher moves the callback out before invoking it, so a lane
  // tearing itself down mid-fire (a rate group dissolving on its final
  // completion) must not touch freed state.
  Simulator sim;
  LaneId lane = kNoLane;
  bool fired = false;
  lane = sim.lane_create([&] {
    fired = true;
    sim.lane_destroy(lane);
  });
  sim.lane_aim(lane, TimePoint::origin() + 1_ms);
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.lane_count(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorLanes, DestroyedArmedLaneNeverFires) {
  Simulator sim;
  bool fired = false;
  const LaneId lane = sim.lane_create([&] { fired = true; });
  sim.lane_aim(lane, TimePoint::origin() + 4_ms);
  sim.lane_destroy(lane);
  sim.schedule_after(10_ms, [] {});  // keep the loop busy past the stale aim
  sim.run();
  EXPECT_FALSE(fired);
  // A fresh lane reusing the freed id must not inherit the stale record.
  bool reused_fired = false;
  const LaneId again = sim.lane_create([&] { reused_fired = true; });
  EXPECT_EQ(again, lane);
  sim.lane_aim(again, sim.now() + 2_ms);
  sim.run();
  EXPECT_TRUE(reused_fired);
  sim.lane_destroy(again);
}

TEST(SimulatorLanes, InterleavesWithPoolEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  const LaneId lane = sim.lane_create([&] { order.push_back(2); });
  sim.schedule_after(10_ms, [&] { order.push_back(1); });
  sim.schedule_after(30_ms, [&] { order.push_back(3); });
  sim.lane_aim(lane, TimePoint::origin() + 20_ms);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_fired(), 3u);  // lane fires count like pool events
  sim.lane_destroy(lane);
}

TEST(SimulatorDeath, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.schedule_after(10_ms, [&] {
    EXPECT_DEATH(sim.schedule_at(TimePoint::origin() + 5_ms, [] {}),
                 "scheduling into the past");
  });
  sim.run();
}

}  // namespace
}  // namespace prophet::sim
