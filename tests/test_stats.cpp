#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace prophet {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0.5), 3.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.5};
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ExponentialSmoothing) {
  Ewma e{0.25};
  e.add(0.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e{0.3};
  e.add(100.0);
  for (int i = 0; i < 60; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-6);
}

}  // namespace
}  // namespace prophet
