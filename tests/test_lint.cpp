// prophet_lint's own test suite (ctest: prophet_lint_self).
//
// The main test is fixture-driven: every file under tests/lint_fixtures/
// declares the repo path it pretends to live at ("// fixture-path: ...") and
// marks each line where a diagnostic must fire with "expect(<rule>)". All
// fixtures are linted in one run against the real checked-in config
// (tools/prophet_lint/prophet_lint.conf), so the sanctioned-file lists, the
// layering table and the sanctioned-edges allowlist are exercised exactly as
// shipped. Unit tests below cover config parsing errors, suppression
// accounting and rule edge cases that are awkward to express as fixtures.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "prophet_lint/lint.hpp"

namespace fs = std::filesystem;

using prophet::lint::Config;
using prophet::lint::Diagnostic;
using prophet::lint::Result;
using prophet::lint::SourceFile;
using prophet::lint::Suppression;

namespace {

const fs::path kRepoRoot{PROPHET_REPO_ROOT};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Config repo_config() {
  const std::string text =
      read_file(kRepoRoot / "tools" / "prophet_lint" / "prophet_lint.conf");
  std::string error;
  const auto cfg = prophet::lint::parse_config(text, &error);
  EXPECT_TRUE(cfg.has_value()) << error;
  return cfg.value_or(Config{});
}

// (file, line, rule) — the identity of a diagnostic for fixture matching.
using Key = std::tuple<std::string, int, std::string>;

std::string key_str(const Key& k) {
  return std::get<0>(k) + ":" + std::to_string(std::get<1>(k)) + ": [" +
         std::get<2>(k) + "]";
}

struct FixtureSet {
  std::vector<SourceFile> files;  // sorted by virtual path
  std::vector<Key> expected;      // sorted
};

FixtureSet load_fixtures() {
  const fs::path dir = kRepoRoot / "tests" / "lint_fixtures";
  std::map<std::string, std::string> by_virtual_path;
  std::vector<Key> expected;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  EXPECT_GE(paths.size(), 20U) << "fixture tree looks truncated";

  for (const fs::path& p : paths) {
    const std::string content = read_file(p);
    static const std::string kHeader = "// fixture-path: ";
    const std::size_t eol = content.find('\n');
    if (content.compare(0, kHeader.size(), kHeader) != 0 ||
        eol == std::string::npos) {
      ADD_FAILURE() << p << " must start with '// fixture-path: <repo path>'";
      continue;
    }
    std::string vpath = content.substr(kHeader.size(), eol - kHeader.size());
    while (!vpath.empty() && (vpath.back() == '\r' || vpath.back() == ' ')) {
      vpath.pop_back();
    }
    if (!by_virtual_path.emplace(vpath, content).second) {
      ADD_FAILURE() << "duplicate fixture-path " << vpath
                    << " (second copy: " << p << ")";
      continue;
    }

    int line = 1;
    std::size_t start = 0;
    while (start < content.size()) {
      std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) nl = content.size();
      const std::string text = content.substr(start, nl - start);
      static const std::string kMarker = "expect(";
      for (std::size_t pos = text.find(kMarker); pos != std::string::npos;
           pos = text.find(kMarker, pos + kMarker.size())) {
        const std::size_t close = text.find(')', pos);
        if (close == std::string::npos) {
          ADD_FAILURE() << "unterminated expect(...) at " << p << ":" << line;
          break;
        }
        const std::string rule =
            text.substr(pos + kMarker.size(), close - pos - kMarker.size());
        expected.emplace_back(vpath, line, rule);
      }
      start = nl + 1;
      ++line;
    }
  }

  FixtureSet out;
  for (auto& [vpath, content] : by_virtual_path) {
    out.files.push_back(SourceFile{vpath, std::move(content)});
  }
  std::sort(expected.begin(), expected.end());
  out.expected = std::move(expected);
  return out;
}

Result run_on(const Config& cfg, const std::vector<SourceFile>& files) {
  return prophet::lint::run(cfg, files);
}

SourceFile src(std::string path, std::string content) {
  return SourceFile{std::move(path), std::move(content)};
}

}  // namespace

// --- the fixture suite -------------------------------------------------------

TEST(LintFixtures, EveryExpectedMarkerFiresAndNothingElse) {
  const FixtureSet fx = load_fixtures();
  const Result result = run_on(repo_config(), fx.files);

  std::vector<Key> actual;
  for (const Diagnostic& d : result.diagnostics) {
    actual.emplace_back(d.file, d.line, d.rule);
  }
  std::sort(actual.begin(), actual.end());

  std::vector<Key> missing;
  std::set_difference(fx.expected.begin(), fx.expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::vector<Key> unexpected;
  std::set_difference(actual.begin(), actual.end(), fx.expected.begin(),
                      fx.expected.end(), std::back_inserter(unexpected));

  for (const Key& k : missing) {
    ADD_FAILURE() << "expected diagnostic did not fire: " << key_str(k);
  }
  for (const Key& k : unexpected) {
    ADD_FAILURE() << "unexpected diagnostic: " << key_str(k);
  }
}

TEST(LintFixtures, SuppressionUsesAreCounted) {
  const FixtureSet fx = load_fixtures();
  const Result result = run_on(repo_config(), fx.files);

  std::map<std::string, const Suppression*> by_file;
  for (const Suppression& s : result.suppressions) {
    by_file.emplace(s.file, &s);
  }

  // Trailing form: directive on the violating line itself.
  auto it = by_file.find("src/core/suppress_trailing.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->rule, "R3");
  EXPECT_EQ(it->second->uses, 1);
  EXPECT_FALSE(it->second->justification.empty());

  // Own-line form: directive on the line directly above.
  it = by_file.find("src/core/suppress_own_line.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->rule, "R1");
  EXPECT_EQ(it->second->uses, 1);

  // Stale waiver: recorded, zero uses (and flagged — fixture carries the
  // expect(lint) marker for that).
  it = by_file.find("src/core/suppress_unused.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->uses, 0);
}

TEST(LintFixtures, DiagnosticsAreSortedAndDeterministic) {
  const FixtureSet fx = load_fixtures();
  const Config cfg = repo_config();
  const Result a = run_on(cfg, fx.files);
  const Result b = run_on(cfg, fx.files);

  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  EXPECT_TRUE(std::is_sorted(
      a.diagnostics.begin(), a.diagnostics.end(),
      [](const Diagnostic& x, const Diagnostic& y) {
        return std::tie(x.file, x.line, x.rule) < std::tie(y.file, y.line, y.rule);
      }));
}

// --- config parsing ----------------------------------------------------------

TEST(LintConfig, ShippedConfigParsesAndCoversEveryModule) {
  const Config cfg = repo_config();
  for (const char* module :
       {"common", "sim", "net", "dnn", "metrics", "sched", "core", "ps",
        "allreduce"}) {
    EXPECT_EQ(cfg.layering.count(module), 1U)
        << "src/" << module << " missing from the layering table";
  }
  // The base layer may only include itself.
  const auto common = cfg.layering.find("common");
  ASSERT_NE(common, cfg.layering.end());
  const std::set<std::string> only_itself{"common"};
  EXPECT_EQ(common->second, only_itself);
}

TEST(LintConfig, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(prophet::lint::parse_config("[unterminated\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(prophet::lint::parse_config("[layering]\nno-colon-here\n", &error));
  EXPECT_NE(error.find("layering"), std::string::npos);

  EXPECT_FALSE(
      prophet::lint::parse_config("[sanctioned-edges]\na.hpp b.hpp\n", &error));
  EXPECT_NE(error.find("from -> to"), std::string::npos);

  EXPECT_FALSE(prophet::lint::parse_config("stray-entry\n", &error));
  EXPECT_NE(error.find("outside"), std::string::npos);
}

TEST(LintConfig, ScopeSectionsReplaceDefaults) {
  std::string error;
  const auto cfg = prophet::lint::parse_config(
      "[r1-scope]\nlib/\n[r2-scope]\nlib/hot/\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->r1_scope, std::vector<std::string>{"lib/"});
  EXPECT_EQ(cfg->r2_scope, std::vector<std::string>{"lib/hot/"});
  // Untouched scope keeps its built-in default.
  EXPECT_EQ(cfg->r3_scope, std::vector<std::string>{"src/"});

  // Diagnostics follow the overridden scope, not the built-in one.
  const Result r = run_on(*cfg, {src("lib/a.cpp", "double total_time_ms = 1.0;\n"),
                                 src("src/b.cpp", "double total_time_ms = 1.0;\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].file, "lib/a.cpp");
  EXPECT_EQ(r.diagnostics[0].rule, "R1");
}

// --- rule edge cases ---------------------------------------------------------

TEST(LintRules, RawAndQuotedStringsNeverFire) {
  const Result r = run_on(Config{}, {src("src/core/strings.cpp",
                                         "const char* a = \"rand() inside a string\";\n"
                                         "const char* b = R\"(std::random_device)\";\n")});
  EXPECT_TRUE(r.clean()) << r.diagnostics[0].message;
}

TEST(LintRules, TodoTagNeedsADigitAfterHash) {
  const Result r = run_on(
      Config{}, {src("src/core/todo.cpp", "// TODO(#x): tag without a number\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R5");
  EXPECT_EQ(r.diagnostics[0].line, 1);
}

TEST(LintRules, UnorderedIterationViaMemberAcrossHeaderImplPair) {
  const Result r = run_on(
      Config{},
      {src("src/core/reg.hpp",
           "struct Reg { std::unordered_map<int, int> live_; int total() const; };\n"),
       src("src/core/reg.cpp",
           "int Reg::total() const {\n"
           "  int n = 0;\n"
           "  for (const auto& [k, v] : live_) n += v;\n"
           "  return n;\n"
           "}\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R2");
  EXPECT_EQ(r.diagnostics[0].file, "src/core/reg.cpp");
  EXPECT_EQ(r.diagnostics[0].line, 3);
}

TEST(LintRules, LayeringCycleReportedOnce) {
  Config cfg;
  cfg.layering["core"] = {"core"};
  const Result r = run_on(
      cfg, {src("src/core/a.hpp", "#include \"core/b.hpp\"\n"),
            src("src/core/b.hpp", "#include \"core/a.hpp\"\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R4");
  EXPECT_NE(r.diagnostics[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("src/core/a.hpp -> src/core/b.hpp"),
            std::string::npos);
}

TEST(LintRules, RelativeIncludesResolveThroughDotDot) {
  Config cfg;
  cfg.layering["common"] = {"common"};
  cfg.layering["core"] = {"core", "common"};
  // "../sim/x.hpp" from src/core must resolve to src/sim/x.hpp — a module
  // edge that is NOT allowed for core in this config.
  const Result r = run_on(
      cfg, {src("src/core/a.hpp", "#include \"../sim/x.hpp\"\n"),
            src("src/sim/x.hpp", "struct X {};\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R4");
  EXPECT_NE(r.diagnostics[0].message.find("src/core may not include src/sim"),
            std::string::npos);
}

TEST(LintRules, AngledIncludesAreExemptFromLayering) {
  Config cfg;
  cfg.layering["common"] = {"common"};
  const Result r = run_on(
      cfg, {src("src/common/x.hpp", "#include <unordered_map>\n#include <vector>\n")});
  EXPECT_TRUE(r.clean());
}

TEST(LintSuppressions, SuppressionOnlyAbsorbsItsOwnRule) {
  // allow(R1) must not hide an R3 finding on the same line.
  const Result r = run_on(
      Config{},
      {src("src/core/mismatch.cpp",
           "// prophet-lint: allow(R1): wrong rule on purpose\n"
           "long t = time(nullptr);\n")});
  ASSERT_EQ(r.diagnostics.size(), 2U);  // the R3 itself + the now-unused waiver
  EXPECT_EQ(r.diagnostics[0].rule, "lint");
  EXPECT_EQ(r.diagnostics[1].rule, "R3");
}

TEST(LintSuppressions, QuotedDirectiveInProseIsNotADirective) {
  // Documentation that QUOTES the syntax mid-comment must not register.
  const Result r = run_on(
      Config{},
      {src("src/core/doc.cpp",
           "// waive findings with prophet-lint: allow(R1): reason\n"
           "int x = 0;\n")});
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.suppressions.empty());
}
