// prophet_lint's own test suite (ctest: prophet_lint_self).
//
// The main test is fixture-driven: every file under tests/lint_fixtures/
// declares the repo path it pretends to live at ("// fixture-path: ...") and
// marks each line where a diagnostic must fire with "expect(<rule>)". All
// fixtures are linted in one run against the real checked-in config
// (tools/prophet_lint/prophet_lint.conf), so the sanctioned-file lists, the
// layering table and the sanctioned-edges allowlist are exercised exactly as
// shipped. Unit tests below cover config parsing errors, suppression
// accounting and rule edge cases that are awkward to express as fixtures.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "prophet_lint/lint.hpp"

namespace fs = std::filesystem;

using prophet::lint::Config;
using prophet::lint::Diagnostic;
using prophet::lint::Result;
using prophet::lint::SourceFile;
using prophet::lint::Suppression;

namespace {

const fs::path kRepoRoot{PROPHET_REPO_ROOT};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Config repo_config() {
  const std::string text =
      read_file(kRepoRoot / "tools" / "prophet_lint" / "prophet_lint.conf");
  std::string error;
  const auto cfg = prophet::lint::parse_config(text, &error);
  EXPECT_TRUE(cfg.has_value()) << error;
  return cfg.value_or(Config{});
}

// (file, line, rule) — the identity of a diagnostic for fixture matching.
using Key = std::tuple<std::string, int, std::string>;

std::string key_str(const Key& k) {
  return std::get<0>(k) + ":" + std::to_string(std::get<1>(k)) + ": [" +
         std::get<2>(k) + "]";
}

struct FixtureSet {
  std::vector<SourceFile> files;  // sorted by virtual path
  std::vector<Key> expected;      // sorted
};

FixtureSet load_fixtures() {
  const fs::path dir = kRepoRoot / "tests" / "lint_fixtures";
  std::map<std::string, std::string> by_virtual_path;
  std::vector<Key> expected;

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  EXPECT_GE(paths.size(), 20U) << "fixture tree looks truncated";

  for (const fs::path& p : paths) {
    const std::string content = read_file(p);
    static const std::string kHeader = "// fixture-path: ";
    const std::size_t eol = content.find('\n');
    if (content.compare(0, kHeader.size(), kHeader) != 0 ||
        eol == std::string::npos) {
      ADD_FAILURE() << p << " must start with '// fixture-path: <repo path>'";
      continue;
    }
    std::string vpath = content.substr(kHeader.size(), eol - kHeader.size());
    while (!vpath.empty() && (vpath.back() == '\r' || vpath.back() == ' ')) {
      vpath.pop_back();
    }
    if (!by_virtual_path.emplace(vpath, content).second) {
      ADD_FAILURE() << "duplicate fixture-path " << vpath
                    << " (second copy: " << p << ")";
      continue;
    }

    int line = 1;
    std::size_t start = 0;
    while (start < content.size()) {
      std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) nl = content.size();
      const std::string text = content.substr(start, nl - start);
      static const std::string kMarker = "expect(";
      for (std::size_t pos = text.find(kMarker); pos != std::string::npos;
           pos = text.find(kMarker, pos + kMarker.size())) {
        const std::size_t close = text.find(')', pos);
        if (close == std::string::npos) {
          ADD_FAILURE() << "unterminated expect(...) at " << p << ":" << line;
          break;
        }
        const std::string rule =
            text.substr(pos + kMarker.size(), close - pos - kMarker.size());
        expected.emplace_back(vpath, line, rule);
      }
      start = nl + 1;
      ++line;
    }
  }

  FixtureSet out;
  for (auto& [vpath, content] : by_virtual_path) {
    out.files.push_back(SourceFile{vpath, std::move(content)});
  }
  std::sort(expected.begin(), expected.end());
  out.expected = std::move(expected);
  return out;
}

Result run_on(const Config& cfg, const std::vector<SourceFile>& files) {
  return prophet::lint::run(cfg, files);
}

SourceFile src(std::string path, std::string content) {
  return SourceFile{std::move(path), std::move(content)};
}

}  // namespace

// --- the fixture suite -------------------------------------------------------

TEST(LintFixtures, EveryExpectedMarkerFiresAndNothingElse) {
  const FixtureSet fx = load_fixtures();
  const Result result = run_on(repo_config(), fx.files);

  std::vector<Key> actual;
  for (const Diagnostic& d : result.diagnostics) {
    actual.emplace_back(d.file, d.line, d.rule);
  }
  std::sort(actual.begin(), actual.end());

  std::vector<Key> missing;
  std::set_difference(fx.expected.begin(), fx.expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::vector<Key> unexpected;
  std::set_difference(actual.begin(), actual.end(), fx.expected.begin(),
                      fx.expected.end(), std::back_inserter(unexpected));

  for (const Key& k : missing) {
    ADD_FAILURE() << "expected diagnostic did not fire: " << key_str(k);
  }
  for (const Key& k : unexpected) {
    ADD_FAILURE() << "unexpected diagnostic: " << key_str(k);
  }
}

TEST(LintFixtures, SuppressionUsesAreCounted) {
  const FixtureSet fx = load_fixtures();
  const Result result = run_on(repo_config(), fx.files);

  std::map<std::string, const Suppression*> by_file;
  for (const Suppression& s : result.suppressions) {
    by_file.emplace(s.file, &s);
  }

  // Trailing form: directive on the violating line itself.
  auto it = by_file.find("src/core/suppress_trailing.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->rule, "R3");
  EXPECT_EQ(it->second->uses, 1);
  EXPECT_FALSE(it->second->justification.empty());

  // Own-line form: directive on the line directly above.
  it = by_file.find("src/core/suppress_own_line.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->rule, "R1");
  EXPECT_EQ(it->second->uses, 1);

  // Stale waiver: recorded, zero uses (and flagged — fixture carries the
  // expect(lint) marker for that).
  it = by_file.find("src/core/suppress_unused.cpp");
  ASSERT_NE(it, by_file.end());
  EXPECT_EQ(it->second->uses, 0);
}

TEST(LintFixtures, DiagnosticsAreSortedAndDeterministic) {
  const FixtureSet fx = load_fixtures();
  const Config cfg = repo_config();
  const Result a = run_on(cfg, fx.files);
  const Result b = run_on(cfg, fx.files);

  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  EXPECT_TRUE(std::is_sorted(
      a.diagnostics.begin(), a.diagnostics.end(),
      [](const Diagnostic& x, const Diagnostic& y) {
        return std::tie(x.file, x.line, x.rule) < std::tie(y.file, y.line, y.rule);
      }));
}

// --- config parsing ----------------------------------------------------------

TEST(LintConfig, ShippedConfigParsesAndCoversEveryModule) {
  const Config cfg = repo_config();
  for (const char* module :
       {"common", "sim", "net", "dnn", "metrics", "sched", "core", "ps",
        "allreduce"}) {
    EXPECT_EQ(cfg.layering.count(module), 1U)
        << "src/" << module << " missing from the layering table";
  }
  // The base layer may only include itself.
  const auto common = cfg.layering.find("common");
  ASSERT_NE(common, cfg.layering.end());
  const std::set<std::string> only_itself{"common"};
  EXPECT_EQ(common->second, only_itself);
}

TEST(LintConfig, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(prophet::lint::parse_config("[unterminated\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(prophet::lint::parse_config("[layering]\nno-colon-here\n", &error));
  EXPECT_NE(error.find("layering"), std::string::npos);

  EXPECT_FALSE(
      prophet::lint::parse_config("[sanctioned-edges]\na.hpp b.hpp\n", &error));
  EXPECT_NE(error.find("from -> to"), std::string::npos);

  EXPECT_FALSE(prophet::lint::parse_config("stray-entry\n", &error));
  EXPECT_NE(error.find("outside"), std::string::npos);
}

TEST(LintConfig, ScopeSectionsReplaceDefaults) {
  std::string error;
  const auto cfg = prophet::lint::parse_config(
      "[r1-scope]\nlib/\n[r2-scope]\nlib/hot/\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->r1_scope, std::vector<std::string>{"lib/"});
  EXPECT_EQ(cfg->r2_scope, std::vector<std::string>{"lib/hot/"});
  // Untouched scope keeps its built-in default.
  EXPECT_EQ(cfg->r3_scope, std::vector<std::string>{"src/"});

  // Diagnostics follow the overridden scope, not the built-in one.
  const Result r = run_on(*cfg, {src("lib/a.cpp", "double total_time_ms = 1.0;\n"),
                                 src("src/b.cpp", "double total_time_ms = 1.0;\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].file, "lib/a.cpp");
  EXPECT_EQ(r.diagnostics[0].rule, "R1");
}

// --- rule edge cases ---------------------------------------------------------

TEST(LintRules, RawAndQuotedStringsNeverFire) {
  const Result r = run_on(Config{}, {src("src/core/strings.cpp",
                                         "const char* a = \"rand() inside a string\";\n"
                                         "const char* b = R\"(std::random_device)\";\n")});
  EXPECT_TRUE(r.clean()) << r.diagnostics[0].message;
}

TEST(LintRules, TodoTagNeedsADigitAfterHash) {
  const Result r = run_on(
      Config{}, {src("src/core/todo.cpp", "// TODO(#x): tag without a number\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R5");
  EXPECT_EQ(r.diagnostics[0].line, 1);
}

TEST(LintRules, UnorderedIterationViaMemberAcrossHeaderImplPair) {
  const Result r = run_on(
      Config{},
      {src("src/core/reg.hpp",
           "struct Reg { std::unordered_map<int, int> live_; int total() const; };\n"),
       src("src/core/reg.cpp",
           "int Reg::total() const {\n"
           "  int n = 0;\n"
           "  for (const auto& [k, v] : live_) n += v;\n"
           "  return n;\n"
           "}\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R2");
  EXPECT_EQ(r.diagnostics[0].file, "src/core/reg.cpp");
  EXPECT_EQ(r.diagnostics[0].line, 3);
}

TEST(LintRules, LayeringCycleReportedOnce) {
  Config cfg;
  cfg.layering["core"] = {"core"};
  const Result r = run_on(
      cfg, {src("src/core/a.hpp", "#include \"core/b.hpp\"\n"),
            src("src/core/b.hpp", "#include \"core/a.hpp\"\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R4");
  EXPECT_NE(r.diagnostics[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("src/core/a.hpp -> src/core/b.hpp"),
            std::string::npos);
}

TEST(LintRules, RelativeIncludesResolveThroughDotDot) {
  Config cfg;
  cfg.layering["common"] = {"common"};
  cfg.layering["core"] = {"core", "common"};
  // "../sim/x.hpp" from src/core must resolve to src/sim/x.hpp — a module
  // edge that is NOT allowed for core in this config.
  const Result r = run_on(
      cfg, {src("src/core/a.hpp", "#include \"../sim/x.hpp\"\n"),
            src("src/sim/x.hpp", "struct X {};\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R4");
  EXPECT_NE(r.diagnostics[0].message.find("src/core may not include src/sim"),
            std::string::npos);
}

TEST(LintRules, AngledIncludesAreExemptFromLayering) {
  Config cfg;
  cfg.layering["common"] = {"common"};
  const Result r = run_on(
      cfg, {src("src/common/x.hpp", "#include <unordered_map>\n#include <vector>\n")});
  EXPECT_TRUE(r.clean());
}

TEST(LintSuppressions, SuppressionOnlyAbsorbsItsOwnRule) {
  // allow(R1) must not hide an R3 finding on the same line.
  const Result r = run_on(
      Config{},
      {src("src/core/mismatch.cpp",
           "// prophet-lint: allow(R1): wrong rule on purpose\n"
           "long t = time(nullptr);\n")});
  ASSERT_EQ(r.diagnostics.size(), 2U);  // the R3 itself + the now-unused waiver
  EXPECT_EQ(r.diagnostics[0].rule, "lint");
  EXPECT_EQ(r.diagnostics[1].rule, "R3");
}

TEST(LintSuppressions, QuotedDirectiveInProseIsNotADirective) {
  // Documentation that QUOTES the syntax mid-comment must not register.
  const Result r = run_on(
      Config{},
      {src("src/core/doc.cpp",
           "// waive findings with prophet-lint: allow(R1): reason\n"
           "int x = 0;\n")});
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.suppressions.empty());
}

// --- parallel scanning -------------------------------------------------------

TEST(LintParallel, OutputIsByteIdenticalAtAnyThreadCount) {
  const FixtureSet fx = load_fixtures();
  const Config cfg = repo_config();

  const auto render = [](const Result& r) {
    std::ostringstream ss;
    for (const Diagnostic& d : r.diagnostics) {
      ss << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message << "\n";
    }
    for (const Suppression& s : r.suppressions) {
      ss << s.file << ":" << s.line << ": allow(" << s.rule << ") x" << s.uses
         << " " << s.justification << "\n";
    }
    return ss.str();
  };

  prophet::lint::RunOptions serial;
  serial.threads = 1;
  const std::string baseline = render(prophet::lint::run(cfg, fx.files, serial));
  for (const unsigned threads : {2U, 4U, 8U}) {
    prophet::lint::RunOptions opt;
    opt.threads = threads;
    EXPECT_EQ(baseline, render(prophet::lint::run(cfg, fx.files, opt)))
        << "diagnostics drifted at threads=" << threads;
  }
}

TEST(LintParallel, CrossFileFindingIsDeduplicatedAcrossSweepCallers) {
  // One header with a mutable global, reached from TWO sweep-calling files:
  // exactly one R6 diagnostic, keyed by file:line:rule.
  Config cfg;
  cfg.layering["core"] = {"core"};
  const Result r = run_on(
      cfg,
      {src("src/core/shared.hpp", "namespace c {\nint g_hits = 0;\n}\n"),
       src("src/core/drv_a.cpp",
           "#include \"core/shared.hpp\"\n"
           "namespace c {\nvoid a(const std::vector<int>& v) {\n"
           "  exec::run_sweep(v, [](const int& x) { return x; });\n}\n}\n"),
       src("src/core/drv_b.cpp",
           "#include \"core/shared.hpp\"\n"
           "namespace c {\nvoid b(const std::vector<int>& v) {\n"
           "  exec::parallel_map<int, int>(v, [](const int& x) { return x; });\n}\n}\n")});
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].rule, "R6");
  EXPECT_EQ(r.diagnostics[0].file, "src/core/shared.hpp");
  EXPECT_EQ(r.diagnostics[0].line, 2);
}

// --- diff-aware mode ---------------------------------------------------------

TEST(LintDiffAware, EmitsChangedFilesPlusReverseIncludeClosure) {
  // a.hpp changed; b.cpp includes it (in the closure), c.cpp is unrelated.
  // All three carry a violation; only a.hpp's and b.cpp's are emitted.
  Config cfg;
  cfg.layering["core"] = {"core"};
  const std::vector<SourceFile> files = {
      src("src/core/a.hpp", "// TODO: untagged in the changed header\n"),
      src("src/core/b.cpp",
          "#include \"core/a.hpp\"\n// TODO: untagged in the includer\n"),
      src("src/core/c.cpp", "// TODO: untagged in the unrelated file\n")};

  prophet::lint::RunOptions opt;
  opt.changed = std::set<std::string>{"src/core/a.hpp"};
  const Result r = prophet::lint::run(cfg, files, opt);

  ASSERT_EQ(r.diagnostics.size(), 2U);
  EXPECT_EQ(r.diagnostics[0].file, "src/core/a.hpp");
  EXPECT_EQ(r.diagnostics[1].file, "src/core/b.cpp");

  // Full-tree run still sees all three.
  EXPECT_EQ(prophet::lint::run(cfg, files).diagnostics.size(), 3U);
}

TEST(LintDiffAware, WholeTreeIndexKeepsCrossFileRulesAccurate) {
  // The changed file is only the sweep CALLER; the global lives in an
  // unchanged header. The finding must still fire (the index is built over
  // the full set) and is attributed to the header, which is in the closure
  // of nothing changed — so it is NOT emitted; the caller has no finding of
  // its own. This is the documented trade-off: diff-aware mode filters
  // emission, not analysis.
  Config cfg;
  cfg.layering["core"] = {"core"};
  const std::vector<SourceFile> files = {
      src("src/core/state.hpp", "namespace c {\nint g_cells = 0;\n}\n"),
      src("src/core/driver.cpp",
          "#include \"core/state.hpp\"\n"
          "namespace c {\nvoid d(const std::vector<int>& v) {\n"
          "  exec::run_sweep(v, [](const int& x) { return x; });\n}\n}\n")};

  prophet::lint::RunOptions opt;
  opt.changed = std::set<std::string>{"src/core/state.hpp"};
  const Result r = prophet::lint::run(cfg, files, opt);
  // state.hpp changed -> its R6 finding is in scope.
  ASSERT_EQ(r.diagnostics.size(), 1U);
  EXPECT_EQ(r.diagnostics[0].file, "src/core/state.hpp");
  EXPECT_EQ(r.diagnostics[0].rule, "R6");
}

// --- baseline ----------------------------------------------------------------

TEST(LintBaseline, ParsesTabSeparatedEntriesAndRejectsGarbage) {
  std::string error;
  const auto ok = prophet::lint::parse_baseline(
      "# comment\nsrc/a.cpp\tR6\t2\nsrc/b.cpp\tlint\t1\n", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  ASSERT_EQ(ok->size(), 2U);
  EXPECT_EQ((*ok)[0].file, "src/a.cpp");
  EXPECT_EQ((*ok)[0].rule, "R6");
  EXPECT_EQ((*ok)[0].count, 2);

  EXPECT_FALSE(prophet::lint::parse_baseline("src/a.cpp R6 2\n", &error));
  EXPECT_NE(error.find("<file>"), std::string::npos);
  EXPECT_FALSE(prophet::lint::parse_baseline("src/a.cpp\tR42\t1\n", &error));
  EXPECT_NE(error.find("unknown rule"), std::string::npos);
  EXPECT_FALSE(prophet::lint::parse_baseline("src/a.cpp\tR1\ttwo\n", &error));
  EXPECT_NE(error.find("number"), std::string::npos);
}

TEST(LintBaseline, AbsorbsBudgetedFindingsAndFlagsStaleEntries) {
  Result r;
  r.diagnostics = {{"src/a.cpp", 3, "R6", "one"},
                   {"src/a.cpp", 9, "R6", "two"},
                   {"src/b.cpp", 1, "R7", "other"}};
  const std::vector<prophet::lint::BaselineEntry> baseline = {
      {"src/a.cpp", "R6", 2},  // covers both R6 findings
      {"src/c.cpp", "R9", 1},  // stale: no such finding any more
  };
  Result diff_mode = r;
  prophet::lint::apply_baseline(diff_mode, baseline, /*check_stale=*/false);
  ASSERT_EQ(diff_mode.diagnostics.size(), 1U);  // only the unbudgeted R7
  EXPECT_EQ(diff_mode.diagnostics[0].rule, "R7");

  Result full = r;
  prophet::lint::apply_baseline(full, baseline, /*check_stale=*/true);
  ASSERT_EQ(full.diagnostics.size(), 2U);  // R7 + the stale-entry report
  EXPECT_EQ(full.diagnostics[0].rule, "R7");
  EXPECT_EQ(full.diagnostics[1].file, "src/c.cpp");
  EXPECT_EQ(full.diagnostics[1].rule, "lint");
  EXPECT_NE(full.diagnostics[1].message.find("stale baseline"), std::string::npos);
}

TEST(LintBaseline, FormatRoundTripsThroughParse) {
  Result r;
  r.diagnostics = {{"src/a.cpp", 3, "R6", "x"},
                   {"src/a.cpp", 9, "R6", "y"},
                   {"src/b.cpp", 1, "R8", "z"}};
  const std::string text = prophet::lint::format_baseline(r);
  std::string error;
  const auto parsed = prophet::lint::parse_baseline(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2U);
  EXPECT_EQ((*parsed)[0].file, "src/a.cpp");
  EXPECT_EQ((*parsed)[0].count, 2);
  EXPECT_EQ((*parsed)[1].file, "src/b.cpp");
  EXPECT_EQ((*parsed)[1].rule, "R8");

  // Round-tripped budget fully absorbs the original diagnostics.
  Result again = r;
  prophet::lint::apply_baseline(again, *parsed, /*check_stale=*/true);
  EXPECT_TRUE(again.clean());
}

// --- SARIF -------------------------------------------------------------------

TEST(LintSarif, CatalogCoversEveryRuleInStableOrder) {
  const auto& catalog = prophet::lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 10U);
  const std::vector<std::string> ids = {"R1", "R2", "R3", "R4", "R5",
                                        "R6", "R7", "R8", "R9", "lint"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(catalog[i].id, ids[i]);
    EXPECT_NE(catalog[i].name[0], '\0');
    EXPECT_NE(catalog[i].short_desc[0], '\0');
  }
}

TEST(LintSarif, GoldenSnapshotForAMinimalResult) {
  // Full-document golden: pins the envelope GitHub code scanning consumes.
  // The rules array is composed from the catalog (pinned in the test above)
  // so this snapshot focuses on the envelope and result serialization.
  Result r;
  r.diagnostics = {{"src/a.cpp", 3, "R6", "uses std::mutex \"gate\""}};
  r.diagnostics.push_back({"tools/x.cpp", 0, "lint", "stale baseline entry"});

  std::string rules;
  const auto& catalog = prophet::lint::rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    rules += std::string("            {\"id\": \"") + catalog[i].id +
             "\", \"name\": \"" + catalog[i].name +
             "\", \"shortDescription\": {\"text\": \"" + catalog[i].short_desc +
             "\"}}" + (i + 1 < catalog.size() ? ",\n" : "\n");
  }
  const std::string golden =
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
      "master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"prophet_lint\",\n"
      "          \"informationUri\": \"docs/LINT.md\",\n"
      "          \"rules\": [\n" +
      rules +
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n"
      "        {\n"
      "          \"ruleId\": \"R6\",\n"
      "          \"level\": \"error\",\n"
      "          \"message\": {\"text\": \"uses std::mutex \\\"gate\\\"\"},\n"
      "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
      "{\"uri\": \"src/a.cpp\", \"uriBaseId\": \"SRCROOT\"}, \"region\": "
      "{\"startLine\": 3}}}]\n"
      "        },\n"
      "        {\n"
      "          \"ruleId\": \"lint\",\n"
      "          \"level\": \"error\",\n"
      "          \"message\": {\"text\": \"stale baseline entry\"},\n"
      "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
      "{\"uri\": \"tools/x.cpp\", \"uriBaseId\": \"SRCROOT\"}, \"region\": "
      "{\"startLine\": 1}}}]\n"  // line 0 is clamped: SARIF requires >= 1
      "        }\n"
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(prophet::lint::to_sarif(r), golden);
}

TEST(LintSarif, SarifIsDeterministicOverTheFixtureTree) {
  const FixtureSet fx = load_fixtures();
  const Config cfg = repo_config();
  prophet::lint::RunOptions one;
  one.threads = 1;
  prophet::lint::RunOptions many;
  many.threads = 4;
  EXPECT_EQ(prophet::lint::to_sarif(prophet::lint::run(cfg, fx.files, one)),
            prophet::lint::to_sarif(prophet::lint::run(cfg, fx.files, many)));
}
