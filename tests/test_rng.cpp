#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace prophet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng root{42};
  Rng c0 = root.fork(0);
  Rng c1 = root.fork(1);
  Rng c0_again = Rng{42}.fork(0);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  Rng c0_ref = Rng{42}.fork(0);
  EXPECT_EQ(c0_ref.next_u64(), c0_again.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a{7};
  Rng b{7};
  (void)a.fork(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{99};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng{11};
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, LognormalMedianApproximatelyMedian) {
  Rng rng{13};
  std::vector<double> xs;
  for (int i = 0; i < 20'001; ++i) xs.push_back(rng.lognormal_median(5.0, 0.3));
  std::nth_element(xs.begin(), xs.begin() + 10'000, xs.end());
  EXPECT_NEAR(xs[10'000], 5.0, 0.15);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{17};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace prophet
