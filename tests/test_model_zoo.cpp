#include <gtest/gtest.h>

#include "dnn/model_zoo.hpp"

namespace prophet::dnn {
namespace {

// Published parameter counts (torchvision, 1000-class ImageNet heads).
struct ZooCase {
  const char* name;
  std::int64_t expected_params;
  double tolerance;  // relative
};

class ModelZooParams : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ModelZooParams, ParameterCountMatchesPublished) {
  const ZooCase& c = GetParam();
  const ModelSpec model = model_by_name(c.name);
  const auto params = model.parameter_count();
  EXPECT_NEAR(static_cast<double>(params), static_cast<double>(c.expected_params),
              c.tolerance * static_cast<double>(c.expected_params))
      << model.name() << " has " << params << " params";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelZooParams,
    ::testing::Values(ZooCase{"resnet18", 11'689'512, 0.001},
                      ZooCase{"resnet50", 25'557'032, 0.001},
                      ZooCase{"resnet152", 60'192'808, 0.001},
                      ZooCase{"inception_v3", 23'834'568, 0.02},
                      ZooCase{"vgg19", 143'667'240, 0.001},
                      ZooCase{"alexnet", 61'100'840, 0.001},
                      ZooCase{"mobilenet_v1", 4'231'976, 0.02},
                      ZooCase{"bert_base", 109'482'240, 0.02}),
    [](const auto& param_info) { return std::string{param_info.param.name}; });

TEST(ModelZoo, TensorCountsAreArchitecturePlausible) {
  // ResNet50: 53 convs + 53 BN pairs + fc w/b = 161 tensors; the paper's
  // Fig. 4 observes gradient indices up to ~156 for ResNet50 under MXNet.
  EXPECT_EQ(resnet50().tensor_count(), 161u);
  // VGG19: 16 convs + 3 fc, each weight+bias = 38 tensors.
  EXPECT_EQ(vgg19().tensor_count(), 38u);
  EXPECT_EQ(resnet18().tensor_count(), 62u);
  EXPECT_GT(resnet152().tensor_count(), 400u);
}

TEST(ModelZoo, FlopsOrderingMatchesKnownRanking) {
  // Forward FLOPs (2x MAC convention): R18 < R50 < inception-ish < R152 < VGG19.
  const double r18 = resnet18().total_fwd_gflops();
  const double r50 = resnet50().total_fwd_gflops();
  const double r152 = resnet152().total_fwd_gflops();
  const double vgg = vgg19().total_fwd_gflops();
  EXPECT_LT(r18, r50);
  EXPECT_LT(r50, r152);
  EXPECT_LT(r152, vgg);
  // Published MAC counts x2: ~3.6, ~8.2, ~23, ~39 GFLOPs.
  EXPECT_NEAR(r18, 3.6, 0.4);
  EXPECT_NEAR(r50, 8.2, 0.5);
  EXPECT_NEAR(r152, 23.1, 1.0);
  EXPECT_NEAR(vgg, 39.3, 1.0);
}

TEST(ModelZoo, TensorZeroIsTheInputConv) {
  const ModelSpec m = resnet50();
  EXPECT_EQ(m.tensor(0).name, "conv1.weight");
  // 7x7x3x64 weights.
  EXPECT_EQ(m.tensor(0).bytes.count(), 7 * 7 * 3 * 64 * 4);
}

TEST(ModelZoo, StagesAreMonotoneNonDecreasing) {
  for (const auto& name : model_names()) {
    const ModelSpec m = model_by_name(name);
    int prev = 0;
    for (const auto& t : m.tensors()) {
      EXPECT_GE(t.stage, prev) << name << " tensor " << t.name;
      prev = t.stage;
    }
    EXPECT_GE(m.stage_count(), 2) << name;
  }
}

TEST(ModelZoo, ResNet50StageCountMatchesResidualBlocks) {
  // conv1 stage + 16 bottleneck blocks + classifier stage = 18.
  EXPECT_EQ(resnet50().stage_count(), 18);
  // conv1 + 8 basic blocks + classifier = 10.
  EXPECT_EQ(resnet18().stage_count(), 10);
}

TEST(ModelZoo, AllTensorsHavePositiveSizes) {
  for (const auto& name : model_names()) {
    const ModelSpec m = model_by_name(name);
    for (const auto& t : m.tensors()) {
      EXPECT_GT(t.bytes.count(), 0) << name << " " << t.name;
      EXPECT_GE(t.fwd_gflops, 0.0);
    }
    EXPECT_GT(m.total_bytes().count(), 0);
  }
}

TEST(ModelZoo, BertStructure) {
  const ModelSpec bert = bert_base();
  // Embeddings stage + 12 encoder layers + pooler = 14 stages.
  EXPECT_EQ(bert.stage_count(), 14);
  // 4 embedding tensors + 12 x 16 per layer + pooler w/b.
  EXPECT_EQ(bert.tensor_count(), 4u + 12u * 16u + 2u);
  EXPECT_EQ(bert.tensor(0).name, "embeddings.word");
  // Longer sequences cost more compute, parameters unchanged.
  EXPECT_GT(bert_base(512).total_fwd_gflops(), bert.total_fwd_gflops());
  EXPECT_EQ(bert_base(512).parameter_count(), bert.parameter_count());
}

TEST(ModelZoo, MobilenetDepthwiseStructure) {
  const ModelSpec m = mobilenet_v1();
  // conv0 (3 tensors) + 13 x (dw 3 + pw 3) + fc w/b = 83 tensors.
  EXPECT_EQ(m.tensor_count(), 83u);
  // A depthwise weight is k*k*channels parameters (no cross-channel mixing):
  // block0.dw over 32 channels = 3*3*32 floats.
  for (const auto& t : m.tensors()) {
    if (t.name == "block0.dw.weight") {
      EXPECT_EQ(t.bytes.count(), 3 * 3 * 32 * 4);
      return;
    }
  }
  FAIL() << "block0.dw.weight not found";
}

TEST(ModelZoo, AlexNetFcHeavy) {
  const ModelSpec m = alexnet();
  // The three FC layers hold the overwhelming majority of the parameters —
  // the classic pathological case for FIFO transfer ordering.
  Bytes fc_bytes{};
  for (const auto& t : m.tensors()) {
    if (t.name.rfind("fc", 0) == 0) fc_bytes += t.bytes;
  }
  EXPECT_GT(fc_bytes.count(), (m.total_bytes().count() * 9) / 10);
}

TEST(ModelZoo, ByNameRoundTrip) {
  for (const auto& name : model_names()) {
    EXPECT_EQ(model_by_name(name).name(), name);
  }
}

TEST(ModelZooDeath, UnknownNameAborts) {
  EXPECT_DEATH((void)model_by_name("alexnet9000"), "unknown model name");
}

TEST(ModelZoo, VggHasNoBatchNormAndBiasedConvs) {
  const ModelSpec m = vgg19();
  for (const auto& t : m.tensors()) {
    EXPECT_EQ(t.name.find(".bn."), std::string::npos) << t.name;
  }
  // First conv: 3x3x3x64 weights; its bias is a separate key.
  EXPECT_EQ(m.tensor(0).bytes.count(), 3 * 3 * 3 * 64 * 4);
  EXPECT_EQ(m.tensor(1).name, "conv0.bias");
}

}  // namespace
}  // namespace prophet::dnn
