// Randomized invariant testing for every CommScheduler implementation:
// whatever the arrival pattern and poll timing, a scheduler must eventually
// emit every enqueued byte exactly once, never fabricate bytes, and keep its
// ordering discipline.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "core/prophet_scheduler.hpp"
#include "dnn/stepwise.hpp"
#include "sched/bytescheduler.hpp"
#include "sched/fifo.hpp"
#include "sched/mg_wfbp.hpp"
#include "sched/p3.hpp"
#include "sched/tictac.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;
using sched::CommScheduler;
using sched::TaskKind;

struct FuzzCase {
  std::string name;
  // Factory re-invoked per trial; gradient count known up front.
  std::function<std::unique_ptr<CommScheduler>(std::size_t grads)> make;
};

std::vector<FuzzCase> all_schedulers() {
  using std::make_unique;
  std::vector<FuzzCase> cases;
  cases.push_back({"fifo", [](std::size_t) {
                     return make_unique<sched::FifoScheduler>(TaskKind::kPush);
                   }});
  cases.push_back({"p3", [](std::size_t) {
                     return make_unique<sched::P3Scheduler>(TaskKind::kPush,
                                                            Bytes::kib(256));
                   }});
  cases.push_back({"tictac", [](std::size_t) {
                     return make_unique<sched::TicTacScheduler>(TaskKind::kPush);
                   }});
  cases.push_back({"mg_wfbp", [](std::size_t) {
                     sched::MgWfbpConfig cfg;
                     cfg.merge_bytes = Bytes::kib(512);
                     cfg.max_delay = 4_ms;
                     return make_unique<sched::MgWfbpScheduler>(TaskKind::kPush, cfg);
                   }});
  cases.push_back({"bytescheduler", [](std::size_t) {
                     sched::ByteSchedulerConfig cfg;
                     cfg.partition_bytes = Bytes::kib(128);
                     cfg.credit_bytes = Bytes::kib(512);
                     return make_unique<sched::ByteSchedulerScheduler>(TaskKind::kPush,
                                                                       cfg);
                   }});
  cases.push_back({"prophet_profiling", [](std::size_t grads) {
                     core::ProphetConfig cfg;
                     cfg.partition_bytes = Bytes::kib(128);
                     return make_unique<core::ProphetScheduler>(
                         TaskKind::kPush, grads,
                         [] { return Bandwidth::gbps(1); },
                         net::TcpCostModel{}, cfg);
                   }});
  cases.push_back({"prophet_active", [](std::size_t grads) {
                     core::ProphetConfig cfg;
                     cfg.partition_bytes = Bytes::kib(128);
                     auto sched = make_unique<core::ProphetScheduler>(
                         TaskKind::kPush, grads,
                         [] { return Bandwidth::gbps(1); },
                         net::TcpCostModel{}, cfg);
                     // Synthetic profile: one gradient per 5 ms step.
                     core::GradientProfile profile;
                     for (std::size_t g = 0; g < grads; ++g) {
                       profile.ready.push_back(
                           Duration::millis(static_cast<std::int64_t>(grads - g) * 5));
                       profile.sizes.push_back(Bytes::kib(512));
                     }
                     profile.intervals = dnn::transfer_intervals(profile.ready);
                     profile.iterations_profiled = 1;
                     sched->set_profile(std::move(profile));
                     return sched;
                   }});
  return cases;
}

class SchedulerFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerFuzz, ConservesBytesUnderRandomArrivalsAndPolls) {
  Rng rng{GetParam()};
  for (const auto& fuzz_case : all_schedulers()) {
    const std::size_t grads = static_cast<std::size_t>(rng.uniform_int(3, 24));
    auto scheduler = fuzz_case.make(grads);
    scheduler->on_iteration_start(0, TimePoint::origin());

    // Random tensor sizes; arrivals in backward order with random gaps.
    std::map<std::size_t, std::int64_t> expected;
    TimePoint now = TimePoint::origin();
    std::vector<std::size_t> pending_order;
    for (std::size_t step = 0; step < grads; ++step) {
      pending_order.push_back(grads - 1 - step);
    }
    std::map<std::size_t, std::int64_t> received;
    std::size_t next_arrival = 0;
    std::int64_t safety = 0;
    while (true) {
      PROPHET_CHECK(++safety < 100'000);
      // Randomly interleave arrivals and polls.
      if (next_arrival < pending_order.size() &&
          (rng.bernoulli(0.5) || !scheduler->has_pending())) {
        const std::size_t g = pending_order[next_arrival++];
        const auto bytes = Bytes::kib(rng.uniform_int(1, 3000));
        expected[g] = bytes.count();
        scheduler->enqueue(g, bytes, now);
      } else {
        auto task = scheduler->next_task(now);
        if (task.has_value()) {
          ASSERT_FALSE(task->items.empty()) << fuzz_case.name;
          for (const auto& item : task->items) {
            ASSERT_GT(item.bytes.count(), 0) << fuzz_case.name;
            received[item.grad] += item.bytes.count();
            ASSERT_LE(received[item.grad], expected[item.grad]) << fuzz_case.name;
          }
          scheduler->on_task_done(*task, now, now + 1_ms);
        }
      }
      now += Duration::millis(rng.uniform_int(0, 6));
      if (next_arrival == pending_order.size() && !scheduler->has_pending()) {
        // Drain any hold-back (e.g. MG-WFBP age window) by polling forward.
        auto residual = scheduler->next_task(now + 1_s);
        if (!residual.has_value()) break;
        for (const auto& item : residual->items) {
          received[item.grad] += item.bytes.count();
        }
      }
    }
    // Every byte of every gradient delivered exactly once.
    ASSERT_EQ(received.size(), expected.size()) << fuzz_case.name;
    for (const auto& [g, bytes] : expected) {
      EXPECT_EQ(received[g], bytes) << fuzz_case.name << " gradient " << g;
    }
    EXPECT_FALSE(scheduler->has_pending()) << fuzz_case.name;
  }
}

TEST_P(SchedulerFuzz, PrioritySchedulersNeverInvertAcrossTasks) {
  // For P3 / TicTac / ByteScheduler: when two tensors are both queued, the
  // next emitted task must start with the most urgent queued gradient.
  Rng rng{GetParam() ^ 0xabcdef};
  for (const auto& fuzz_case : all_schedulers()) {
    if (fuzz_case.name == "fifo" || fuzz_case.name == "mg_wfbp" ||
        fuzz_case.name == "prophet_profiling" || fuzz_case.name == "prophet_active") {
      continue;  // FIFO is unordered by design; MG/Prophet batch by policy
    }
    auto scheduler = fuzz_case.make(16);
    scheduler->on_iteration_start(0, TimePoint::origin());
    std::set<std::size_t> queued;
    TimePoint now = TimePoint::origin();
    for (std::size_t g = 16; g-- > 0;) {
      scheduler->enqueue(g, Bytes::kib(rng.uniform_int(64, 1024)), now);
      queued.insert(g);
      if (rng.bernoulli(0.6)) {
        const auto task = scheduler->next_task(now);
        ASSERT_TRUE(task.has_value());
        EXPECT_EQ(task->items.front().grad, *queued.begin()) << fuzz_case.name;
        for (const auto& item : task->items) {
          if (item.last_slice) queued.erase(item.grad);
        }
        scheduler->on_task_done(*task, now, now + 1_ms);
      }
      now += 2_ms;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 99u, 12345u));

}  // namespace
}  // namespace prophet
