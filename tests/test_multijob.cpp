// Cluster scheduler (placement + interleaving) and the multi-job driver:
// policy unit tests on synthetic fabrics, plus end-to-end determinism and
// locality checks for two jobs sharing one simulator event loop.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cluster/multi_job.hpp"
#include "cluster/scheduler.hpp"
#include "dnn/model_zoo.hpp"
#include "net/topology.hpp"
#include "ps/config.hpp"

namespace prophet::cluster {
namespace {

JobSpec small_job(std::size_t workers, unsigned seed) {
  JobSpec job;
  job.config.model = dnn::resnet50();
  job.config.batch = 64;
  job.config.num_workers = workers;
  job.config.iterations = 8;
  job.config.seed = seed;
  job.config.strategy = ps::StrategyConfig::fifo();
  return job;
}

MultiJobConfig two_job_config(PlacementPolicy placement,
                              InterleavePolicy interleave) {
  MultiJobConfig cfg;
  // 3 Gbps hosts keep ResNet-50 comm-bound so the spine actually matters.
  cfg.topology = net::TopologySpec::leaf_spine(2, 4, Bandwidth::gbps(3), 4.0);
  cfg.placement = placement;
  cfg.interleave = interleave;
  cfg.jobs.push_back(small_job(3, 42));
  cfg.jobs.push_back(small_job(3, 43));
  return cfg;
}

TEST(PolicyNames, RoundTrip) {
  EXPECT_STREQ(placement_name(PlacementPolicy::kNetworkAware), "network-aware");
  EXPECT_STREQ(interleave_name(InterleavePolicy::kCassini), "cassini");
  EXPECT_EQ(placement_from_name("fifo-stripe"), PlacementPolicy::kFifoStripe);
  EXPECT_EQ(interleave_from_name("none"), InterleavePolicy::kNone);
  EXPECT_FALSE(placement_from_name("bogus").has_value());
  EXPECT_FALSE(interleave_from_name("bogus").has_value());
}

TEST(Placement, NetworkAwarePacksEachJobIntoOneRack) {
  const auto topo = net::TopologySpec::leaf_spine(2, 4, Bandwidth::gbps(10), 4.0);
  const std::vector<JobSpec> jobs = {small_job(3, 1), small_job(3, 2)};
  const auto placements = place_jobs(topo, jobs, PlacementPolicy::kNetworkAware);
  ASSERT_EQ(placements.size(), 2u);
  for (const Placement& p : placements) {
    EXPECT_EQ(p.cross_rack_workers(), 0u);
  }
  // Each job (PS + 3 workers = 4 hosts) fills one rack; the jobs must land
  // in different racks.
  EXPECT_NE(placements[0].ps_rack, placements[1].ps_rack);
}

TEST(Placement, FifoStripeSpreadsWorkersAcrossRacks) {
  const auto topo = net::TopologySpec::leaf_spine(2, 4, Bandwidth::gbps(10), 4.0);
  const std::vector<JobSpec> jobs = {small_job(3, 1), small_job(3, 2)};
  const auto placements = place_jobs(topo, jobs, PlacementPolicy::kFifoStripe);
  ASSERT_EQ(placements.size(), 2u);
  EXPECT_GT(placements[0].cross_rack_workers(), 0u);
}

TEST(Placement, StarFabricYieldsEmptyPlacements) {
  const auto topo =
      net::TopologySpec::star(Bandwidth::gbps(10), Bandwidth::gbps(10));
  const std::vector<JobSpec> jobs = {small_job(3, 1)};
  const auto placements = place_jobs(topo, jobs, PlacementPolicy::kNetworkAware);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_FALSE(placements[0].ps_rack.has_value());
  EXPECT_TRUE(placements[0].worker_racks.empty());
}

TEST(Placement, AbortsWhenJobsExceedFabricCapacity) {
  const auto topo = net::TopologySpec::leaf_spine(1, 4, Bandwidth::gbps(10), 4.0);
  const std::vector<JobSpec> jobs = {small_job(3, 1), small_job(3, 2)};
  EXPECT_DEATH(place_jobs(topo, jobs, PlacementPolicy::kNetworkAware),
               "more hosts than the fabric");
}

TEST(Interleave, CassiniStaggersOnlySpineSharingJobs) {
  const auto topo = net::TopologySpec::leaf_spine(2, 4, Bandwidth::gbps(10), 4.0);
  const std::vector<JobSpec> jobs = {small_job(3, 1), small_job(3, 2)};
  // FIFO striping round-robins each job's 4 hosts over both racks, so both
  // jobs put gradient traffic on the spine and both are interleave inputs.
  const auto placements = place_jobs(topo, jobs, PlacementPolicy::kFifoStripe);
  const auto offsets =
      interleave_offsets(topo, jobs, placements, InterleavePolicy::kCassini);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[0].count_nanos(), 0);
  EXPECT_GT(offsets[1].count_nanos(), 0);

  const auto none =
      interleave_offsets(topo, jobs, placements, InterleavePolicy::kNone);
  EXPECT_EQ(none[0].count_nanos(), 0);
  EXPECT_EQ(none[1].count_nanos(), 0);
}

TEST(PhaseEstimation, CrossRackJobPredictsSpineTraffic) {
  const auto topo = net::TopologySpec::leaf_spine(2, 2, Bandwidth::gbps(10), 4.0);
  const std::vector<JobSpec> jobs = {small_job(3, 1)};
  const auto placements = place_jobs(topo, jobs, PlacementPolicy::kFifoStripe);
  const PhaseEstimate est = estimate_phases(topo, jobs[0].config, placements[0]);
  EXPECT_GT(est.compute.count_nanos(), 0);
  EXPECT_GT(est.comm.count_nanos(), 0);
  EXPECT_EQ(est.period.count_nanos(),
            est.compute.count_nanos() + est.comm.count_nanos());
  EXPECT_GT(est.spine_bytes_per_iter, 0);
}

TEST(MultiJob, SameConfigIsBitwiseDeterministic) {
  const auto cfg = two_job_config(PlacementPolicy::kNetworkAware,
                                  InterleavePolicy::kCassini);
  const MultiJobResult a = run_multi_job(cfg);
  const MultiJobResult b = run_multi_job(cfg);
  EXPECT_EQ(a.makespan.count_nanos(), b.makespan.count_nanos());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.spine_bytes, b.spine_bytes);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].finish_time.count_nanos(),
              b.jobs[j].finish_time.count_nanos());
  }
}

TEST(MultiJob, PackedPlacementTakesTrafficOffTheSpine) {
  const MultiJobResult packed = run_multi_job(two_job_config(
      PlacementPolicy::kNetworkAware, InterleavePolicy::kNone));
  const MultiJobResult striped = run_multi_job(two_job_config(
      PlacementPolicy::kFifoStripe, InterleavePolicy::kNone));
  // Each 4-host job fits a rack exactly: packing leaves the spine silent,
  // striping pushes gradient bytes through it and pays on makespan.
  EXPECT_EQ(packed.spine_bytes, 0);
  EXPECT_GT(striped.spine_bytes, 0);
  EXPECT_LT(packed.makespan.count_nanos(), striped.makespan.count_nanos());
}

TEST(MultiJob, OutcomesCarryPlacementAndOffsets) {
  const MultiJobResult result = run_multi_job(two_job_config(
      PlacementPolicy::kNetworkAware, InterleavePolicy::kCassini));
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].name, "job0");
  EXPECT_EQ(result.jobs[1].name, "job1");
  for (const JobOutcome& job : result.jobs) {
    ASSERT_EQ(job.placement.worker_racks.size(), 3u);
    EXPECT_GE(job.finish_time.count_nanos(), job.start_offset.count_nanos());
    EXPECT_GT(job.result.events_fired, 0u);
  }
}

}  // namespace
}  // namespace prophet::cluster
