#include <gtest/gtest.h>

#include "allreduce/cluster.hpp"
#include "allreduce/coordinator.hpp"
#include "allreduce/ring.hpp"
#include "ps/strategy.hpp"

namespace prophet::ar {
namespace {

using namespace prophet::literals;

net::TcpCostModel plain_cost() {
  net::TcpCostParams params;
  params.per_task_overhead = 0_ns;
  params.slow_start = false;
  return net::TcpCostModel{params};
}

struct RingFixture {
  sim::Simulator sim;
  net::FlowNetwork net;
  std::vector<net::NodeId> nodes;

  explicit RingFixture(std::size_t workers, Bandwidth bw = Bandwidth::gbps(1),
                       net::TcpCostModel cost = plain_cost())
      : net{sim, cost} {
    for (std::size_t w = 0; w < workers; ++w) {
      nodes.push_back(net.add_node("w" + std::to_string(w), bw, bw));
    }
  }
};

TEST(RingAllReduce, RoundCountIsTwoWMinusOne) {
  RingFixture f{4};
  RingAllReduce ring{f.sim, f.net, f.nodes};
  EXPECT_EQ(ring.total_rounds(), 6u);
}

TEST(RingAllReduce, BandwidthOptimalTiming) {
  // 4 workers, 1 Gbps (125 MB/s), 100 MB payload: each round moves 25 MB
  // per link concurrently (0.2 s), 6 rounds -> 1.2 s total. That is the
  // classic 2 * S/B * (W-1)/W ring bound.
  RingFixture f{4};
  RingAllReduce ring{f.sim, f.net, f.nodes};
  double done_s = 0.0;
  ring.run(Bytes::of(100'000'000), [&] { done_s = f.sim.now().to_seconds(); });
  f.sim.run();
  EXPECT_NEAR(done_s, 1.2, 1e-6);
  EXPECT_FALSE(ring.busy());
}

TEST(RingAllReduce, PerRoundSetupCostMakesSmallCollectivesLatencyBound) {
  net::TcpCostParams params;
  params.per_task_overhead = 1_ms;
  params.slow_start = false;
  RingFixture f{4, Bandwidth::gbps(10), net::TcpCostModel{params}};
  RingAllReduce ring{f.sim, f.net, f.nodes};
  double done_ms = 0.0;
  ring.run(Bytes::kib(4), [&] { done_ms = f.sim.now().to_millis(); });
  f.sim.run();
  // 6 rounds x ~1 ms setup dominate the microscopic serialization.
  EXPECT_GT(done_ms, 6.0);
  EXPECT_LT(done_ms, 7.0);
}

TEST(RingAllReduce, SequentialCollectives) {
  RingFixture f{2};
  RingAllReduce ring{f.sim, f.net, f.nodes};
  int completed = 0;
  std::function<void()> chain = [&] {
    if (++completed < 3) ring.run(Bytes::mib(1), chain);
  };
  ring.run(Bytes::mib(1), chain);
  f.sim.run();
  EXPECT_EQ(completed, 3);
}

TEST(RingAllReduceDeath, ConcurrentCollectivesAbort) {
  RingFixture f{2};
  RingAllReduce ring{f.sim, f.net, f.nodes};
  ring.run(Bytes::mib(1), [] {});
  EXPECT_DEATH(ring.run(Bytes::mib(1), [] {}), "one collective at a time");
}

TEST(Coordinator, WaitsForEveryWorkerBeforeScheduling) {
  RingFixture f{3};
  const auto model = dnn::toy_cnn();
  std::vector<std::pair<std::size_t, std::size_t>> reduced;
  Coordinator coordinator{
      f.sim, f.net, f.nodes, model,
      ps::make_scheduler(ps::StrategyConfig::fifo(), sched::TaskKind::kPush,
                         model.tensor_count(),
                         [] { return Bandwidth::gbps(1); }, plain_cost()),
      [&](std::size_t w, std::size_t k) { reduced.emplace_back(w, k); }};
  coordinator.on_iteration_start(0, f.sim.now());
  coordinator.on_gradient_ready(0, 5);
  coordinator.on_gradient_ready(1, 5);
  f.sim.run();
  EXPECT_TRUE(reduced.empty());  // worker 2 still missing
  coordinator.on_gradient_ready(2, 5);
  f.sim.run();
  ASSERT_EQ(reduced.size(), 3u);  // all workers notified once reduced
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(reduced[w].first, w);
    EXPECT_EQ(reduced[w].second, 5u);
  }
  EXPECT_EQ(coordinator.reductions_completed(5), 1u);
  EXPECT_EQ(coordinator.reductions_completed(4), 0u);
}

TEST(Coordinator, PartialFusionCompletesKeysOnLastSlice) {
  // A scheduler that partitions tensors (P3) must not mark a key reduced
  // until every slice's collective completed.
  RingFixture f{2};
  const auto model = dnn::toy_cnn();
  int notified = 0;
  Coordinator coordinator{
      f.sim, f.net, f.nodes, model,
      ps::make_scheduler(ps::StrategyConfig::p3(Bytes::of(64)),
                         sched::TaskKind::kPush, model.tensor_count(),
                         [] { return Bandwidth::gbps(1); }, plain_cost()),
      [&](std::size_t, std::size_t) { ++notified; }};
  coordinator.on_iteration_start(0, f.sim.now());
  // toy_cnn tensor 0: conv1 3x3x3x16 weights = 1728 bytes -> 27 slices.
  coordinator.on_gradient_ready(0, 0);
  coordinator.on_gradient_ready(1, 0);
  f.sim.run();
  EXPECT_EQ(notified, 2);  // exactly one completion per worker
  EXPECT_EQ(coordinator.reductions_completed(0), 1u);
}

ps::ClusterConfig ar_config(ps::StrategyConfig strategy, double gbps = 2.0) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::toy_cnn();
  cfg.num_workers = 3;
  cfg.batch = 32;
  cfg.iterations = 14;
  cfg.worker_bandwidth = Bandwidth::gbps(gbps);
  cfg.strategy = std::move(strategy);
  cfg.strategy.prophet_config.profile_iterations = 4;
  return cfg;
}

TEST(AllReduceCluster, CompletesForEveryStrategy) {
  for (auto strategy :
       {ps::StrategyConfig::fifo(), ps::StrategyConfig::p3(Bytes::kib(64)),
        ps::StrategyConfig::tictac(), ps::StrategyConfig::mg_wfbp(Bytes::kib(256)),
        ps::StrategyConfig::bytescheduler(Bytes::kib(256)),
        ps::StrategyConfig::prophet()}) {
    if (strategy.kind == ps::StrategyConfig::Kind::kByteScheduler) {
      strategy.bytescheduler_config.partition_bytes = Bytes::kib(64);
    }
    const auto result = run_allreduce(ar_config(strategy), 6);
    for (const auto& w : result.workers) {
      EXPECT_EQ(w.iterations_completed, 14u) << strategy.name();
      EXPECT_GT(w.rate_samples_per_sec, 0.0) << strategy.name();
    }
  }
}

TEST(AllReduceCluster, Deterministic) {
  const auto a = run_allreduce(ar_config(ps::StrategyConfig::prophet()), 6);
  const auto b = run_allreduce(ar_config(ps::StrategyConfig::prophet()), 6);
  EXPECT_EQ(a.simulated_time.count_nanos(), b.simulated_time.count_nanos());
  EXPECT_DOUBLE_EQ(a.mean_rate(), b.mean_rate());
}

TEST(AllReduceCluster, FusionBeatsPerTensorCollectives) {
  // The defining effect of the ring architecture: per-tensor collectives
  // (FIFO/TicTac) pay 2(W-1) setups per tensor; fused strategies win big.
  const double fifo = run_allreduce(ar_config(ps::StrategyConfig::fifo()), 6).mean_rate();
  const double prophet =
      run_allreduce(ar_config(ps::StrategyConfig::prophet()), 6).mean_rate();
  EXPECT_GT(prophet, 1.2 * fifo);
}

TEST(AllReduceCluster, BspLockstepAcrossWorkers) {
  const auto result = run_allreduce(ar_config(ps::StrategyConfig::prophet()), 6);
  for (const auto& w : result.workers) {
    EXPECT_NEAR(w.rate_samples_per_sec, result.workers[0].rate_samples_per_sec,
                0.02 * result.workers[0].rate_samples_per_sec);
  }
}

}  // namespace
}  // namespace prophet::ar
