#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace prophet {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "prophet_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv{path_, {"a", "b"}};
    ASSERT_TRUE(csv.ok());
    csv.write_row({"1", "x"});
    csv.write_row_values({2.5, 3.0});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,x\n2.5,3\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv{path_, {"v"}};
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
  }
  EXPECT_EQ(read_file(path_), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvEscape, PassthroughForPlainCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("new\nline"), "\"new\nline\"");
}

TEST(TextTable, AlignsColumns) {
  TextTable t{{"name", "rate"}};
  t.add_row({"fifo", "42"});
  t.add_row({"prophet", "75.4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name    | rate |"), std::string::npos);
  EXPECT_NE(out.find("| prophet | 75.4 |"), std::string::npos);
  EXPECT_NE(out.find("+---------+------+"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(75.4217, 3), "75.4");
  EXPECT_EQ(TextTable::num(0.000123, 2), "0.00012");
  EXPECT_EQ(TextTable::pct(0.9115, 2), "91.15%");
  EXPECT_EQ(TextTable::pct(0.5), "50.0%");
}

}  // namespace
}  // namespace prophet
