// Golden determinism suite for the engine hot-path optimizations.
//
// The event pool, the incremental local-search evaluator, the flat-vector
// BlockPlanner, and the slab-based FlowNetwork are all pure performance work:
// simulation *results* must not move. Every constant below was captured from
// the pre-optimization engine (tools/golden_capture.cpp, commit 92aa530) and
// the optimized engine must keep reproducing it bit for bit — schedules,
// WaitTimeBreakdowns, fired-event counts, and full cluster runs.
//
// The one intentional exception: FlowNetwork's FlowId values changed encoding
// (sequential counter -> {generation, slot}), and simultaneous same-nanosecond
// flow completions now fire in deterministic admission order instead of
// unordered_map hash order. The flow-scenario hash below is therefore the
// post-change capture; the scenario's completion *times*, byte totals, busy
// time, and event counts are pinned to the pre-change values.
//
// Incremental max-min recomputation (RebalanceMode::kIncremental, now the
// default) moved NO goldens: component-local rebalance reproduces the full
// algorithm's rates bit-identically (tests/test_incremental_rates.cpp proves
// this per-event under verify mode) and, in these scenarios, the identical
// event trajectories too. The flow and cluster goldens below therefore run
// under BOTH modes against the same constants — if a future change moves one
// mode but not the other, the failure pinpoints which engine diverged.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/block_planner.hpp"
#include "core/local_search.hpp"
#include "core/perf_model.hpp"
#include "dnn/iteration_model.hpp"
#include "dnn/model_zoo.hpp"
#include "dnn/stepwise.hpp"
#include "net/flow_network.hpp"
#include "ps/cluster.hpp"
#include "sim/simulator.hpp"

namespace prophet {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t hash_schedule(const core::Schedule& s) {
  std::uint64_t h = kFnvSeed;
  for (const auto& t : s.tasks) {
    h = fnv1a(h, static_cast<std::uint64_t>(t.start.count_nanos()));
    h = fnv1a(h, t.grads.size());
    for (std::size_t g : t.grads) h = fnv1a(h, g);
  }
  return h;
}

std::uint64_t hash_breakdown(const core::WaitTimeBreakdown& b) {
  std::uint64_t h = kFnvSeed;
  h = fnv1a(h, static_cast<std::uint64_t>(b.t_wait.count_nanos()));
  h = fnv1a(h, static_cast<std::uint64_t>(b.span.count_nanos()));
  for (auto d : b.update_done) h = fnv1a(h, static_cast<std::uint64_t>(d.count_nanos()));
  for (auto d : b.forward_done) h = fnv1a(h, static_cast<std::uint64_t>(d.count_nanos()));
  return h;
}

core::GradientProfile model_profile(const dnn::ModelSpec& model) {
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 64};
  const auto timing = iteration.nominal();
  core::GradientProfile profile;
  profile.ready = timing.ready_offset;
  for (const auto& tensor : iteration.model().tensors()) {
    profile.sizes.push_back(tensor.bytes);
  }
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  return profile;
}

core::PerfModel model_perf(const dnn::ModelSpec& model) {
  const dnn::IterationModel iteration{model, dnn::tesla_m60_pair(), 64};
  return core::PerfModel{model_profile(model), iteration.nominal().fwd,
                         Bandwidth::gbps(3), net::TcpCostModel{}};
}

struct RefineGolden {
  std::int64_t t_wait_ns;
  std::int64_t span_ns;
  std::size_t applied;
  std::size_t evaluated;
  std::uint64_t sched_hash;
  std::uint64_t bd_hash;
  std::size_t tasks;
};

void expect_refine(const core::LocalSearchResult& got, const RefineGolden& want) {
  EXPECT_EQ(got.breakdown.t_wait.count_nanos(), want.t_wait_ns);
  EXPECT_EQ(got.breakdown.span.count_nanos(), want.span_ns);
  EXPECT_EQ(got.moves_applied, want.applied);
  EXPECT_EQ(got.moves_evaluated, want.evaluated);
  EXPECT_EQ(hash_schedule(got.schedule), want.sched_hash);
  EXPECT_EQ(hash_breakdown(got.breakdown), want.bd_hash);
  EXPECT_EQ(got.schedule.tasks.size(), want.tasks);
}

// --- Planner + full-evaluate goldens ---------------------------------------

TEST(GoldenPlanner, ResNet50) {
  const auto profile = model_profile(dnn::resnet50());
  const auto greedy =
      core::BlockPlanner{net::TcpCostModel{}}.plan(profile, Bandwidth::gbps(3));
  EXPECT_EQ(greedy.tasks.size(), 20u);
  EXPECT_EQ(hash_schedule(greedy), 9423424468779032942ull);
  const auto pm = model_perf(dnn::resnet50());
  const auto eval = pm.evaluate(core::LocalSearchPlanner::retime(greedy, pm));
  EXPECT_EQ(eval.t_wait.count_nanos(), 4000000);
  EXPECT_EQ(eval.span.count_nanos(), 845510243);
  EXPECT_EQ(hash_breakdown(eval), 8632650164700459392ull);
}

TEST(GoldenPlanner, ResNet152) {
  const auto profile = model_profile(dnn::resnet152());
  const auto greedy =
      core::BlockPlanner{net::TcpCostModel{}}.plan(profile, Bandwidth::gbps(3));
  EXPECT_EQ(greedy.tasks.size(), 54u);
  EXPECT_EQ(hash_schedule(greedy), 6287146089696557389ull);
  const auto pm = model_perf(dnn::resnet152());
  const auto eval = pm.evaluate(core::LocalSearchPlanner::retime(greedy, pm));
  EXPECT_EQ(eval.t_wait.count_nanos(), 4000000);
  EXPECT_EQ(eval.span.count_nanos(), 2264715373);
  EXPECT_EQ(hash_breakdown(eval), 12650727571343511294ull);
}

// --- Local-search goldens ---------------------------------------------------
// BlockPlanner output is already locally optimal for these models (0 applied
// moves), so the hard/random cases below start from deliberately poor
// schedules to pin the accept/commit path of the incremental evaluator.

TEST(GoldenRefine, ResNet50FromPlanner) {
  const auto pm = model_perf(dnn::resnet50());
  const auto greedy = core::BlockPlanner{net::TcpCostModel{}}.plan(
      pm.profile(), Bandwidth::gbps(3));
  expect_refine(core::LocalSearchPlanner{8}.refine(greedy, pm),
                {4000000, 845510243, 0, 212, 9423424468779032942ull,
                 8632650164700459392ull, 20});
}

TEST(GoldenRefine, ResNet152FromPlanner) {
  const auto pm = model_perf(dnn::resnet152());
  const auto greedy = core::BlockPlanner{net::TcpCostModel{}}.plan(
      pm.profile(), Bandwidth::gbps(3));
  expect_refine(core::LocalSearchPlanner{8}.refine(greedy, pm),
                {4000000, 2264715373, 0, 620, 6287146089696557389ull,
                 12650727571343511294ull, 54});
}

core::Schedule chunked_schedule(std::size_t n, std::size_t chunk) {
  core::Schedule initial;
  for (std::size_t g = 0; g < n; g += chunk) {
    core::ScheduledTask task;
    for (std::size_t k = g; k < std::min(n, g + chunk); ++k) task.grads.push_back(k);
    initial.tasks.push_back(std::move(task));
  }
  return initial;
}

TEST(GoldenRefine, ResNet50SingletonStart) {
  const auto pm = model_perf(dnn::resnet50());
  const auto initial = chunked_schedule(pm.profile().gradient_count(), 1);
  expect_refine(core::LocalSearchPlanner{16}.refine(initial, pm),
                {8891136, 850401379, 210, 3202, 3126980536504625264ull,
                 1389798525086048094ull, 17});
}

TEST(GoldenRefine, ResNet152ChunkedStart) {
  const auto pm = model_perf(dnn::resnet152());
  const auto initial = chunked_schedule(pm.profile().gradient_count(), 4);
  expect_refine(core::LocalSearchPlanner{16}.refine(initial, pm),
                {4000000, 2264715373, 79, 1339, 4124185615626618052ull,
                 775783153660606382ull, 70});
}

core::LocalSearchResult refine_random(std::uint64_t seed, std::size_t n) {
  Rng rng{seed};
  std::vector<Duration> ready(n);
  std::vector<Bytes> sizes(n);
  Duration clock{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = n - 1 - step;
    if (step == 0 || rng.bernoulli(0.6)) clock += Duration::millis(rng.uniform_int(2, 25));
    ready[idx] = clock;
    sizes[idx] = Bytes::kib(rng.uniform_int(16, 4096));
  }
  core::GradientProfile profile;
  profile.ready = ready;
  profile.sizes = sizes;
  profile.intervals = dnn::transfer_intervals(profile.ready);
  profile.iterations_profiled = 1;
  const std::vector<Duration> fwd(n, Duration::millis(2));
  const core::PerfModel pm{profile, fwd, Bandwidth::gbps(1), net::TcpCostModel{}};
  return core::LocalSearchPlanner{32}.refine(chunked_schedule(n, 1), pm);
}

TEST(GoldenRefine, RandomProfileSeed7) {
  expect_refine(refine_random(7, 48),
                {653038400, 1146038400, 41, 412, 17919456594412970032ull,
                 11100656567336626467ull, 9});
}

TEST(GoldenRefine, RandomProfileSeed99) {
  expect_refine(refine_random(99, 64),
                {1032091680, 1675091680, 54, 558, 16290249102299553018ull,
                 7461085279390808929ull, 12});
}

// --- Simulator goldens ------------------------------------------------------

TEST(GoldenSim, MixedCancelAndPeriodicTrace) {
  sim::Simulator sim;
  Rng rng{12345};
  std::vector<sim::EventHandle> handles;
  std::uint64_t work = 0;
  for (int i = 0; i < 5000; ++i) {
    auto h = sim.schedule_after(Duration::micros(rng.uniform_int(0, 100000)),
                                [&work] { ++work; });
    if (rng.bernoulli(0.25)) handles.push_back(h);
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  sim::EventHandle periodic = sim.schedule_periodic(Duration::micros(700), [&](TimePoint) {
    ++work;
    if (work > 5500) periodic.cancel();
  });
  sim.schedule_after(Duration::millis(3), [&] {
    sim.schedule_after(Duration::millis(1), [&work] { work += 10; });
  });
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5493u);
  EXPECT_EQ(work, 5501u);
  EXPECT_EQ(sim.now().count_nanos(), 758800000);
}

// --- FlowNetwork goldens ----------------------------------------------------

void run_churn_with_dynamics(net::RebalanceMode mode) {
  sim::Simulator sim;
  net::FlowNetwork net{sim, net::TcpCostModel{}, mode};
  const auto ps = net.add_node("ps", Bandwidth::gbps(10), Bandwidth::gbps(10));
  std::vector<net::NodeId> workers;
  for (int i = 0; i < 4; ++i)
    workers.push_back(net.add_node("w", Bandwidth::gbps(5), Bandwidth::gbps(5)));
  std::uint64_t h = kFnvSeed;
  int done = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t w = 0; w < workers.size(); ++w) {
      net.start_flow(workers[w], ps, Bytes::mib(static_cast<std::int64_t>(1 + w)),
                     [&](net::FlowId id) {
                       ++done;
                       h = fnv1a(h, id);
                       h = fnv1a(h, static_cast<std::uint64_t>(sim.now().count_nanos()));
                     });
      net.start_flow(ps, workers[w], Bytes::kib(512), [&](net::FlowId id) {
        ++done;
        h = fnv1a(h, id);
        h = fnv1a(h, static_cast<std::uint64_t>(sim.now().count_nanos()));
      });
    }
    sim.schedule_after(Duration::millis(1),
                       [&] { net.set_capacity(ps, net::Direction::kRx, Bandwidth::gbps(8)); });
    sim.schedule_after(Duration::millis(2), [&] { net.set_link_up(workers[1], false); });
    sim.schedule_after(Duration::millis(4), [&] { net.set_link_up(workers[1], true); });
    sim.run();
    net.set_capacity(ps, net::Direction::kRx, Bandwidth::gbps(10));
  }
  EXPECT_EQ(done, 48);
  // Pre-change values: completion times, event count, PS-ingress byte total
  // and busy time are all unchanged by the slab rewrite.
  EXPECT_EQ(sim.events_fired(), 114u);
  EXPECT_EQ(sim.now().count_nanos(), 83344476);
  EXPECT_EQ(net.total_bytes(ps, net::Direction::kRx), 62914559);
  EXPECT_EQ(net.busy_time(ps, net::Direction::kRx).count_nanos(), 66689436);
  // Post-change capture (FlowId encoding + same-instant completion tie order
  // are the documented exceptions; see the file comment).
  EXPECT_EQ(h, 11853743091979687350ull);
}

TEST(GoldenFlows, ChurnWithDynamicsTrace) {
  run_churn_with_dynamics(net::RebalanceMode::kIncremental);
}

TEST(GoldenFlows, ChurnWithDynamicsTraceFullRebalance) {
  run_churn_with_dynamics(net::RebalanceMode::kFull);
}

// --- Full-cluster goldens ---------------------------------------------------

ps::ClusterResult run_golden_cluster(const ps::StrategyConfig& strategy,
                                     net::RebalanceMode mode) {
  ps::ClusterConfig cfg;
  cfg.model = dnn::resnet50();
  cfg.num_workers = 3;
  cfg.batch = 64;
  cfg.iterations = 10;
  cfg.worker_bandwidth = Bandwidth::gbps(3);
  cfg.strategy = strategy;
  cfg.strategy.prophet_config.profile_iterations = 4;
  cfg.rate_rebalance = mode;
  return ps::run_cluster(cfg, 5);
}

void expect_fifo_golden(const ps::ClusterResult& result) {
  EXPECT_EQ(result.events_fired, 36038u);
  EXPECT_EQ(result.simulated_time.count_nanos(), 11089550816);
  EXPECT_EQ(static_cast<std::int64_t>(result.mean_rate() * 100.0), 5618);
}

void expect_prophet_golden(const ps::ClusterResult& result) {
  EXPECT_EQ(result.events_fired, 10838u);
  EXPECT_EQ(result.simulated_time.count_nanos(), 8484657037);
  EXPECT_EQ(static_cast<std::int64_t>(result.mean_rate() * 100.0), 7537);
}

TEST(GoldenCluster, FifoTrace) {
  expect_fifo_golden(run_golden_cluster(ps::StrategyConfig::fifo(),
                                        net::RebalanceMode::kIncremental));
}

TEST(GoldenCluster, FifoTraceFullRebalance) {
  expect_fifo_golden(run_golden_cluster(ps::StrategyConfig::fifo(),
                                        net::RebalanceMode::kFull));
}

TEST(GoldenCluster, ProphetTrace) {
  expect_prophet_golden(run_golden_cluster(ps::StrategyConfig::prophet(),
                                           net::RebalanceMode::kIncremental));
}

TEST(GoldenCluster, ProphetTraceFullRebalance) {
  expect_prophet_golden(run_golden_cluster(ps::StrategyConfig::prophet(),
                                           net::RebalanceMode::kFull));
}

// --- Event-pool mechanics ---------------------------------------------------

TEST(EventPool, SlotsAreReusedAcrossBatches) {
  sim::Simulator sim;
  for (int batch = 0; batch < 50; ++batch) {
    for (int i = 0; i < 100; ++i) {
      sim.schedule_after(Duration::micros(i), [] {});
    }
    sim.run();
  }
  // 5000 events total, but never more than one batch in flight: the slab's
  // high-water mark stays at one batch (plus nothing else), not 5000.
  EXPECT_LE(sim.event_slot_count(), 100u);
}

TEST(EventPool, CancelledSlotsAreReclaimed) {
  sim::Simulator sim;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 64; ++i) {
      handles.push_back(sim.schedule_after(Duration::micros(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.run();
  }
  EXPECT_LE(sim.event_slot_count(), 64u);
}

TEST(EventPool, StaleHandleDoesNotCancelSlotReuser) {
  sim::Simulator sim;
  bool first_ran = false;
  bool second_ran = false;
  sim::EventHandle first = sim.schedule_after(Duration::micros(1), [&] { first_ran = true; });
  sim.run();
  ASSERT_TRUE(first_ran);
  ASSERT_FALSE(first.pending());
  // The second event reuses the first event's slot (LIFO free list); the
  // generation bump must keep the stale handle inert.
  sim::EventHandle second =
      sim.schedule_after(Duration::micros(1), [&] { second_ran = true; });
  EXPECT_EQ(sim.event_slot_count(), 1u);
  first.cancel();  // must be a no-op: generation differs
  EXPECT_TRUE(second.pending());
  sim.run();
  EXPECT_TRUE(second_ran);
}

TEST(EventPool, HandleOutlivesSimulator) {
  sim::EventHandle escaped;
  {
    sim::Simulator sim;
    escaped = sim.schedule_after(Duration::micros(5), [] {});
    EXPECT_TRUE(escaped.pending());
  }
  // The pool is shared with the handle, so this neither crashes nor reports
  // a live event.
  EXPECT_FALSE(escaped.pending());
  escaped.cancel();
}

TEST(EventPool, CancelledPeriodicChainIsReclaimed) {
  sim::Simulator sim;
  int ticks = 0;
  sim::EventHandle chain = sim.schedule_periodic(Duration::micros(10), [&](TimePoint) {
    ++ticks;
  });
  sim.schedule_after(Duration::micros(35), [&] { chain.cancel(); });
  sim.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(chain.pending());
  EXPECT_EQ(sim.pending_events(), 0u);
  // All slots (chain + ticks + the cancel event) are back on the free list;
  // scheduling a new event must reuse, not grow, the slab.
  const std::size_t slots = sim.event_slot_count();
  sim.schedule_after(Duration::micros(1), [] {});
  EXPECT_EQ(sim.event_slot_count(), slots);
}

TEST(EventPool, SelfCancelInsideCallbackIsSafe) {
  sim::Simulator sim;
  sim::EventHandle h;
  int runs = 0;
  h = sim.schedule_after(Duration::micros(1), [&] {
    ++runs;
    h.cancel();  // already firing: must be a no-op, not a double release
  });
  sim.run();
  EXPECT_EQ(runs, 1);
  sim.schedule_after(Duration::micros(1), [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace prophet
