#include <gtest/gtest.h>

#include "common/time.hpp"
#include "common/units.hpp"

namespace prophet {
namespace {

using namespace prophet::literals;

TEST(Duration, ConstructionAndConversion) {
  EXPECT_EQ(Duration::seconds(2).count_nanos(), 2'000'000'000);
  EXPECT_EQ(Duration::millis(3).count_nanos(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).count_nanos(), 5'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(2).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(250).to_millis(), 0.25);
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::from_seconds(1.4e-9).count_nanos(), 1);
  EXPECT_EQ(Duration::from_seconds(1.6e-9).count_nanos(), 2);
  EXPECT_EQ(Duration::from_seconds(-1.6e-9).count_nanos(), -2);
}

TEST(Duration, Arithmetic) {
  const Duration a = 100_ms;
  const Duration b = 50_ms;
  EXPECT_EQ((a + b).to_millis(), 150.0);
  EXPECT_EQ((a - b).to_millis(), 50.0);
  EXPECT_EQ((a * std::int64_t{3}).to_millis(), 300.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_EQ((a / std::int64_t{4}).to_millis(), 25.0);
  EXPECT_EQ((-a).count_nanos(), -a.count_nanos());
}

TEST(Duration, ScalarDoubleMultiply) {
  EXPECT_NEAR((100_ms * 0.5).to_millis(), 50.0, 1e-9);
  EXPECT_NEAR((1_s * 0.95).to_millis(), 950.0, 1e-6);
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_LE(Duration::zero(), 0_ns);
}

TEST(Duration, PositivePart) {
  EXPECT_EQ(positive_part(5_ms), 5_ms);
  EXPECT_EQ(positive_part(Duration::zero()), Duration::zero());
  EXPECT_EQ(positive_part(Duration::zero() - 5_ms), Duration::zero());
}

TEST(TimePoint, ArithmeticAndOrdering) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 10_ms;
  EXPECT_EQ((t1 - t0).to_millis(), 10.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - 10_ms, t0);
  TimePoint t = t0;
  t += 3_s;
  EXPECT_DOUBLE_EQ(t.to_seconds(), 3.0);
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_EQ(format_duration(2_s), "2.000 s");
  EXPECT_EQ(format_duration(15_ms), "15.000 ms");
  EXPECT_EQ(format_duration(120_us), "120.0 us");
}

TEST(Bytes, ConstructionAndArithmetic) {
  EXPECT_EQ(Bytes::kib(4).count(), 4096);
  EXPECT_EQ(Bytes::mib(2).count(), 2 * 1024 * 1024);
  EXPECT_EQ((Bytes::mib(1) + Bytes::mib(1)).count(), Bytes::mib(2).count());
  EXPECT_EQ((Bytes::mib(3) - Bytes::mib(1)).count(), Bytes::mib(2).count());
  EXPECT_DOUBLE_EQ(Bytes::mib(5).to_mib(), 5.0);
}

TEST(Bandwidth, UnitConversions) {
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(1).bytes_per_second(), 1e9 / 8.0);
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(500).to_gbps(), 0.5);
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(10).to_mbps(), 10'000.0);
}

TEST(Bandwidth, TimeToSendAndBytesIn) {
  const Bandwidth b = Bandwidth::bytes_per_sec(1e6);  // 1 MB/s
  EXPECT_NEAR(b.time_to_send(Bytes::of(500'000)).to_seconds(), 0.5, 1e-9);
  EXPECT_EQ(b.bytes_in(Duration::seconds(2)).count(), 2'000'000);
}

TEST(Bandwidth, ZeroDetection) {
  EXPECT_TRUE(Bandwidth::zero().is_zero());
  EXPECT_FALSE(Bandwidth::gbps(1).is_zero());
}

TEST(Formatters, BytesAndBandwidth) {
  EXPECT_EQ(format_bytes(Bytes::mib(3)), "3.00 MiB");
  EXPECT_EQ(format_bytes(Bytes::kib(2)), "2.0 KiB");
  EXPECT_EQ(format_bytes(Bytes::of(100)), "100 B");
  EXPECT_EQ(format_bandwidth(Bandwidth::gbps(3)), "3.00 Gbps");
  EXPECT_EQ(format_bandwidth(Bandwidth::mbps(500)), "500.0 Mbps");
}

}  // namespace
}  // namespace prophet
