#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/block_planner.hpp"
#include "core/oracle.hpp"
#include "testing_profiles.hpp"

namespace prophet::core {
namespace {

using namespace prophet::literals;
using testing::make_profile;
using testing::simple_cost;

constexpr double kMiBps100 = 1024.0 * 1024.0 * 100;

GradientProfile random_profile(Rng& rng, std::size_t n) {
  std::vector<Duration> ready(n);
  std::vector<Bytes> sizes(n);
  Duration clock{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = n - 1 - step;
    // Occasional simultaneous generation (stepwise ties).
    if (step == 0 || rng.bernoulli(0.6)) clock += Duration::millis(rng.uniform_int(2, 25));
    ready[idx] = clock;
    sizes[idx] = Bytes::kib(rng.uniform_int(16, 4096));
  }
  return make_profile(std::move(ready), std::move(sizes));
}

TEST(Oracle, FindsObviousOptimumOnTinyInstance) {
  // Two gradients far apart: transferring each at generation is optimal.
  const auto profile = make_profile({100_ms, 0_ms}, {Bytes::mib(1), Bytes::mib(1)});
  const PerfModel model{profile, {2_ms, 2_ms},
                        Bandwidth::bytes_per_sec(kMiBps100), simple_cost()};
  const OracleResult result = OracleScheduler{}.solve(model);
  EXPECT_EQ(result.schedules_evaluated, 2u);
  ASSERT_EQ(result.schedule.tasks.size(), 2u);
  EXPECT_EQ(result.schedule.tasks[0].start, 0_ms);
  EXPECT_EQ(result.schedule.tasks[1].start, 100_ms);
  // T_wait = u(0) - c(0) = 2E(0) = 22 ms; grouping would make it 32+ ms.
  EXPECT_NEAR(result.breakdown.t_wait.to_millis(), 22.0, 1e-6);
}

TEST(Oracle, GroupingWinsWhenOverheadDominates) {
  // Gradients generated together: one grouped task saves two setup charges
  // on the critical path of gradient 0's update.
  const auto profile = make_profile({0_ms, 0_ms, 0_ms},
                                    std::vector<Bytes>(3, Bytes::kib(64)));
  const PerfModel model{profile, std::vector<Duration>(3, 1_ms),
                        Bandwidth::gbps(10), simple_cost(5_ms)};
  const OracleResult result = OracleScheduler{}.solve(model);
  EXPECT_EQ(result.schedule.tasks.size(), 1u);
  EXPECT_EQ(result.schedule.tasks[0].grads.size(), 3u);
}

TEST(Oracle, EvaluatesAllContiguousSplits) {
  Rng rng{21};
  const auto profile = random_profile(rng, 6);
  const PerfModel model{profile, std::vector<Duration>(6, 2_ms),
                        Bandwidth::bytes_per_sec(kMiBps100), simple_cost()};
  const OracleResult result = OracleScheduler{}.solve(model);
  EXPECT_EQ(result.schedules_evaluated, 32u);  // 2^(6-1)
}

TEST(Oracle, NeverWorseThanPlannerOrNaive) {
  Rng rng{77};
  const Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100);
  for (int trial = 0; trial < 25; ++trial) {
    const auto profile = random_profile(rng, 8);
    const PerfModel model{profile, std::vector<Duration>(8, 2_ms), bw, simple_cost()};
    const OracleResult oracle = OracleScheduler{}.solve(model);

    // Naive: one task per gradient at earliest feasible time.
    Schedule naive;
    Duration nic{};
    for (std::size_t step = 0; step < 8; ++step) {
      const std::size_t idx = 7 - step;
      ScheduledTask t{{idx}, std::max(profile.ready[idx], nic)};
      nic = t.start + model.task_duration(t);
      naive.tasks.push_back(t);
    }
    EXPECT_LE(oracle.breakdown.t_wait, model.evaluate(naive).t_wait)
        << "trial " << trial;

    // The planner can leave the oracle's contiguous-group space (leftovers
    // merge with later generation events), so neither strictly dominates;
    // but the greedy plan must stay in the same league as the restricted
    // optimum.
    const Schedule planned = BlockPlanner{simple_cost()}.plan(profile, bw);
    EXPECT_LE(model.evaluate(planned).t_wait.to_seconds(),
              2.5 * oracle.breakdown.t_wait.to_seconds() + 0.005)
        << "trial " << trial;
  }
}

TEST(Oracle, ProphetGreedyIsNearOptimal) {
  // The paper's justification for the greedy heuristic: on random stepwise
  // instances Algorithm 1 should land close to the exhaustive optimum.
  Rng rng{31337};
  const Bandwidth bw = Bandwidth::bytes_per_sec(kMiBps100);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto profile = random_profile(rng, 10);
    const PerfModel model{profile, std::vector<Duration>(10, 2_ms), bw, simple_cost()};
    const OracleResult oracle = OracleScheduler{}.solve(model);
    const Schedule planned = BlockPlanner{simple_cost()}.plan(profile, bw);
    const Duration greedy_wait = model.evaluate(planned).t_wait;
    if (oracle.breakdown.t_wait > Duration::zero()) {
      worst_ratio = std::max(worst_ratio, greedy_wait / oracle.breakdown.t_wait);
    }
  }
  EXPECT_LT(worst_ratio, 2.5) << "greedy plan strays too far from optimal";
}

TEST(OracleDeath, RefusesOversizedInstances) {
  const auto profile =
      make_profile(std::vector<Duration>(22, 0_ms), std::vector<Bytes>(22, Bytes::kib(1)));
  const PerfModel model{profile, std::vector<Duration>(22, 1_ms),
                        Bandwidth::gbps(1), simple_cost()};
  EXPECT_DEATH((void)OracleScheduler{8}.solve(model), "too large");
}

}  // namespace
}  // namespace prophet::core
