#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "metrics/sweep.hpp"

namespace prophet::metrics {
namespace {

TEST(ParallelForIndex, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_index(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, ZeroCountIsNoop) {
  parallel_for_index(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelForIndex, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for_index(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
                     /*max_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndex, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  parallel_for_index(3, [&](std::size_t i) { total += static_cast<int>(i); },
                     /*max_threads=*/16);
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelMap, PreservesOrder) {
  std::vector<int> configs(50);
  std::iota(configs.begin(), configs.end(), 0);
  const std::function<int(const int&)> square = [](const int& x) { return x * x; };
  const auto results = parallel_map<int, int>(configs, square);
  ASSERT_EQ(results.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
}

}  // namespace
}  // namespace prophet::metrics
